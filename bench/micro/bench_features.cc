// Micro-benchmarks for the feature-extraction pipeline: per-stage cost and
// full-pipeline throughput at several raster sizes.
#include <benchmark/benchmark.h>

#include "features/canny.h"
#include "features/color_moments.h"
#include "features/edge_histogram.h"
#include "features/extractor.h"
#include "features/gaussian.h"
#include "features/wavelet_texture.h"
#include "imaging/color.h"
#include "imaging/synthetic.h"

namespace {

using namespace cbir;

imaging::Image TestImage(int size) {
  imaging::SyntheticCorelOptions options;
  options.num_categories = 1;
  options.images_per_category = 1;
  options.width = size;
  options.height = size;
  options.seed = 5;
  return imaging::SyntheticCorel(options).Generate(0, 0);
}

void BM_ColorMoments(benchmark::State& state) {
  const imaging::Image img = TestImage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ColorMoments(img));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColorMoments)->Arg(64)->Arg(96)->Arg(128);

void BM_GaussianBlur(benchmark::State& state) {
  const imaging::GrayImage gray =
      imaging::ToGray(TestImage(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::GaussianBlur(gray, 1.4));
  }
}
BENCHMARK(BM_GaussianBlur)->Arg(64)->Arg(96)->Arg(128);

void BM_Canny(benchmark::State& state) {
  const imaging::GrayImage gray =
      imaging::ToGray(TestImage(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::Canny(gray));
  }
}
BENCHMARK(BM_Canny)->Arg(64)->Arg(96)->Arg(128);

void BM_EdgeHistogram(benchmark::State& state) {
  const imaging::GrayImage gray = imaging::ToGray(TestImage(96));
  const features::CannyResult canny = features::Canny(gray);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::EdgeDirectionHistogram(canny));
  }
}
BENCHMARK(BM_EdgeHistogram);

void BM_WaveletTexture(benchmark::State& state) {
  const imaging::GrayImage gray =
      imaging::ToGray(TestImage(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::WaveletTexture(gray));
  }
}
BENCHMARK(BM_WaveletTexture)->Arg(64)->Arg(96)->Arg(128);

void BM_FullPipeline(benchmark::State& state) {
  const imaging::Image img = TestImage(static_cast<int>(state.range(0)));
  const features::FeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(img));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPipeline)->Arg(64)->Arg(96)->Arg(128);

void BM_SyntheticGeneration(benchmark::State& state) {
  imaging::SyntheticCorelOptions options;
  options.num_categories = 20;
  options.images_per_category = 100;
  options.width = static_cast<int>(state.range(0));
  options.height = static_cast<int>(state.range(0));
  const imaging::SyntheticCorel corpus(options);
  int id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus.GenerateById(id));
    id = (id + 1) % corpus.num_images();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticGeneration)->Arg(64)->Arg(96);

}  // namespace
