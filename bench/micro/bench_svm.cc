// Micro-benchmarks for the SMO solver: scaling in training-set size, C and
// kernel type. Relevance feedback solves many small QPs per query, so the
// n <= 100 region is the one that matters.
#include <benchmark/benchmark.h>

#include "svm/trainer.h"
#include "util/rng.h"

namespace {

using namespace cbir;

struct Problem {
  la::Matrix data;
  std::vector<double> labels;
};

Problem MakeProblem(size_t n, size_t dims, double gap, uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.data = la::Matrix(n, dims);
  p.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.labels[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < dims; ++d) {
      p.data.At(i, d) = rng.Gaussian() + 0.5 * gap * p.labels[i];
    }
  }
  return p;
}

void BM_SmoSolveRbf(benchmark::State& state) {
  const Problem p = MakeProblem(static_cast<size_t>(state.range(0)), 36,
                                1.0, 11);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = 10.0;
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmoSolveRbf)->Arg(20)->Arg(40)->Arg(100)->Arg(200);

void BM_SmoSolveLinear(benchmark::State& state) {
  const Problem p = MakeProblem(static_cast<size_t>(state.range(0)), 36,
                                2.0, 13);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Linear();
  options.c = 10.0;
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
}
BENCHMARK(BM_SmoSolveLinear)->Arg(20)->Arg(100);

void BM_SmoSolveByC(benchmark::State& state) {
  const Problem p = MakeProblem(40, 36, 0.5, 17);  // overlapping classes
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = static_cast<double>(state.range(0));
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
}
BENCHMARK(BM_SmoSolveByC)->Arg(1)->Arg(10)->Arg(100);

void BM_DecisionBatch(benchmark::State& state) {
  const Problem train = MakeProblem(40, 36, 1.0, 19);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  const svm::SvmTrainer trainer(options);
  const auto out = trainer.Train(train.data, train.labels);
  const Problem corpus =
      MakeProblem(static_cast<size_t>(state.range(0)), 36, 1.0, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(out.value().model.DecisionBatch(corpus.data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionBatch)->Arg(1000)->Arg(5000);

}  // namespace
