// Micro-benchmarks for the SMO solver: scaling in training-set size, C and
// kernel type, plus before/after comparisons for the training-core
// optimizations (slab kernel cache, shrinking, warm-starting). Relevance
// feedback solves many small QPs per query, so the n <= 100 region is the
// one that matters; the larger sizes exercise shrinking and cache eviction.
#include <benchmark/benchmark.h>

#include "svm/trainer.h"
#include "util/rng.h"

namespace {

using namespace cbir;

struct Problem {
  la::Matrix data;
  std::vector<double> labels;
};

Problem MakeProblem(size_t n, size_t dims, double gap, uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.data = la::Matrix(n, dims);
  p.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.labels[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < dims; ++d) {
      p.data.At(i, d) = rng.Gaussian() + 0.5 * gap * p.labels[i];
    }
  }
  return p;
}

// Reports solver diagnostics (iterations, cache hit rate) as bench counters
// so before/after runs can be compared on work done, not just wall time.
void ReportSolveCounters(benchmark::State& state,
                         const svm::TrainOutput& out) {
  state.counters["iters"] = static_cast<double>(out.iterations);
  state.counters["cache_hit_rate"] = out.cache_stats.hit_rate();
  state.counters["cache_evictions"] =
      static_cast<double>(out.cache_stats.evictions);
}

void BM_SmoSolveRbf(benchmark::State& state) {
  const Problem p = MakeProblem(static_cast<size_t>(state.range(0)), 36,
                                1.0, 11);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = 10.0;
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
  state.SetItemsProcessed(state.iterations());
  ReportSolveCounters(state, trainer.Train(p.data, p.labels).value());
}
BENCHMARK(BM_SmoSolveRbf)->Arg(20)->Arg(40)->Arg(100)->Arg(200);

void BM_SmoSolveLinear(benchmark::State& state) {
  const Problem p = MakeProblem(static_cast<size_t>(state.range(0)), 36,
                                2.0, 13);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Linear();
  options.c = 10.0;
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
}
BENCHMARK(BM_SmoSolveLinear)->Arg(20)->Arg(100);

void BM_SmoSolveByC(benchmark::State& state) {
  const Problem p = MakeProblem(40, 36, 0.5, 17);  // overlapping classes
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = static_cast<double>(state.range(0));
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
}
BENCHMARK(BM_SmoSolveByC)->Arg(1)->Arg(10)->Arg(100);

// Shrinking on/off on a heavily overlapping problem (range(1) toggles).
// Shrinking pays when iterations >> n: many examples saturate at C early
// and every gradient/selection pass over them is wasted work.
void BM_SmoSolveShrinking(benchmark::State& state) {
  const Problem p = MakeProblem(static_cast<size_t>(state.range(0)), 2,
                                0.2, 29);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(0.5);
  options.c = 1000.0;
  options.smo.shrinking = state.range(1) != 0;
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
  ReportSolveCounters(state, trainer.Train(p.data, p.labels).value());
}
BENCHMARK(BM_SmoSolveShrinking)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({500, 0})
    ->Args({500, 1});

// Bounded cache on a problem whose kernel matrix does not fit: the slab
// cache's eviction path and batched GetRows are the subject here.
void BM_SmoSolveTinyCache(benchmark::State& state) {
  const Problem p = MakeProblem(300, 36, 0.8, 31);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = 10.0;
  options.smo.cache_rows = static_cast<size_t>(state.range(0));
  const svm::SvmTrainer trainer(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Train(p.data, p.labels));
  }
  ReportSolveCounters(state, trainer.Train(p.data, p.labels).value());
}
BENCHMARK(BM_SmoSolveTinyCache)->Arg(0)->Arg(64)->Arg(16);

// Multi-round relevance-feedback simulation: each round adds `step` newly
// judged samples. range(1) == 1 carries alphas across rounds (warm start),
// 0 re-solves from scratch — the before/after pair for the feedback loop.
void BM_SmoFeedbackRounds(benchmark::State& state) {
  constexpr int kRounds = 5;
  const size_t step = 20;
  const Problem full = MakeProblem(step * kRounds, 36, 0.8, 37);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.c = 10.0;
  const bool warm = state.range(1) != 0;
  long total_iters = 0;
  for (auto _ : state) {
    std::vector<double> carried;
    for (int r = 1; r <= kRounds; ++r) {
      const size_t n = step * static_cast<size_t>(r);
      la::Matrix data(n, 36);
      for (size_t i = 0; i < n; ++i) data.SetRow(i, full.data.Row(i));
      std::vector<double> labels(full.labels.begin(),
                                 full.labels.begin() + static_cast<long>(n));
      svm::TrainOptions round_options = options;
      if (warm) {
        round_options.smo.initial_alpha = carried;
        round_options.smo.initial_alpha.resize(n, 0.0);
      }
      const svm::SvmTrainer trainer(round_options);
      auto out = trainer.Train(data, labels);
      benchmark::DoNotOptimize(out);
      total_iters += out.value().iterations;
      if (warm) carried = std::move(out.value().alpha);
    }
  }
  state.counters["iters_per_session"] =
      static_cast<double>(total_iters) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SmoFeedbackRounds)->Args({0, 0})->Args({0, 1});

void BM_DecisionBatch(benchmark::State& state) {
  const Problem train = MakeProblem(40, 36, 1.0, 19);
  svm::TrainOptions options;
  options.kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  const svm::SvmTrainer trainer(options);
  const auto out = trainer.Train(train.data, train.labels);
  const Problem corpus =
      MakeProblem(static_cast<size_t>(state.range(0)), 36, 1.0, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(out.value().model.DecisionBatch(corpus.data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionBatch)->Arg(1000)->Arg(5000)->Arg(20000);

}  // namespace
