// Micro-benchmarks for the serving subsystem: full feedback sessions and
// first-round queries pushed through one shared serve::RetrievalService
// from 1..8 concurrent threads (google-benchmark ->Threads). Real-time
// rates are the point: per-session state is behind per-session locks and
// the first-round cache is sharded, so sessions/s should scale with cores
// until the SVM solves saturate them.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_set>

#include "core/feedback_scheme.h"
#include "logdb/simulated_user.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "smoke.h"
#include "util/rng.h"

namespace {

using namespace cbir;

constexpr int kRounds = 2;
constexpr int kJudgments = 10;
constexpr int kDepth = 20 + kRounds * kJudgments + 1;

// One service shared by every bench and thread count, built lazily once
// (static local init is thread-safe); accumulated service stats are fine —
// the benchmarks measure rates, not counters.
struct ServeEnv {
  retrieval::ImageDatabase db;
  la::Matrix log_features;
  logdb::LogStore store;
  std::unique_ptr<logdb::SimulatedUser> user;
  std::unique_ptr<serve::RetrievalService> service;
  /// Same configuration with the first-round cache disabled, so the miss
  /// bench measures the uncached path on every iteration.
  std::unique_ptr<serve::RetrievalService> service_nocache;

  explicit ServeEnv(retrieval::ImageDatabase built) : db(std::move(built)) {}
};

ServeEnv& Env() {
  static ServeEnv* env = [] {
    auto* e = new ServeEnv(retrieval::ClusteredDatabase(
        static_cast<int>(cbir_bench::SmokeCapped(20000)), 1));
    retrieval::IndexOptions index_options;
    index_options.mode = retrieval::IndexMode::kSignature;
    e->db.BuildIndex(index_options);

    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 150;
    log_options.seed = 7;
    e->store = logdb::CollectLogs(e->db.features(), e->db.categories(),
                                  log_options);
    e->log_features = e->store.BuildMatrix(e->db.num_images()).ToDenseMatrix();
    e->user = std::make_unique<logdb::SimulatedUser>(
        e->db.categories(), logdb::UserModel{0.1});

    serve::ServiceOptions service_options;
    service_options.scheme = "RF-SVM";
    service_options.candidate_depth = kDepth;
    service_options.sessions.max_sessions = 1 << 14;
    const core::SchemeOptions scheme_options =
        core::MakeDefaultSchemeOptions(e->db, &e->log_features);
    auto service = serve::RetrievalService::Create(
        &e->db, &e->log_features, &e->store, scheme_options, service_options);
    e->service = std::move(service.value());
    service_options.cache.capacity = 0;
    auto nocache = serve::RetrievalService::Create(
        &e->db, &e->log_features, &e->store, scheme_options, service_options);
    e->service_nocache = std::move(nocache.value());
    return e;
  }();
  return *env;
}

// One full feedback session per iteration: Start, first-round Query,
// kRounds judged Feedback re-rankings, End. The dominant cost is the
// per-round SVM train + candidate rerank — the serving hot path.
void BM_ServeFeedbackSession(benchmark::State& state) {
  ServeEnv& env = Env();
  serve::RetrievalService& service = *env.service;
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    Rng rng(0x51F15EED ^ ++i);
    const int query_id = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(env.db.num_images())));
    const uint64_t sid = service.StartSession(query_id).value();
    auto ranking = service.Query(sid, kDepth).value();
    std::unordered_set<int> judged{query_id};
    const int category = env.db.category(query_id);
    for (int r = 0; r < kRounds; ++r) {
      std::vector<logdb::LogEntry> round;
      for (int id : ranking) {
        if (static_cast<int>(round.size()) >= kJudgments) break;
        if (!judged.insert(id).second) continue;
        round.push_back(
            logdb::LogEntry{id, env.user->Judge(id, category, &rng)});
      }
      ranking = service.Feedback(sid, round, kDepth).value();
    }
    benchmark::DoNotOptimize(service.EndSession(sid));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const serve::ServiceStats stats = service.stats();
    state.counters["p95_us"] = stats.latency.p95_us;
    state.counters["cache_hit_rate"] = stats.cache_hit_rate;
  }
}
BENCHMARK(BM_ServeFeedbackSession)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Query-only sessions over a small repeating query pool: the cache-hit
// serving path (session bookkeeping + one cache lookup + a top-k copy).
void BM_ServeFirstRoundQuery(benchmark::State& state) {
  ServeEnv& env = Env();
  serve::RetrievalService& service = *env.service;
  const int pool = std::min(64, env.db.num_images());
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    const int query_id = static_cast<int>(++i % static_cast<uint64_t>(pool));
    const uint64_t sid = service.StartSession(query_id).value();
    benchmark::DoNotOptimize(service.Query(sid));
    benchmark::DoNotOptimize(service.EndSession(sid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeFirstRoundQuery)->ThreadRange(1, 8)->UseRealTime();

// Cache disabled: every request pays the signature candidate scan + exact
// rerank — the before-side of the cache-hit pair above.
void BM_ServeFirstRoundQueryMiss(benchmark::State& state) {
  ServeEnv& env = Env();
  serve::RetrievalService& service = *env.service_nocache;
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    Rng rng(0xC01DCA5E ^ ++i);
    const int query_id = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(env.db.num_images())));
    const uint64_t sid = service.StartSession(query_id).value();
    benchmark::DoNotOptimize(service.Query(sid));
    benchmark::DoNotOptimize(service.EndSession(sid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeFirstRoundQueryMiss)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
