// Wire-protocol micro-benchmarks: raw codec encode+decode cost, and full
// loopback TCP round trips against an in-process net::TcpServer from 1..8
// client threads (one connection per thread, exactly like load_driver
// --remote). The service side uses the cheap Euclidean scheme so the
// numbers isolate transport + codec overhead, not SVM training.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <variant>
#include <vector>

#include "api/codec.h"
#include "api/dispatcher.h"
#include "core/feedback_scheme.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "smoke.h"

namespace {

using namespace cbir;

constexpr int kDepth = 41;

struct NetEnv {
  retrieval::ImageDatabase db;
  std::unique_ptr<serve::RetrievalService> service;
  std::unique_ptr<api::Dispatcher> dispatcher;
  std::unique_ptr<net::TcpServer> server;

  explicit NetEnv(retrieval::ImageDatabase built) : db(std::move(built)) {}
};

NetEnv& Env() {
  static NetEnv* env = [] {
    auto* e = new NetEnv(retrieval::ClusteredDatabase(
        static_cast<int>(cbir_bench::SmokeCapped(20000)), 1));
    retrieval::IndexOptions index_options;
    index_options.mode = retrieval::IndexMode::kSignature;
    e->db.BuildIndex(index_options);

    serve::ServiceOptions service_options;
    service_options.scheme = "Euclidean";
    service_options.candidate_depth = kDepth;
    service_options.sessions.max_sessions = 1 << 14;
    auto service = serve::RetrievalService::Create(
        &e->db, nullptr, nullptr,
        core::MakeDefaultSchemeOptions(e->db, nullptr), service_options);
    e->service = std::move(service.value());
    e->dispatcher = std::make_unique<api::Dispatcher>(e->service.get());
    e->server =
        std::make_unique<net::TcpServer>(e->dispatcher.get(),
                                         net::TcpServerOptions{});
    auto started = e->server->Start();
    if (!started.ok()) {
      std::abort();  // bench cannot run without a loopback port
    }
    return e;
  }();
  return *env;
}

// Pure codec cost: one 36-dim feature-vector StartSessionRequest encoded
// into a frame and decoded back (the biggest request the protocol ships).
void BM_CodecStartSessionFeature(benchmark::State& state) {
  api::StartSessionRequest request;
  request.query = api::QuerySpec::ByFeature(la::Vec(36, 0.25));
  const api::Request wrapped(request);
  for (auto _ : state) {
    const std::vector<uint8_t> frame = api::EncodeRequest(wrapped);
    auto decoded = api::DecodeRequest(frame.data(), frame.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecStartSessionFeature);

// Codec cost of the dominant response shape: a depth-41 ranking.
void BM_CodecQueryResponse(benchmark::State& state) {
  api::QueryResponse response;
  for (int i = 0; i < kDepth; ++i) response.ranking.push_back(i * 3);
  const api::Response wrapped(response);
  for (auto _ : state) {
    const std::vector<uint8_t> frame = api::EncodeResponse(wrapped);
    auto decoded = api::DecodeResponse(frame.data(), frame.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecQueryResponse);

// Smallest possible round trip (StatsRequest): the floor the transport puts
// under every remote call — syscalls + framing, no retrieval work.
void BM_LoopbackStatsRoundTrip(benchmark::State& state) {
  NetEnv& env = Env();
  auto client = net::TcpClient::Connect("127.0.0.1", env.server->port());
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    auto stats = client->Stats();
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackStatsRoundTrip)->ThreadRange(1, 8)->UseRealTime();

// Full remote first-round query session: Start + Query(41) + End, three
// round trips over one connection — the remote counterpart of
// BM_ServeFirstRoundQuery in bench_serve.cc (the delta is the wire).
void BM_LoopbackQuerySession(benchmark::State& state) {
  NetEnv& env = Env();
  auto client = net::TcpClient::Connect("127.0.0.1", env.server->port());
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  const int pool = std::min(64, env.db.num_images());
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    const int query_id = static_cast<int>(++i % static_cast<uint64_t>(pool));
    auto sid = client->StartSession(api::QuerySpec::ById(query_id));
    auto ranking = client->Query(sid.value(), kDepth);
    benchmark::DoNotOptimize(ranking);
    benchmark::DoNotOptimize(client->EndSession(sid.value()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackQuerySession)->ThreadRange(1, 8)->UseRealTime();

// The same three requests pipelined onto the wire before reading any
// response: one effective round trip instead of three — what a batching
// client buys on the unchanged server.
void BM_LoopbackQuerySessionPipelined(benchmark::State& state) {
  NetEnv& env = Env();
  auto client = net::TcpClient::Connect("127.0.0.1", env.server->port());
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  const int pool = std::min(64, env.db.num_images());
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    const int query_id = static_cast<int>(++i % static_cast<uint64_t>(pool));
    // StartSession must be answered first (the session id feeds the next
    // frames), so pipeline the Query + EndSession pair behind it.
    auto sid = client->StartSession(api::QuerySpec::ById(query_id));
    api::QueryRequest query;
    query.session_id = sid.value();
    query.k = kDepth;
    api::EndSessionRequest end;
    end.session_id = sid.value();
    (void)client->Send(api::Request(query));
    (void)client->Send(api::Request(end));
    auto ranking = client->Receive();
    auto ended = client->Receive();
    benchmark::DoNotOptimize(ranking);
    benchmark::DoNotOptimize(ended);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackQuerySessionPipelined)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
