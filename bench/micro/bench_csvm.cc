// Micro-benchmarks for the coupled SVM: alternating-optimization cost as a
// function of the unlabeled-sample count N' and the rho annealing schedule.
#include <benchmark/benchmark.h>

#include "core/coupled_svm.h"
#include "util/rng.h"

namespace {

using namespace cbir;

core::CsvmTrainData MakeData(size_t nl, size_t nu, uint64_t seed) {
  Rng rng(seed);
  core::CsvmTrainData data;
  data.visual = la::Matrix(nl + nu, 36);
  data.log = la::Matrix(nl + nu, 150);
  for (size_t i = 0; i < nl + nu; ++i) {
    const double y = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 36; ++d) {
      data.visual.At(i, d) = rng.Gaussian() + 0.4 * y;
    }
    // Sparse ternary log vector with a class-correlated pattern.
    for (size_t d = 0; d < 150; ++d) {
      if (rng.Bernoulli(0.05)) {
        data.log.At(i, d) = rng.Bernoulli(0.8) ? y : -y;
      }
    }
    if (i < nl) {
      data.labels.push_back(y);
    } else {
      data.initial_unlabeled_labels.push_back(y);
    }
  }
  return data;
}

core::CsvmOptions BenchOptions() {
  core::CsvmOptions options;
  options.visual_kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.log_kernel = svm::KernelParams::Rbf(1.0 / 150.0);
  return options;
}

void BM_CoupledTrainByNPrime(benchmark::State& state) {
  const core::CsvmTrainData data =
      MakeData(20, static_cast<size_t>(state.range(0)), 3);
  const core::CoupledSvm csvm(BenchOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoupledTrainByNPrime)->Arg(0)->Arg(10)->Arg(20)->Arg(40);

void BM_CoupledTrainByRhoInit(benchmark::State& state) {
  // Larger rho_init -> fewer annealing steps -> proportionally cheaper.
  const core::CsvmTrainData data = MakeData(20, 20, 5);
  core::CsvmOptions options = BenchOptions();
  options.rho = 1.0;  // fixed final weight so the step count is the knob
  options.rho_init = 1.0 / static_cast<double>(state.range(0));
  const core::CoupledSvm csvm(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
}
BENCHMARK(BM_CoupledTrainByRhoInit)->Arg(2)->Arg(64)->Arg(10000);

// Multi-round coupled-SVM feedback simulation: round r trains on r * 10
// labeled samples plus a fixed unlabeled pool. range(0) == 1 warm-starts
// every round from the previous round's duals (alphas aligned by sample,
// new samples entering at zero); 0 is the cold baseline. This is the
// end-to-end pattern of a live relevance-feedback session.
void BM_CoupledFeedbackSession(benchmark::State& state) {
  constexpr int kRounds = 4;
  const size_t step = 10;
  const size_t nu = 20;
  const core::CsvmTrainData full = MakeData(step * kRounds, nu, 9);
  const core::CoupledSvm csvm(BenchOptions());
  const bool warm = state.range(0) != 0;
  long total_smo_iters = 0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    std::vector<double> carried_visual, carried_log;
    for (int r = 1; r <= kRounds; ++r) {
      const size_t nl = step * static_cast<size_t>(r);
      core::CsvmTrainData data;
      data.visual = la::Matrix(nl + nu, 36);
      data.log = la::Matrix(nl + nu, 150);
      data.labels.assign(full.labels.begin(),
                         full.labels.begin() + static_cast<long>(nl));
      data.initial_unlabeled_labels = full.initial_unlabeled_labels;
      for (size_t i = 0; i < nl; ++i) {
        data.visual.SetRow(i, full.visual.Row(i));
        data.log.SetRow(i, full.log.Row(i));
      }
      const size_t full_nl = step * kRounds;
      for (size_t j = 0; j < nu; ++j) {
        data.visual.SetRow(nl + j, full.visual.Row(full_nl + j));
        data.log.SetRow(nl + j, full.log.Row(full_nl + j));
      }
      if (warm && !carried_visual.empty()) {
        // Labeled prefix + unlabeled suffix both carry over; the new
        // judgments of this round enter at zero.
        data.initial_visual_alpha.assign(nl + nu, 0.0);
        data.initial_log_alpha.assign(nl + nu, 0.0);
        const size_t prev_nl = nl - step;
        for (size_t i = 0; i < prev_nl; ++i) {
          data.initial_visual_alpha[i] = carried_visual[i];
          data.initial_log_alpha[i] = carried_log[i];
        }
        for (size_t j = 0; j < nu; ++j) {
          data.initial_visual_alpha[nl + j] = carried_visual[prev_nl + j];
          data.initial_log_alpha[nl + j] = carried_log[prev_nl + j];
        }
      }
      auto model = csvm.Train(data);
      benchmark::DoNotOptimize(model);
      total_smo_iters += model.value().diagnostics.total_smo_iterations;
      hit_rate = model.value().diagnostics.cache_stats.hit_rate();
      if (warm) {
        carried_visual = std::move(model.value().visual_alpha);
        carried_log = std::move(model.value().log_alpha);
      }
    }
  }
  state.counters["smo_iters_per_session"] =
      static_cast<double>(total_smo_iters) /
      static_cast<double>(state.iterations());
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_CoupledFeedbackSession)->Arg(0)->Arg(1);

void BM_CoupledDecision(benchmark::State& state) {
  const core::CsvmTrainData data = MakeData(20, 20, 7);
  const core::CoupledSvm csvm(BenchOptions());
  const auto model = csvm.Train(data);
  const la::Vec x = data.visual.Row(0);
  const la::Vec r = data.log.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.value().Decision(x, r));
  }
}
BENCHMARK(BM_CoupledDecision);

}  // namespace
