// Micro-benchmarks for the coupled SVM: alternating-optimization cost as a
// function of the unlabeled-sample count N' and the rho annealing schedule.
#include <benchmark/benchmark.h>

#include "core/coupled_svm.h"
#include "util/rng.h"

namespace {

using namespace cbir;

core::CsvmTrainData MakeData(size_t nl, size_t nu, uint64_t seed) {
  Rng rng(seed);
  core::CsvmTrainData data;
  data.visual = la::Matrix(nl + nu, 36);
  data.log = la::Matrix(nl + nu, 150);
  for (size_t i = 0; i < nl + nu; ++i) {
    const double y = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 36; ++d) {
      data.visual.At(i, d) = rng.Gaussian() + 0.4 * y;
    }
    // Sparse ternary log vector with a class-correlated pattern.
    for (size_t d = 0; d < 150; ++d) {
      if (rng.Bernoulli(0.05)) {
        data.log.At(i, d) = rng.Bernoulli(0.8) ? y : -y;
      }
    }
    if (i < nl) {
      data.labels.push_back(y);
    } else {
      data.initial_unlabeled_labels.push_back(y);
    }
  }
  return data;
}

core::CsvmOptions BenchOptions() {
  core::CsvmOptions options;
  options.visual_kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.log_kernel = svm::KernelParams::Rbf(1.0 / 150.0);
  return options;
}

void BM_CoupledTrainByNPrime(benchmark::State& state) {
  const core::CsvmTrainData data =
      MakeData(20, static_cast<size_t>(state.range(0)), 3);
  const core::CoupledSvm csvm(BenchOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoupledTrainByNPrime)->Arg(0)->Arg(10)->Arg(20)->Arg(40);

void BM_CoupledTrainByRhoInit(benchmark::State& state) {
  // Larger rho_init -> fewer annealing steps -> proportionally cheaper.
  const core::CsvmTrainData data = MakeData(20, 20, 5);
  core::CsvmOptions options = BenchOptions();
  options.rho = 1.0;  // fixed final weight so the step count is the knob
  options.rho_init = 1.0 / static_cast<double>(state.range(0));
  const core::CoupledSvm csvm(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
}
BENCHMARK(BM_CoupledTrainByRhoInit)->Arg(2)->Arg(64)->Arg(10000);

void BM_CoupledDecision(benchmark::State& state) {
  const core::CsvmTrainData data = MakeData(20, 20, 7);
  const core::CoupledSvm csvm(BenchOptions());
  const auto model = csvm.Train(data);
  const la::Vec x = data.visual.Row(0);
  const la::Vec r = data.log.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.value().Decision(x, r));
  }
}
BENCHMARK(BM_CoupledDecision);

}  // namespace
