// Micro-benchmarks for the coupled SVM: alternating-optimization cost as a
// function of the unlabeled-sample count N' and the rho annealing schedule,
// plus the before/after pairs for kernel-cache sharing (per-QP caches vs one
// cache per modality shared across the solve chain and across feedback
// rounds).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "core/coupled_svm.h"
#include "core/feedback_scheme.h"
#include "util/rng.h"

namespace {

using namespace cbir;

core::CsvmTrainData MakeData(size_t nl, size_t nu, uint64_t seed) {
  Rng rng(seed);
  core::CsvmTrainData data;
  data.visual = la::Matrix(nl + nu, 36);
  data.log = la::Matrix(nl + nu, 150);
  for (size_t i = 0; i < nl + nu; ++i) {
    const double y = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 36; ++d) {
      data.visual.At(i, d) = rng.Gaussian() + 0.4 * y;
    }
    // Sparse ternary log vector with a class-correlated pattern.
    for (size_t d = 0; d < 150; ++d) {
      if (rng.Bernoulli(0.05)) {
        data.log.At(i, d) = rng.Bernoulli(0.8) ? y : -y;
      }
    }
    if (i < nl) {
      data.labels.push_back(y);
    } else {
      data.initial_unlabeled_labels.push_back(y);
    }
  }
  return data;
}

core::CsvmOptions BenchOptions() {
  core::CsvmOptions options;
  options.visual_kernel = svm::KernelParams::Rbf(1.0 / 36.0);
  options.log_kernel = svm::KernelParams::Rbf(1.0 / 150.0);
  return options;
}

void BM_CoupledTrainByNPrime(benchmark::State& state) {
  const core::CsvmTrainData data =
      MakeData(20, static_cast<size_t>(state.range(0)), 3);
  const core::CoupledSvm csvm(BenchOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoupledTrainByNPrime)->Arg(0)->Arg(10)->Arg(20)->Arg(40);

// Cold-vs-shared kernel caches on ONE annealing/label-correction chain:
// range(0) == 0 rebuilds a fresh KernelCache for every QP solve (the PR 1
// warm-start baseline), 1 shares one cache per modality across the whole
// chain. Same QPs, same solution; only kernel-row recomputation differs.
void BM_CoupledTrainCacheSharing(benchmark::State& state) {
  const core::CsvmTrainData data = MakeData(20, 20, 3);
  core::CsvmOptions options = BenchOptions();
  options.reuse_chain_cache = state.range(0) != 0;
  const core::CoupledSvm csvm(options);
  double hit_rate = 0.0;
  double misses = 0.0;
  for (auto _ : state) {
    auto model = csvm.Train(data);
    benchmark::DoNotOptimize(model);
    hit_rate = model.value().diagnostics.cache_stats.hit_rate();
    misses =
        static_cast<double>(model.value().diagnostics.cache_stats.misses);
  }
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["cache_misses"] = misses;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoupledTrainCacheSharing)->Arg(0)->Arg(1);

void BM_CoupledTrainByRhoInit(benchmark::State& state) {
  // Larger rho_init -> fewer annealing steps -> proportionally cheaper.
  const core::CsvmTrainData data = MakeData(20, 20, 5);
  core::CsvmOptions options = BenchOptions();
  options.rho = 1.0;  // fixed final weight so the step count is the knob
  options.rho_init = 1.0 / static_cast<double>(state.range(0));
  const core::CoupledSvm csvm(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csvm.Train(data));
  }
}
BENCHMARK(BM_CoupledTrainByRhoInit)->Arg(2)->Arg(64)->Arg(10000);

// Multi-round coupled-SVM feedback simulation: round r trains on r * 10
// labeled samples plus a fixed unlabeled pool. range(0) selects the
// carry-over level: 0 = cold rounds; 1 = warm-start every round from the
// previous round's duals (alphas aligned by sample, new samples entering at
// zero); 2 = warm duals PLUS per-modality session kernel caches
// (core::SessionKernelCache) carrying kernel rows across rounds, remapped
// by sample id — the full cross-round path LRF-CSVM serving uses. This is
// the end-to-end pattern of a live relevance-feedback session.
void BM_CoupledFeedbackSession(benchmark::State& state) {
  constexpr int kRounds = 4;
  const size_t step = 10;
  const size_t nu = 20;
  const core::CsvmTrainData full = MakeData(step * kRounds, nu, 9);
  const core::CoupledSvm csvm(BenchOptions());
  const bool warm = state.range(0) >= 1;
  const bool session_cache = state.range(0) >= 2;
  long total_smo_iters = 0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    std::vector<double> carried_visual, carried_log;
    core::SessionState session_state;
    for (int r = 1; r <= kRounds; ++r) {
      const size_t nl = step * static_cast<size_t>(r);
      core::CsvmTrainData data;
      data.visual = la::Matrix(nl + nu, 36);
      data.log = la::Matrix(nl + nu, 150);
      data.labels.assign(full.labels.begin(),
                         full.labels.begin() + static_cast<long>(nl));
      data.initial_unlabeled_labels = full.initial_unlabeled_labels;
      for (size_t i = 0; i < nl; ++i) {
        data.visual.SetRow(i, full.visual.Row(i));
        data.log.SetRow(i, full.log.Row(i));
      }
      const size_t full_nl = step * kRounds;
      for (size_t j = 0; j < nu; ++j) {
        data.visual.SetRow(nl + j, full.visual.Row(full_nl + j));
        data.log.SetRow(nl + j, full.log.Row(full_nl + j));
      }
      if (warm && !carried_visual.empty()) {
        // Labeled prefix + unlabeled suffix both carry over; the new
        // judgments of this round enter at zero.
        data.initial_visual_alpha.assign(nl + nu, 0.0);
        data.initial_log_alpha.assign(nl + nu, 0.0);
        const size_t prev_nl = nl - step;
        for (size_t i = 0; i < prev_nl; ++i) {
          data.initial_visual_alpha[i] = carried_visual[i];
          data.initial_log_alpha[i] = carried_log[i];
        }
        for (size_t j = 0; j < nu; ++j) {
          data.initial_visual_alpha[nl + j] = carried_visual[prev_nl + j];
          data.initial_log_alpha[nl + j] = carried_log[prev_nl + j];
        }
      }
      cbir::Result<core::CoupledModel> model = [&] {
        if (!session_cache) return csvm.Train(data);
        // Rows keyed by their index in `full` (the bench's stand-in for
        // image ids): the labeled prefix and the unlabeled pool both carry
        // over between rounds, so their kernel rows are remapped, and only
        // the step new judgments cost kernel evaluations.
        std::vector<int> ids;
        ids.reserve(nl + nu);
        for (size_t i = 0; i < nl; ++i) ids.push_back(static_cast<int>(i));
        for (size_t j = 0; j < nu; ++j) {
          ids.push_back(static_cast<int>(full_nl + j));
        }
        const core::CsvmOptions& opt = csvm.options();
        core::CsvmTrainView view;
        view.labels = &data.labels;
        view.initial_unlabeled_labels = &data.initial_unlabeled_labels;
        view.initial_visual_alpha = &data.initial_visual_alpha;
        view.initial_log_alpha = &data.initial_log_alpha;
        view.visual_cache = session_state.visual_rows.Bind(
            ids, std::move(data.visual), opt.visual_kernel,
            opt.smo.cache_rows);
        view.log_cache = session_state.log_rows.Bind(
            std::move(ids), std::move(data.log), opt.log_kernel,
            opt.smo.cache_rows);
        view.visual = &session_state.visual_rows.data();
        view.log = &session_state.log_rows.data();
        return csvm.TrainView(view);
      }();
      benchmark::DoNotOptimize(model);
      total_smo_iters += model.value().diagnostics.total_smo_iterations;
      hit_rate = model.value().diagnostics.cache_stats.hit_rate();
      if (warm) {
        carried_visual = std::move(model.value().visual_alpha);
        carried_log = std::move(model.value().log_alpha);
      }
    }
  }
  state.counters["smo_iters_per_session"] =
      static_cast<double>(total_smo_iters) /
      static_cast<double>(state.iterations());
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_CoupledFeedbackSession)->Arg(0)->Arg(1)->Arg(2);

void BM_CoupledDecision(benchmark::State& state) {
  const core::CsvmTrainData data = MakeData(20, 20, 7);
  const core::CoupledSvm csvm(BenchOptions());
  const auto model = csvm.Train(data);
  const la::Vec x = data.visual.Row(0);
  const la::Vec r = data.log.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.value().Decision(x, r));
  }
}
BENCHMARK(BM_CoupledDecision);

}  // namespace
