#ifndef CBIR_BENCH_MICRO_SMOKE_H_
#define CBIR_BENCH_MICRO_SMOKE_H_

#include <algorithm>
#include <cstdlib>
#include <initializer_list>
#include <vector>

namespace cbir_bench {

/// CI smoke mode: with CBIR_BENCH_SMOKE=1 in the environment, problem sizes
/// are capped so every micro bench binary finishes one repetition in seconds
/// (the CI bench-smoke job runs each with --benchmark_min_time=0.001).
/// Numbers produced this way are crash tests, not measurements.
inline bool SmokeMode() { return std::getenv("CBIR_BENCH_SMOKE") != nullptr; }

/// Caps a benchmark size argument in smoke mode; full size otherwise.
inline long SmokeCapped(long n, long cap = 2000) {
  return SmokeMode() && n > cap ? cap : n;
}

/// Caps a size list and drops the duplicates capping creates, so smoke mode
/// never registers the same benchmark configuration twice.
inline std::vector<long> SmokeSizes(std::initializer_list<long> sizes,
                                    long cap = 2000) {
  std::vector<long> out;
  for (long n : sizes) {
    const long capped = SmokeCapped(n, cap);
    if (std::find(out.begin(), out.end(), capped) == out.end()) {
      out.push_back(capped);
    }
  }
  return out;
}

}  // namespace cbir_bench

#endif  // CBIR_BENCH_MICRO_SMOKE_H_
