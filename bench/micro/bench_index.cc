// Micro-benchmarks for the index subsystem: exact exhaustive top-k retrieval
// versus the signature index's Hamming-candidate + exact-rerank path, with
// the measured recall@50 attached to every approximate timing so speedups
// are never quoted without their quality cost.
//
// Before/after pairs: BM_ExactIndexTop50/<n> is the "before" for
// BM_SignatureIndexTop50/<n>/<bits>.
#include <benchmark/benchmark.h>

#include <utility>

#include "index/exact_index.h"
#include "index/signature_index.h"
#include "retrieval/evaluator.h"
#include "retrieval/synthetic_features.h"
#include "smoke.h"

namespace {

using namespace cbir;

constexpr size_t kDims = 36;  // the paper's visual feature width

// Clustered corpus shaped like category image features: well-separated
// Gaussian centers (one per ~100 rows) with tight within-cluster noise.
la::Matrix ClusteredCorpus(size_t n, uint64_t seed) {
  return retrieval::ClusteredFeatures(n, kDims, n < 100 ? 1 : n / 100, seed);
}

la::Vec ProbeQuery(const la::Matrix& corpus, size_t i) {
  return corpus.Row((i * 9973) % corpus.rows());
}

void BM_ExactIndexTop50(benchmark::State& state) {
  const la::Matrix corpus =
      ClusteredCorpus(static_cast<size_t>(state.range(0)), 1);
  retrieval::ExactIndex index;
  index.Build(corpus);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(ProbeQuery(corpus, i++), 50));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void ExactTop50Args(benchmark::internal::Benchmark* b) {
  for (long n : cbir_bench::SmokeSizes({20000, 100000})) b->Arg(n);
}
BENCHMARK(BM_ExactIndexTop50)->Apply(ExactTop50Args);

void BM_SignatureIndexTop50(benchmark::State& state) {
  const la::Matrix corpus =
      ClusteredCorpus(static_cast<size_t>(state.range(0)), 1);
  retrieval::SignatureIndexOptions options;
  options.bits = static_cast<int>(state.range(1));
  retrieval::SignatureIndex index(options);
  index.Build(corpus);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(ProbeQuery(corpus, i++), 50));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));

  // Quality of this configuration, measured outside the timed loop against
  // the exhaustive ranking (20 probes).
  retrieval::ExactIndex exact;
  exact.Build(corpus);
  double recall = 0.0;
  const int probes = 20;
  for (int q = 0; q < probes; ++q) {
    const la::Vec query = ProbeQuery(corpus, static_cast<size_t>(q));
    recall += retrieval::RecallAtK(index.Query(query, 50),
                                   exact.Query(query, 50), 50);
  }
  state.counters["recall_at_50"] = recall / probes;
  state.counters["recall_proxy"] = index.stats().recall_proxy;
  state.counters["candidates"] =
      static_cast<double>(50 * options.candidate_factor);
}
// Size/bits pairs, deduped after smoke capping collapses the sizes.
void DedupedSizeBitsArgs(benchmark::internal::Benchmark* b,
                         std::initializer_list<std::pair<long, long>> cfgs) {
  std::vector<std::pair<long, long>> seen;
  for (const auto& [n, bits] : cfgs) {
    const std::pair<long, long> cfg{cbir_bench::SmokeCapped(n), bits};
    if (std::find(seen.begin(), seen.end(), cfg) == seen.end()) {
      seen.push_back(cfg);
      b->Args({cfg.first, cfg.second});
    }
  }
}

void SignatureTop50Args(benchmark::internal::Benchmark* b) {
  DedupedSizeBitsArgs(
      b, {{20000, 128}, {20000, 256}, {20000, 512}, {100000, 256}});
}
BENCHMARK(BM_SignatureIndexTop50)->Apply(SignatureTop50Args);

void BM_SignatureIndexBuild(benchmark::State& state) {
  const la::Matrix corpus =
      ClusteredCorpus(static_cast<size_t>(state.range(0)), 2);
  retrieval::SignatureIndexOptions options;
  options.bits = static_cast<int>(state.range(1));
  retrieval::SignatureIndex index(options);
  for (auto _ : state) {
    index.Build(corpus);
    benchmark::DoNotOptimize(index.signatures().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void SignatureBuildArgs(benchmark::internal::Benchmark* b) {
  DedupedSizeBitsArgs(b, {{20000, 256}, {100000, 256}});
}
BENCHMARK(BM_SignatureIndexBuild)->Apply(SignatureBuildArgs);

void BM_SignatureIndexQueryBatch(benchmark::State& state) {
  // 64 queries per iteration, fanned across threads by QueryBatch.
  const la::Matrix corpus =
      ClusteredCorpus(static_cast<size_t>(state.range(0)), 3);
  retrieval::SignatureIndex index(retrieval::SignatureIndexOptions{});
  index.Build(corpus);
  const size_t batch = 64;
  la::Matrix queries(batch, kDims);
  for (size_t q = 0; q < batch; ++q) queries.SetRow(q, ProbeQuery(corpus, q));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.QueryBatch(queries, 50));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_SignatureIndexQueryBatch)->Arg(cbir_bench::SmokeCapped(20000));

}  // namespace
