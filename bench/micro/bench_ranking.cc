// Micro-benchmarks for corpus ranking: Euclidean distance scans and
// score-based top-K selection at several corpus sizes.
#include <benchmark/benchmark.h>

#include "retrieval/ranker.h"
#include "smoke.h"
#include "util/rng.h"

namespace {

using namespace cbir;

la::Matrix RandomCorpus(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(n, dims);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dims; ++c) m.At(r, c) = rng.Gaussian();
  }
  return m;
}

void BM_EuclideanFullRank(benchmark::State& state) {
  const la::Matrix corpus =
      RandomCorpus(static_cast<size_t>(state.range(0)), 36, 1);
  const la::Vec query = corpus.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::RankByEuclidean(corpus, query));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EuclideanFullRank)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_EuclideanTopK(benchmark::State& state) {
  const la::Matrix corpus = RandomCorpus(20000, 36, 2);
  const la::Vec query = corpus.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::RankByEuclidean(
        corpus, query, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EuclideanTopK)->Arg(20)->Arg(100)->Arg(1000);

void BM_EuclideanTopKLargeCorpus(benchmark::State& state) {
  // Million-image corpus scan + top-20: the production-scale retrieval path
  // (parallel blocked distance scan, nth_element selection).
  const la::Matrix corpus =
      RandomCorpus(static_cast<size_t>(state.range(0)), 36, 5);
  const la::Vec query = corpus.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::RankByEuclidean(corpus, query, 20));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void LargeCorpusArgs(benchmark::internal::Benchmark* b) {
  for (long n : cbir_bench::SmokeSizes({100000, 1000000})) b->Arg(n);
}
BENCHMARK(BM_EuclideanTopKLargeCorpus)->Apply(LargeCorpusArgs);

void BM_DistanceScan(benchmark::State& state) {
  const la::Matrix corpus =
      RandomCorpus(static_cast<size_t>(state.range(0)), 36, 3);
  const la::Vec query = corpus.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::AllSquaredDistances(corpus, query));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistanceScan)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_ScoreRankWithTiebreak(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> scores(n), dists(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = rng.Gaussian();
    dists[i] = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::RankByScoreDesc(scores, dists));
  }
}
BENCHMARK(BM_ScoreRankWithTiebreak)->Arg(1000)->Arg(5000);

}  // namespace
