// Ablation: unlabeled-sample selection strategy for the coupled SVM.
// The paper (Sections 5 and 6.5) reports that the active-learning choice
// (samples closest to the boundary) "did not achieve promising improvements"
// while the max/min combined-distance strategy works well. This bench sweeps
// the three implemented strategies.
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;
  using cbir::core::SelectionStrategy;

  const PaperRunConfig config = AblationConfig();
  const PaperRunData data = BuildRunData(config);

  cbir::TablePrinter table({"selection", "P@20", "P@50", "P@100", "MAP"});
  for (SelectionStrategy strategy :
       {SelectionStrategy::kMostSimilar, SelectionStrategy::kMaxMin,
        SelectionStrategy::kBoundaryClosest, SelectionStrategy::kRandom}) {
    PaperRunConfig run = config;
    run.csvm.selection = strategy;
    const auto schemes = std::vector<std::shared_ptr<
        cbir::core::FeedbackScheme>>{
        cbir::core::MakeScheme("LRF-CSVM", data.scheme_options, run.csvm)
            .value()};
    const auto result = RunPaper(data, run, schemes);
    const auto& s = result.schemes[0];
    table.AddRow({cbir::core::SelectionStrategyToString(strategy),
                  cbir::FormatDouble(s.precision[0], 3),
                  cbir::FormatDouble(s.precision[3], 3),
                  cbir::FormatDouble(s.precision[8], 3),
                  cbir::FormatDouble(s.map, 3)});
  }

  std::cout << "=== Ablation: unlabeled-selection strategy (LRF-CSVM) ===\n";
  table.Print(std::cout);
  std::cout << "\nPaper reference (Section 6.5): 'choose unlabeled images "
               "closest to the positive labeled images for half the samples, "
               "and those closest to the negative labeled images for the "
               "other half' (= most-similar); max-min is Fig. 1's literal "
               "pseudo-code; boundary-closest (active learning) was tried by "
               "the authors and found unpromising.\n";
  return 0;
}
