// Ablation: N' — the number of unlabeled samples engaged by the coupled
// SVM (paper Section 5). N' = 0 disables transduction entirely (the coupled
// objective degenerates to two independent weighted SVMs on the labeled
// set); larger N' increases both the transductive signal and the risk of
// pseudo-label noise.
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = AblationConfig();
  const PaperRunData data = BuildRunData(config);

  cbir::TablePrinter table({"N'", "P@20", "P@50", "P@100", "MAP"});
  for (int n_prime : {0, 10, 20, 40, 80}) {
    PaperRunConfig run = config;
    run.csvm.n_prime = n_prime;
    const auto schemes = std::vector<std::shared_ptr<
        cbir::core::FeedbackScheme>>{
        cbir::core::MakeScheme("LRF-CSVM", data.scheme_options, run.csvm)
            .value()};
    const auto result = RunPaper(data, run, schemes);
    const auto& s = result.schemes[0];
    table.AddRow({std::to_string(n_prime),
                  cbir::FormatDouble(s.precision[0], 3),
                  cbir::FormatDouble(s.precision[3], 3),
                  cbir::FormatDouble(s.precision[8], 3),
                  cbir::FormatDouble(s.map, 3)});
  }

  std::cout << "=== Ablation: number of unlabeled samples N' (LRF-CSVM) "
               "===\n";
  table.Print(std::cout);
  std::cout << "\nPaper reference: Fig. 1 uses N' unlabeled samples split "
               "half max-distance / half min-distance; the paper runs "
               "N' = 20 and leaves the selection size open.\n";
  return 0;
}
