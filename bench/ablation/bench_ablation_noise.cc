// Ablation: label noise in the collected user-feedback log.
// The paper (Section 6.3) collected logs from real users and notes that "a
// certain amount of noise is inevitable" but does not quantify its impact;
// this bench sweeps the simulated flip rate and reports how each log-based
// scheme degrades (RF-SVM is the noise-free reference since it ignores the
// log).
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;

  const PaperRunConfig base = AblationConfig();
  // Build the corpus once; rebuild only the logs per noise level.
  PaperRunConfig config = base;
  PaperRunData data = BuildRunData(config);

  cbir::TablePrinter table(
      {"noise", "RF-SVM MAP", "LRF-2SVMs MAP", "LRF-CSVM MAP"});
  for (double noise : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    cbir::logdb::LogCollectionOptions log_options;
    log_options.num_sessions = config.num_sessions;
    log_options.session_size = config.session_size;
    log_options.user.noise_rate = noise;
    log_options.seed = config.log_seed;
    const auto store = cbir::logdb::CollectLogs(
        data.db->features(), data.db->categories(), log_options);
    data.log_features =
        store.BuildMatrix(data.db->num_images()).ToDenseMatrix();
    data.scheme_options =
        cbir::core::MakeDefaultSchemeOptions(*data.db, &data.log_features);

    std::vector<std::shared_ptr<cbir::core::FeedbackScheme>> schemes{
        cbir::core::MakeScheme("RF-SVM", data.scheme_options).value(),
        cbir::core::MakeScheme("LRF-2SVMs", data.scheme_options).value(),
        cbir::core::MakeScheme("LRF-CSVM", data.scheme_options, config.csvm)
            .value()};
    const auto result = RunPaper(data, config, schemes);
    table.AddRow({cbir::FormatDouble(noise, 2),
                  cbir::FormatDouble(result.schemes[0].map, 3),
                  cbir::FormatDouble(result.schemes[1].map, 3),
                  cbir::FormatDouble(result.schemes[2].map, 3)});
  }

  std::cout << "=== Ablation: user-log label noise ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: RF-SVM is flat (no log); the log-based "
               "schemes decay as noise grows, staying above RF-SVM at the "
               "paper's ~10% regime.\n";
  return 0;
}
