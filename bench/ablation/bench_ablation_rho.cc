// Ablation: the unlabeled-data regularizer rho of the coupled SVM (Eq. 1).
// The paper (Section 6.5) notes "the choice of parameter rho is also
// important" and leaves the optimal setting open. This bench sweeps the
// final annealed rho.
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = AblationConfig();
  const PaperRunData data = BuildRunData(config);

  cbir::TablePrinter table({"rho", "P@20", "P@50", "P@100", "MAP"});
  for (double rho : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    PaperRunConfig run = config;
    run.csvm.csvm.rho = rho;
    const auto schemes = std::vector<std::shared_ptr<
        cbir::core::FeedbackScheme>>{
        cbir::core::MakeScheme("LRF-CSVM", data.scheme_options, run.csvm)
            .value()};
    const auto result = RunPaper(data, run, schemes);
    const auto& s = result.schemes[0];
    table.AddRow({cbir::FormatDouble(rho, 2),
                  cbir::FormatDouble(s.precision[0], 3),
                  cbir::FormatDouble(s.precision[3], 3),
                  cbir::FormatDouble(s.precision[8], 3),
                  cbir::FormatDouble(s.map, 3)});
  }

  std::cout << "=== Ablation: coupled-SVM rho (unlabeled weight) ===\n";
  table.Print(std::cout);
  std::cout << "\nPaper reference (Section 6.5): whether an optimal rho "
               "exists is posed as an open question; small rho should "
               "behave like LRF-2SVMs (unlabeled data ignored), large rho "
               "risks letting pseudo-labels dominate.\n";
  return 0;
}
