#ifndef CBIR_BENCH_ABLATION_ABLATION_COMMON_H_
#define CBIR_BENCH_ABLATION_ABLATION_COMMON_H_

#include "paper/harness.h"

namespace cbir::bench {

/// Reduced-size run used by the ablation benches so each sweep point stays
/// cheap: 20 categories x 50 images, 100 log sessions, 80 queries. The
/// qualitative effects survive the downscaling; the headline tables use the
/// full paper configuration.
inline PaperRunConfig AblationConfig() {
  PaperRunConfig config = Config20Cat();
  config.images_per_category = 50;
  config.num_sessions = 100;
  config.num_queries = 80;
  return config;
}

}  // namespace cbir::bench

#endif  // CBIR_BENCH_ABLATION_ABLATION_COMMON_H_
