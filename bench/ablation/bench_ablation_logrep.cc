// Ablation: log-vector representation and log-side kernel.
// Two documented deviations from the paper's experimental setup are swept
// here against the paper-literal configuration:
//   1. negative-mark weight beta (Rocchio-style down-weighting; the paper
//      uses the raw +-1 matrix, i.e. beta = 1);
//   2. log-side kernel: linear (the paper's Section 4 u'R formulation)
//      versus RBF (what the paper's experiments used).
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;

  PaperRunConfig config = AblationConfig();
  PaperRunData data = BuildRunData(config);

  // Rebuild the raw relevance matrix once; re-materialize per beta.
  cbir::logdb::LogCollectionOptions log_options;
  log_options.num_sessions = config.num_sessions;
  log_options.session_size = config.session_size;
  log_options.user.noise_rate = config.log_noise;
  log_options.seed = config.log_seed;
  const auto store = cbir::logdb::CollectLogs(
      data.db->features(), data.db->categories(), log_options);
  const auto matrix = store.BuildMatrix(data.db->num_images());

  cbir::TablePrinter table(
      {"log kernel", "beta", "LRF-2SVMs MAP", "LRF-CSVM MAP"});
  for (const bool linear : {true, false}) {
    for (double beta : {1.0, 0.5, 0.25, 0.0}) {
      data.log_features = matrix.ToDenseMatrix(beta);
      data.scheme_options =
          cbir::core::MakeDefaultSchemeOptions(*data.db, &data.log_features);
      if (!linear) {
        data.scheme_options.log_kernel.type = cbir::svm::KernelType::kRbf;
        data.scheme_options.c_log = 10.0;
      }
      std::vector<std::shared_ptr<cbir::core::FeedbackScheme>> schemes{
          cbir::core::MakeScheme("LRF-2SVMs", data.scheme_options).value(),
          cbir::core::MakeScheme("LRF-CSVM", data.scheme_options,
                                 config.csvm)
              .value()};
      const auto result = RunPaper(data, config, schemes);
      table.AddRow({linear ? "linear" : "rbf", cbir::FormatDouble(beta, 2),
                    cbir::FormatDouble(result.schemes[0].map, 3),
                    cbir::FormatDouble(result.schemes[1].map, 3)});
    }
  }

  std::cout << "=== Ablation: log representation (negative-mark weight, "
               "kernel) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: the linear session-weighting kernel beats "
               "RBF on sparse ternary log vectors, and down-weighting "
               "negative marks (beta ~ 0.25-0.5) beats the raw +-1 matrix — "
               "positive marks carry the category signal, negative marks "
               "mostly encode 'not this particular concept'.\n";
  return 0;
}
