// Ablation: volume of collected log sessions.
// The paper (Section 6.3) uses 150 sessions and argues the algorithm "can
// work well even with limited log sessions"; this bench sweeps the number
// of sessions available to the log-based schemes.
#include <iostream>

#include "ablation/ablation_common.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cbir::bench;

  PaperRunConfig config = AblationConfig();
  config.num_sessions = 300;  // collect the maximum once, then truncate
  PaperRunData data = BuildRunData(config);

  // Keep the full store around for truncation.
  cbir::logdb::LogCollectionOptions log_options;
  log_options.num_sessions = 300;
  log_options.session_size = config.session_size;
  log_options.user.noise_rate = config.log_noise;
  log_options.seed = config.log_seed;
  const auto store = cbir::logdb::CollectLogs(
      data.db->features(), data.db->categories(), log_options);

  cbir::TablePrinter table(
      {"sessions", "coverage", "LRF-2SVMs MAP", "LRF-CSVM MAP"});
  for (int sessions : {25, 50, 100, 150, 300}) {
    const auto matrix = store.BuildMatrix(data.db->num_images(), sessions);
    data.log_features = matrix.ToDenseMatrix();
    data.scheme_options =
        cbir::core::MakeDefaultSchemeOptions(*data.db, &data.log_features);

    std::vector<std::shared_ptr<cbir::core::FeedbackScheme>> schemes{
        cbir::core::MakeScheme("LRF-2SVMs", data.scheme_options).value(),
        cbir::core::MakeScheme("LRF-CSVM", data.scheme_options, config.csvm)
            .value()};
    const auto result = RunPaper(data, config, schemes);
    table.AddRow({std::to_string(sessions),
                  std::to_string(matrix.CoveredImages()) + "/" +
                      std::to_string(data.db->num_images()),
                  cbir::FormatDouble(result.schemes[0].map, 3),
                  cbir::FormatDouble(result.schemes[1].map, 3)});
  }

  std::cout << "=== Ablation: log volume (number of sessions) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: MAP grows with session count and begins "
               "to saturate once most frequently-retrieved images carry "
               "marks; gains persist even at 25-50 sessions (the paper's "
               "'limited log' claim).\n";
  return 0;
}
