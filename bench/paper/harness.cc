#include "paper/harness.h"

#include <iostream>

#include "core/scheme_factory.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cbir::bench {

PaperRunConfig Config20Cat() {
  PaperRunConfig config;
  config.num_categories = 20;
  config.corpus_seed = 42;
  config.log_seed = 7;
  config.query_seed = 123;
  return config;
}

PaperRunConfig Config50Cat() {
  PaperRunConfig config;
  config.num_categories = 50;
  config.corpus_seed = 43;
  config.log_seed = 8;
  config.query_seed = 321;
  return config;
}

PaperRunData BuildRunData(const PaperRunConfig& config) {
  Stopwatch watch;
  retrieval::DatabaseOptions db_options;
  db_options.corpus.num_categories = config.num_categories;
  db_options.corpus.images_per_category = config.images_per_category;
  db_options.corpus.width = config.image_size;
  db_options.corpus.height = config.image_size;
  db_options.corpus.seed = config.corpus_seed;

  std::cerr << "[harness] building " << config.num_categories
            << "-category corpus ("
            << config.num_categories * config.images_per_category
            << " images, " << config.image_size << "x" << config.image_size
            << ") and extracting features..." << std::endl;
  PaperRunData data;
  data.db = std::make_unique<retrieval::ImageDatabase>(
      retrieval::ImageDatabase::Build(db_options));
  std::cerr << "[harness]   done in " << watch.ElapsedSeconds() << "s"
            << std::endl;

  watch.Restart();
  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = config.num_sessions;
  log_options.session_size = config.session_size;
  log_options.user.noise_rate = config.log_noise;
  log_options.seed = config.log_seed;
  const logdb::LogStore store = logdb::CollectLogs(
      data.db->features(), data.db->categories(), log_options);
  const logdb::RelevanceMatrix matrix =
      store.BuildMatrix(data.db->num_images());
  data.log_features = matrix.ToDenseMatrix();
  std::cerr << "[harness] collected " << matrix.num_sessions()
            << " log sessions covering " << matrix.CoveredImages() << "/"
            << data.db->num_images() << " images ("
            << matrix.PositiveCount() << " positive / "
            << matrix.NegativeCount() << " negative marks) in "
            << watch.ElapsedSeconds() << "s" << std::endl;

  data.scheme_options =
      core::MakeDefaultSchemeOptions(*data.db, &data.log_features);
  return data;
}

core::ExperimentResult RunPaper(
    const PaperRunData& data, const PaperRunConfig& config,
    const std::vector<std::shared_ptr<core::FeedbackScheme>>& schemes) {
  Stopwatch watch;
  core::ExperimentOptions options;
  options.num_queries = config.num_queries;
  options.num_labeled = config.num_labeled;
  options.seed = config.query_seed;
  std::cerr << "[harness] running " << options.num_queries << " queries x "
            << schemes.size() << " schemes..." << std::endl;
  const core::ExperimentResult result =
      core::RunExperiment(*data.db, &data.log_features, schemes, options);
  std::cerr << "[harness]   done in " << watch.ElapsedSeconds() << "s"
            << std::endl;
  return result;
}

std::vector<std::shared_ptr<core::FeedbackScheme>> PaperSchemes(
    const PaperRunData& data, const PaperRunConfig& config) {
  return core::MakePaperSchemes(data.scheme_options, config.csvm);
}

void WriteSeriesCsv(const core::ExperimentResult& result,
                    const std::string& path) {
  std::vector<std::string> header{"scope"};
  for (const auto& s : result.schemes) header.push_back(s.name);
  CsvWriter csv(header);
  for (size_t i = 0; i < result.scopes.size(); ++i) {
    std::vector<double> row{static_cast<double>(result.scopes[i])};
    for (const auto& s : result.schemes) row.push_back(s.precision[i]);
    csv.AddNumericRow(row);
  }
  const Status status = csv.WriteToFile(path);
  if (!status.ok()) {
    CBIR_LOG(Warning) << "could not write " << path << ": "
                      << status.ToString();
  } else {
    std::cerr << "[harness] series written to " << path << std::endl;
  }
}

void PrintPaperReference(const std::string& title,
                         const std::vector<std::string>& lines) {
  std::cout << "\n" << title << "\n";
  for (const std::string& line : lines) std::cout << "  " << line << "\n";
  std::cout << std::endl;
}

}  // namespace cbir::bench
