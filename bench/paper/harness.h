#ifndef CBIR_BENCH_PAPER_HARNESS_H_
#define CBIR_BENCH_PAPER_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/feedback_scheme.h"
#include "core/lrf_csvm_scheme.h"
#include "la/matrix.h"
#include "logdb/simulated_user.h"
#include "retrieval/image_database.h"

namespace cbir::bench {

/// \brief Everything that parameterizes one paper experiment run.
struct PaperRunConfig {
  /// Corpus: the paper's 20-Category / 50-Category datasets (100 images per
  /// category from COREL; here the synthetic stand-in).
  int num_categories = 20;
  int images_per_category = 100;
  int image_size = 96;
  uint64_t corpus_seed = 42;

  /// Log collection (paper Section 6.3): 150 sessions of 20 judged images.
  int num_sessions = 150;
  int session_size = 20;
  double log_noise = 0.10;
  uint64_t log_seed = 7;

  /// Evaluation protocol (paper Section 6.4).
  int num_queries = 200;
  int num_labeled = 20;
  uint64_t query_seed = 123;

  /// LRF-CSVM knobs (paper Fig. 1).
  core::LrfCsvmOptions csvm;
};

/// The two dataset presets of the paper.
PaperRunConfig Config20Cat();
PaperRunConfig Config50Cat();

/// \brief Materialized corpus + log matrix for one run.
struct PaperRunData {
  std::unique_ptr<retrieval::ImageDatabase> db;
  la::Matrix log_features;
  core::SchemeOptions scheme_options;
};

/// Builds the corpus, extracts features, replays the log-collection
/// protocol and derives default scheme options. Prints progress to stderr.
PaperRunData BuildRunData(const PaperRunConfig& config);

/// Runs the Section 6.4 evaluation over the given schemes.
core::ExperimentResult RunPaper(const PaperRunData& data,
                                const PaperRunConfig& config,
                                const std::vector<std::shared_ptr<
                                    core::FeedbackScheme>>& schemes);

/// Convenience: the paper's four schemes with this run's options.
std::vector<std::shared_ptr<core::FeedbackScheme>> PaperSchemes(
    const PaperRunData& data, const PaperRunConfig& config);

/// Writes the per-scope precision series of every scheme as CSV
/// (columns: scope, one column per scheme) into `path`; logs a warning on
/// I/O failure instead of aborting the harness.
void WriteSeriesCsv(const core::ExperimentResult& result,
                    const std::string& path);

/// Prints the paper's reference numbers next to ours, for EXPERIMENTS.md.
void PrintPaperReference(const std::string& title,
                         const std::vector<std::string>& lines);

}  // namespace cbir::bench

#endif  // CBIR_BENCH_PAPER_HARNESS_H_
