// Regenerates Table 1 of the paper: quantitative evaluation of Euclidean,
// RF-SVM, LRF-2SVMs and LRF-CSVM on the 20-Category dataset (precision at
// top 20..100 plus MAP, with improvement percentages over RF-SVM).
#include <iostream>

#include "paper/harness.h"

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = Config20Cat();
  const PaperRunData data = BuildRunData(config);
  const cbir::core::ExperimentResult result =
      RunPaper(data, config, PaperSchemes(data, config));

  std::cout << "=== Table 1: quantitative evaluation on the 20-Category "
               "dataset ===\n";
  std::cout << cbir::core::FormatPaperTable(result, /*baseline_column=*/1);
  WriteSeriesCsv(result, "table1_20cat.csv");

  PrintPaperReference(
      "Paper reference (Hoi, Lyu & Jin, ICDE'05, Table 1; COREL corpus):",
      {
          "#TOP  Euclidean  RF-SVM  LRF-2SVMs        LRF-CSVM",
          "20    0.398      0.491   0.603 (+22.9%)   0.699 (+42.4%)",
          "50    0.287      0.379   0.426 (+12.5%)   0.484 (+27.8%)",
          "100   0.221      0.289   0.310 (+7.2%)    0.336 (+16.1%)",
          "MAP   0.283      0.370   0.418 (+12.3%)   0.471 (+25.9%)",
          "Expected shape: Euclidean < RF-SVM < LRF-2SVMs < LRF-CSVM at",
          "every scope; LRF-CSVM's improvement roughly double LRF-2SVMs'.",
      });
  return 0;
}
