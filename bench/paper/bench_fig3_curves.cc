// Regenerates Figure 3 of the paper: average precision versus the number of
// returned images (20..100) on the 20-Category dataset, four curves
// (Euclidean, RF-SVM, LRF-2SVMs, LRF-CSVM). Prints the series as an
// ASCII-art chart plus a plottable CSV.
#include <algorithm>
#include <iostream>

#include "paper/harness.h"
#include "util/string_util.h"

namespace {

// Renders a small ASCII line chart: one row per scheme per scope.
void PrintAsciiChart(const cbir::core::ExperimentResult& result) {
  double max_p = 0.0;
  for (const auto& s : result.schemes) {
    for (double p : s.precision) max_p = std::max(max_p, p);
  }
  const int width = 60;
  for (size_t i = 0; i < result.scopes.size(); ++i) {
    std::cout << "scope " << result.scopes[i] << "\n";
    for (const auto& s : result.schemes) {
      const int bar =
          static_cast<int>(s.precision[i] / (max_p + 1e-12) * width);
      std::cout << "  " << s.name
                << std::string(12 - std::min<size_t>(12, s.name.size()), ' ')
                << cbir::FormatDouble(s.precision[i], 3) << " "
                << std::string(static_cast<size_t>(bar), '#') << "\n";
    }
  }
}

}  // namespace

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = Config20Cat();
  const PaperRunData data = BuildRunData(config);
  const cbir::core::ExperimentResult result =
      RunPaper(data, config, PaperSchemes(data, config));

  std::cout << "=== Figure 3: average precision vs #returned images, "
               "20-Category dataset ===\n";
  PrintAsciiChart(result);
  WriteSeriesCsv(result, "fig3_20cat.csv");

  PrintPaperReference(
      "Paper reference (Fig. 3 shape):",
      {
          "All four curves decline monotonically from scope 20 to 100.",
          "Order at every scope: LRF-CSVM > LRF-2SVMs > RF-SVM > Euclidean.",
          "At scope 20 the curves span roughly 0.40 (Euclidean) to 0.70",
          "(LRF-CSVM); at scope 100 roughly 0.22 to 0.34.",
      });
  return 0;
}
