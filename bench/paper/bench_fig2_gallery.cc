// Regenerates Figure 2 of the paper ("some images selected from COREL image
// CDs"): renders a contact sheet of the synthetic stand-in corpus, one strip
// of examples per category, and writes PPM files for visual inspection.
#include <iostream>

#include "imaging/ppm_io.h"
#include "imaging/resize.h"
#include "imaging/synthetic.h"

int main() {
  using namespace cbir::imaging;

  SyntheticCorelOptions options;
  options.num_categories = 20;
  options.images_per_category = 100;
  options.width = 96;
  options.height = 96;
  options.seed = 42;
  const SyntheticCorel corpus(options);

  const int samples_per_category = 6;
  const int categories_shown = 10;
  const int cell = 96;
  Image sheet(cell * samples_per_category, cell * categories_shown,
              Rgb{255, 255, 255});

  std::cout << "=== Figure 2: sample images from the synthetic COREL "
               "stand-in ===\n";
  for (int c = 0; c < categories_shown; ++c) {
    std::cout << "category " << c << " (" << corpus.CategoryName(c)
              << "): theme hue=" << corpus.theme(c).base_hue
              << " shapes=" << corpus.theme(c).shape_kind
              << " bg=" << corpus.theme(c).bg_kind << "\n";
    for (int i = 0; i < samples_per_category; ++i) {
      Paste(&sheet, corpus.Generate(c, i * 7), i * cell, c * cell);
    }
  }

  const auto status = WritePpm(sheet, "fig2_gallery.ppm");
  if (status.ok()) {
    std::cout << "contact sheet written to fig2_gallery.ppm ("
              << sheet.width() << "x" << sheet.height() << ")\n";
  } else {
    std::cout << "could not write contact sheet: " << status.ToString()
              << "\n";
  }

  std::cout << "\nPaper reference: Fig. 2 shows sample COREL photos "
               "(antique, antelope, aviation, balloon, ...).\n"
               "Substitution: procedural category themes with controlled "
               "cross-category overlap (see DESIGN.md).\n";
  return 0;
}
