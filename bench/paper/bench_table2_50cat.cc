// Regenerates Table 2 of the paper: quantitative evaluation on the
// 50-Category dataset. The paper's finding: log-based schemes still win,
// but by less than on 20 categories (the corpus is more diverse, so the
// fixed 150-session log covers each concept more thinly).
#include <iostream>

#include "paper/harness.h"

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = Config50Cat();
  const PaperRunData data = BuildRunData(config);
  const cbir::core::ExperimentResult result =
      RunPaper(data, config, PaperSchemes(data, config));

  std::cout << "=== Table 2: quantitative evaluation on the 50-Category "
               "dataset ===\n";
  std::cout << cbir::core::FormatPaperTable(result, /*baseline_column=*/1);
  WriteSeriesCsv(result, "table2_50cat.csv");

  PrintPaperReference(
      "Paper reference (Hoi, Lyu & Jin, ICDE'05, Table 2; COREL corpus):",
      {
          "#TOP  Euclidean  RF-SVM  LRF-2SVMs        LRF-CSVM",
          "20    0.342      0.399   0.475 (+18.9%)   0.522 (+30.6%)",
          "50    0.244      0.296   0.331 (+11.7%)   0.355 (+19.8%)",
          "100   0.189      0.226   0.241 (+6.7%)    0.258 (+14.4%)",
          "MAP   0.242      0.291   0.325 (+11.2%)   0.351 (+20.0%)",
          "Expected shape: same ordering as Table 1, with smaller",
          "improvements than the 20-Category run (log diversity effect).",
      });
  return 0;
}
