// Regenerates Figure 4 of the paper: average precision versus the number of
// returned images (20..100) on the 50-Category dataset.
#include <algorithm>
#include <iostream>

#include "paper/harness.h"
#include "util/string_util.h"

namespace {

void PrintAsciiChart(const cbir::core::ExperimentResult& result) {
  double max_p = 0.0;
  for (const auto& s : result.schemes) {
    for (double p : s.precision) max_p = std::max(max_p, p);
  }
  const int width = 60;
  for (size_t i = 0; i < result.scopes.size(); ++i) {
    std::cout << "scope " << result.scopes[i] << "\n";
    for (const auto& s : result.schemes) {
      const int bar =
          static_cast<int>(s.precision[i] / (max_p + 1e-12) * width);
      std::cout << "  " << s.name
                << std::string(12 - std::min<size_t>(12, s.name.size()), ' ')
                << cbir::FormatDouble(s.precision[i], 3) << " "
                << std::string(static_cast<size_t>(bar), '#') << "\n";
    }
  }
}

}  // namespace

int main() {
  using namespace cbir::bench;

  const PaperRunConfig config = Config50Cat();
  const PaperRunData data = BuildRunData(config);
  const cbir::core::ExperimentResult result =
      RunPaper(data, config, PaperSchemes(data, config));

  std::cout << "=== Figure 4: average precision vs #returned images, "
               "50-Category dataset ===\n";
  PrintAsciiChart(result);
  WriteSeriesCsv(result, "fig4_50cat.csv");

  PrintPaperReference(
      "Paper reference (Fig. 4 shape):",
      {
          "Same ordering as Fig. 3 (LRF-CSVM on top, Euclidean at bottom),",
          "with all curves lower than the 20-Category run: at scope 20 the",
          "span is roughly 0.34 to 0.52, at scope 100 roughly 0.19 to 0.26.",
          "Relative gains of log-based schemes shrink versus Fig. 3.",
      });
  return 0;
}
