#ifndef CBIR_SVM_KERNEL_CACHE_H_
#define CBIR_SVM_KERNEL_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"

namespace cbir::svm {

/// \brief Counters describing one cache's lifetime behaviour; consumed by the
/// micro-benchmarks and surfaced through SmoSolution/TrainOutput.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t resident_rows = 0;  ///< rows currently materialized
  size_t capacity_rows = 0;  ///< slab capacity in rows

  double hit_rate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  /// Folds another solve's counters in: event counts sum; the row fields
  /// become high-water marks (an aggregate spans caches of different sizes,
  /// e.g. the coupled SVM's visual and log modalities).
  void Accumulate(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    resident_rows = std::max(resident_rows, other.resident_rows);
    capacity_rows = std::max(capacity_rows, other.capacity_rows);
  }
};

/// \brief Lazily computed, LRU-evicted kernel matrix rows backed by one
/// contiguous slab.
///
/// All rows live in a single flat buffer of `capacity * n` doubles with a
/// fixed row stride: no per-row heap allocation, no hash lookups on the hot
/// path (a dense row -> slot index table), and an intrusive doubly-linked LRU
/// threaded through slot-indexed arrays. GetRows(i, j) materializes both of
/// the SMO working pair's rows in one pass over the data and guarantees both
/// pointers stay valid together (the first row is pinned while the second is
/// fetched), so the solver never has to defensively copy a row.
class KernelCache {
 public:
  /// `data` must outlive the cache. `max_rows` bounds resident rows,
  /// clamped to [2, n]; 0 selects a default budget of all rows up to a
  /// 128 MiB slab (keeps corpus-scale n from eagerly allocating n*n).
  KernelCache(const la::Matrix& data, const KernelParams& params,
              size_t max_rows = 0);

  size_t n() const { return n_; }

  /// Returns kernel row i (K(x_i, x_t) for all t); the pointer is valid until
  /// the next GetRow/GetRows call.
  const double* GetRow(size_t i);

  /// Materializes rows i and j together; both pointers remain valid until the
  /// next GetRow/GetRows call. When both rows miss they are computed in a
  /// single pass over the data matrix.
  void GetRows(size_t i, size_t j, const double** ki, const double** kj);

  /// Diagonal entry K(x_i, x_i), precomputed for all i.
  double Diag(size_t i) const { return diag_[i]; }

  const CacheStats& stats() const { return stats_; }
  size_t hits() const { return stats_.hits; }
  size_t misses() const { return stats_.misses; }

 private:
  static constexpr int32_t kNoSlot = -1;

  double* SlotPtr(int32_t slot) {
    return slab_.data() + static_cast<size_t>(slot) * n_;
  }
  /// Moves `slot` to the MRU end of the intrusive list.
  void TouchSlot(int32_t slot);
  void UnlinkSlot(int32_t slot);
  void PushFrontSlot(int32_t slot);
  /// Returns a free slot, evicting the LRU resident row if needed;
  /// `pinned_slot` is never chosen as the victim.
  int32_t AcquireSlot(int32_t pinned_slot);
  /// Computes kernel row i into `out` (n doubles).
  void FillRow(size_t i, double* out) const;
  /// Computes rows i and j together in one pass over the data.
  void FillRowPair(size_t i, size_t j, double* out_i, double* out_j) const;

  const la::Matrix& data_;
  KernelParams params_;
  size_t n_;
  size_t capacity_;

  std::vector<double> slab_;           ///< capacity_ * n_ doubles
  std::vector<int32_t> slot_of_row_;   ///< n_ entries, kNoSlot if absent
  std::vector<int32_t> row_of_slot_;   ///< capacity_ entries
  std::vector<int32_t> lru_prev_;      ///< per slot
  std::vector<int32_t> lru_next_;      ///< per slot
  int32_t lru_head_ = kNoSlot;         ///< most recently used
  int32_t lru_tail_ = kNoSlot;         ///< least recently used
  int32_t next_free_slot_ = 0;         ///< slots [next_free, capacity) unused

  std::vector<double> diag_;
  CacheStats stats_;
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_KERNEL_CACHE_H_
