#ifndef CBIR_SVM_KERNEL_CACHE_H_
#define CBIR_SVM_KERNEL_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"

namespace cbir::svm {

/// \brief Counters describing one cache's lifetime behaviour; consumed by the
/// micro-benchmarks and surfaced through SmoSolution/TrainOutput.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t resident_rows = 0;  ///< rows currently materialized
  size_t capacity_rows = 0;  ///< slab capacity in rows

  double hit_rate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  /// Folds another solve's counters in: event counts sum; the row fields
  /// become high-water marks (an aggregate spans caches of different sizes,
  /// e.g. the coupled SVM's visual and log modalities).
  void Accumulate(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    resident_rows = std::max(resident_rows, other.resident_rows);
    capacity_rows = std::max(capacity_rows, other.capacity_rows);
  }
  /// Counters attributable to the window between two snapshots of one
  /// cache's lifetime stats: event counts subtract, the row fields report
  /// the current (`now`) values. This is how a solve sharing a long-lived
  /// cache reports only its own cache traffic.
  static CacheStats DeltaSince(const CacheStats& now,
                               const CacheStats& earlier) {
    CacheStats d = now;
    d.hits -= earlier.hits;
    d.misses -= earlier.misses;
    d.evictions -= earlier.evictions;
    return d;
  }
};

/// \brief Lazily computed, LRU-evicted kernel matrix rows backed by one
/// contiguous slab.
///
/// All rows live in a single flat buffer of `capacity * n` doubles with a
/// fixed row stride: no per-row heap allocation, no hash lookups on the hot
/// path (a dense row -> slot index table), and an intrusive doubly-linked LRU
/// threaded through slot-indexed arrays. GetRows(i, j) materializes both of
/// the SMO working pair's rows in one pass over the data and guarantees both
/// pointers stay valid together (the first row is pinned while the second is
/// fetched), so the solver never has to defensively copy a row.
///
/// The slab itself is allocated lazily on the first row fill (never
/// zero-filled — every row is fully written before it is read) and the
/// allocation is reused across any number of solves and Rebind() calls that
/// fit in it, so a cache shared along a solve chain pays for its slab once.
///
/// A KernelCache can outlive a single QP solve: construct it once, hand it
/// to any number of SmoSolver runs over the same (data, params) problem via
/// SmoOptions::shared_cache, and Rebind()/RebindRemapped() it when the
/// training set changes (e.g. between relevance-feedback rounds). Not
/// thread-safe: concurrent solves must not share one cache.
class KernelCache {
 public:
  /// `data` must outlive the cache (or its next Rebind). `max_rows` bounds
  /// resident rows, clamped to [2, n]; 0 selects a default budget of all
  /// rows up to a 128 MiB slab (keeps corpus-scale n from eagerly
  /// allocating n*n).
  KernelCache(const la::Matrix& data, const KernelParams& params,
              size_t max_rows = 0);

  size_t n() const { return n_; }
  /// The matrix this cache's rows are computed from. Solvers use pointer
  /// identity to verify a shared cache is bound to the matrix being trained
  /// on.
  const la::Matrix* data() const { return data_; }
  const KernelParams& params() const { return params_; }

  /// Rebinds the cache to a new problem, invalidating every resident row
  /// (the slab allocation is kept when the new problem fits in it). Use
  /// RebindRemapped() to carry rows over instead.
  void Rebind(const la::Matrix& data, const KernelParams& params,
              size_t max_rows = 0);

  /// Rebinds to a new problem that overlaps the current one:
  /// `new_to_old[i]` is the current-problem index of new sample i, or -1
  /// for a sample that is new. Resident rows of surviving samples are
  /// carried over — surviving kernel entries are copied, entries against
  /// new samples are computed — so only the genuinely new pairs cost kernel
  /// evaluations. LRU order is preserved across the remap. When `params`
  /// differ from the bound ones every row is invalid and this degrades to
  /// Rebind().
  void RebindRemapped(const la::Matrix& data, const KernelParams& params,
                      const std::vector<int32_t>& new_to_old,
                      size_t max_rows = 0);

  /// Returns kernel row i (K(x_i, x_t) for all t); the pointer is valid until
  /// the next GetRow/GetRows call.
  const double* GetRow(size_t i);

  /// Materializes rows i and j together; both pointers remain valid until the
  /// next GetRow/GetRows call. When both rows miss they are computed in a
  /// single pass over the data matrix.
  void GetRows(size_t i, size_t j, const double** ki, const double** kj);

  /// Diagonal entry K(x_i, x_i), precomputed for all i.
  double Diag(size_t i) const { return diag_[i]; }

  const CacheStats& stats() const { return stats_; }
  size_t hits() const { return stats_.hits; }
  size_t misses() const { return stats_.misses; }

  /// Bytes currently allocated by this cache (slab + diagonal + index
  /// tables). The slab — the dominant term — is only allocated once the
  /// first row is materialized. Feeds the serving layer's per-session
  /// memory accounting.
  size_t AllocatedBytes() const;

 private:
  static constexpr int32_t kNoSlot = -1;

  double* SlotPtr(int32_t slot) {
    return slab_.get() + static_cast<size_t>(slot) * n_;
  }
  /// (Re)binds the problem: sets data/params/capacity, resets the row
  /// tables and (when `compute_diag`) recomputes the diagonal — the remap
  /// path carries surviving diagonal entries instead. Keeps the slab
  /// allocation when it is large enough for the new capacity * n.
  void BindProblem(const la::Matrix& data, const KernelParams& params,
                   size_t max_rows, bool compute_diag = true);
  /// Allocates the slab on first use (uninitialized — rows are always fully
  /// written before they are read).
  void EnsureSlab();
  /// Moves `slot` to the MRU end of the intrusive list.
  void TouchSlot(int32_t slot);
  void UnlinkSlot(int32_t slot);
  void PushFrontSlot(int32_t slot);
  /// Returns a free slot, evicting the LRU resident row if needed;
  /// `pinned_slot` is never chosen as the victim.
  int32_t AcquireSlot(int32_t pinned_slot);
  /// Computes kernel row i into `out` (n doubles).
  void FillRow(size_t i, double* out) const;
  /// Computes rows i and j together in one pass over the data.
  void FillRowPair(size_t i, size_t j, double* out_i, double* out_j) const;

  const la::Matrix* data_;
  KernelParams params_;
  size_t n_;
  size_t capacity_;

  std::unique_ptr<double[]> slab_;     ///< capacity_ * n_ doubles, lazy
  size_t slab_doubles_ = 0;            ///< allocated slab size in doubles
  std::vector<int32_t> slot_of_row_;   ///< n_ entries, kNoSlot if absent
  std::vector<int32_t> row_of_slot_;   ///< capacity_ entries
  std::vector<int32_t> lru_prev_;      ///< per slot
  std::vector<int32_t> lru_next_;      ///< per slot
  int32_t lru_head_ = kNoSlot;         ///< most recently used
  int32_t lru_tail_ = kNoSlot;         ///< least recently used
  int32_t next_free_slot_ = 0;         ///< slots [next_free, capacity) unused

  std::vector<double> diag_;
  CacheStats stats_;
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_KERNEL_CACHE_H_
