#ifndef CBIR_SVM_KERNEL_CACHE_H_
#define CBIR_SVM_KERNEL_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"

namespace cbir::svm {

/// \brief Lazily computed, LRU-evicted kernel matrix rows.
///
/// The SMO solver touches kernel rows i and j each iteration; training sets
/// in relevance feedback are small (tens of samples) so rows usually all fit,
/// but the cache keeps memory bounded for the large-n micro-benchmarks.
class KernelCache {
 public:
  /// `data` must outlive the cache. `max_rows` bounds resident rows
  /// (0 = unlimited).
  KernelCache(const la::Matrix& data, const KernelParams& params,
              size_t max_rows = 0);

  size_t n() const { return n_; }

  /// Returns kernel row i (K(x_i, x_t) for all t); the reference is valid
  /// until the next GetRow call.
  const std::vector<double>& GetRow(size_t i);

  /// Diagonal entry K(x_i, x_i), precomputed for all i.
  double Diag(size_t i) const { return diag_[i]; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  void ComputeRow(size_t i, std::vector<double>* out) const;

  const la::Matrix& data_;
  KernelParams params_;
  size_t n_;
  size_t max_rows_;

  std::unordered_map<size_t, std::pair<std::vector<double>,
                                       std::list<size_t>::iterator>>
      rows_;
  std::list<size_t> lru_;  // front = most recent
  std::vector<double> diag_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_KERNEL_CACHE_H_
