#ifndef CBIR_SVM_MODEL_H_
#define CBIR_SVM_MODEL_H_

#include <iosfwd>
#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "svm/kernel.h"
#include "util/result.h"

namespace cbir::svm {

/// \brief A trained binary SVM decision function
///   f(x) = sum_s coeff_s * K(sv_s, x) + bias,
/// where coeff_s = alpha_s * y_s over the support vectors.
///
/// Models are value types: copyable, serializable, safe to use from multiple
/// threads concurrently (Decision is const).
class SvmModel {
 public:
  SvmModel() = default;
  SvmModel(KernelParams kernel, la::Matrix support_vectors,
           std::vector<double> coefficients, double bias);

  bool empty() const { return support_vectors_.rows() == 0; }
  size_t num_support_vectors() const { return support_vectors_.rows(); }
  const KernelParams& kernel() const { return kernel_; }
  double bias() const { return bias_; }
  const la::Matrix& support_vectors() const { return support_vectors_; }
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Signed decision value; the paper's `SVM_Dist`.
  double Decision(const la::Vec& x) const;

  /// Decision values for every row of `batch`.
  std::vector<double> DecisionBatch(const la::Matrix& batch) const;

  /// Predicted label in {+1, -1} (ties resolve to +1).
  double Predict(const la::Vec& x) const {
    return Decision(x) >= 0.0 ? 1.0 : -1.0;
  }

  /// Text serialization round-trip.
  void Save(std::ostream& os) const;
  static Result<SvmModel> Load(std::istream& is);

 private:
  KernelParams kernel_;
  la::Matrix support_vectors_;
  std::vector<double> coefficients_;  ///< alpha_s * y_s
  double bias_ = 0.0;
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_MODEL_H_
