#include "svm/kernel_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace cbir::svm {

KernelCache::KernelCache(const la::Matrix& data, const KernelParams& params,
                         size_t max_rows) {
  BindProblem(data, params, max_rows);
}

void KernelCache::BindProblem(const la::Matrix& data,
                              const KernelParams& params, size_t max_rows,
                              bool compute_diag) {
  data_ = &data;
  params_ = params;
  n_ = data.rows();
  CBIR_CHECK_GT(n_, 0u);
  // Default budget: all rows when they fit in kDefaultSlabBytes, otherwise
  // as many as fit — an unbounded default would eagerly allocate n*n doubles
  // (gigabytes for corpus-scale n). GetRows needs two simultaneously
  // resident rows, so the floor is 2.
  size_t budget = max_rows;
  if (budget == 0) {
    constexpr size_t kDefaultSlabBytes = size_t{128} << 20;
    budget = std::max<size_t>(kDefaultSlabBytes / (n_ * sizeof(double)), 2);
  }
  capacity_ = std::min(std::max<size_t>(budget, 2), n_);
  // The slab allocation survives rebinds that fit in it; it is only dropped
  // (and lazily re-allocated at the new size) when the problem outgrew it.
  if (slab_ != nullptr && slab_doubles_ < capacity_ * n_) {
    slab_.reset();
    slab_doubles_ = 0;
  }
  slot_of_row_.assign(n_, kNoSlot);
  row_of_slot_.assign(capacity_, kNoSlot);
  lru_prev_.assign(capacity_, kNoSlot);
  lru_next_.assign(capacity_, kNoSlot);
  lru_head_ = lru_tail_ = kNoSlot;
  next_free_slot_ = 0;
  stats_.resident_rows = 0;
  stats_.capacity_rows = capacity_;

  diag_.resize(n_);
  if (compute_diag) {
    for (size_t i = 0; i < n_; ++i) {
      diag_[i] = EvalKernelRow(params_, *data_, i, data_->Row(i));
    }
  }
}

void KernelCache::EnsureSlab() {
  if (slab_ != nullptr) return;
  slab_doubles_ = capacity_ * n_;
  // Deliberately uninitialized (value-init would zero-fill the whole slab
  // per solve): every slot is fully written by FillRow/FillRowPair or the
  // remap gather before any read.
  slab_ = std::unique_ptr<double[]>(new double[slab_doubles_]);
}

void KernelCache::Rebind(const la::Matrix& data, const KernelParams& params,
                         size_t max_rows) {
  BindProblem(data, params, max_rows);
}

void KernelCache::RebindRemapped(const la::Matrix& data,
                                 const KernelParams& params,
                                 const std::vector<int32_t>& new_to_old,
                                 size_t max_rows) {
  CBIR_CHECK_EQ(new_to_old.size(), data.rows());
  // Validate the whole map and invert it up front (a partial scan would let
  // out-of-range entries past the survivor found first reach raw indexing).
  const size_t old_n = n_;
  std::vector<int32_t> old_to_new(old_n, kNoSlot);
  bool any_survivor = false;
  if (params == params_) {
    for (size_t i = 0; i < new_to_old.size(); ++i) {
      const int32_t o = new_to_old[i];
      if (o < 0) continue;
      CBIR_CHECK_LT(static_cast<size_t>(o), old_n);
      old_to_new[o] = static_cast<int32_t>(i);
      any_survivor = any_survivor || slot_of_row_[o] != kNoSlot;
    }
  }
  if (!any_survivor) {
    // Different kernel or nothing resident to carry: plain invalidate (the
    // slab allocation is still reused when it fits).
    BindProblem(data, params, max_rows);
    return;
  }

  // Snapshot the current problem's state, then rebind the tables to the new
  // one. The old slab must stay alive while carried rows are gathered out of
  // it (the row stride changes with n).
  std::unique_ptr<double[]> old_slab = std::move(slab_);
  slab_doubles_ = 0;
  std::vector<int32_t> old_row_of_slot = std::move(row_of_slot_);
  std::vector<int32_t> old_lru_next = std::move(lru_next_);
  std::vector<double> old_diag = std::move(diag_);
  const int32_t old_head = lru_head_;

  BindProblem(data, params, max_rows, /*compute_diag=*/false);

  // Diagonal: surviving samples keep their entries; only new samples are
  // evaluated.
  for (size_t i = 0; i < n_; ++i) {
    const int32_t o = new_to_old[i];
    diag_[i] = o >= 0 ? old_diag[o]
                      : EvalKernelRow(params_, *data_, i, data_->Row(i));
  }

  // Surviving resident rows, most recently used first; rows beyond the new
  // capacity would be carried only to be evicted in the same pass, so they
  // are dropped here instead of paying the gather + new-pair evaluations.
  std::vector<int32_t> survivors;
  survivors.reserve(stats_.capacity_rows);
  for (int32_t slot = old_head; slot != kNoSlot; slot = old_lru_next[slot]) {
    if (old_to_new[old_row_of_slot[slot]] != kNoSlot) {
      survivors.push_back(slot);
      if (survivors.size() == capacity_) break;
    }
  }

  // Carry them least recently used first so PushFront reproduces the old
  // recency order.
  for (auto it = survivors.rbegin(); it != survivors.rend(); ++it) {
    const int32_t slot = *it;
    const int32_t new_row = old_to_new[old_row_of_slot[slot]];
    EnsureSlab();
    const int32_t new_slot = AcquireSlot(kNoSlot);
    double* dst = SlotPtr(new_slot);
    const double* src = old_slab.get() + static_cast<size_t>(slot) * old_n;
    const la::Vec xi = data_->Row(static_cast<size_t>(new_row));
    for (size_t t = 0; t < n_; ++t) {
      const int32_t o = new_to_old[t];
      // Surviving pair: the kernel value is unchanged, copy it. New pair:
      // K(x_new_row, x_t) = K(x_t, x_new_row) by symmetry.
      dst[t] = o >= 0 ? src[o] : EvalKernelRow(params_, *data_, t, xi);
    }
    slot_of_row_[new_row] = new_slot;
    row_of_slot_[new_slot] = new_row;
    ++stats_.resident_rows;
    PushFrontSlot(new_slot);
  }
}

size_t KernelCache::AllocatedBytes() const {
  return slab_doubles_ * sizeof(double) + diag_.capacity() * sizeof(double) +
         (slot_of_row_.capacity() + row_of_slot_.capacity() +
          lru_prev_.capacity() + lru_next_.capacity()) *
             sizeof(int32_t);
}

void KernelCache::UnlinkSlot(int32_t slot) {
  const int32_t prev = lru_prev_[slot];
  const int32_t next = lru_next_[slot];
  if (prev != kNoSlot) lru_next_[prev] = next;
  if (next != kNoSlot) lru_prev_[next] = prev;
  if (lru_head_ == slot) lru_head_ = next;
  if (lru_tail_ == slot) lru_tail_ = prev;
  lru_prev_[slot] = lru_next_[slot] = kNoSlot;
}

void KernelCache::PushFrontSlot(int32_t slot) {
  lru_prev_[slot] = kNoSlot;
  lru_next_[slot] = lru_head_;
  if (lru_head_ != kNoSlot) lru_prev_[lru_head_] = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNoSlot) lru_tail_ = slot;
}

void KernelCache::TouchSlot(int32_t slot) {
  if (lru_head_ == slot) return;
  UnlinkSlot(slot);
  PushFrontSlot(slot);
}

int32_t KernelCache::AcquireSlot(int32_t pinned_slot) {
  if (static_cast<size_t>(next_free_slot_) < capacity_) {
    return next_free_slot_++;
  }
  int32_t victim = lru_tail_;
  if (victim == pinned_slot) victim = lru_prev_[victim];
  CBIR_CHECK(victim != kNoSlot);
  UnlinkSlot(victim);
  slot_of_row_[row_of_slot_[victim]] = kNoSlot;
  row_of_slot_[victim] = kNoSlot;
  ++stats_.evictions;
  --stats_.resident_rows;
  return victim;
}

void KernelCache::FillRow(size_t i, double* out) const {
  EvalKernelRowBatch(params_, *data_, data_->RowPtr(i), out, 0, n_);
}

void KernelCache::FillRowPair(size_t i, size_t j, double* out_i,
                              double* out_j) const {
  // One pass over the data: each row x_t is loaded once and evaluated against
  // both x_i and x_j, halving memory traffic versus two separate fills.
  const double* xi = data_->RowPtr(i);
  const double* xj = data_->RowPtr(j);
  const size_t dims = data_->cols();
  switch (params_.type) {
    case KernelType::kLinear:
      for (size_t t = 0; t < n_; ++t) {
        const double* xt = data_->RowPtr(t);
        out_i[t] = la::DotN(xi, xt, dims);
        out_j[t] = la::DotN(xj, xt, dims);
      }
      return;
    case KernelType::kRbf:
      for (size_t t = 0; t < n_; ++t) {
        const double* xt = data_->RowPtr(t);
        out_i[t] = std::exp(-params_.gamma * la::SquaredDistanceN(xi, xt, dims));
        out_j[t] = std::exp(-params_.gamma * la::SquaredDistanceN(xj, xt, dims));
      }
      return;
    case KernelType::kPolynomial:
      for (size_t t = 0; t < n_; ++t) {
        const double* xt = data_->RowPtr(t);
        double base_i = params_.gamma * la::DotN(xi, xt, dims) + params_.coef0;
        double base_j = params_.gamma * la::DotN(xj, xt, dims) + params_.coef0;
        double vi = 1.0, vj = 1.0;
        for (int d = 0; d < params_.degree; ++d) {
          vi *= base_i;
          vj *= base_j;
        }
        out_i[t] = vi;
        out_j[t] = vj;
      }
      return;
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
}

const double* KernelCache::GetRow(size_t i) {
  CBIR_CHECK_LT(i, n_);
  int32_t slot = slot_of_row_[i];
  if (slot != kNoSlot) {
    ++stats_.hits;
    TouchSlot(slot);
    return SlotPtr(slot);
  }
  ++stats_.misses;
  EnsureSlab();
  slot = AcquireSlot(kNoSlot);
  FillRow(i, SlotPtr(slot));
  slot_of_row_[i] = slot;
  row_of_slot_[slot] = static_cast<int32_t>(i);
  ++stats_.resident_rows;
  PushFrontSlot(slot);
  return SlotPtr(slot);
}

void KernelCache::GetRows(size_t i, size_t j, const double** ki,
                          const double** kj) {
  CBIR_CHECK_LT(i, n_);
  CBIR_CHECK_LT(j, n_);
  if (i == j) {
    *ki = *kj = GetRow(i);
    return;
  }
  int32_t slot_i = slot_of_row_[i];
  int32_t slot_j = slot_of_row_[j];
  if (slot_i != kNoSlot && slot_j != kNoSlot) {
    stats_.hits += 2;
    TouchSlot(slot_j);
    TouchSlot(slot_i);
  } else if (slot_i == kNoSlot && slot_j == kNoSlot) {
    // Double miss: allocate both slots up front (pinning the first against
    // eviction by the second), then fill both rows in one data pass.
    stats_.misses += 2;
    EnsureSlab();
    slot_i = AcquireSlot(kNoSlot);
    slot_j = AcquireSlot(slot_i);
    FillRowPair(i, j, SlotPtr(slot_i), SlotPtr(slot_j));
    slot_of_row_[i] = slot_i;
    row_of_slot_[slot_i] = static_cast<int32_t>(i);
    slot_of_row_[j] = slot_j;
    row_of_slot_[slot_j] = static_cast<int32_t>(j);
    stats_.resident_rows += 2;
    PushFrontSlot(slot_j);
    PushFrontSlot(slot_i);
  } else {
    // Single miss: fetch the missing row while pinning the resident one.
    const bool missing_is_i = slot_i == kNoSlot;
    const size_t missing = missing_is_i ? i : j;
    int32_t pinned = missing_is_i ? slot_j : slot_i;
    ++stats_.hits;
    ++stats_.misses;
    TouchSlot(pinned);
    EnsureSlab();
    const int32_t slot = AcquireSlot(pinned);
    FillRow(missing, SlotPtr(slot));
    slot_of_row_[missing] = slot;
    row_of_slot_[slot] = static_cast<int32_t>(missing);
    ++stats_.resident_rows;
    PushFrontSlot(slot);
    if (missing_is_i) {
      slot_i = slot;
    } else {
      slot_j = slot;
    }
  }
  *ki = SlotPtr(slot_i);
  *kj = SlotPtr(slot_j);
}

}  // namespace cbir::svm
