#include "svm/kernel_cache.h"

#include "util/logging.h"

namespace cbir::svm {

KernelCache::KernelCache(const la::Matrix& data, const KernelParams& params,
                         size_t max_rows)
    : data_(data), params_(params), n_(data.rows()), max_rows_(max_rows) {
  CBIR_CHECK_GT(n_, 0u);
  diag_.resize(n_);
  for (size_t i = 0; i < n_; ++i) {
    diag_[i] = EvalKernelRow(params_, data_, i, data_.Row(i));
  }
}

void KernelCache::ComputeRow(size_t i, std::vector<double>* out) const {
  out->resize(n_);
  const la::Vec xi = data_.Row(i);
  for (size_t t = 0; t < n_; ++t) {
    (*out)[t] = EvalKernelRow(params_, data_, t, xi);
  }
}

const std::vector<double>& KernelCache::GetRow(size_t i) {
  CBIR_CHECK_LT(i, n_);
  auto it = rows_.find(i);
  if (it != rows_.end()) {
    ++hits_;
    lru_.erase(it->second.second);
    lru_.push_front(i);
    it->second.second = lru_.begin();
    return it->second.first;
  }
  ++misses_;
  if (max_rows_ > 0) {
    while (rows_.size() >= max_rows_ && !lru_.empty()) {
      const size_t victim = lru_.back();
      lru_.pop_back();
      rows_.erase(victim);
    }
  }
  std::vector<double> row;
  ComputeRow(i, &row);
  lru_.push_front(i);
  auto [ins, ok] =
      rows_.emplace(i, std::make_pair(std::move(row), lru_.begin()));
  CBIR_CHECK(ok);
  return ins->second.first;
}

}  // namespace cbir::svm
