#include "svm/smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "svm/kernel_cache.h"
#include "util/logging.h"

namespace cbir::svm {

namespace {
constexpr double kTau = 1e-12;
}  // namespace

SmoSolver::SmoSolver(const la::Matrix& data, std::vector<double> labels,
                     std::vector<double> c_bounds, const KernelParams& kernel,
                     const SmoOptions& options)
    : data_(data),
      y_(std::move(labels)),
      c_(std::move(c_bounds)),
      kernel_params_(kernel),
      options_(options),
      n_(data.rows()),
      cache_(data, kernel, options.cache_rows) {
  CBIR_CHECK_EQ(y_.size(), n_);
  CBIR_CHECK_EQ(c_.size(), n_);
}

bool SmoSolver::SelectWorkingSet(size_t* out_i, size_t* out_j) {
  // i: maximize -y_t * grad_t over I_up.
  double gmax = -std::numeric_limits<double>::infinity();
  double gmin = std::numeric_limits<double>::infinity();
  size_t i = n_;
  for (size_t t = 0; t < n_; ++t) {
    const bool in_up = (y_[t] > 0 && !IsUpperBound(t)) ||
                       (y_[t] < 0 && !IsLowerBound(t));
    if (in_up) {
      const double v = -y_[t] * grad_[t];
      if (v > gmax) {
        gmax = v;
        i = t;
      }
    }
  }
  if (i == n_) return false;

  const std::vector<double>& Ki = cache_.GetRow(i);

  // j: second-order selection among violating I_low members.
  size_t j = n_;
  double best_gain = std::numeric_limits<double>::infinity();  // minimize
  for (size_t t = 0; t < n_; ++t) {
    const bool in_low = (y_[t] > 0 && !IsLowerBound(t)) ||
                        (y_[t] < 0 && !IsUpperBound(t));
    if (!in_low) continue;
    const double v = -y_[t] * grad_[t];
    gmin = std::min(gmin, v);
    const double b_it = gmax - v;
    if (b_it <= 0.0) continue;  // not violating against i
    // Curvature along the feasible pair direction; the label signs cancel,
    // leaving ||phi(x_i) - phi(x_t)||^2 >= 0 for any Mercer kernel.
    double a_it = cache_.Diag(i) + cache_.Diag(t) - 2.0 * Ki[t];
    if (a_it <= 0.0) a_it = kTau;
    const double gain = -(b_it * b_it) / a_it;
    if (gain < best_gain) {
      best_gain = gain;
      j = t;
    }
  }

  if (j == n_ || gmax - gmin < options_.eps) return false;
  *out_i = i;
  *out_j = j;
  return true;
}

Result<SmoSolution> SmoSolver::Solve() {
  if (n_ == 0) return Status::InvalidArgument("SMO: empty training set");
  for (size_t t = 0; t < n_; ++t) {
    if (y_[t] != 1.0 && y_[t] != -1.0) {
      return Status::InvalidArgument("SMO: labels must be +1 or -1");
    }
    if (c_[t] <= 0.0) {
      return Status::InvalidArgument("SMO: non-positive C bound");
    }
  }

  alpha_.assign(n_, 0.0);
  grad_.assign(n_, -1.0);  // Q*0 - e

  const long max_iter =
      options_.max_iterations > 0
          ? options_.max_iterations
          : std::max<long>(10'000'000, 100 * static_cast<long>(n_));

  SmoSolution sol;
  long iter = 0;
  while (iter < max_iter) {
    size_t i, j;
    if (!SelectWorkingSet(&i, &j)) {
      sol.converged = true;
      break;
    }
    ++iter;

    const std::vector<double> Ki = cache_.GetRow(i);  // copy: j fetch may evict
    const std::vector<double>& Kj = cache_.GetRow(j);

    const double yi = y_[i], yj = y_[j];
    double a_ij = cache_.Diag(i) + cache_.Diag(j) - 2.0 * Ki[j];
    if (a_ij <= 0.0) a_ij = kTau;

    const double old_ai = alpha_[i];
    const double old_aj = alpha_[j];

    // Newton step along the feasible direction (LIBSVM update form).
    if (yi != yj) {
      const double delta = (-grad_[i] - grad_[j]) / a_ij;
      double diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0.0 && alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = diff;
      } else if (diff <= 0.0 && alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = -diff;
      }
      if (diff > c_[i] - c_[j] && alpha_[i] > c_[i]) {
        alpha_[i] = c_[i];
        alpha_[j] = c_[i] - diff;
      } else if (diff <= c_[i] - c_[j] && alpha_[j] > c_[j]) {
        alpha_[j] = c_[j];
        alpha_[i] = c_[j] + diff;
      }
    } else {
      const double delta = (grad_[i] - grad_[j]) / a_ij;
      double sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c_[i] && alpha_[i] > c_[i]) {
        alpha_[i] = c_[i];
        alpha_[j] = sum - c_[i];
      } else if (sum <= c_[i] && alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = sum;
      }
      if (sum > c_[j] && alpha_[j] > c_[j]) {
        alpha_[j] = c_[j];
        alpha_[i] = sum - c_[j];
      } else if (sum <= c_[j] && alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = sum;
      }
    }

    // Gradient maintenance: grad_t += Q_ti * dAi + Q_tj * dAj.
    const double d_ai = alpha_[i] - old_ai;
    const double d_aj = alpha_[j] - old_aj;
    if (d_ai == 0.0 && d_aj == 0.0) {
      // Numerically stuck pair; treat as converged to avoid spinning.
      sol.converged = true;
      break;
    }
    for (size_t t = 0; t < n_; ++t) {
      grad_[t] += y_[t] * (yi * Ki[t] * d_ai + yj * Kj[t] * d_aj);
    }
  }

  sol.alpha = alpha_;
  sol.bias = ComputeBias();
  sol.objective = ComputeObjective();
  sol.iterations = iter;
  if (iter >= max_iter) {
    CBIR_LOG(Warning) << "SMO hit iteration cap (" << max_iter << ")";
  }
  return sol;
}

double SmoSolver::ComputeBias() const {
  // For free SVs, y_i f(x_i) = 1 => b = y_i - (Qa)_i * y_i ... expressed via
  // grad: (Qa)_i = grad_i + 1, and f(x_i) - b = y_i * (grad_i + 1) ... use
  // the LIBSVM identity: for free i, b = -y_i * grad_i ... derived from
  // y_i f(x_i) = 1 with f(x_i) = sum_t a_t y_t K_ti + b and
  // grad_i = y_i * (f(x_i) - b) - 1.
  double sum = 0.0;
  int free_count = 0;
  for (size_t t = 0; t < n_; ++t) {
    if (!IsLowerBound(t) && !IsUpperBound(t)) {
      sum += -y_[t] * grad_[t];
      ++free_count;
    }
  }
  if (free_count > 0) return sum / free_count;

  // No free SVs: midpoint of the feasible interval.
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n_; ++t) {
    const double v = -y_[t] * grad_[t];
    const bool in_up = (y_[t] > 0 && !IsUpperBound(t)) ||
                       (y_[t] < 0 && !IsLowerBound(t));
    const bool in_low = (y_[t] > 0 && !IsLowerBound(t)) ||
                        (y_[t] < 0 && !IsUpperBound(t));
    if (in_up) lb = std::max(lb, v);
    if (in_low) ub = std::min(ub, v);
  }
  if (std::isinf(ub) && std::isinf(lb)) return 0.0;
  if (std::isinf(ub)) return lb;
  if (std::isinf(lb)) return ub;
  return (ub + lb) / 2.0;
}

double SmoSolver::ComputeObjective() const {
  double obj = 0.0;
  for (size_t t = 0; t < n_; ++t) {
    obj += alpha_[t] * (grad_[t] - 1.0);
  }
  return obj / 2.0;
}

}  // namespace cbir::svm
