#include "svm/smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svm/kernel_cache.h"
#include "util/logging.h"

namespace cbir::svm {

namespace {
constexpr double kTau = 1e-12;

/// Registry series of the solver core (cached once, wait-free after that).
/// Summed over every solve in the process: the per-solve numbers stay on
/// SmoSolution, these answer "where does serving time go" in aggregate.
struct SolverMetrics {
  obs::Counter* solves;
  obs::Counter* iterations;
  obs::Counter* shrink_passes;
  obs::Counter* gradient_reconstructions;
  obs::Counter* unconverged;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
};

const SolverMetrics& Metrics() {
  static const SolverMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    SolverMetrics m;
    m.solves = r.GetCounter("cbir_svm_solves_total");
    m.iterations = r.GetCounter("cbir_svm_iterations_total");
    m.shrink_passes = r.GetCounter("cbir_svm_shrink_passes_total");
    m.gradient_reconstructions =
        r.GetCounter("cbir_svm_gradient_reconstructions_total");
    m.unconverged = r.GetCounter("cbir_svm_unconverged_total");
    m.cache_hits = r.GetCounter("cbir_svm_kernel_cache_hits_total");
    m.cache_misses = r.GetCounter("cbir_svm_kernel_cache_misses_total");
    m.cache_evictions = r.GetCounter("cbir_svm_kernel_cache_evictions_total");
    return m;
  }();
  return metrics;
}
}  // namespace

SmoSolver::SmoSolver(const la::Matrix& data, std::vector<double> labels,
                     std::vector<double> c_bounds, const KernelParams& kernel,
                     const SmoOptions& options)
    : data_(data),
      y_(std::move(labels)),
      c_(std::move(c_bounds)),
      kernel_params_(kernel),
      options_(options),
      n_(data.rows()) {
  CBIR_CHECK_EQ(y_.size(), n_);
  CBIR_CHECK_EQ(c_.size(), n_);
}

Status SmoSolver::InitializeState() {
  alpha_.assign(n_, 0.0);
  grad_.assign(n_, -1.0);  // Q*0 - e
  active_.resize(n_);
  std::iota(active_.begin(), active_.end(), size_t{0});
  active_size_ = n_;
  unshrunk_ = false;

  if (options_.initial_alpha.empty()) return Status::OK();
  if (options_.initial_alpha.size() != n_) {
    return Status::InvalidArgument(
        "SMO: initial_alpha size does not match training set");
  }

  // Clamp the warm start into the box, then repair the equality constraint.
  // The residual s = y'a can always be absorbed by shrinking alphas of the
  // matching label sign toward zero (their total is at least |s|).
  double residual = 0.0;
  bool any_positive = false;
  for (size_t t = 0; t < n_; ++t) {
    alpha_[t] = std::clamp(options_.initial_alpha[t], 0.0, c_[t]);
    residual += y_[t] * alpha_[t];
    any_positive = any_positive || alpha_[t] > 0.0;
  }
  if (!any_positive) return Status::OK();
  for (size_t t = 0; t < n_ && std::abs(residual) > kTau; ++t) {
    if (y_[t] * residual <= 0.0) continue;
    const double take = std::min(alpha_[t], std::abs(residual));
    alpha_[t] -= take;
    residual -= y_[t] * take;
  }

  // grad_t = y_t * sum_s y_s a_s K_ts - 1, accumulated over the support
  // vectors of the warm start (their rows land in the cache exactly where
  // the first iterations will look for them). Rows are fetched in pairs so
  // uncached pairs are computed in one pass over the data.
  AccumulateSupportRows(0, n_);
  return Status::OK();
}

void SmoSolver::AccumulateSupportRows(size_t grad_begin, size_t grad_end) {
  std::vector<size_t> svs;
  svs.reserve(n_);
  for (size_t s = 0; s < n_; ++s) {
    if (alpha_[s] > 0.0) svs.push_back(s);
  }
  size_t k = 0;
  for (; k + 2 <= svs.size(); k += 2) {
    const size_t s0 = svs[k];
    const size_t s1 = svs[k + 1];
    const double* K0;
    const double* K1;
    cache_->GetRows(s0, s1, &K0, &K1);
    const double c0 = alpha_[s0] * y_[s0];
    const double c1 = alpha_[s1] * y_[s1];
    for (size_t p = grad_begin; p < grad_end; ++p) {
      const size_t t = active_[p];
      grad_[t] += y_[t] * (c0 * K0[t] + c1 * K1[t]);
    }
  }
  if (k < svs.size()) {
    const size_t s = svs[k];
    const double* Ks = cache_->GetRow(s);
    const double coef = alpha_[s] * y_[s];
    for (size_t p = grad_begin; p < grad_end; ++p) {
      const size_t t = active_[p];
      grad_[t] += y_[t] * coef * Ks[t];
    }
  }
}

bool SmoSolver::SelectWorkingSet(size_t* out_i, size_t* out_j) {
  // i: maximize -y_t * grad_t over I_up of the active set.
  double gmax = -std::numeric_limits<double>::infinity();
  double gmin = std::numeric_limits<double>::infinity();
  size_t i = n_;
  for (size_t p = 0; p < active_size_; ++p) {
    const size_t t = active_[p];
    if (InUp(t)) {
      const double v = -y_[t] * grad_[t];
      if (v > gmax) {
        gmax = v;
        i = t;
      }
    }
  }
  if (i == n_) return false;

  const double* Ki = cache_->GetRow(i);

  // j: second-order selection among violating I_low members.
  size_t j = n_;
  double best_gain = std::numeric_limits<double>::infinity();  // minimize
  for (size_t p = 0; p < active_size_; ++p) {
    const size_t t = active_[p];
    if (!InLow(t)) continue;
    const double v = -y_[t] * grad_[t];
    gmin = std::min(gmin, v);
    const double b_it = gmax - v;
    if (b_it <= 0.0) continue;  // not violating against i
    // Curvature along the feasible pair direction; the label signs cancel,
    // leaving ||phi(x_i) - phi(x_t)||^2 >= 0 for any Mercer kernel.
    double a_it = cache_->Diag(i) + cache_->Diag(t) - 2.0 * Ki[t];
    if (a_it <= 0.0) a_it = kTau;
    const double gain = -(b_it * b_it) / a_it;
    if (gain < best_gain) {
      best_gain = gain;
      j = t;
    }
  }

  if (j == n_ || gmax - gmin < options_.eps) return false;
  *out_i = i;
  *out_j = j;
  return true;
}

void SmoSolver::Shrink(int* shrink_passes, int* reconstructions) {
  // LIBSVM do_shrinking: compute the maximal violations over the active set,
  // then retire bounded examples whose gradient says they cannot re-enter.
  double gmax1 = -std::numeric_limits<double>::infinity();  // I_up
  double gmax2 = -std::numeric_limits<double>::infinity();  // I_low
  for (size_t p = 0; p < active_size_; ++p) {
    const size_t t = active_[p];
    if (InUp(t)) gmax1 = std::max(gmax1, -y_[t] * grad_[t]);
    if (InLow(t)) gmax2 = std::max(gmax2, y_[t] * grad_[t]);
  }

  if (!unshrunk_ && gmax1 + gmax2 <= options_.eps * 10) {
    // Close to optimal: reconstruct once and re-shrink over the full set so
    // no example is left behind with a stale gradient near convergence.
    unshrunk_ = true;
    ReconstructGradient(reconstructions);
  }

  const auto be_shrunk = [&](size_t t) {
    if (IsUpperBound(t)) {
      return y_[t] > 0 ? -grad_[t] > gmax1 : -grad_[t] > gmax2;
    }
    if (IsLowerBound(t)) {
      return y_[t] > 0 ? grad_[t] > gmax2 : grad_[t] > gmax1;
    }
    return false;
  };

  ++*shrink_passes;
  for (size_t p = 0; p < active_size_;) {
    if (be_shrunk(active_[p])) {
      --active_size_;
      std::swap(active_[p], active_[active_size_]);
    } else {
      ++p;
    }
  }
}

void SmoSolver::ReconstructGradient(int* reconstructions) {
  if (active_size_ == n_) return;
  ++*reconstructions;
  // Inactive gradients are stale; recompute them from scratch using the
  // kernel rows of the current support vectors (K is symmetric, so row s
  // supplies K(t, s) for every inactive t). Pairwise fetches let uncached
  // SV rows be computed in one pass over the data.
  for (size_t p = active_size_; p < n_; ++p) {
    grad_[active_[p]] = -1.0;
  }
  AccumulateSupportRows(active_size_, n_);
  active_size_ = n_;
}

Result<SmoSolution> SmoSolver::Solve() {
  if (n_ == 0) return Status::InvalidArgument("SMO: empty training set");
  for (size_t t = 0; t < n_; ++t) {
    if (y_[t] != 1.0 && y_[t] != -1.0) {
      return Status::InvalidArgument("SMO: labels must be +1 or -1");
    }
    if (c_[t] <= 0.0) {
      return Status::InvalidArgument("SMO: non-positive C bound");
    }
  }
  if (options_.shared_cache != nullptr) {
    // The injected cache must serve rows of exactly the problem being
    // solved: same matrix object (kernel rows are addressed by row index)
    // and same kernel parameters.
    if (options_.shared_cache->data() != &data_ ||
        options_.shared_cache->n() != n_) {
      // The row-count check catches a cache left stale by reassigning the
      // bound matrix object to a different size without a Rebind.
      return Status::InvalidArgument(
          "SMO: shared kernel cache is not bound to this training matrix");
    }
    if (!(options_.shared_cache->params() == kernel_params_)) {
      return Status::InvalidArgument(
          "SMO: shared kernel cache kernel params mismatch");
    }
    cache_ = options_.shared_cache;
  } else {
    owned_cache_ =
        std::make_unique<KernelCache>(data_, kernel_params_,
                                      options_.cache_rows);
    cache_ = owned_cache_.get();
  }
  const CacheStats cache_stats_at_entry = cache_->stats();
  CBIR_RETURN_NOT_OK(InitializeState());

  const long max_iter =
      options_.max_iterations > 0
          ? options_.max_iterations
          : std::max<long>(10'000'000, 100 * static_cast<long>(n_));
  const long shrink_interval =
      options_.shrink_interval > 0
          ? options_.shrink_interval
          : std::min<long>(static_cast<long>(n_), 1000) + 1;

  SmoSolution sol;
  long iter = 0;
  long counter = shrink_interval;
  while (iter < max_iter) {
    if (--counter == 0) {
      counter = shrink_interval;
      if (options_.shrinking) {
        Shrink(&sol.shrink_passes, &sol.gradient_reconstructions);
      }
    }

    size_t i, j;
    if (!SelectWorkingSet(&i, &j)) {
      // Optimal on the active set: verify against the full problem.
      ReconstructGradient(&sol.gradient_reconstructions);
      if (!SelectWorkingSet(&i, &j)) {
        sol.converged = true;
        break;
      }
      counter = 1;  // re-shrink immediately after the forced unshrink
      continue;
    }
    ++iter;

    // Both rows stay valid together: the slab cache pins i while fetching j.
    const double* Ki;
    const double* Kj;
    cache_->GetRows(i, j, &Ki, &Kj);

    const double yi = y_[i], yj = y_[j];
    double a_ij = cache_->Diag(i) + cache_->Diag(j) - 2.0 * Ki[j];
    if (a_ij <= 0.0) a_ij = kTau;

    const double old_ai = alpha_[i];
    const double old_aj = alpha_[j];

    // Newton step along the feasible direction (LIBSVM update form).
    if (yi != yj) {
      const double delta = (-grad_[i] - grad_[j]) / a_ij;
      double diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0.0 && alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = diff;
      } else if (diff <= 0.0 && alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = -diff;
      }
      if (diff > c_[i] - c_[j] && alpha_[i] > c_[i]) {
        alpha_[i] = c_[i];
        alpha_[j] = c_[i] - diff;
      } else if (diff <= c_[i] - c_[j] && alpha_[j] > c_[j]) {
        alpha_[j] = c_[j];
        alpha_[i] = c_[j] + diff;
      }
    } else {
      const double delta = (grad_[i] - grad_[j]) / a_ij;
      double sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c_[i] && alpha_[i] > c_[i]) {
        alpha_[i] = c_[i];
        alpha_[j] = sum - c_[i];
      } else if (sum <= c_[i] && alpha_[j] < 0.0) {
        alpha_[j] = 0.0;
        alpha_[i] = sum;
      }
      if (sum > c_[j] && alpha_[j] > c_[j]) {
        alpha_[j] = c_[j];
        alpha_[i] = sum - c_[j];
      } else if (sum <= c_[j] && alpha_[i] < 0.0) {
        alpha_[i] = 0.0;
        alpha_[j] = sum;
      }
    }

    // Gradient maintenance over the active set:
    //   grad_t += Q_ti * dAi + Q_tj * dAj.
    const double d_ai = alpha_[i] - old_ai;
    const double d_aj = alpha_[j] - old_aj;
    if (d_ai == 0.0 && d_aj == 0.0) {
      // Numerically stuck pair; treat as converged to avoid spinning.
      ReconstructGradient(&sol.gradient_reconstructions);
      sol.converged = true;
      break;
    }
    const double ci = yi * d_ai;
    const double cj = yj * d_aj;
    for (size_t p = 0; p < active_size_; ++p) {
      const size_t t = active_[p];
      grad_[t] += y_[t] * (ci * Ki[t] + cj * Kj[t]);
    }
  }

  // Every exit path must leave the full gradient fresh: bias, objective and
  // the recovered decision values all read it.
  ReconstructGradient(&sol.gradient_reconstructions);

  sol.alpha = alpha_;
  sol.bias = ComputeBias();
  sol.objective = ComputeObjective();
  sol.iterations = iter;
  // Only this solve's traffic: a shared cache carries counters (and rows)
  // from earlier solves in the chain.
  sol.cache_stats = CacheStats::DeltaSince(cache_->stats(),
                                           cache_stats_at_entry);
  // f(x_t) recovered from the gradient identity grad_t = y_t (f_t - b) - 1.
  sol.train_decisions.resize(n_);
  for (size_t t = 0; t < n_; ++t) {
    sol.train_decisions[t] = sol.bias + y_[t] * (grad_[t] + 1.0);
  }
  if (iter >= max_iter) {
    CBIR_LOG(Warning) << "SMO hit iteration cap (" << max_iter << ")";
    Metrics().unconverged->Increment();
  }
  Metrics().solves->Increment();
  Metrics().iterations->Increment(static_cast<uint64_t>(iter));
  Metrics().shrink_passes->Increment(
      static_cast<uint64_t>(sol.shrink_passes));
  Metrics().gradient_reconstructions->Increment(
      static_cast<uint64_t>(sol.gradient_reconstructions));
  Metrics().cache_hits->Increment(sol.cache_stats.hits);
  Metrics().cache_misses->Increment(sol.cache_stats.misses);
  Metrics().cache_evictions->Increment(sol.cache_stats.evictions);
  // Attach this solve's work to the request being traced (if any): a
  // feedback round runs several coupled solves, so the counters accumulate
  // into per-request totals for the EXPLAIN profile.
  if (obs::RequestTrace* trace = obs::CurrentTrace(); trace != nullptr) {
    trace->AddCounter("smo_iterations", static_cast<int64_t>(iter));
    trace->AddCounter("kernel_cache_hits",
                      static_cast<int64_t>(sol.cache_stats.hits));
    trace->AddCounter("kernel_cache_misses",
                      static_cast<int64_t>(sol.cache_stats.misses));
  }
  return sol;
}

double SmoSolver::ComputeBias() const {
  // For free SVs, y_i f(x_i) = 1 => b = y_i - (Qa)_i * y_i ... expressed via
  // grad: (Qa)_i = grad_i + 1, and f(x_i) - b = y_i * (grad_i + 1) ... use
  // the LIBSVM identity: for free i, b = -y_i * grad_i ... derived from
  // y_i f(x_i) = 1 with f(x_i) = sum_t a_t y_t K_ti + b and
  // grad_i = y_i * (f(x_i) - b) - 1.
  double sum = 0.0;
  int free_count = 0;
  for (size_t t = 0; t < n_; ++t) {
    if (!IsLowerBound(t) && !IsUpperBound(t)) {
      sum += -y_[t] * grad_[t];
      ++free_count;
    }
  }
  if (free_count > 0) return sum / free_count;

  // No free SVs: midpoint of the feasible interval.
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n_; ++t) {
    const double v = -y_[t] * grad_[t];
    if (InUp(t)) lb = std::max(lb, v);
    if (InLow(t)) ub = std::min(ub, v);
  }
  if (std::isinf(ub) && std::isinf(lb)) return 0.0;
  if (std::isinf(ub)) return lb;
  if (std::isinf(lb)) return ub;
  return (ub + lb) / 2.0;
}

double SmoSolver::ComputeObjective() const {
  double obj = 0.0;
  for (size_t t = 0; t < n_; ++t) {
    obj += alpha_[t] * (grad_[t] - 1.0);
  }
  return obj / 2.0;
}

}  // namespace cbir::svm
