#include "svm/model.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "util/logging.h"
#include "util/parallel.h"

namespace cbir::svm {

SvmModel::SvmModel(KernelParams kernel, la::Matrix support_vectors,
                   std::vector<double> coefficients, double bias)
    : kernel_(kernel),
      support_vectors_(std::move(support_vectors)),
      coefficients_(std::move(coefficients)),
      bias_(bias) {
  CBIR_CHECK_EQ(support_vectors_.rows(), coefficients_.size());
}

double SvmModel::Decision(const la::Vec& x) const {
  double sum = bias_;
  for (size_t s = 0; s < support_vectors_.rows(); ++s) {
    sum += coefficients_[s] * EvalKernelRow(kernel_, support_vectors_, s, x);
  }
  return sum;
}

std::vector<double> SvmModel::DecisionBatch(const la::Matrix& batch) const {
  std::vector<double> out(batch.rows());
  if (batch.rows() == 0) return out;
  const size_t num_sv = support_vectors_.rows();
  if (num_sv == 0) {
    std::fill(out.begin(), out.end(), bias_);
    return out;
  }
  CBIR_CHECK_EQ(batch.cols(), support_vectors_.cols());

  // Scoring one row is a batched kernel evaluation against all SVs followed
  // by a dot with the coefficients; rows are independent, so corpus-sized
  // batches fan out across threads (the per-query ranking hot path).
  const auto score_row = [&](size_t r, std::vector<double>& scratch) {
    svm::EvalKernelRowBatch(kernel_, support_vectors_, batch.RowPtr(r),
                            scratch.data(), 0, num_sv);
    out[r] = bias_ + la::DotN(scratch.data(), coefficients_.data(), num_sv);
  };

  const size_t work = batch.rows() * num_sv * batch.cols();
  if (work < (1u << 18)) {
    std::vector<double> scratch(num_sv);
    for (size_t r = 0; r < batch.rows(); ++r) score_row(r, scratch);
  } else {
    ParallelFor(batch.rows(), [&](size_t r) {
      thread_local std::vector<double> scratch;
      scratch.resize(num_sv);
      score_row(r, scratch);
    });
  }
  return out;
}

void SvmModel::Save(std::ostream& os) const {
  os << "svm_model v1\n";
  os << static_cast<int>(kernel_.type) << " " << kernel_.gamma << " "
     << kernel_.coef0 << " " << kernel_.degree << "\n";
  os << support_vectors_.rows() << " " << support_vectors_.cols() << "\n";
  os.precision(17);
  os << bias_ << "\n";
  for (size_t s = 0; s < support_vectors_.rows(); ++s) {
    os << coefficients_[s];
    const double* p = support_vectors_.RowPtr(s);
    for (size_t c = 0; c < support_vectors_.cols(); ++c) os << " " << p[c];
    os << "\n";
  }
}

Result<SvmModel> SvmModel::Load(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "svm_model" || version != "v1") {
    return Status::InvalidArgument("svm model: bad header");
  }
  int type = 0;
  KernelParams kernel;
  if (!(is >> type >> kernel.gamma >> kernel.coef0 >> kernel.degree)) {
    return Status::IoError("svm model: truncated kernel params");
  }
  if (type < 0 || type > 2) {
    return Status::InvalidArgument("svm model: unknown kernel type");
  }
  kernel.type = static_cast<KernelType>(type);

  size_t rows = 0, cols = 0;
  double bias = 0.0;
  if (!(is >> rows >> cols >> bias)) {
    return Status::IoError("svm model: truncated shape");
  }
  la::Matrix sv(rows, cols);
  std::vector<double> coeffs(rows);
  for (size_t s = 0; s < rows; ++s) {
    if (!(is >> coeffs[s])) return Status::IoError("svm model: truncated");
    double* p = sv.RowPtr(s);
    for (size_t c = 0; c < cols; ++c) {
      if (!(is >> p[c])) return Status::IoError("svm model: truncated");
    }
  }
  return SvmModel(kernel, std::move(sv), std::move(coeffs), bias);
}

}  // namespace cbir::svm
