#ifndef CBIR_SVM_TRAINER_H_
#define CBIR_SVM_TRAINER_H_

#include <vector>

#include "la/matrix.h"
#include "svm/model.h"
#include "svm/smo_solver.h"
#include "util/result.h"

namespace cbir::svm {

/// \brief Training configuration.
///
/// `smo.shared_cache` is the trainer-level kernel-cache injection point:
/// when set, every solve launched through this trainer fetches kernel rows
/// from that caller-owned cache instead of building its own. The cache must
/// be bound (KernelCache ctor / Rebind) to the exact `data` matrix object
/// passed to Train/TrainWeighted with `kernel`-equal params, must outlive
/// the call, and must not be used by concurrent solves — see
/// SmoOptions::shared_cache for the full aliasing/lifetime rules.
struct TrainOptions {
  KernelParams kernel = KernelParams::Rbf(1.0);
  /// Default per-sample bound; overridden sample-by-sample via
  /// TrainWeighted's `c_bounds`.
  double c = 1.0;
  SmoOptions smo;
};

/// \brief A trained model plus per-sample training diagnostics.
struct TrainOutput {
  SvmModel model;
  /// Decision values f(x_i) on the training set, in input order.
  std::vector<double> train_decisions;
  /// Hinge slacks xi_i = max(0, 1 - y_i f(x_i)), in input order. The
  /// coupled-SVM label-correction step reads these.
  std::vector<double> slacks;
  /// Full per-sample dual variables, in input order (zero for non-SVs).
  /// Callers feed these back through SmoOptions::initial_alpha to warm-start
  /// the next, nearly identical solve (next feedback round / rho step).
  std::vector<double> alpha;
  double objective = 0.0;
  long iterations = 0;
  bool converged = false;
  /// Kernel-cache counters from the underlying SMO solve. With an injected
  /// shared cache this is the solve's own traffic only (delta of the shared
  /// cache's lifetime counters).
  CacheStats cache_stats;
};

/// \brief Trains binary C-SVC models with optional per-sample C bounds.
class SvmTrainer {
 public:
  explicit SvmTrainer(const TrainOptions& options = {});

  const TrainOptions& options() const { return options_; }

  /// Uniform-C training. `labels` in {+1, -1}; one row of `data` per sample.
  Result<TrainOutput> Train(const la::Matrix& data,
                            const std::vector<double>& labels) const;

  /// Per-sample-C training: the coupled SVM passes bound C for labeled and
  /// rho*C for unlabeled samples.
  Result<TrainOutput> TrainWeighted(const la::Matrix& data,
                                    const std::vector<double>& labels,
                                    const std::vector<double>& c_bounds) const;

 private:
  TrainOptions options_;
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_TRAINER_H_
