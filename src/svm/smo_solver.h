#ifndef CBIR_SVM_SMO_SOLVER_H_
#define CBIR_SVM_SMO_SOLVER_H_

#include <memory>
#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"
#include "svm/kernel_cache.h"
#include "util/result.h"

namespace cbir::svm {

/// \brief Configuration for one dual QP solve.
struct SmoOptions {
  /// KKT violation tolerance (LIBSVM's epsilon).
  double eps = 1e-3;
  /// Hard iteration cap; <= 0 selects max(10'000'000, 100 * n).
  long max_iterations = -1;
  /// Kernel-cache row budget; 0 selects KernelCache's default of all rows
  /// up to a 128 MiB slab (see kernel_cache.h), not an unlimited cache.
  /// Ignored when `shared_cache` is set (the shared cache was built with its
  /// own budget).
  size_t cache_rows = 0;
  /// External kernel cache injection point. Null (the default) keeps the
  /// internal path: the solver builds its own cache for the solve. Non-null
  /// makes the solve fetch kernel rows from the caller's cache, so a chain
  /// of solves over the same training data (rho annealing, label
  /// correction, successive feedback rounds after a RebindRemapped) computes
  /// each row once instead of once per QP — kernel rows depend only on
  /// (data, kernel params), never on labels, C bounds, or warm starts.
  ///
  /// Aliasing / lifetime rules:
  ///  - the cache must outlive the solve and is mutated by it;
  ///  - it must be bound to the *same* la::Matrix object the solver was
  ///    constructed with (pointer identity, not just equal contents) and to
  ///    equal KernelParams — Solve() returns InvalidArgument otherwise;
  ///  - ownership stays with the caller; the solver never frees or rebinds
  ///    it;
  ///  - neither KernelCache nor the solver is thread-safe: concurrent
  ///    solves must use distinct caches.
  /// SmoSolution::cache_stats reports only this solve's traffic (a delta of
  /// the shared cache's lifetime counters).
  KernelCache* shared_cache = nullptr;
  /// LIBSVM-style shrinking: periodically drop examples that are pinned at a
  /// bound and KKT-consistent from the active set; the full gradient is
  /// reconstructed and optimality re-verified over all examples before the
  /// solver declares convergence, so the solution is unchanged.
  bool shrinking = true;
  /// Iterations between shrinking passes; 0 selects LIBSVM's min(n, 1000).
  long shrink_interval = 0;
  /// Warm start: when non-empty (size n), the solve starts from these dual
  /// variables instead of zero. Values are clamped to [0, C_i] and projected
  /// back onto the equality constraint y'a = 0, so alphas carried over from a
  /// nearly identical problem (the previous relevance-feedback round, the
  /// previous rho-annealing step) are always usable: new examples enter at
  /// alpha 0, carried examples keep their values.
  std::vector<double> initial_alpha;
};

/// \brief Output of the SMO solver.
struct SmoSolution {
  std::vector<double> alpha;  ///< dual variables, 0 <= alpha_i <= C_i
  double bias = 0.0;          ///< b in f(x) = sum alpha_i y_i K(x_i,x) + b
  double objective = 0.0;     ///< dual objective 0.5 a'Qa - e'a
  long iterations = 0;
  bool converged = false;     ///< false when the iteration cap was hit
  /// Decision values f(x_i) on the training set, recovered from the final
  /// gradient for free (no O(n * n_sv) kernel re-evaluation).
  std::vector<double> train_decisions;
  /// Kernel-cache behaviour during this solve.
  CacheStats cache_stats;
  /// Shrinking passes executed and full-gradient reconstructions performed.
  int shrink_passes = 0;
  int gradient_reconstructions = 0;
};

/// \brief Sequential Minimal Optimization for the C-SVC dual with
/// **per-sample box constraints**:
///
///   min_a  0.5 a'Qa - e'a
///   s.t.   y'a = 0,  0 <= a_i <= C_i,
///
/// where Q_ij = y_i y_j K(x_i, x_j). Per-sample C is the LIBSVM modification
/// the paper needs: the coupled SVM gives labeled samples bound C and
/// unlabeled (transductively labeled) samples bound rho*C.
///
/// Working-set selection is LIBSVM's second-order heuristic (WSS2): i is the
/// maximal violating index in I_up, j minimizes the quadratic gain estimate
/// among violating indices in I_low. With options.shrinking the selection
/// scans only the active set; convergence is always verified on the full set
/// after gradient reconstruction.
class SmoSolver {
 public:
  /// `data` rows are training vectors; `labels` in {+1,-1}; `c_bounds` gives
  /// each sample's upper bound (> 0). All sizes must agree.
  SmoSolver(const la::Matrix& data, std::vector<double> labels,
            std::vector<double> c_bounds, const KernelParams& kernel,
            const SmoOptions& options = {});

  /// Runs the optimization. Returns an error for degenerate inputs (e.g.
  /// single-class data is allowed and yields all-alpha-at-bound solutions,
  /// but empty data is not).
  Result<SmoSolution> Solve();

 private:
  bool IsUpperBound(size_t i) const { return alpha_[i] >= c_[i] - 1e-12; }
  bool IsLowerBound(size_t i) const { return alpha_[i] <= 1e-12; }
  /// Membership in I_up / I_low of the violating-pair framework: the sets of
  /// indices whose alpha may still move up / down the feasible direction.
  bool InUp(size_t t) const {
    return (y_[t] > 0 && !IsUpperBound(t)) || (y_[t] < 0 && !IsLowerBound(t));
  }
  bool InLow(size_t t) const {
    return (y_[t] > 0 && !IsLowerBound(t)) || (y_[t] < 0 && !IsUpperBound(t));
  }

  /// Initializes alpha (zero or clamped+projected warm start) and the
  /// matching gradient.
  Status InitializeState();

  /// Adds y_t * sum_s y_s a_s K_ts to grad_[active_[p]] for p in
  /// [grad_begin, grad_end), fetching support-vector rows in pairs so
  /// uncached pairs are filled in one pass over the data.
  void AccumulateSupportRows(size_t grad_begin, size_t grad_end);

  /// Selects the (i, j) working pair from the active set; returns false at
  /// eps-optimality of the active subproblem.
  bool SelectWorkingSet(size_t* out_i, size_t* out_j);

  /// Removes bounded, KKT-consistent examples from the active set.
  void Shrink(int* shrink_passes, int* reconstructions);

  /// Recomputes the (stale) gradient of every inactive example from the
  /// current alphas and restores the full active set.
  void ReconstructGradient(int* reconstructions);

  double ComputeBias() const;
  double ComputeObjective() const;

  const la::Matrix& data_;
  std::vector<double> y_;
  std::vector<double> c_;
  KernelParams kernel_params_;
  SmoOptions options_;
  size_t n_;

  /// Either options_.shared_cache or owned_cache_ (built lazily in Solve()
  /// so degenerate inputs fail with a Status before any slab work).
  KernelCache* cache_ = nullptr;
  std::unique_ptr<KernelCache> owned_cache_;
  std::vector<double> alpha_;
  std::vector<double> grad_;    ///< grad_i = (Qa)_i - 1 (active entries fresh)
  std::vector<size_t> active_;  ///< permutation; first active_size_ are active
  size_t active_size_ = 0;
  bool unshrunk_ = false;       ///< one-time early unshrink near optimality
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_SMO_SOLVER_H_
