#ifndef CBIR_SVM_SMO_SOLVER_H_
#define CBIR_SVM_SMO_SOLVER_H_

#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"
#include "svm/kernel_cache.h"
#include "util/result.h"

namespace cbir::svm {

/// \brief Configuration for one dual QP solve.
struct SmoOptions {
  /// KKT violation tolerance (LIBSVM's epsilon).
  double eps = 1e-3;
  /// Hard iteration cap; <= 0 selects max(10'000'000, 100 * n).
  long max_iterations = -1;
  /// Kernel-cache row budget (0 = unlimited).
  size_t cache_rows = 0;
};

/// \brief Output of the SMO solver.
struct SmoSolution {
  std::vector<double> alpha;  ///< dual variables, 0 <= alpha_i <= C_i
  double bias = 0.0;          ///< b in f(x) = sum alpha_i y_i K(x_i,x) + b
  double objective = 0.0;     ///< dual objective 0.5 a'Qa - e'a
  long iterations = 0;
  bool converged = false;     ///< false when the iteration cap was hit
};

/// \brief Sequential Minimal Optimization for the C-SVC dual with
/// **per-sample box constraints**:
///
///   min_a  0.5 a'Qa - e'a
///   s.t.   y'a = 0,  0 <= a_i <= C_i,
///
/// where Q_ij = y_i y_j K(x_i, x_j). Per-sample C is the LIBSVM modification
/// the paper needs: the coupled SVM gives labeled samples bound C and
/// unlabeled (transductively labeled) samples bound rho*C.
///
/// Working-set selection is LIBSVM's second-order heuristic (WSS2): i is the
/// maximal violating index in I_up, j minimizes the quadratic gain estimate
/// among violating indices in I_low.
class SmoSolver {
 public:
  /// `data` rows are training vectors; `labels` in {+1,-1}; `c_bounds` gives
  /// each sample's upper bound (> 0). All sizes must agree.
  SmoSolver(const la::Matrix& data, std::vector<double> labels,
            std::vector<double> c_bounds, const KernelParams& kernel,
            const SmoOptions& options = {});

  /// Runs the optimization. Returns an error for degenerate inputs (e.g.
  /// single-class data is allowed and yields all-alpha-at-bound solutions,
  /// but empty data is not).
  Result<SmoSolution> Solve();

 private:
  bool IsUpperBound(size_t i) const { return alpha_[i] >= c_[i] - 1e-12; }
  bool IsLowerBound(size_t i) const { return alpha_[i] <= 1e-12; }

  /// Selects the (i, j) working pair; returns false at eps-optimality.
  bool SelectWorkingSet(size_t* out_i, size_t* out_j);

  double ComputeBias() const;
  double ComputeObjective() const;

  const la::Matrix& data_;
  std::vector<double> y_;
  std::vector<double> c_;
  KernelParams kernel_params_;
  SmoOptions options_;
  size_t n_;

  KernelCache cache_;
  std::vector<double> alpha_;
  std::vector<double> grad_;  ///< grad_i = (Qa)_i - 1
};

}  // namespace cbir::svm

#endif  // CBIR_SVM_SMO_SOLVER_H_
