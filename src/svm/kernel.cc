#include "svm/kernel.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cbir::svm {

const char* KernelTypeToString(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "polynomial";
  }
  return "?";
}

std::string KernelParams::ToString() const {
  std::string out = KernelTypeToString(type);
  switch (type) {
    case KernelType::kLinear:
      break;
    case KernelType::kRbf:
      out += "(gamma=" + FormatDouble(gamma, 6) + ")";
      break;
    case KernelType::kPolynomial:
      out += "(gamma=" + FormatDouble(gamma, 6) +
             ", coef0=" + FormatDouble(coef0, 6) +
             ", degree=" + std::to_string(degree) + ")";
      break;
  }
  return out;
}

double EvalKernel(const KernelParams& params, const la::Vec& a,
                  const la::Vec& b) {
  switch (params.type) {
    case KernelType::kLinear:
      return la::Dot(a, b);
    case KernelType::kRbf:
      return std::exp(-params.gamma * la::SquaredDistance(a, b));
    case KernelType::kPolynomial: {
      double base = params.gamma * la::Dot(a, b) + params.coef0;
      double out = 1.0;
      for (int d = 0; d < params.degree; ++d) out *= base;
      return out;
    }
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
  return 0.0;
}

double EvalKernelRow(const KernelParams& params, const la::Matrix& rows,
                     size_t i, const la::Vec& b) {
  CBIR_CHECK_EQ(rows.cols(), b.size());
  const double* p = rows.RowPtr(i);
  switch (params.type) {
    case KernelType::kLinear: {
      double sum = 0.0;
      for (size_t c = 0; c < b.size(); ++c) sum += p[c] * b[c];
      return sum;
    }
    case KernelType::kRbf: {
      double sum = 0.0;
      for (size_t c = 0; c < b.size(); ++c) {
        const double d = p[c] - b[c];
        sum += d * d;
      }
      return std::exp(-params.gamma * sum);
    }
    case KernelType::kPolynomial: {
      double dot = 0.0;
      for (size_t c = 0; c < b.size(); ++c) dot += p[c] * b[c];
      double base = params.gamma * dot + params.coef0;
      double out = 1.0;
      for (int d = 0; d < params.degree; ++d) out *= base;
      return out;
    }
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
  return 0.0;
}

double DefaultGamma(const la::Matrix& data) {
  CBIR_CHECK(!data.empty());
  const size_t n = data.rows() * data.cols();
  double sum = 0.0, sum_sq = 0.0;
  for (double v : data.data()) {
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  const double denom = static_cast<double>(data.cols()) *
                       (var > 1e-12 ? var : 1.0);
  return 1.0 / denom;
}

}  // namespace cbir::svm
