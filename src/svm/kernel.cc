#include "svm/kernel.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cbir::svm {

const char* KernelTypeToString(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "polynomial";
  }
  return "?";
}

std::string KernelParams::ToString() const {
  std::string out = KernelTypeToString(type);
  switch (type) {
    case KernelType::kLinear:
      break;
    case KernelType::kRbf:
      out += "(gamma=" + FormatDouble(gamma, 6) + ")";
      break;
    case KernelType::kPolynomial:
      out += "(gamma=" + FormatDouble(gamma, 6) +
             ", coef0=" + FormatDouble(coef0, 6) +
             ", degree=" + std::to_string(degree) + ")";
      break;
  }
  return out;
}

double EvalKernel(const KernelParams& params, const la::Vec& a,
                  const la::Vec& b) {
  switch (params.type) {
    case KernelType::kLinear:
      return la::Dot(a, b);
    case KernelType::kRbf:
      return std::exp(-params.gamma * la::SquaredDistance(a, b));
    case KernelType::kPolynomial: {
      double base = params.gamma * la::Dot(a, b) + params.coef0;
      double out = 1.0;
      for (int d = 0; d < params.degree; ++d) out *= base;
      return out;
    }
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
  return 0.0;
}

double EvalKernelRow(const KernelParams& params, const la::Matrix& rows,
                     size_t i, const la::Vec& b) {
  CBIR_CHECK_EQ(rows.cols(), b.size());
  const double* p = rows.RowPtr(i);
  const size_t d = b.size();
  switch (params.type) {
    case KernelType::kLinear:
      return la::DotN(p, b.data(), d);
    case KernelType::kRbf:
      return std::exp(-params.gamma * la::SquaredDistanceN(p, b.data(), d));
    case KernelType::kPolynomial: {
      double base = params.gamma * la::DotN(p, b.data(), d) + params.coef0;
      double out = 1.0;
      for (int deg = 0; deg < params.degree; ++deg) out *= base;
      return out;
    }
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
  return 0.0;
}

void EvalKernelRowBatch(const KernelParams& params, const la::Matrix& rows,
                        const double* b, double* out, size_t begin,
                        size_t end) {
  CBIR_CHECK_LE(begin, end);
  CBIR_CHECK_LE(end, rows.rows());
  if (begin == end) return;
  const size_t dims = rows.cols();
  const double* base = rows.RowPtr(begin);
  const size_t count = end - begin;
  switch (params.type) {
    case KernelType::kLinear:
      la::DotToRows(base, count, dims, b, out);
      return;
    case KernelType::kRbf: {
      la::SquaredDistanceToRows(base, count, dims, b, out);
      const double gamma = params.gamma;
      for (size_t r = 0; r < count; ++r) out[r] = std::exp(-gamma * out[r]);
      return;
    }
    case KernelType::kPolynomial: {
      la::DotToRows(base, count, dims, b, out);
      for (size_t r = 0; r < count; ++r) {
        const double p = params.gamma * out[r] + params.coef0;
        double v = 1.0;
        for (int deg = 0; deg < params.degree; ++deg) v *= p;
        out[r] = v;
      }
      return;
    }
  }
  CBIR_LOG(Fatal) << "unreachable kernel type";
}

double DefaultGamma(const la::Matrix& data) {
  if (data.empty()) return 1.0;
  const size_t n = data.rows() * data.cols();
  double sum = 0.0, sum_sq = 0.0;
  for (double v : data.data()) {
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / static_cast<double>(n);
  // Guard the catastrophic-cancellation case: sum_sq/n and mean^2 can differ
  // by rounding noise for constant data, yielding a tiny negative variance.
  const double var =
      std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  double denom = static_cast<double>(data.cols()) * (var > 1e-12 ? var : 1.0);
  if (!std::isfinite(denom) || denom <= 0.0) {
    denom = static_cast<double>(data.cols());
  }
  return 1.0 / denom;
}

}  // namespace cbir::svm
