#include "svm/trainer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cbir::svm {

SvmTrainer::SvmTrainer(const TrainOptions& options) : options_(options) {
  CBIR_CHECK_GT(options_.c, 0.0);
}

Result<TrainOutput> SvmTrainer::Train(const la::Matrix& data,
                                      const std::vector<double>& labels) const {
  return TrainWeighted(data, labels,
                       std::vector<double>(labels.size(), options_.c));
}

Result<TrainOutput> SvmTrainer::TrainWeighted(
    const la::Matrix& data, const std::vector<double>& labels,
    const std::vector<double>& c_bounds) const {
  if (data.rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (labels.size() != data.rows() || c_bounds.size() != data.rows()) {
    return Status::InvalidArgument("labels/c_bounds size mismatch");
  }

  SmoSolver solver(data, labels, c_bounds, options_.kernel, options_.smo);
  CBIR_ASSIGN_OR_RETURN(SmoSolution sol, solver.Solve());

  // Collect support vectors (alpha > 0).
  constexpr double kSvEps = 1e-12;
  size_t num_sv = 0;
  for (double a : sol.alpha) {
    if (a > kSvEps) ++num_sv;
  }
  la::Matrix sv(num_sv, data.cols());
  std::vector<double> coeffs(num_sv);
  size_t s = 0;
  for (size_t i = 0; i < data.rows(); ++i) {
    if (sol.alpha[i] > kSvEps) {
      sv.SetRow(s, data.Row(i));
      coeffs[s] = sol.alpha[i] * labels[i];
      ++s;
    }
  }

  TrainOutput out;
  out.model = SvmModel(options_.kernel, std::move(sv), std::move(coeffs),
                       sol.bias);
  out.objective = sol.objective;
  out.iterations = sol.iterations;
  out.converged = sol.converged;
  out.cache_stats = sol.cache_stats;

  // Training decisions come straight out of the solver's final gradient
  // instead of an O(n * n_sv * d) kernel re-evaluation pass.
  out.train_decisions = std::move(sol.train_decisions);
  out.slacks.resize(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    out.slacks[i] = std::max(0.0, 1.0 - labels[i] * out.train_decisions[i]);
  }
  out.alpha = std::move(sol.alpha);
  return out;
}

}  // namespace cbir::svm
