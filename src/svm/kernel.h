#ifndef CBIR_SVM_KERNEL_H_
#define CBIR_SVM_KERNEL_H_

#include <string>

#include "la/matrix.h"
#include "la/vector_ops.h"

namespace cbir::svm {

/// \brief Supported Mercer kernels.
enum class KernelType {
  kLinear,      ///< K(a,b) = <a,b>
  kRbf,         ///< K(a,b) = exp(-gamma * ||a-b||^2)
  kPolynomial,  ///< K(a,b) = (gamma * <a,b> + coef0)^degree
};

const char* KernelTypeToString(KernelType type);

/// \brief Kernel selection plus hyper-parameters.
///
/// The paper's experiments use the Gaussian RBF kernel for all SVM-based
/// schemes; linear and polynomial kernels are provided for tests, ablations
/// and as library features.
struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;
  double coef0 = 0.0;
  int degree = 3;

  static KernelParams Linear() { return {KernelType::kLinear, 0.0, 0.0, 0}; }
  static KernelParams Rbf(double gamma) {
    return {KernelType::kRbf, gamma, 0.0, 0};
  }
  static KernelParams Polynomial(double gamma, double coef0, int degree) {
    return {KernelType::kPolynomial, gamma, coef0, degree};
  }

  /// Exact parameter equality; a KernelCache may only be shared between
  /// solves whose KernelParams compare equal.
  friend bool operator==(const KernelParams& a, const KernelParams& b) {
    return a.type == b.type && a.gamma == b.gamma && a.coef0 == b.coef0 &&
           a.degree == b.degree;
  }

  std::string ToString() const;
};

/// Evaluates K(a, b). Requires equal dimensions.
double EvalKernel(const KernelParams& params, const la::Vec& a,
                  const la::Vec& b);

/// Evaluates K between row `i` of `rows` and vector `b`.
double EvalKernelRow(const KernelParams& params, const la::Matrix& rows,
                     size_t i, const la::Vec& b);

/// Evaluates out[r - begin] = K(rows[r], b) for r in [begin, end) in one
/// blocked pass; `b` holds `rows.cols()` doubles. The batched form feeds the
/// kernel-cache row fill and model scoring without per-element dispatch.
void EvalKernelRowBatch(const KernelParams& params, const la::Matrix& rows,
                        const double* b, double* out, size_t begin,
                        size_t end);

/// LIBSVM-style default gamma: 1 / (dims * variance_of_all_entries); falls
/// back to 1/dims for (near-)constant data and returns 1.0 for an empty
/// matrix instead of crashing.
double DefaultGamma(const la::Matrix& data);

}  // namespace cbir::svm

#endif  // CBIR_SVM_KERNEL_H_
