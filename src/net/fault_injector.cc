#include "net/fault_injector.h"

#include <chrono>
#include <thread>
#include <vector>

namespace cbir::net {

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : options_(options), rng_state_(options.seed == 0 ? 1 : options.seed) {}

double FaultInjector::NextUniform() {
  // splitmix64: tiny, seedable, and statistically fine for fault schedules.
  rng_state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

uint64_t FaultInjector::NextBelow(uint64_t n) {
  return n == 0 ? 0 : static_cast<uint64_t>(NextUniform() *
                                            static_cast<double>(n));
}

Status FaultInjector::SendFrame(const Socket& socket, const uint8_t* data,
                                size_t size) {
  // Decide the whole fault plan under the lock, then act outside it so a
  // slow send or an injected delay never serializes other threads' frames.
  int delay_ms = -1;
  enum class Fault { kNone, kDrop, kReset, kPartial, kBitFlip } fault =
      Fault::kNone;
  size_t partial_bytes = 0;
  size_t flip_bit = 0;
  {
    util::MutexLock lock(mu_);
    ++stats_.frames;
    if (NextUniform() < options_.delay_probability) {
      ++stats_.delays;
      delay_ms = static_cast<int>(
          NextBelow(static_cast<uint64_t>(options_.max_delay_ms) + 1));
    }
    if (NextUniform() < options_.drop_probability) {
      ++stats_.drops;
      fault = Fault::kDrop;
    } else if (NextUniform() < options_.reset_probability) {
      ++stats_.resets;
      fault = Fault::kReset;
    } else if (NextUniform() < options_.partial_write_probability &&
               size > 1) {
      ++stats_.partial_writes;
      fault = Fault::kPartial;
      partial_bytes = 1 + static_cast<size_t>(NextBelow(size - 1));
    } else if (NextUniform() < options_.bit_flip_probability && size > 0) {
      ++stats_.bit_flips;
      fault = Fault::kBitFlip;
      flip_bit = static_cast<size_t>(NextBelow(size * 8));
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  switch (fault) {
    case Fault::kNone:
      return socket.WriteAll(data, size);
    case Fault::kDrop:
      // The network ate the frame; the sender has no way to know. The
      // client's read deadline is what turns this into a typed failure.
      return Status::OK();
    case Fault::kReset:
      socket.Shutdown();
      return Status::OK();
    case Fault::kPartial: {
      const Status s = socket.WriteAll(data, partial_bytes);
      socket.Shutdown();  // the rest of the frame never arrives
      return s;
    }
    case Fault::kBitFlip: {
      std::vector<uint8_t> corrupted(data, data + size);
      corrupted[flip_bit / 8] ^= static_cast<uint8_t>(1u << (flip_bit % 8));
      return socket.WriteAll(corrupted.data(), corrupted.size());
    }
  }
  return Status::OK();
}

FaultInjectorStats FaultInjector::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace cbir::net
