#include "net/tcp_client.h"

#include <string>
#include <utility>
#include <variant>

namespace cbir::net {

namespace {

/// Unwraps the expected response alternative: a transport-level
/// ErrorResponse or a non-OK wire status becomes the equivalent typed
/// Status; a different alternative means the peer broke the in-order
/// protocol.
template <typename Expected>
Result<Expected> Expect(Result<api::Response> response) {
  if (!response.ok()) return response.status();
  if (const auto* error = std::get_if<api::ErrorResponse>(&response.value())) {
    return api::FromWireStatus(error->status);
  }
  auto* typed = std::get_if<Expected>(&response.value());
  if (typed == nullptr) {
    return Status::Internal("tcp client: unexpected response type");
  }
  if (!typed->status.ok()) return api::FromWireStatus(typed->status);
  return std::move(*typed);
}

std::vector<int> FromWireRanking(const std::vector<int32_t>& ranking) {
  return std::vector<int>(ranking.begin(), ranking.end());
}

}  // namespace

Result<TcpClient> TcpClient::Connect(const std::string& host, int port) {
  CBIR_ASSIGN_OR_RETURN(Socket socket, Socket::ConnectTcp(host, port));
  return TcpClient(std::move(socket));
}

Result<TcpClient> TcpClient::ConnectEndpoint(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument(
        "tcp client: endpoint must be host:port, got '" + endpoint + "'");
  }
  int port = 0;
  try {
    port = std::stoi(endpoint.substr(colon + 1));
  } catch (...) {
    return Status::InvalidArgument("tcp client: bad port in '" + endpoint +
                                   "'");
  }
  return Connect(endpoint.substr(0, colon), port);
}

Status TcpClient::Send(const api::Request& request) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("tcp client: not connected");
  }
  const std::vector<uint8_t> frame = api::EncodeRequest(request);
  if (frame.size() > api::kFrameHeaderBytes + api::kMaxFrameBody) {
    // The server would reject the frame and close; fail locally with the
    // same typed error instead of desynchronizing the stream.
    return Status::OutOfRange(
        "tcp client: request frame exceeds the protocol body limit");
  }
  return socket_.WriteAll(frame.data(), frame.size());
}

Result<api::Response> TcpClient::Receive() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("tcp client: not connected");
  }
  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  bool clean_eof = false;
  CBIR_RETURN_NOT_OK(
      socket_.ReadFully(header.data(), header.size(), &clean_eof));
  if (clean_eof) {
    return Status::IoError("tcp client: server closed the connection");
  }
  CBIR_ASSIGN_OR_RETURN(api::FrameHeader frame, api::DecodeFrameHeader(
                                                    header.data(),
                                                    header.size()));
  std::vector<uint8_t> body(frame.body_size);
  CBIR_RETURN_NOT_OK(socket_.ReadFully(body.data(), body.size()));
  return api::DecodeResponseBody(frame, body.data(), body.size());
}

Result<api::Response> TcpClient::Call(const api::Request& request) {
  CBIR_RETURN_NOT_OK(Send(request));
  return Receive();
}

Result<uint64_t> TcpClient::StartSession(const api::QuerySpec& query) {
  api::StartSessionRequest request;
  request.query = query;
  CBIR_ASSIGN_OR_RETURN(
      api::StartSessionResponse response,
      Expect<api::StartSessionResponse>(Call(api::Request(request))));
  return response.session_id;
}

Result<std::vector<int>> TcpClient::Query(uint64_t session_id, int k) {
  api::QueryRequest request;
  request.session_id = session_id;
  request.k = static_cast<int32_t>(k);
  CBIR_ASSIGN_OR_RETURN(api::QueryResponse response,
                        Expect<api::QueryResponse>(Call(api::Request(request))));
  return FromWireRanking(response.ranking);
}

Result<std::vector<int>> TcpClient::Feedback(
    uint64_t session_id, const std::vector<logdb::LogEntry>& round, int k) {
  api::FeedbackRequest request;
  request.session_id = session_id;
  request.k = static_cast<int32_t>(k);
  request.round = round;
  CBIR_ASSIGN_OR_RETURN(
      api::FeedbackResponse response,
      Expect<api::FeedbackResponse>(Call(api::Request(std::move(request)))));
  return FromWireRanking(response.ranking);
}

Status TcpClient::EndSession(uint64_t session_id) {
  api::EndSessionRequest request;
  request.session_id = session_id;
  Result<api::EndSessionResponse> response =
      Expect<api::EndSessionResponse>(Call(api::Request(request)));
  return response.status();
}

Result<api::StatsResponse> TcpClient::Stats() {
  return Expect<api::StatsResponse>(Call(api::Request(api::StatsRequest{})));
}

}  // namespace cbir::net
