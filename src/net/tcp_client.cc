#include "net/tcp_client.h"

#include <atomic>
#include <string>
#include <utility>
#include <variant>

namespace cbir::net {

namespace {

/// Unwraps the expected response alternative: a transport-level
/// ErrorResponse or a non-OK wire status becomes the equivalent typed
/// Status; a different alternative means the peer broke the in-order
/// protocol.
template <typename Expected>
Result<Expected> Expect(Result<api::Response> response) {
  if (!response.ok()) return response.status();
  if (const auto* error = std::get_if<api::ErrorResponse>(&response.value())) {
    return api::FromWireStatus(error->status);
  }
  auto* typed = std::get_if<Expected>(&response.value());
  if (typed == nullptr) {
    return Status::Internal("tcp client: unexpected response type");
  }
  if (!typed->status.ok()) return api::FromWireStatus(typed->status);
  return std::move(*typed);
}

std::vector<int> FromWireRanking(const std::vector<int32_t>& ranking) {
  return std::vector<int>(ranking.begin(), ranking.end());
}

}  // namespace

Result<TcpClient> TcpClient::Connect(const std::string& host, int port,
                                     int connect_timeout_ms) {
  CBIR_ASSIGN_OR_RETURN(Socket socket,
                        Socket::ConnectTcp(host, port, connect_timeout_ms));
  return TcpClient(std::move(socket));
}

Result<TcpClient> TcpClient::ConnectEndpoint(const std::string& endpoint,
                                             int connect_timeout_ms) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument(
        "tcp client: endpoint must be host:port, got '" + endpoint + "'");
  }
  int port = 0;
  try {
    port = std::stoi(endpoint.substr(colon + 1));
  } catch (...) {
    return Status::InvalidArgument("tcp client: bad port in '" + endpoint +
                                   "'");
  }
  return Connect(endpoint.substr(0, colon), port, connect_timeout_ms);
}

Status TcpClient::ArmDeadlines(int rpc_timeout_ms) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("tcp client: not connected");
  }
  CBIR_RETURN_NOT_OK(socket_.SetReadTimeout(rpc_timeout_ms));
  CBIR_RETURN_NOT_OK(socket_.SetWriteTimeout(rpc_timeout_ms));
  rpc_timeout_ms_ = rpc_timeout_ms;
  return Status::OK();
}

api::RequestEnvelope TcpClient::BaseEnvelope() {
  api::RequestEnvelope envelope;
  if (rpc_timeout_ms_ > 0) {
    envelope.has_deadline = true;
    envelope.deadline_ms = static_cast<uint32_t>(rpc_timeout_ms_);
  }
  if (tracing_) {
    // Client-chosen ids: a counter mixed through the splitmix64 finalizer,
    // so concurrent clients rarely collide and the id is greppable in the
    // server's slow-request log.
    static std::atomic<uint64_t> next{1};
    uint64_t x = next.fetch_add(1, std::memory_order_relaxed);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    if (x == 0) x = 1;
    envelope.has_trace_id = true;
    envelope.trace_id = x;
    last_trace_id_ = x;
  }
  if (profiling_) envelope.has_profile = true;
  if (checksum_) envelope.has_checksum = true;
  return envelope;
}

Status TcpClient::Send(const api::Request& request) {
  return Send(request, api::RequestEnvelope{});
}

Status TcpClient::Send(const api::Request& request,
                       const api::RequestEnvelope& envelope) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("tcp client: not connected");
  }
  const std::vector<uint8_t> frame = api::EncodeRequest(request, envelope);
  if (frame.size() > api::kFrameHeaderBytes + api::kMaxFrameBody) {
    // The server would reject the frame and close; fail locally with the
    // same typed error instead of desynchronizing the stream.
    return Status::OutOfRange(
        "tcp client: request frame exceeds the protocol body limit");
  }
  if (injector_ != nullptr) {
    return injector_->SendFrame(socket_, frame.data(), frame.size());
  }
  return socket_.WriteAll(frame.data(), frame.size());
}

Result<api::Response> TcpClient::Receive() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("tcp client: not connected");
  }
  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  bool clean_eof = false;
  CBIR_RETURN_NOT_OK(
      socket_.ReadFully(header.data(), header.size(), &clean_eof));
  if (clean_eof) {
    return Status::IoError("tcp client: server closed the connection");
  }
  CBIR_ASSIGN_OR_RETURN(api::FrameHeader frame, api::DecodeFrameHeader(
                                                    header.data(),
                                                    header.size()));
  std::vector<uint8_t> body(frame.body_size);
  CBIR_RETURN_NOT_OK(socket_.ReadFully(body.data(), body.size()));
  // A profiled response (v2 + 0x08) refreshes last_profile_; any other
  // frame clears it, so the profile always describes the last response.
  // Likewise last_degraded_ always describes the last response.
  last_profile_.reset();
  last_degraded_ = false;
  api::ResponseProfile profile;
  bool degraded = false;
  Result<api::Response> response = api::DecodeResponseBody(
      frame, body.data(), body.size(), &profile, &degraded);
  if (response.ok() && (frame.flags & api::kFrameFlagProfile) != 0) {
    last_profile_ = std::move(profile);
  }
  if (response.ok()) last_degraded_ = degraded;
  return response;
}

Result<api::Response> TcpClient::Call(const api::Request& request) {
  return Call(request, BaseEnvelope());
}

Result<api::Response> TcpClient::Call(const api::Request& request,
                                      const api::RequestEnvelope& envelope) {
  CBIR_RETURN_NOT_OK(Send(request, envelope));
  return Receive();
}

Result<uint64_t> TcpClient::StartSession(const api::QuerySpec& query) {
  api::StartSessionRequest request;
  request.query = query;
  CBIR_ASSIGN_OR_RETURN(
      api::StartSessionResponse response,
      Expect<api::StartSessionResponse>(Call(api::Request(request))));
  return response.session_id;
}

Result<std::vector<int>> TcpClient::Query(uint64_t session_id, int k) {
  api::QueryRequest request;
  request.session_id = session_id;
  request.k = static_cast<int32_t>(k);
  CBIR_ASSIGN_OR_RETURN(api::QueryResponse response,
                        Expect<api::QueryResponse>(Call(api::Request(request))));
  return FromWireRanking(response.ranking);
}

Result<std::vector<int>> TcpClient::Feedback(
    uint64_t session_id, const std::vector<logdb::LogEntry>& round, int k,
    uint32_t seq) {
  api::FeedbackRequest request;
  request.session_id = session_id;
  request.k = static_cast<int32_t>(k);
  request.round = round;
  api::RequestEnvelope envelope = BaseEnvelope();
  if (seq != 0) {
    envelope.has_seq = true;
    envelope.seq = seq;
  }
  CBIR_ASSIGN_OR_RETURN(
      api::FeedbackResponse response,
      Expect<api::FeedbackResponse>(
          Call(api::Request(std::move(request)), envelope)));
  return FromWireRanking(response.ranking);
}

Status TcpClient::EndSession(uint64_t session_id) {
  api::EndSessionRequest request;
  request.session_id = session_id;
  Result<api::EndSessionResponse> response =
      Expect<api::EndSessionResponse>(Call(api::Request(request)));
  return response.status();
}

Result<api::StatsResponse> TcpClient::Stats() {
  return Expect<api::StatsResponse>(Call(api::Request(api::StatsRequest{})));
}

Result<api::MetricsResponse> TcpClient::Metrics() {
  return Expect<api::MetricsResponse>(
      Call(api::Request(api::MetricsRequest{})));
}

Result<api::DescribeResponse> TcpClient::Describe() {
  return Expect<api::DescribeResponse>(
      Call(api::Request(api::DescribeRequest{})));
}

Result<std::vector<api::Candidate>> TcpClient::Candidates(
    const api::QuerySpec& query, int k) {
  api::CandidateRequest request;
  request.query = query;
  request.k = static_cast<int32_t>(k);
  CBIR_ASSIGN_OR_RETURN(
      api::CandidateResponse response,
      Expect<api::CandidateResponse>(Call(api::Request(std::move(request)))));
  return std::move(response.candidates);
}

}  // namespace cbir::net
