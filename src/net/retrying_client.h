#ifndef CBIR_NET_RETRYING_CLIENT_H_
#define CBIR_NET_RETRYING_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/messages.h"
#include "net/fault_injector.h"
#include "net/tcp_client.h"
#include "util/result.h"

namespace cbir::net {

/// \brief Retry policy of a RetryingClient.
struct RetryOptions {
  /// Total tries per RPC (first attempt included). The last failure's
  /// status is what the caller sees.
  int max_attempts = 4;
  /// Exponential backoff with full jitter: attempt n sleeps uniform(0,
  /// min(max_backoff_ms, initial_backoff_ms * multiplier^n)) — the jitter
  /// keeps a fleet of clients from retrying in lockstep against a server
  /// that just came back.
  int initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 500;
  /// Bounds every TCP connect (0 = blocking).
  int connect_timeout_ms = 1000;
  /// Per-RPC budget: socket deadline + protocol-v2 request deadline
  /// (0 = none — but then a dead server is a hang, so keep it set).
  int rpc_timeout_ms = 2000;
  /// Seed of the jitter PRNG (deterministic backoff schedules in tests).
  uint64_t seed = 1;
  /// Stamp every RPC with the 0x10 CRC32 frame checksum (and verify the
  /// echoed checksum on responses). On by default: a client that already
  /// pays for retries wants corruption surfaced as retryable kDataLoss, not
  /// silently decoded garbage.
  bool checksum = true;
};

/// \brief Lifetime counters of a RetryingClient.
struct RetryingClientStats {
  uint64_t rpcs = 0;        ///< logical RPCs issued by the caller
  uint64_t attempts = 0;    ///< wire attempts (>= rpcs)
  uint64_t retries = 0;     ///< attempts after the first
  uint64_t reconnects = 0;  ///< connections re-established
  uint64_t exhausted = 0;   ///< RPCs that failed after max_attempts
};

/// \brief Fault-tolerant wrapper over TcpClient: reconnects, retries with
/// exponential backoff + full jitter, and sequences Feedback so retries are
/// idempotent.
///
/// What retries: kUnavailable (server shedding load — backoff, same
/// connection), kDeadlineExceeded and kIoError (lost reply, dead server,
/// reset connection — reconnect first). Other codes (NotFound,
/// InvalidArgument, ...) are the server's definitive answer and surface
/// immediately.
///
/// Why Feedback retries are safe: every logical Feedback call is assigned
/// one sequence number that all its wire attempts share, and the service
/// applies each (session, seq) at most once — a retry whose original made
/// it through (the reply was what got lost) is answered from the server's
/// idempotency cache, never applied twice.
///
/// Not thread-safe (same contract as TcpClient): one instance per worker.
class RetryingClient {
 public:
  RetryingClient(std::string host, int port, RetryOptions options,
                 FaultInjector* injector = nullptr);

  // Mirrors TcpClient's typed RPC surface. Feedback's `seq`: 0 (the
  // default) allocates the idempotency sequence number from this client's
  // own counter; nonzero uses the caller's — what a router forwarding a
  // session pinned to one backend does, so the sequence stays per-session
  // even when successive rounds ride different pooled clients.
  Result<uint64_t> StartSession(const api::QuerySpec& query);
  Result<std::vector<int>> Query(uint64_t session_id, int k = 0);
  Result<std::vector<int>> Feedback(uint64_t session_id,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k = 0, uint32_t seq = 0);
  Status EndSession(uint64_t session_id);
  Result<api::StatsResponse> Stats();
  Result<api::MetricsResponse> Metrics();
  Result<api::DescribeResponse> Describe();
  Result<std::vector<api::Candidate>> Candidates(const api::QuerySpec& query,
                                                 int k = 0);

  /// True when the last successful RPC's response carried the 0x20 degraded
  /// flag (partial scatter-gather results from a router).
  bool last_degraded() const {
    return client_.has_value() && client_->last_degraded();
  }

  RetryingClientStats stats() const { return stats_; }
  const RetryOptions& options() const { return options_; }

 private:
  /// Connected client, (re)establishing the connection as needed.
  Result<TcpClient*> EnsureConnected();
  /// True when `status` is worth another attempt (and whether the
  /// connection must be rebuilt first).
  static bool ShouldRetry(const Status& status, bool* reconnect);
  /// Sleeps the jittered backoff for attempt number `attempt` (0-based).
  void Backoff(int attempt);
  double NextUniform();

  /// Runs `fn(client)` with the retry loop around it.
  template <typename T, typename Fn>
  Result<T> WithRetry(Fn&& fn);

  std::string host_;
  int port_;
  RetryOptions options_;
  FaultInjector* injector_;
  std::optional<TcpClient> client_;
  uint64_t rng_state_;
  uint32_t next_seq_ = 1;
  RetryingClientStats stats_;
};

}  // namespace cbir::net

#endif  // CBIR_NET_RETRYING_CLIENT_H_
