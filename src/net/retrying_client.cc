#include "net/retrying_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace cbir::net {

namespace {

/// Registry twins of RetryingClientStats — aggregated across every client in
/// the process, where the struct is per-instance.
struct ClientMetrics {
  obs::Counter* rpcs;
  obs::Counter* attempts;
  obs::Counter* retries;
  obs::Counter* reconnects;
  obs::Counter* exhausted;
};

const ClientMetrics& RegistryCounters() {
  static const ClientMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    ClientMetrics m;
    m.rpcs = r.GetCounter("cbir_client_rpcs_total");
    m.attempts = r.GetCounter("cbir_client_attempts_total");
    m.retries = r.GetCounter("cbir_client_retries_total");
    m.reconnects = r.GetCounter("cbir_client_reconnects_total");
    m.exhausted = r.GetCounter("cbir_client_rpcs_exhausted_total");
    return m;
  }();
  return metrics;
}

}  // namespace

RetryingClient::RetryingClient(std::string host, int port,
                               RetryOptions options, FaultInjector* injector)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      injector_(injector),
      rng_state_(options.seed == 0 ? 1 : options.seed) {}

double RetryingClient::NextUniform() {
  rng_state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

Result<TcpClient*> RetryingClient::EnsureConnected() {
  if (client_.has_value() && client_->connected()) return &*client_;
  if (client_.has_value()) {
    client_.reset();
    ++stats_.reconnects;
    RegistryCounters().reconnects->Increment();
  }
  CBIR_ASSIGN_OR_RETURN(
      TcpClient client,
      TcpClient::Connect(host_, port_, options_.connect_timeout_ms));
  if (options_.rpc_timeout_ms > 0) {
    CBIR_RETURN_NOT_OK(client.ArmDeadlines(options_.rpc_timeout_ms));
  }
  client.set_fault_injector(injector_);
  if (options_.checksum) client.EnableChecksum();
  client_.emplace(std::move(client));
  return &*client_;
}

bool RetryingClient::ShouldRetry(const Status& status, bool* reconnect) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      // The server shed us on purpose; the connection itself is healthy.
      *reconnect = false;
      return true;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIoError:
      // A lost reply, a dead server, or a reset stream: the connection may
      // be desynchronized (a late reply to the timed-out request could be
      // mistaken for the retry's), so always rebuild it.
      *reconnect = true;
      return true;
    case StatusCode::kDataLoss:
      // A frame failed its CRC — the bytes on this connection cannot be
      // trusted, so rebuild and resend (idempotency seq makes that safe
      // even for Feedback).
      *reconnect = true;
      return true;
    default:
      return false;
  }
}

void RetryingClient::Backoff(int attempt) {
  const double cap = static_cast<double>(options_.max_backoff_ms);
  const double grown = static_cast<double>(options_.initial_backoff_ms) *
                       std::pow(options_.backoff_multiplier, attempt);
  const double ceiling = std::min(cap, grown);
  const int sleep_ms = static_cast<int>(NextUniform() * ceiling);
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

template <typename T, typename Fn>
Result<T> RetryingClient::WithRetry(Fn&& fn) {
  ++stats_.rpcs;
  RegistryCounters().rpcs->Increment();
  Result<T> out = Status::Internal("retrying client: no attempt ran");
  const int attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      RegistryCounters().retries->Increment();
      Backoff(attempt - 1);
    }
    ++stats_.attempts;
    RegistryCounters().attempts->Increment();
    Result<TcpClient*> client = EnsureConnected();
    out = client.ok() ? fn(*client.value()) : Result<T>(client.status());
    if (out.ok()) return out;
    bool reconnect = false;
    if (!ShouldRetry(out.status(), &reconnect)) return out;
    if (reconnect && client_.has_value()) {
      client_->Close();  // EnsureConnected rebuilds on the next attempt
    }
  }
  ++stats_.exhausted;
  RegistryCounters().exhausted->Increment();
  return out;
}

Result<uint64_t> RetryingClient::StartSession(const api::QuerySpec& query) {
  return WithRetry<uint64_t>(
      [&](TcpClient& client) { return client.StartSession(query); });
}

Result<std::vector<int>> RetryingClient::Query(uint64_t session_id, int k) {
  return WithRetry<std::vector<int>>(
      [&](TcpClient& client) { return client.Query(session_id, k); });
}

Result<std::vector<int>> RetryingClient::Feedback(
    uint64_t session_id, const std::vector<logdb::LogEntry>& round, int k,
    uint32_t seq) {
  // One seq per *logical* call: every wire attempt of this Feedback carries
  // the same number, so the service applies it at most once no matter how
  // many retries it takes to hear the answer. A caller-supplied (nonzero)
  // seq takes precedence — the router's per-session counter.
  if (seq == 0) {
    seq = next_seq_++;
    if (next_seq_ == 0) next_seq_ = 1;  // 0 means "no seq" on the wire
  }
  return WithRetry<std::vector<int>>([&](TcpClient& client) {
    return client.Feedback(session_id, round, k, seq);
  });
}

Status RetryingClient::EndSession(uint64_t session_id) {
  // A retried EndSession whose original landed gets NotFound back — the
  // session is gone, which is exactly what the caller asked for.
  Result<bool> out = WithRetry<bool>([&](TcpClient& client) -> Result<bool> {
    CBIR_RETURN_NOT_OK(client.EndSession(session_id));
    return true;
  });
  return out.ok() ? Status::OK() : out.status();
}

Result<api::StatsResponse> RetryingClient::Stats() {
  return WithRetry<api::StatsResponse>(
      [&](TcpClient& client) { return client.Stats(); });
}

Result<api::MetricsResponse> RetryingClient::Metrics() {
  return WithRetry<api::MetricsResponse>(
      [&](TcpClient& client) { return client.Metrics(); });
}

Result<api::DescribeResponse> RetryingClient::Describe() {
  return WithRetry<api::DescribeResponse>(
      [&](TcpClient& client) { return client.Describe(); });
}

Result<std::vector<api::Candidate>> RetryingClient::Candidates(
    const api::QuerySpec& query, int k) {
  return WithRetry<std::vector<api::Candidate>>(
      [&](TcpClient& client) { return client.Candidates(query, k); });
}

}  // namespace cbir::net
