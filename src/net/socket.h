#ifndef CBIR_NET_SOCKET_H_
#define CBIR_NET_SOCKET_H_

#include <cstddef>
#include <string>

#include "util/result.h"

namespace cbir::net {

/// \brief Move-only RAII wrapper over one POSIX TCP socket.
///
/// Thin by design: exactly the operations the frame-oriented server/client
/// loops need (connect, listen/accept, full-buffer reads and writes, an
/// unblocking shutdown), all reported as typed Status instead of errno
/// spelunking at every call site. Reads and writes retry on EINTR and
/// partial transfers; SIGPIPE is avoided via MSG_NOSIGNAL.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IP or resolvable name).
  static Result<Socket> ConnectTcp(const std::string& host, int port);

  /// Binds + listens on host:port (port 0 = OS-assigned ephemeral port;
  /// read it back with local_port). SO_REUSEADDR is set so restarts do not
  /// trip over TIME_WAIT.
  static Result<Socket> ListenTcp(const std::string& host, int port,
                                  int backlog);

  /// Blocks for the next connection. Fails with FailedPrecondition once the
  /// socket has been Shutdown() (the server's stop path).
  Result<Socket> Accept() const;

  /// Writes the whole buffer (looping over partial writes).
  Status WriteAll(const void* data, size_t size) const;

  /// Reads exactly `size` bytes. A peer close mid-buffer is an IoError;
  /// a peer close before the first byte sets `*clean_eof` (when given) and
  /// returns OK with the buffer untouched — the frame-boundary EOF a server
  /// loop treats as a normal disconnect.
  Status ReadFully(void* data, size_t size, bool* clean_eof = nullptr) const;

  /// shutdown(2) both directions: unblocks any thread parked in Accept or
  /// ReadFully on this socket (they fail / see EOF). Safe to call from
  /// another thread; Close() is not.
  void Shutdown() const;

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// The locally bound port (after ListenTcp), or -1 on error.
  int local_port() const;

 private:
  int fd_ = -1;
};

}  // namespace cbir::net

#endif  // CBIR_NET_SOCKET_H_
