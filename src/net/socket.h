#ifndef CBIR_NET_SOCKET_H_
#define CBIR_NET_SOCKET_H_

#include <cstddef>
#include <string>

#include "util/result.h"

namespace cbir::net {

/// \brief Move-only RAII wrapper over one POSIX TCP socket.
///
/// Thin by design: exactly the operations the frame-oriented server/client
/// loops need (connect, listen/accept, full-buffer reads and writes, an
/// unblocking shutdown), all reported as typed Status instead of errno
/// spelunking at every call site. Reads and writes retry on EINTR and
/// partial transfers; SIGPIPE is avoided via MSG_NOSIGNAL.
///
/// Deadlines: ConnectTcp takes an optional bounded-connect timeout, and
/// SetReadTimeout/SetWriteTimeout arm per-call kernel timeouts
/// (SO_RCVTIMEO/SO_SNDTIMEO). An expired timeout surfaces as
/// kDeadlineExceeded — never as a hang or a generic IoError — so callers
/// can distinguish "slow peer" from "broken peer" and retry or shed.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IP or resolvable name).
  /// `timeout_ms` > 0 bounds the connect: the socket connects in
  /// non-blocking mode, waits for writability up to the deadline, and
  /// returns kDeadlineExceeded if the peer has not answered — an
  /// unreachable server costs `timeout_ms`, not the kernel's minutes-long
  /// SYN retry schedule. 0 keeps the classic blocking connect.
  static Result<Socket> ConnectTcp(const std::string& host, int port,
                                   int timeout_ms = 0);

  /// Binds + listens on host:port (port 0 = OS-assigned ephemeral port;
  /// read it back with local_port). SO_REUSEADDR is set so restarts do not
  /// trip over TIME_WAIT.
  static Result<Socket> ListenTcp(const std::string& host, int port,
                                  int backlog);

  /// Blocks for the next connection. Fails with FailedPrecondition once the
  /// socket has been Shutdown() (the server's stop path).
  Result<Socket> Accept() const;

  /// Writes the whole buffer (looping over partial writes).
  Status WriteAll(const void* data, size_t size) const;

  /// Reads exactly `size` bytes. A peer close mid-buffer is an IoError;
  /// a peer close before the first byte sets `*clean_eof` (when given) and
  /// returns OK with the buffer untouched — the frame-boundary EOF a server
  /// loop treats as a normal disconnect.
  Status ReadFully(void* data, size_t size, bool* clean_eof = nullptr) const;

  /// Arms a kernel receive timeout: a recv that sees no byte for
  /// `timeout_ms` makes ReadFully return kDeadlineExceeded instead of
  /// blocking forever. 0 disarms. The timeout is per-recv-call, so a
  /// trickling peer can exceed it in aggregate — the serving loops treat
  /// any expiry as a dead or idle peer and drop the connection.
  Status SetReadTimeout(int timeout_ms) const;

  /// Arms a kernel send timeout (SO_SNDTIMEO): WriteAll returns
  /// kDeadlineExceeded when the peer stops draining its window. 0 disarms.
  Status SetWriteTimeout(int timeout_ms) const;

  /// shutdown(2) both directions: unblocks any thread parked in Accept or
  /// ReadFully on this socket (they fail / see EOF). Safe to call from
  /// another thread; Close() is not.
  void Shutdown() const;

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// The locally bound port (after ListenTcp), or -1 on error.
  int local_port() const;

 private:
  int fd_ = -1;
};

}  // namespace cbir::net

#endif  // CBIR_NET_SOCKET_H_
