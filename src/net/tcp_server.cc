#include "net/tcp_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "api/codec.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace cbir::net {

namespace {

/// Registry series the transport writes. Looked up once (registration takes
/// the registry mutex); every update after that is a relaxed fetch_add.
struct NetMetrics {
  obs::Counter* connections_accepted;
  obs::Counter* connections_closed;
  obs::Counter* connections_reaped_idle;
  obs::Counter* requests;
  obs::Counter* responses_error;
  obs::Counter* decode_errors;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
  obs::LatencyHistogram* stage_decode;
  obs::LatencyHistogram* stage_encode;
  obs::LatencyHistogram* stage_write;
  obs::LatencyHistogram* request_us;
};

const NetMetrics& Metrics() {
  static const NetMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    NetMetrics m;
    m.connections_accepted =
        r.GetCounter("cbir_net_connections_accepted_total");
    m.connections_closed = r.GetCounter("cbir_net_connections_closed_total");
    m.connections_reaped_idle =
        r.GetCounter("cbir_net_connections_reaped_idle_total");
    m.requests = r.GetCounter("cbir_net_requests_total");
    m.responses_error = r.GetCounter("cbir_net_responses_error_total");
    m.decode_errors = r.GetCounter("cbir_net_decode_errors_total");
    m.bytes_read = r.GetCounter("cbir_net_bytes_read_total");
    m.bytes_written = r.GetCounter("cbir_net_bytes_written_total");
    m.stage_decode = r.GetHistogram("cbir_request_stage_us", "stage", "decode");
    m.stage_encode = r.GetHistogram("cbir_request_stage_us", "stage", "encode");
    m.stage_write = r.GetHistogram("cbir_request_stage_us", "stage", "write");
    m.request_us = r.GetHistogram("cbir_net_request_us");
    r.SetHelp("cbir_net_requests_total",
              "Requests fully served (decoded, dispatched, response "
              "written).");
    r.SetHelp("cbir_net_responses_error_total",
              "Responses written with a non-OK wire status, including "
              "deadline sheds and decode-error replies.");
    r.SetHelp("cbir_net_decode_errors_total",
              "Frames that failed to decode (connection closed after).");
    r.SetHelp("cbir_net_request_us",
              "End-to-end server latency per request, decode through "
              "socket write.");
    r.SetHelp("cbir_request_stage_us",
              "Per-stage request latency, labeled by stage.");
    return m;
  }();
  return metrics;
}

/// Every response alternative carries a `status` field; this is the one
/// place the transport needs it generically (error accounting + the flight
/// recorder's capture policy).
const api::WireStatus& StatusOf(const api::Response& response) {
  return *std::visit(
      [](const auto& message) { return &message.status; }, response);
}

/// Server-side trace ids for requests whose client sent none: a counter fed
/// through a 64-bit mix (splitmix64 finalizer) so ids are unique and don't
/// collide with small client-chosen ids.
uint64_t GenerateTraceId() {
  static std::atomic<uint64_t> next{1};
  uint64_t x = next.fetch_add(1, std::memory_order_relaxed);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TcpServer::TcpServer(api::RequestHandler* handler, TcpServerOptions options)
    : handler_(handler),
      options_(std::move(options)),
      slow_log_(options_.slow_request_ms, options_.slow_request_sink) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("tcp server: already started");
  }
  CBIR_ASSIGN_OR_RETURN(
      listener_,
      Socket::ListenTcp(options_.host, options_.port, options_.backlog));
  port_ = listener_.local_port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(); the loop sees stopping_ and exits.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Graceful drain. Idle connections (parked in recv between frames) are
  // unblocked immediately — there is no response in flight to tear. Busy
  // ones are left alone for up to drain_timeout_ms so the response frame
  // they are computing or writing reaches the wire whole; after each
  // finishes its current request it sees stopping_ and exits on its own.
  {
    util::MutexLock lock(connections_mu_);
    for (auto& connection : connections_) {
      if (!connection->busy.load(std::memory_order_acquire)) {
        connection->socket.Shutdown();
      }
    }
  }
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(options_.drain_timeout_ms, 0));
  for (;;) {
    bool any_busy = false;
    {
      util::MutexLock lock(connections_mu_);
      for (auto& connection : connections_) {
        if (!connection->done.load(std::memory_order_acquire) &&
            connection->busy.load(std::memory_order_acquire)) {
          any_busy = true;
          break;
        }
      }
    }
    if (!any_busy || std::chrono::steady_clock::now() >= drain_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Hard stop for whatever outlived the drain window, then join everything.
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    util::MutexLock lock(connections_mu_);
    for (auto& connection : connections_) connection->socket.Shutdown();
    to_join.swap(connections_);
  }
  for (auto& connection : to_join) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure (e.g. EMFILE when fds run out): reap
      // finished connections — that releases their fds — and back off
      // instead of busy-spinning on the failing accept.
      {
        util::MutexLock lock(connections_mu_);
        ReapFinishedLocked();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const uint64_t connection_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    Metrics().connections_accepted->Increment();
    if (options_.connection_observer) {
      options_.connection_observer("accepted", connection_id);
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(accepted).value();
    connection->id = connection_id;
    Connection* raw = connection.get();
    {
      util::MutexLock lock(connections_mu_);
      ReapFinishedLocked();
      connections_.push_back(std::move(connection));
    }
    // The thread starts after the connection is registered so Stop() can
    // always see (and shut down) every socket a live thread reads from.
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void TcpServer::ReapFinishedLocked() {
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i]->done.load(std::memory_order_acquire)) {
      if (connections_[i]->thread.joinable()) connections_[i]->thread.join();
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void TcpServer::ServeConnection(Connection* connection) {
  const Socket& socket = connection->socket;
  if (options_.idle_timeout_ms > 0) {
    // The reaper needs no extra thread: the kernel timeout turns a silent
    // peer into a kDeadlineExceeded on the next header read.
    socket.SetReadTimeout(options_.idle_timeout_ms);
  }
  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  std::vector<uint8_t> body;
  while (!stopping_.load(std::memory_order_acquire)) {
    bool clean_eof = false;
    if (const Status s =
            socket.ReadFully(header.data(), header.size(), &clean_eof);
        !s.ok() || clean_eof) {
      if (s.code() == StatusCode::kDeadlineExceeded) {
        // No frame within the idle window (or one trickling impossibly
        // slowly): reap the connection, freeing its thread and fd.
        connections_reaped_idle_.fetch_add(1, std::memory_order_relaxed);
        Metrics().connections_reaped_idle->Increment();
        if (options_.connection_observer) {
          options_.connection_observer("reaped_idle", connection->id);
        }
      }
      break;  // disconnect (clean between frames, or torn — either way done)
    }
    Metrics().bytes_read->Increment(header.size());
    Result<api::FrameHeader> frame =
        api::DecodeFrameHeader(header.data(), header.size());
    Result<api::Request> request =
        Status::Internal("tcp server: request not decoded");
    api::RequestEnvelope envelope;
    uint64_t decode_us = 0;
    if (frame.ok()) {
      body.resize(frame->body_size);
      if (!socket.ReadFully(body.data(), body.size()).ok()) break;
      Metrics().bytes_read->Increment(body.size());
      const Stopwatch decode_watch;
      request =
          api::DecodeRequestBody(*frame, body.data(), body.size(), &envelope);
      decode_us = static_cast<uint64_t>(decode_watch.ElapsedSeconds() * 1e6);
      Metrics().stage_decode->Record(static_cast<double>(decode_us));
    } else {
      request = frame.status();
    }
    // The frame is fully read: from here to the end of the response write
    // the connection is busy, and Stop()'s drain leaves it alone.
    connection->busy.store(true, std::memory_order_release);
    const Stopwatch dispatch_watch;
    if (!request.ok()) {
      // Malformed frame: answer with the typed error, then close — after a
      // framing error the byte stream cannot be resynchronized.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().decode_errors->Increment();
      Metrics().responses_error->Increment();
      api::ErrorResponse error;
      error.status = api::ToWireStatus(request.status());
      if (options_.flight_recorder != nullptr) {
        // Even an undecodable frame leaves a flight record (error capture
        // is 100%): a server-generated trace id, the decode span, and the
        // raw type byte the frame claimed (0 when the header itself died).
        obs::RequestTrace trace(GenerateTraceId());
        trace.AddSpan("decode", 0, decode_us, 0);
        options_.flight_recorder->Record(
            trace, frame.ok() ? static_cast<uint8_t>(frame->type) : 0,
            error.status.code, decode_us);
      }
      const std::vector<uint8_t> reply =
          api::EncodeResponse(api::Response(std::move(error)));
      socket.WriteAll(reply.data(), reply.size());  // best-effort
      connection->busy.store(false, std::memory_order_release);
      break;
    }
    // The request's span tree: the client's trace id when the envelope
    // carries one, a server-generated id otherwise (every slow-log line has
    // an id to grep for either way). TraceScope makes it the thread's
    // current trace, so the serve layer's spans attach without the trace
    // being threaded through the dispatcher's signatures.
    obs::RequestTrace trace(envelope.has_trace_id ? envelope.trace_id
                                                  : GenerateTraceId());
    trace.AddSpan("decode", 0, decode_us, 0);
    bool wrote = false;
    uint64_t total_us = 0;
    uint32_t status_code = 0;
    {
      obs::TraceScope trace_scope(&trace);
      api::ResponseContext context;
      const api::Response response = handler_->HandleRequest(
          request.value(), envelope,
          static_cast<int64_t>(dispatch_watch.ElapsedSeconds() * 1e3),
          &context);
      status_code = StatusOf(response).code;
      // The response's transport flags: degraded when the handler says so,
      // the checksum trailer echoed whenever the request carried one.
      api::ResponseFrameOptions frame_options;
      frame_options.degraded = context.degraded;
      frame_options.checksum = envelope.has_checksum;
      api::ResponseProfile profile;
      std::vector<uint8_t> reply;
      {
        obs::ScopedSpan span("encode", Metrics().stage_encode);
        if (envelope.has_profile) {
          // EXPLAIN: serialize the trace as it stands — every stage up to
          // and including solve; encode/write have not happened yet and so
          // cannot appear in their own payload.
          profile.trace_id = trace.trace_id();
          profile.total_us = decode_us + trace.elapsed_us();
          profile.spans.reserve(trace.spans().size());
          for (const obs::TraceSpan& s : trace.spans()) {
            profile.spans.push_back(
                {s.name, s.start_us, s.duration_us,
                 static_cast<uint8_t>(std::clamp(s.depth, 0, 255))});
          }
          profile.counters.reserve(trace.counters().size());
          for (const obs::TraceCounter& c : trace.counters()) {
            profile.counters.push_back({c.name, c.value});
          }
          frame_options.profile = &profile;
        }
        reply = api::EncodeResponse(response, frame_options);
      }
      if (reply.size() > api::kFrameHeaderBytes + api::kMaxFrameBody) {
        // The peer's decoder would reject this frame and desynchronize; send
        // a typed error of bounded size instead (e.g. a full-corpus ranking
        // at many millions of rows — ask for a smaller k / bounded depth).
        api::ErrorResponse too_big;
        too_big.status = api::ToWireStatus(Status::OutOfRange(
            "tcp server: response frame exceeds the protocol body limit"));
        status_code = too_big.status.code;
        api::ResponseFrameOptions error_options;
        error_options.checksum = envelope.has_checksum;
        reply = api::EncodeResponse(api::Response(std::move(too_big)),
                                    error_options);
      }
      {
        obs::ScopedSpan span("write", Metrics().stage_write);
        wrote = socket.WriteAll(reply.data(), reply.size()).ok();
      }
      if (wrote) Metrics().bytes_written->Increment(reply.size());
      total_us = decode_us + trace.elapsed_us();
    }
    connection->busy.store(false, std::memory_order_release);
    if (!wrote) break;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    Metrics().requests->Increment();
    if (status_code != 0) Metrics().responses_error->Increment();
    Metrics().request_us->Record(static_cast<double>(total_us));
    slow_log_.MaybeLog(trace, total_us);
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Record(
          trace, static_cast<uint8_t>(api::TypeOf(request.value())),
          status_code, total_us);
    }
  }
  // Shutdown (not Close) so the peer sees EOF now; Stop() may concurrently
  // Shutdown the same fd, which is safe where a close/reuse race is not.
  // The fd itself is released when the connection is reaped or at Stop().
  socket.Shutdown();
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().connections_closed->Increment();
  if (options_.connection_observer) {
    options_.connection_observer("closed", connection->id);
  }
  connection->done.store(true, std::memory_order_release);
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_closed =
      connections_closed_.load(std::memory_order_relaxed);
  stats.connections_reaped_idle =
      connections_reaped_idle_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cbir::net
