#ifndef CBIR_NET_TCP_SERVER_H_
#define CBIR_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/handler.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/sync.h"

namespace cbir::net {

/// \brief TCP server knobs.
struct TcpServerOptions {
  /// Bind address. The default stays off the open network; bind 0.0.0.0
  /// explicitly to serve remote hosts.
  std::string host = "127.0.0.1";
  /// 0 = OS-assigned ephemeral port (read back with port() after Start —
  /// what the tests and the loopback bench use).
  int port = 0;
  int backlog = 64;
  /// Idle-connection reaper: a connection that sends no frame for this long
  /// is dropped (0 = never). Protects the per-connection threads from
  /// clients that connect and go silent.
  int idle_timeout_ms = 0;
  /// Stop()'s graceful-drain window: connections mid-request get this long
  /// to finish dispatching and write their response in full before their
  /// socket is shut down. Idle connections (between frames) are shut down
  /// immediately. 0 = no drain, the old hard stop.
  int drain_timeout_ms = 1000;
  /// Requests whose end-to-end server time (decode through socket write)
  /// reaches this threshold get their full span tree dumped through the
  /// slow-request log (exactly at threshold triggers; 0 disables).
  int slow_request_ms = 0;
  /// Where slow-request span trees go; null = stderr.
  obs::SlowRequestLog::Sink slow_request_sink;
  /// Every completed request (including decode errors) is offered to this
  /// recorder — errors and sheds always captured, healthy traffic sampled.
  /// Caller-owned, must outlive the server; null = off.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Invoked on connection lifecycle events ("accepted", "closed",
  /// "reaped_idle") with the server-assigned connection id. Called from the
  /// accept/connection threads — keep it cheap and thread-safe. Null = off.
  std::function<void(const char* event, uint64_t connection_id)>
      connection_observer;
};

/// \brief Lifetime counters of a TcpServer.
struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_reaped_idle = 0;  ///< dropped by the idle timeout
  uint64_t requests_served = 0;
  uint64_t decode_errors = 0;  ///< malformed frames (connection then closed)
};

/// \brief Blocking thread-per-connection TCP transport over an
/// api::RequestHandler (the single-node api::Dispatcher or the multi-node
/// router::ShardRouter — the transport cannot tell them apart).
///
/// Each accepted connection gets one thread running a read-dispatch-write
/// loop over the api codec's length-prefixed frames. Requests on one
/// connection are processed strictly in order, which gives clients free
/// pipelining: send N frames back-to-back, then read N responses. Different
/// connections dispatch concurrently — the concurrency story is the
/// RetrievalService's (per-session locks, sharded cache), the transport adds
/// no global serialization.
///
/// Malformed bytes never kill the process: a frame that fails to decode is
/// answered with an api::ErrorResponse carrying the typed decode error, and
/// the connection is closed (after a framing error the stream cannot be
/// trusted).
///
/// Stop() (and the destructor) shuts down the listener and every live
/// connection socket, then joins all threads — a clean shutdown with no
/// leaked threads, TSan-verified.
class TcpServer {
 public:
  /// `handler` must outlive the server.
  TcpServer(api::RequestHandler* handler, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Fails (typed) when the
  /// address is unavailable; calling Start twice is a FailedPrecondition.
  Status Start();

  /// Stops accepting, drains, and joins every connection thread. Idempotent.
  ///
  /// Drain order: connections idle between frames are unblocked right away;
  /// connections mid-request (dispatching or writing a response) get up to
  /// drain_timeout_ms to put the complete response frame on the wire before
  /// their socket is shut down — a Stop never tears a response mid-frame.
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The server's slow-request log — /slowz serves its Recent() lines.
  const obs::SlowRequestLog& slow_log() const { return slow_log_; }

  TcpServerStats stats() const;

 private:
  /// One live connection: the socket plus its completion flag (reaped
  /// opportunistically by the accept loop, joined at Stop). `busy` is true
  /// exactly while a fully-read request is being dispatched or its response
  /// written — the window Stop()'s drain must not cut into.
  struct Connection {
    Socket socket;
    std::thread thread;
    uint64_t id = 0;  ///< 1-based accept order, for the observer/logs
    std::atomic<bool> done{false};
    std::atomic<bool> busy{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Joins finished connection threads (cheap: they are already done).
  void ReapFinishedLocked() CBIR_REQUIRES(connections_mu_);

  api::RequestHandler* handler_;
  TcpServerOptions options_;

  Socket listener_;
  int port_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  util::Mutex connections_mu_{util::LockRank::kTcpConnections,
                              "tcp_server_connections"};
  std::vector<std::unique_ptr<Connection>> connections_
      CBIR_GUARDED_BY(connections_mu_);

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> connections_reaped_idle_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> decode_errors_{0};

  obs::SlowRequestLog slow_log_;
};

}  // namespace cbir::net

#endif  // CBIR_NET_TCP_SERVER_H_
