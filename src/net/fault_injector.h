#ifndef CBIR_NET_FAULT_INJECTOR_H_
#define CBIR_NET_FAULT_INJECTOR_H_

#include <cstdint>

#include "net/socket.h"
#include "util/status.h"
#include "util/sync.h"

namespace cbir::net {

/// \brief Fault rates of a FaultInjector. Probabilities are per frame and
/// evaluated in the order listed: at most one fault fires per frame (a
/// delay, which only slows the frame down, may additionally precede it).
struct FaultInjectorOptions {
  /// Seed of the deterministic PRNG — the same seed over the same call
  /// sequence injects the same faults, so chaos failures reproduce.
  uint64_t seed = 1;

  double delay_probability = 0.0;  ///< sleep before sending
  int max_delay_ms = 5;            ///< delay is uniform in [0, max]

  double drop_probability = 0.0;   ///< frame silently never sent
  double reset_probability = 0.0;  ///< connection shut down instead of send
  double partial_write_probability = 0.0;  ///< prefix sent, then shut down
  double bit_flip_probability = 0.0;       ///< one bit corrupted in flight
};

/// \brief How often each fault actually fired.
struct FaultInjectorStats {
  uint64_t frames = 0;  ///< frames offered to the injector
  uint64_t delays = 0;
  uint64_t drops = 0;
  uint64_t resets = 0;
  uint64_t partial_writes = 0;
  uint64_t bit_flips = 0;

  uint64_t faults() const {
    return drops + resets + partial_writes + bit_flips;
  }
};

/// \brief Chaos transport for client-side fault injection.
///
/// Sits between TcpClient and its socket: every outgoing frame passes
/// through SendFrame, which delivers it intact, delays it, drops it,
/// corrupts one bit, sends only a prefix, or resets the connection — the
/// misbehaviors of a real degraded network, produced deterministically from
/// a seed. The injected faults are *silent* (SendFrame reports OK for a
/// dropped frame, exactly like a lossy network would), so the client's
/// deadline/retry machinery — not the injector — must turn them into
/// recoveries; a client that hangs under injection has a real bug.
///
/// Thread-safe: driver threads may share one injector (stats and the PRNG
/// are guarded); the frame rates then interleave across threads.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options);

  /// Sends one frame over `socket`, possibly injecting a fault. The return
  /// value is what the transport's plain WriteAll would have reported for
  /// the bytes actually sent — a silent fault reports OK.
  Status SendFrame(const Socket& socket, const uint8_t* data, size_t size);

  FaultInjectorStats stats() const;
  const FaultInjectorOptions& options() const { return options_; }

 private:
  /// Deterministic uniform draw in [0, 1) (splitmix64 under the lock).
  double NextUniform() CBIR_REQUIRES(mu_);
  /// Deterministic draw in [0, n).
  uint64_t NextBelow(uint64_t n) CBIR_REQUIRES(mu_);

  FaultInjectorOptions options_;
  mutable util::Mutex mu_{util::LockRank::kFaultInjector, "fault_injector"};
  uint64_t rng_state_ CBIR_GUARDED_BY(mu_);
  FaultInjectorStats stats_ CBIR_GUARDED_BY(mu_);
};

}  // namespace cbir::net

#endif  // CBIR_NET_FAULT_INJECTOR_H_
