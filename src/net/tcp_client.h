#ifndef CBIR_NET_TCP_CLIENT_H_
#define CBIR_NET_TCP_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/messages.h"
#include "net/fault_injector.h"
#include "net/socket.h"
#include "util/result.h"

namespace cbir::net {

/// \brief Blocking client for a net::TcpServer.
///
/// Two layers:
///  - Send()/Receive(): raw frame pipelining. The server answers strictly in
///    order, so a client may Send any number of requests before draining the
///    responses — one round trip for a whole feedback session if it wants.
///  - Typed RPCs (StartSession/Query/Feedback/EndSession/Stats): one
///    request-response round trip each, mirroring serve::RetrievalService's
///    signatures. A non-OK wire status comes back as the equivalent typed
///    Status (StatusCodeFromWireCode), so remote errors are indistinguishable
///    from in-process ones — `client.Query(sid)` on an ended session returns
///    NotFound exactly like `service.Query(sid)` does.
///
/// Not thread-safe: one connection serves one thread (open one client per
/// worker, the way examples/load_driver.cpp --remote does).
class TcpClient {
 public:
  /// `connect_timeout_ms` > 0 bounds the TCP connect (kDeadlineExceeded on
  /// expiry); 0 = the kernel's default blocking connect.
  static Result<TcpClient> Connect(const std::string& host, int port,
                                   int connect_timeout_ms = 0);

  /// Parses "host:port" (e.g. "127.0.0.1:7345").
  static Result<TcpClient> ConnectEndpoint(const std::string& endpoint,
                                           int connect_timeout_ms = 0);

  /// Arms deadlines on every subsequent RPC: socket read/write timeouts (a
  /// dead or stalled server turns into kDeadlineExceeded instead of a
  /// hang), and each typed RPC carries `rpc_timeout_ms` as its protocol-v2
  /// deadline so an overloaded server sheds it rather than serving into a
  /// budget the client has given up on. 0 disarms both.
  Status ArmDeadlines(int rpc_timeout_ms);

  /// Routes every outgoing frame through `injector` (chaos testing; null
  /// restores the plain transport). The injector must outlive the client.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Opt-in tracing: every subsequent typed RPC stamps its envelope with a
  /// fresh trace id (0x04 flag), and trace_id() returns the one used last —
  /// the handle for matching a client-side outlier to the server's
  /// slow-request log. Off by default, so untraced traffic stays
  /// byte-identical to what a v1 client sends.
  void EnableTracing(bool on = true) { tracing_ = on; }
  uint64_t last_trace_id() const { return last_trace_id_; }

  /// Opt-in EXPLAIN: every subsequent typed RPC sets the 0x08 profile flag,
  /// asking the server to attach its per-query profile block (stage micros
  /// + work counters) to the response. last_profile() holds the most recent
  /// one (empty when the last response carried none). Off by default —
  /// unprofiled traffic stays byte-identical to a v1 client's.
  void EnableProfiling(bool on = true) { profiling_ = on; }
  const std::optional<api::ResponseProfile>& last_profile() const {
    return last_profile_;
  }

  /// Opt-in integrity: every subsequent typed RPC sets the 0x10 checksum
  /// flag (CRC32 trailer over the whole frame), and the server echoes the
  /// flag on its response, which Receive() verifies — a flipped bit on
  /// either leg surfaces as typed kDataLoss instead of silent corruption.
  /// Off by default, so unchecked traffic stays byte-identical.
  void EnableChecksum(bool on = true) { checksum_ = on; }

  /// True when the last received response carried the 0x20 degraded flag —
  /// a router answered from a partial shard set. Cleared by every Receive.
  bool last_degraded() const { return last_degraded_; }

  // --- raw pipelining layer -----------------------------------------------
  Status Send(const api::Request& request);
  Status Send(const api::Request& request,
              const api::RequestEnvelope& envelope);
  Result<api::Response> Receive();
  /// Send + Receive in one call.
  Result<api::Response> Call(const api::Request& request);
  Result<api::Response> Call(const api::Request& request,
                             const api::RequestEnvelope& envelope);

  // --- typed RPCs ---------------------------------------------------------
  Result<uint64_t> StartSession(const api::QuerySpec& query);
  Result<std::vector<int>> Query(uint64_t session_id, int k = 0);
  /// `seq` (nonzero) rides the v2 envelope into the service's idempotent
  /// Feedback path: a retry resending the same seq is applied at most once.
  Result<std::vector<int>> Feedback(uint64_t session_id,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k = 0, uint32_t seq = 0);
  Status EndSession(uint64_t session_id);
  Result<api::StatsResponse> Stats();
  /// Full dump of the server's metrics registry (counters, gauges, stage
  /// histograms) — the wire twin of the --metrics-port exposition.
  Result<api::MetricsResponse> Metrics();
  /// The server's corpus/config self-description (size, dims, scheme, index)
  /// — connect-time compatibility handshake, and cheap enough to double as a
  /// health probe.
  Result<api::DescribeResponse> Describe();
  /// Stateless first-round scan: top-k candidates with distances for an
  /// arbitrary query, no session created — what a router scatters to shards.
  Result<std::vector<api::Candidate>> Candidates(const api::QuerySpec& query,
                                                 int k = 0);

  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

 private:
  explicit TcpClient(Socket socket) : socket_(std::move(socket)) {}

  /// The envelope typed RPCs attach (the armed deadline plus, when tracing
  /// is on, a fresh trace id; seq added per call).
  api::RequestEnvelope BaseEnvelope();

  Socket socket_;
  int rpc_timeout_ms_ = 0;
  bool tracing_ = false;
  bool profiling_ = false;
  bool checksum_ = false;
  bool last_degraded_ = false;
  uint64_t last_trace_id_ = 0;
  std::optional<api::ResponseProfile> last_profile_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace cbir::net

#endif  // CBIR_NET_TCP_CLIENT_H_
