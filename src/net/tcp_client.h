#ifndef CBIR_NET_TCP_CLIENT_H_
#define CBIR_NET_TCP_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/messages.h"
#include "net/socket.h"
#include "util/result.h"

namespace cbir::net {

/// \brief Blocking client for a net::TcpServer.
///
/// Two layers:
///  - Send()/Receive(): raw frame pipelining. The server answers strictly in
///    order, so a client may Send any number of requests before draining the
///    responses — one round trip for a whole feedback session if it wants.
///  - Typed RPCs (StartSession/Query/Feedback/EndSession/Stats): one
///    request-response round trip each, mirroring serve::RetrievalService's
///    signatures. A non-OK wire status comes back as the equivalent typed
///    Status (StatusCodeFromWireCode), so remote errors are indistinguishable
///    from in-process ones — `client.Query(sid)` on an ended session returns
///    NotFound exactly like `service.Query(sid)` does.
///
/// Not thread-safe: one connection serves one thread (open one client per
/// worker, the way examples/load_driver.cpp --remote does).
class TcpClient {
 public:
  static Result<TcpClient> Connect(const std::string& host, int port);

  /// Parses "host:port" (e.g. "127.0.0.1:7345").
  static Result<TcpClient> ConnectEndpoint(const std::string& endpoint);

  // --- raw pipelining layer -----------------------------------------------
  Status Send(const api::Request& request);
  Result<api::Response> Receive();
  /// Send + Receive in one call.
  Result<api::Response> Call(const api::Request& request);

  // --- typed RPCs ---------------------------------------------------------
  Result<uint64_t> StartSession(const api::QuerySpec& query);
  Result<std::vector<int>> Query(uint64_t session_id, int k = 0);
  Result<std::vector<int>> Feedback(uint64_t session_id,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k = 0);
  Status EndSession(uint64_t session_id);
  Result<api::StatsResponse> Stats();

  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

 private:
  explicit TcpClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

}  // namespace cbir::net

#endif  // CBIR_NET_TCP_CLIENT_H_
