#include "net/socket.h"

#include "util/string_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace cbir::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + ErrnoString(errno));
}

/// Resolves host:port into a sockaddr_in (IPv4; the serving deployments this
/// repo targets are loopback and private-net).
Result<sockaddr_in> ResolveIpv4(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("socket: port " + std::to_string(port) +
                                   " out of range");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &info);
  if (rc != 0 || info == nullptr) {
    return Status::IoError("socket: cannot resolve host '" + host +
                           "': " + gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(info->ai_addr)->sin_addr;
  freeaddrinfo(info);
  return addr;
}

/// Waits for an in-flight connect to resolve: polls for writability up to
/// `timeout_ms` (-1 = forever), then reads the outcome from SO_ERROR —
/// the only reliable way to learn how a non-blocking connect ended.
Status AwaitConnect(int fd, int timeout_ms, const std::string& peer) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(std::max<int64_t>(left.count(), 0));
    }
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return Errno("socket: poll during connect");
    if (rc == 0) {
      return Status::DeadlineExceeded("socket: connect to " + peer +
                                      " timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return Errno("socket: getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return Errno("socket: connect to " + peer);
  }
  return Status::OK();
}

Status SetSockTimeout(int fd, int optname, int timeout_ms,
                      const char* what) {
  if (timeout_ms < 0) {
    return Status::InvalidArgument(std::string("socket: negative ") + what +
                                   " timeout");
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno(std::string("socket: setsockopt(") + what + ")");
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, int port,
                                  int timeout_ms) {
  CBIR_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket: socket()");
  // Frames are written as one buffer; disabling Nagle keeps small
  // request/response round trips at sub-millisecond latency.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string peer = host + ":" + std::to_string(port);

  if (timeout_ms > 0) {
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
      return Errno("socket: fcntl(O_NONBLOCK)");
    }
    const int rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      return Errno("socket: connect to " + peer);
    }
    if (rc != 0) {
      CBIR_RETURN_NOT_OK(AwaitConnect(sock.fd(), timeout_ms, peer));
    }
    if (::fcntl(sock.fd(), F_SETFL, flags) != 0) {
      return Errno("socket: fcntl(restore flags)");
    }
    return sock;
  }

  int rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINTR) {
    // POSIX: an interrupted connect continues asynchronously, and calling
    // connect() again yields EALREADY — so wait for writability and read
    // the outcome from SO_ERROR instead of retrying the call.
    CBIR_RETURN_NOT_OK(AwaitConnect(sock.fd(), -1, peer));
    rc = 0;
  }
  if (rc != 0) {
    return Errno("socket: connect to " + peer);
  }
  return sock;
}

Result<Socket> Socket::ListenTcp(const std::string& host, int port,
                                 int backlog) {
  CBIR_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket: socket()");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("socket: bind to " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("socket: listen");
  return sock;
}

Result<Socket> Socket::Accept() const {
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::FailedPrecondition(
        std::string("socket: accept interrupted (") + ErrnoString(errno) +
        ")");
  }
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status Socket::WriteAll(const void* data, size_t size) const {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd_, bytes + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "socket: send timed out (" + std::to_string(written) + "/" +
            std::to_string(size) + " bytes)");
      }
      return Errno("socket: send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadFully(void* data, size_t size, bool* clean_eof) const {
  if (clean_eof != nullptr) *clean_eof = false;
  uint8_t* bytes = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "socket: recv timed out (" + std::to_string(got) + "/" +
            std::to_string(size) + " bytes)");
      }
      return Errno("socket: recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IoError(
          "socket: peer closed mid-frame (" + std::to_string(got) + "/" +
          std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SetReadTimeout(int timeout_ms) const {
  return SetSockTimeout(fd_, SO_RCVTIMEO, timeout_ms, "SO_RCVTIMEO");
}

Status Socket::SetWriteTimeout(int timeout_ms) const {
  return SetSockTimeout(fd_, SO_SNDTIMEO, timeout_ms, "SO_SNDTIMEO");
}

void Socket::Shutdown() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

}  // namespace cbir::net
