#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace cbir::obs {

namespace {

std::string WindowLabel(int window_s) {
  return std::to_string(window_s) + "s";
}

}  // namespace

SloTracker::SloTracker(MetricsRegistry* registry, SloOptions options,
                       StructuredLog* alert_log)
    : registry_(registry),
      options_(std::move(options)),
      alert_log_(alert_log) {
  if (options_.tick_seconds <= 0) options_.tick_seconds = 1;
  latency_ = registry_->GetHistogram(options_.latency_histogram);
  requests_ = registry_->GetCounter(options_.requests_counter);
  errors_ = registry_->GetCounter(options_.errors_counter);
  breach_gauge_ = registry_->GetGauge("cbir_slo_breach");
  registry_->SetHelp("cbir_slo_breach",
                     "1 while any SLO window's burn rate is >= 1.0.");
  registry_->SetHelp("cbir_slo_window_p99_us",
                     "p99 request latency over the trailing window only.");
  registry_->SetHelp(
      "cbir_slo_latency_burn_permille",
      "Rate of latency error-budget burn over the window, x1000 "
      "(1000 = burning exactly at the objective).");
  registry_->SetHelp(
      "cbir_slo_error_burn_permille",
      "Rate of error-ratio budget burn over the window, x1000.");
  window_gauges_.reserve(options_.windows_s.size());
  for (const int w : options_.windows_s) {
    WindowGauges g;
    g.p99_us = registry_->GetGauge("cbir_slo_window_p99_us", "window",
                                   WindowLabel(w));
    g.latency_burn_permille = registry_->GetGauge(
        "cbir_slo_latency_burn_permille", "window", WindowLabel(w));
    g.error_burn_permille = registry_->GetGauge(
        "cbir_slo_error_burn_permille", "window", WindowLabel(w));
    window_gauges_.push_back(g);
  }
}

SloTracker::~SloTracker() { Stop(); }

void SloTracker::Tick() {
  Sample now;
  now.latency = latency_->SnapshotCounts();
  now.requests = requests_->value();
  now.errors = errors_->value();

  int max_window_s = 0;
  for (const int w : options_.windows_s) max_window_s = std::max(max_window_s, w);
  const size_t max_ring =
      static_cast<size_t>(max_window_s / options_.tick_seconds) + 1;

  util::MutexLock lock(mu_);
  ring_.push_back(now);
  while (ring_.size() > max_ring) ring_.pop_front();

  SloState state;
  state.configured =
      options_.query_p99_ms > 0.0 || options_.error_ratio > 0.0;
  state.ticks = state_.ticks + 1;
  const uint64_t latency_threshold_us = static_cast<uint64_t>(
      std::llround(std::max(options_.query_p99_ms, 0.0) * 1000.0));
  for (size_t i = 0; i < options_.windows_s.size(); ++i) {
    SloWindowState ws;
    ws.window_s = options_.windows_s[i];
    const size_t steps = static_cast<size_t>(
        std::max(ws.window_s / options_.tick_seconds, 1));
    // The ring's back is "now"; the window's baseline is `steps` ticks
    // earlier, clamped to the oldest snapshot while the ring is warming up
    // (the window then covers the whole uptime, the honest answer).
    const size_t back = std::min(steps, ring_.size() - 1);
    const Sample& older = ring_[ring_.size() - 1 - back];
    const LatencyHistogram::Counts delta =
        LatencyHistogram::DeltaCounts(now.latency, older.latency);
    ws.latency = LatencyHistogram::SummarizeCounts(delta);
    ws.requests = now.requests > older.requests
                      ? now.requests - older.requests : 0;
    ws.errors = now.errors > older.errors ? now.errors - older.errors : 0;
    if (ws.requests > 0) {
      ws.error_ratio = static_cast<double>(ws.errors) /
                       static_cast<double>(ws.requests);
    }
    if (options_.error_ratio > 0.0) {
      ws.error_burn = ws.error_ratio / options_.error_ratio;
    }
    if (options_.query_p99_ms > 0.0 && ws.latency.count > 0) {
      const uint64_t over =
          LatencyHistogram::CountAtOrAbove(delta, latency_threshold_us);
      const double frac =
          static_cast<double>(over) / static_cast<double>(ws.latency.count);
      ws.latency_burn = frac / 0.01;  // the p99 objective's 1% budget
    }
    ws.breached = ws.error_burn >= 1.0 || ws.latency_burn >= 1.0;
    state.breached = state.breached || ws.breached;
    window_gauges_[i].p99_us->Set(
        static_cast<int64_t>(std::llround(ws.latency.p99_us)));
    window_gauges_[i].latency_burn_permille->Set(
        static_cast<int64_t>(std::llround(ws.latency_burn * 1000.0)));
    window_gauges_[i].error_burn_permille->Set(
        static_cast<int64_t>(std::llround(ws.error_burn * 1000.0)));
    state.windows.push_back(ws);
  }
  breach_gauge_->Set(state.breached ? 1 : 0);
  if (state.breached && alert_log_ != nullptr) {
    // One summary line; the log's own per-event rate limit keeps a
    // sustained breach from flooding.
    const SloWindowState& worst = *std::max_element(
        state.windows.begin(), state.windows.end(),
        [](const SloWindowState& a, const SloWindowState& b) {
          return std::max(a.error_burn, a.latency_burn) <
                 std::max(b.error_burn, b.latency_burn);
        });
    alert_log_->Log(
        "slo_breach",
        {{"window", WindowLabel(worst.window_s)},
         {"p99_us", FormatDouble(worst.latency.p99_us, 0)},
         {"error_ratio", FormatDouble(worst.error_ratio, 4)},
         {"latency_burn", FormatDouble(worst.latency_burn, 2)},
         {"error_burn", FormatDouble(worst.error_burn, 2)}});
  }
  state_ = std::move(state);
}

void SloTracker::Start() {
  {
    util::MutexLock lock(stop_mu_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this] {
    for (;;) {
      {
        util::MutexLock lock(stop_mu_);
        stop_cv_.WaitFor(stop_mu_, std::chrono::seconds(options_.tick_seconds),
                         [this]() CBIR_REQUIRES(stop_mu_) { return stopping_; });
        if (stopping_) return;
      }
      Tick();
    }
  });
}

void SloTracker::Stop() {
  {
    util::MutexLock lock(stop_mu_);
    if (!running_) return;
    running_ = false;
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

SloState SloTracker::state() const {
  util::MutexLock lock(mu_);
  return state_;
}

std::string SloTracker::FormatState() const {
  const SloState state = this->state();
  std::ostringstream os;
  os << "slo: " << (state.breached ? "BREACH" : "ok");
  if (!state.configured) os << " (no objectives configured)";
  if (options_.query_p99_ms > 0.0) {
    os << " objective_p99_ms=" << FormatDouble(options_.query_p99_ms, 1);
  }
  if (options_.error_ratio > 0.0) {
    os << " objective_error_ratio=" << FormatDouble(options_.error_ratio, 4);
  }
  os << "\n";
  for (const SloWindowState& ws : state.windows) {
    os << "window " << ws.window_s << "s: windowed p99="
       << FormatDouble(ws.latency.p99_us, 0) << "us p50="
       << FormatDouble(ws.latency.p50_us, 0) << "us requests="
       << ws.requests << " errors=" << ws.errors << " latency_burn="
       << FormatDouble(ws.latency_burn, 2) << " error_burn="
       << FormatDouble(ws.error_burn, 2)
       << (ws.breached ? " BREACH" : "") << "\n";
  }
  if (state.windows.empty()) os << "window: no ticks yet\n";
  return os.str();
}

}  // namespace cbir::obs
