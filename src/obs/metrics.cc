#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace cbir::obs {

int LatencyHistogram::BucketIndex(uint64_t us) {
  if (us < kSub) return static_cast<int>(us);
  const int octave = 63 - std::countl_zero(us);
  if (octave >= kMaxOctave) return kBuckets - 1;
  const int sub =
      static_cast<int>((us >> (octave - kSubBits)) & (kSub - 1));
  return kSub + (octave - kSubBits) * kSub + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < kSub) return static_cast<uint64_t>(bucket) + 1;
  const int octave = kSubBits + (bucket - kSub) / kSub;
  const int sub = (bucket - kSub) % kSub;
  const uint64_t base = uint64_t{1} << octave;
  const uint64_t step = uint64_t{1} << (octave - kSubBits);
  return base + static_cast<uint64_t>(sub + 1) * step;
}

void LatencyHistogram::Record(double micros) {
  const uint64_t us =
      micros <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(micros));
  if (us >= BucketUpperBound(kBuckets - 1)) {
    saturated_.fetch_add(1, std::memory_order_relaxed);
  }
  buckets_[static_cast<size_t>(BucketIndex(us))].fetch_add(
      1, std::memory_order_relaxed);
  total_us_.fetch_add(us, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

LatencyHistogram::Counts LatencyHistogram::SnapshotCounts() const {
  Counts c;
  for (int b = 0; b < kBuckets; ++b) {
    c.buckets[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  c.total_us = total_us_.load(std::memory_order_relaxed);
  c.count = count_.load(std::memory_order_relaxed);
  c.saturated = saturated_.load(std::memory_order_relaxed);
  return c;
}

LatencySummary LatencyHistogram::SummarizeCounts(const Counts& counts) {
  uint64_t total = 0;
  int top = -1;
  for (int b = 0; b < kBuckets; ++b) {
    total += counts.buckets[static_cast<size_t>(b)];
    if (counts.buckets[static_cast<size_t>(b)] > 0) top = b;
  }
  LatencySummary s;
  s.count = total;
  s.saturated = counts.saturated;
  if (total == 0) return s;
  s.mean_us = static_cast<double>(counts.total_us) /
              static_cast<double>(std::max<uint64_t>(counts.count, 1));
  s.max_us = static_cast<double>(BucketUpperBound(top));

  const auto percentile = [&](double q) {
    const uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts.buckets[static_cast<size_t>(b)];
      if (cum >= target) return static_cast<double>(BucketUpperBound(b));
    }
    return static_cast<double>(BucketUpperBound(kBuckets - 1));
  };
  s.p50_us = percentile(0.50);
  s.p95_us = percentile(0.95);
  s.p99_us = percentile(0.99);
  return s;
}

LatencySummary LatencyHistogram::Summarize() const {
  return SummarizeCounts(SnapshotCounts());
}

LatencyHistogram::Counts LatencyHistogram::DeltaCounts(const Counts& newer,
                                                       const Counts& older) {
  // Saturating subtraction: buckets are monotonic, but the two snapshots
  // are not a consistent cut under concurrent Record(), so a bucket the
  // newer snapshot read *before* the older one's reader got there can
  // appear smaller. Clamp instead of wrapping to a huge count.
  const auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  Counts d;
  for (int b = 0; b < kBuckets; ++b) {
    d.buckets[static_cast<size_t>(b)] =
        sub(newer.buckets[static_cast<size_t>(b)],
            older.buckets[static_cast<size_t>(b)]);
  }
  d.total_us = sub(newer.total_us, older.total_us);
  d.count = sub(newer.count, older.count);
  d.saturated = sub(newer.saturated, older.saturated);
  return d;
}

uint64_t LatencyHistogram::CountAtOrAbove(const Counts& counts,
                                          uint64_t threshold_us) {
  uint64_t over = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t lower_bound = b == 0 ? 0 : BucketUpperBound(b - 1);
    if (lower_bound >= threshold_us) {
      over += counts.buckets[static_cast<size_t>(b)];
    }
  }
  return over;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_us_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  saturated_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  util::WriterLock lock(mu_);
  auto& slot = counters_[Key{name, label_key, label_value}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& label_key,
                                 const std::string& label_value) {
  util::WriterLock lock(mu_);
  auto& slot = gauges_[Key{name, label_key, label_value}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& label_key,
    const std::string& label_value) {
  util::WriterLock lock(mu_);
  auto& slot = histograms_[Key{name, label_key, label_value}];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  util::WriterLock lock(mu_);
  help_[name] = help;
}

void MetricsRegistry::OnGather(std::function<void()> fn) {
  util::WriterLock lock(mu_);
  gather_callbacks_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  // Callbacks run outside the lock: they typically Set() gauges, which
  // re-enters the registry through GetGauge.
  std::vector<std::function<void()>> callbacks;
  {
    util::ReaderLock lock(mu_);
    callbacks = gather_callbacks_;
  }
  for (const auto& fn : callbacks) fn();

  MetricsSnapshot snapshot;
  util::ReaderLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snapshot.counters.push_back(
        {key.name, key.label_key, key.label_value, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snapshot.gauges.push_back(
        {key.name, key.label_key, key.label_value, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    snapshot.histograms.push_back(
        {key.name, key.label_key, key.label_value, histogram->Summarize()});
  }
  snapshot.help = help_;
  return snapshot;
}

namespace {

std::string LabelSet(const std::string& label_key,
                     const std::string& label_value,
                     const std::string& extra = "") {
  if (label_key.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!label_key.empty()) {
    out += label_key + "=\"" + label_value + "\"";
    if (!extra.empty()) out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

}  // namespace

std::string RenderExposition(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  // # HELP/# TYPE precede the first sample of each name (samples arrive
  // sorted by name, so one comparison against the previous name suffices);
  // real Prometheus scrapers require the TYPE line to ingest the family.
  std::string announced;
  const auto announce = [&](const std::string& name, const char* type) {
    if (name == announced) return;
    announced = name;
    const auto help = snapshot.help.find(name);
    if (help != snapshot.help.end()) {
      os << "# HELP " << name << " " << help->second << "\n";
    }
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (const CounterSample& c : snapshot.counters) {
    announce(c.name, "counter");
    os << c.name << LabelSet(c.label_key, c.label_value) << " " << c.value
       << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    announce(g.name, "gauge");
    os << g.name << LabelSet(g.label_key, g.label_value) << " " << g.value
       << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    announce(h.name, "summary");
    const std::string labels = LabelSet(h.label_key, h.label_value);
    os << h.name << "_count" << labels << " " << h.summary.count << "\n";
    os << h.name << "_saturated" << labels << " " << h.summary.saturated
       << "\n";
    os << h.name << "_sum" << labels << " "
       << FormatDouble(h.summary.mean_us *
                           static_cast<double>(h.summary.count), 0)
       << "\n";
    const auto quantile = [&](const char* q, double value) {
      os << h.name
         << LabelSet(h.label_key, h.label_value,
                     std::string("quantile=\"") + q + "\"")
         << " " << FormatDouble(value, 0) << "\n";
    };
    quantile("0.5", h.summary.p50_us);
    quantile("0.95", h.summary.p95_us);
    quantile("0.99", h.summary.p99_us);
  }
  return os.str();
}

std::string MetricsRegistry::RenderExposition() {
  return obs::RenderExposition(Snapshot());
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace cbir::obs
