#include "obs/flight_recorder.h"

#include <algorithm>
#include <sstream>

namespace cbir::obs {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options),
      slots_(std::max<size_t>(options.capacity, 1)) {}

void FlightRecorder::Record(const RequestTrace& trace, uint8_t message_type,
                            uint32_t status_code, uint64_t total_us) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  const bool is_error = status_code != 0;
  if (is_error) seen_errors_.fetch_add(1, std::memory_order_relaxed);
  const bool is_slow =
      options_.slow_threshold_ms > 0 &&
      total_us >= static_cast<uint64_t>(options_.slow_threshold_ms) * 1000;
  const char* reason = nullptr;
  if (is_error) {
    reason = "error";
    captured_errors_.fetch_add(1, std::memory_order_relaxed);
  } else if (is_slow) {
    reason = "slow";
    captured_slow_.fetch_add(1, std::memory_order_relaxed);
  } else if (options_.sample_every > 0 &&
             sample_tick_.fetch_add(1, std::memory_order_relaxed) %
                     options_.sample_every ==
                 0) {
    reason = "sampled";
    captured_sampled_.fetch_add(1, std::memory_order_relaxed);
  }
  if (reason == nullptr) return;
  captured_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(sequence - 1) % slots_.size()];
  FlightRecord record;
  record.sequence = sequence;
  record.trace_id = trace.trace_id();
  record.message_type = message_type;
  record.status_code = status_code;
  record.total_us = total_us;
  record.reason = reason;
  record.spans = trace.spans();
  record.counters = trace.counters();
  util::MutexLock lock(slot.mu);
  slot.record = std::move(record);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    util::MutexLock lock(slot.mu);
    if (slot.record.sequence != 0) out.push_back(slot.record);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

std::string FlightRecorder::Dump() const {
  // The counters are read before the records, so under concurrent Record()
  // the header may claim slightly fewer captures than the slots hold —
  // never more; the chaos assertion (captured_errors == seen_errors)
  // compares two counters read here together.
  std::ostringstream os;
  os << "flight recorder: capacity=" << slots_.size() << " seen=" << seen()
     << " captured=" << captured() << " seen_errors=" << seen_errors()
     << " captured_errors=" << captured_errors()
     << " captured_slow=" << captured_slow()
     << " captured_sampled=" << captured_sampled()
     << " sample_every=" << options_.sample_every << "\n";
  for (const FlightRecord& record : Snapshot()) {
    os << "record seq=" << record.sequence << " reason=" << record.reason
       << " type=" << static_cast<int>(record.message_type)
       << " status=" << record.status_code << " "
       << FormatSpanTree(record.trace_id, record.total_us, record.spans,
                         record.counters)
       << "\n";
  }
  return os.str();
}

}  // namespace cbir::obs
