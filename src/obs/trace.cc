#include "obs/trace.h"

#include <iostream>
#include <mutex>
#include <sstream>

namespace cbir::obs {

namespace {

thread_local RequestTrace* t_current_trace = nullptr;
thread_local int t_span_depth = 0;

}  // namespace

TraceScope::TraceScope(RequestTrace* trace) : previous_(t_current_trace) {
  t_current_trace = trace;
}

TraceScope::~TraceScope() { t_current_trace = previous_; }

RequestTrace* CurrentTrace() { return t_current_trace; }

ScopedSpan::ScopedSpan(const char* name, LatencyHistogram* histogram)
    : name_(name), histogram_(histogram), trace_(t_current_trace) {
  if (trace_ != nullptr) {
    trace_start_us_ = trace_->elapsed_us();
    depth_ = t_span_depth++;
  }
}

void ScopedSpan::End() {
  if (ended_) return;
  ended_ = true;
  const double micros = watch_.ElapsedSeconds() * 1e6;
  if (histogram_ != nullptr) histogram_->Record(micros);
  if (trace_ != nullptr) {
    --t_span_depth;
    trace_->AddSpan(name_, trace_start_us_,
                    static_cast<uint64_t>(micros), depth_);
  }
}

std::string FormatSpanTree(uint64_t trace_id, uint64_t total_us,
                           const std::vector<TraceSpan>& spans,
                           const std::vector<TraceCounter>& counters) {
  std::ostringstream os;
  os << "trace 0x" << std::hex << trace_id << std::dec << " total="
     << total_us << "us";
  for (const TraceSpan& span : spans) {
    os << "\n  ";
    for (int d = 0; d < span.depth; ++d) os << "  ";
    os << span.name << " " << span.duration_us << "us @" << span.start_us
       << "us";
  }
  for (const TraceCounter& counter : counters) {
    os << "\n  " << counter.name << "=" << counter.value;
  }
  return os.str();
}

std::string FormatTrace(const RequestTrace& trace, uint64_t total_us) {
  return FormatSpanTree(trace.trace_id(), total_us, trace.spans(),
                        trace.counters());
}

SlowRequestLog::SlowRequestLog(int threshold_ms, Sink sink)
    : threshold_ms_(threshold_ms), sink_(std::move(sink)) {
  if (sink_ == nullptr) {
    sink_ = [](const std::string& line) { std::cerr << line << "\n"; };
  }
}

bool SlowRequestLog::MaybeLog(const RequestTrace& trace, uint64_t total_us) {
  if (threshold_ms_ <= 0) return false;
  if (total_us < static_cast<uint64_t>(threshold_ms_) * 1000) return false;
  logged_.fetch_add(1, std::memory_order_relaxed);
  const std::string line =
      "slow request (>=" + std::to_string(threshold_ms_) + "ms): " +
      FormatTrace(trace, total_us);
  util::MutexLock lock(mu_);
  if (recent_.size() < kRecentCapacity) {
    recent_.push_back(line);
  } else {
    recent_[recent_next_] = line;
    recent_next_ = (recent_next_ + 1) % kRecentCapacity;
  }
  sink_(line);
  return true;
}

std::vector<std::string> SlowRequestLog::Recent() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(recent_.size());
  // Before the ring wraps, recent_next_ is 0 and the vector is already in
  // arrival order; after, recent_[recent_next_] is the oldest entry.
  for (size_t i = 0; i < recent_.size(); ++i) {
    out.push_back(recent_[(recent_next_ + i) % recent_.size()]);
  }
  return out;
}

uint64_t SlowRequestLog::logged() const {
  return logged_.load(std::memory_order_relaxed);
}

}  // namespace cbir::obs
