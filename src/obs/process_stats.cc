#include "obs/process_stats.h"

#ifdef __linux__
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#endif

namespace cbir::obs {

#ifdef __linux__

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  {
    // /proc/self/statm: size resident shared ... (in pages).
    std::ifstream statm("/proc/self/statm");
    long long size_pages = 0, resident_pages = 0;
    if (statm >> size_pages >> resident_pages) {
      stats.rss_bytes = static_cast<int64_t>(resident_pages) *
                        static_cast<int64_t>(sysconf(_SC_PAGESIZE));
    }
  }
  {
    // /proc/self/stat: pid (comm) state ppid ... utime stime ... — comm may
    // contain spaces, so fields are counted from after the closing paren.
    std::ifstream stat("/proc/self/stat");
    std::string line;
    if (std::getline(stat, line)) {
      const size_t paren = line.rfind(')');
      if (paren != std::string::npos) {
        std::istringstream rest(line.substr(paren + 1));
        std::string field;
        // After ')': state(1) ppid(2) ... cmajflt(10) utime(11) stime(12).
        unsigned long long utime = 0, stime = 0;
        for (int i = 1; i <= 10 && rest >> field; ++i) {
        }
        if (rest >> utime >> stime) {
          const long ticks = sysconf(_SC_CLK_TCK);
          if (ticks > 0) {
            stats.cpu_seconds =
                static_cast<double>(utime + stime) /
                static_cast<double>(ticks);
          }
        }
      }
    }
  }
  return stats;
}

#else  // !__linux__

ProcessStats ReadProcessStats() { return ProcessStats{}; }

#endif

}  // namespace cbir::obs
