#ifndef CBIR_OBS_STRUCTURED_LOG_H_
#define CBIR_OBS_STRUCTURED_LOG_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>

namespace cbir::obs {

/// \brief Timestamped key=value event log with per-event rate limiting.
///
/// One line per event:
///
///   ts=2026-08-08T12:34:56.789Z event=conn_accepted id=17
///
/// Every event name carries its own rate limit: at most one line per
/// `min_interval_seconds` (0 = unlimited); suppressed occurrences are
/// counted and reported as `suppressed=N` on the next line that makes it
/// through, so a connection storm costs a bounded number of log lines but
/// never loses the count. Thread-safe; lines never interleave.
class StructuredLog {
 public:
  using Field = std::pair<std::string, std::string>;

  /// Logs to `os` (must outlive the logger); typically &std::cout.
  explicit StructuredLog(std::ostream* os, double min_interval_seconds = 0.0);

  /// Emits one event line (or counts it as suppressed under the rate
  /// limit).
  void Log(const std::string& event, std::initializer_list<Field> fields);

  /// Bypasses the rate limit — for rare must-not-drop events (WAL
  /// recovery, compaction).
  void LogAlways(const std::string& event,
                 std::initializer_list<Field> fields);

  uint64_t lines_written() const;
  uint64_t lines_suppressed() const;

 private:
  struct EventState {
    std::chrono::steady_clock::time_point last_emit{};
    uint64_t suppressed = 0;
    bool emitted_once = false;
  };

  void Emit(const std::string& event, std::initializer_list<Field> fields,
            uint64_t suppressed);

  std::ostream* os_;
  double min_interval_seconds_;
  mutable std::mutex mu_;
  std::map<std::string, EventState> events_;
  uint64_t lines_written_ = 0;
  uint64_t lines_suppressed_ = 0;
};

/// The wall-clock timestamp used in log lines: UTC ISO-8601 with
/// millisecond precision (exposed for tests).
std::string Iso8601Now();

}  // namespace cbir::obs

#endif  // CBIR_OBS_STRUCTURED_LOG_H_
