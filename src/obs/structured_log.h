#ifndef CBIR_OBS_STRUCTURED_LOG_H_
#define CBIR_OBS_STRUCTURED_LOG_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "util/sync.h"

namespace cbir::obs {

/// \brief Timestamped key=value event log with per-event rate limiting.
///
/// One line per event:
///
///   ts=2026-08-08T12:34:56.789Z event=conn_accepted id=17
///
/// Every event name carries its own rate limit: at most one line per
/// `min_interval_seconds` (0 = unlimited); suppressed occurrences are
/// counted and reported as `suppressed=N` on the next line that makes it
/// through, so a connection storm costs a bounded number of log lines but
/// never loses the count. Thread-safe; lines never interleave.
class StructuredLog {
 public:
  using Field = std::pair<std::string, std::string>;

  /// Logs to `os` (must outlive the logger); typically &std::cout.
  explicit StructuredLog(std::ostream* os, double min_interval_seconds = 0.0);

  /// Emits one event line (or counts it as suppressed under the rate
  /// limit).
  void Log(const std::string& event, std::initializer_list<Field> fields);

  /// Bypasses the rate limit — for rare must-not-drop events (WAL
  /// recovery, compaction).
  void LogAlways(const std::string& event,
                 std::initializer_list<Field> fields);

  uint64_t lines_written() const;
  uint64_t lines_suppressed() const;

 private:
  struct EventState {
    std::chrono::steady_clock::time_point last_emit{};
    uint64_t suppressed = 0;
    bool emitted_once = false;
  };

  void Emit(const std::string& event, std::initializer_list<Field> fields,
            uint64_t suppressed) CBIR_REQUIRES(mu_);

  std::ostream* os_;
  double min_interval_seconds_;
  mutable util::Mutex mu_{util::LockRank::kStructuredLog, "structured_log"};
  std::map<std::string, EventState> events_ CBIR_GUARDED_BY(mu_);
  uint64_t lines_written_ CBIR_GUARDED_BY(mu_) = 0;
  uint64_t lines_suppressed_ CBIR_GUARDED_BY(mu_) = 0;
};

/// The wall-clock timestamp used in log lines: UTC ISO-8601 with
/// millisecond precision (exposed for tests).
std::string Iso8601Now();

}  // namespace cbir::obs

#endif  // CBIR_OBS_STRUCTURED_LOG_H_
