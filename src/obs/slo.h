#ifndef CBIR_OBS_SLO_H_
#define CBIR_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "util/sync.h"

namespace cbir::obs {

/// \brief Service-level objectives and windowing knobs.
struct SloOptions {
  /// Latency objective: "p99 of request latency stays below this" — i.e. at
  /// most 1% of a window's requests may take longer. <= 0 disables the
  /// latency objective (windowed percentiles are still tracked).
  double query_p99_ms = 0.0;
  /// Error-ratio objective: at most this fraction of a window's responses
  /// may carry a non-OK status. <= 0 disables the error objective.
  double error_ratio = 0.0;
  /// Snapshot cadence. Tests drive Tick() directly; Start() spawns a thread
  /// ticking at this period.
  int tick_seconds = 1;
  /// Burn-rate windows, in seconds (each must be a multiple of
  /// tick_seconds). Multi-window per the SRE playbook: the short window
  /// catches a fast burn, the long one a slow leak.
  std::vector<int> windows_s = {60, 600};
  /// Registry series the tracker watches (created at zero if absent).
  std::string latency_histogram = "cbir_net_request_us";
  std::string requests_counter = "cbir_net_requests_total";
  std::string errors_counter = "cbir_net_responses_error_total";
};

/// One window's view at the last tick.
struct SloWindowState {
  int window_s = 0;
  LatencySummary latency;     ///< over the window's samples only
  uint64_t requests = 0;      ///< responses counted in the window
  uint64_t errors = 0;        ///< non-OK responses in the window
  double error_ratio = 0.0;
  /// error_ratio / objective: 1.0 = burning the error budget exactly as
  /// fast as the objective allows; 0 when the objective is off.
  double error_burn = 0.0;
  /// (fraction of requests over the latency threshold) / 1%, same scale.
  double latency_burn = 0.0;
  bool breached = false;      ///< any burn >= 1.0
};

/// The tracker's full answer to "are we meeting the objectives right now".
struct SloState {
  bool configured = false;    ///< at least one objective is set
  bool breached = false;      ///< any window breached at the last tick
  uint64_t ticks = 0;
  std::vector<SloWindowState> windows;
};

/// \brief Windowed SLO tracking over the registry's since-boot series.
///
/// Counters and histograms in the registry are process-lifetime monotonic
/// by design; the tracker turns them into "over the last 60s" answers by
/// keeping a ring of per-tick bucket snapshots and summarizing deltas —
/// the hot path stays wait-free, all window math happens at tick cadence
/// on this one thread.
///
/// Each tick updates, per window W:
///   cbir_slo_window_p99_us{window="Ws"}        windowed p99
///   cbir_slo_latency_burn_permille{window="Ws"} latency burn rate x1000
///   cbir_slo_error_burn_permille{window="Ws"}   error burn rate x1000
/// plus the unlabeled `cbir_slo_breach` gauge (1 while any window's burn
/// rate is >= 1.0). On breach, one `event=slo_breach` line goes through the
/// alert log — rate-limited by the log itself, so a sustained breach costs
/// one line per interval, not one per tick.
class SloTracker {
 public:
  /// `registry` (and `alert_log`, when given) must outlive the tracker.
  SloTracker(MetricsRegistry* registry, SloOptions options,
             StructuredLog* alert_log = nullptr);
  ~SloTracker();

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Takes one snapshot and recomputes every window. Thread-safe; tests
  /// call it directly for deterministic windows.
  void Tick();

  /// Spawns the background thread ticking every tick_seconds. Stop() (and
  /// the destructor) joins it. Idempotent.
  void Start();
  void Stop();

  /// The state computed by the last Tick() (empty windows before the
  /// first).
  SloState state() const;

  /// Multi-line human rendering for /statusz: one line per window with the
  /// windowed p99/p50, request/error counts, and burn rates, plus a
  /// breach/ok verdict.
  std::string FormatState() const;

 private:
  struct Sample {
    LatencyHistogram::Counts latency;
    uint64_t requests = 0;
    uint64_t errors = 0;
  };

  MetricsRegistry* registry_;
  SloOptions options_;
  StructuredLog* alert_log_;

  LatencyHistogram* latency_;
  Counter* requests_;
  Counter* errors_;
  Gauge* breach_gauge_;
  struct WindowGauges {
    Gauge* p99_us;
    Gauge* latency_burn_permille;
    Gauge* error_burn_permille;
  };
  std::vector<WindowGauges> window_gauges_;

  mutable util::Mutex mu_{util::LockRank::kSlo, "slo_tracker"};
  /// oldest at front; one entry per tick
  std::deque<Sample> ring_ CBIR_GUARDED_BY(mu_);
  SloState state_ CBIR_GUARDED_BY(mu_);

  std::thread thread_;
  util::Mutex stop_mu_{util::LockRank::kLifecycle, "slo_tracker_stop"};
  util::CondVar stop_cv_;
  bool running_ CBIR_GUARDED_BY(stop_mu_) = false;
  bool stopping_ CBIR_GUARDED_BY(stop_mu_) = false;
};

}  // namespace cbir::obs

#endif  // CBIR_OBS_SLO_H_
