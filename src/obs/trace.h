#ifndef CBIR_OBS_TRACE_H_
#define CBIR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/sync.h"

namespace cbir::obs {

/// \brief One timed stage of a request: [start_us, start_us + duration_us]
/// relative to the owning RequestTrace's start, at the given nesting depth.
struct TraceSpan {
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  int depth = 0;
};

/// \brief One named work counter attached to a request's trace (SMO
/// iterations, index rows scanned, kernel-cache hits...). Counters are
/// per-request deltas, not process aggregates: they answer "what did THIS
/// request cost", the question the EXPLAIN profile block exists for.
struct TraceCounter {
  std::string name;
  int64_t value = 0;
};

/// \brief The span tree of one request, identified by its trace id.
///
/// A trace is owned by the thread serving the request and is written from
/// that thread only (the serving stack is thread-per-request); no locking.
/// The transport creates it when the frame has arrived, installs it as the
/// thread's current trace (TraceScope), and every ScopedSpan down the stack
/// — codec, admission, queue wait, index scan, solve, encode, write —
/// attaches itself here as a side effect of recording its histogram.
class RequestTrace {
 public:
  explicit RequestTrace(uint64_t trace_id) : trace_id_(trace_id) {}

  uint64_t trace_id() const { return trace_id_; }
  /// Microseconds since the trace was created.
  uint64_t elapsed_us() const {
    return static_cast<uint64_t>(watch_.ElapsedSeconds() * 1e6);
  }

  void AddSpan(std::string name, uint64_t start_us, uint64_t duration_us,
               int depth) {
    spans_.push_back({std::move(name), start_us, duration_us, depth});
  }

  /// Accumulates `delta` into the named counter (created at zero on first
  /// use). Same-thread-only, like AddSpan: instrumentation points deep in
  /// the stack (the SMO solver, the index scan) call this through
  /// CurrentTrace() to attach their per-request work counts.
  void AddCounter(const std::string& name, int64_t delta) {
    for (TraceCounter& c : counters_) {
      if (c.name == name) {
        c.value += delta;
        return;
      }
    }
    counters_.push_back({name, delta});
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceCounter>& counters() const { return counters_; }

 private:
  uint64_t trace_id_;
  Stopwatch watch_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceCounter> counters_;
};

/// \brief Installs `trace` as the calling thread's current trace for its
/// scope, so instrumentation points deep in the stack attach spans without
/// the trace being threaded through every signature. Nests: the previous
/// current trace is restored on destruction.
class TraceScope {
 public:
  explicit TraceScope(RequestTrace* trace);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  RequestTrace* previous_;
};

/// The calling thread's current trace, or null when no request is being
/// traced (e.g. a direct in-process service call).
RequestTrace* CurrentTrace();

/// \brief RAII stage timer: records its duration into `histogram` (when
/// given) and appends a span to the thread's current trace (when one is
/// installed). Both sides are optional, so one instrumentation point serves
/// metrics-only, trace-only, and untraced callers at ~a Stopwatch of cost.
///
/// End() is idempotent; the destructor calls it, or call it early to stop
/// the clock before work that should not be attributed to the stage.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      LatencyHistogram* histogram = nullptr);
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void End();

 private:
  const char* name_;
  LatencyHistogram* histogram_;
  RequestTrace* trace_;       // captured at construction
  uint64_t trace_start_us_ = 0;
  int depth_ = 0;
  Stopwatch watch_;
  bool ended_ = false;
};

/// Multi-line rendering of a trace's span tree (and its work counters when
/// any were attached), e.g.
///   trace 0x1f3a total=4211us
///     decode 12us @0us
///     queue_wait 31us @15us
///     solve 3970us @118us
///     smo_iterations=142
std::string FormatTrace(const RequestTrace& trace, uint64_t total_us);

/// Same rendering for span/counter vectors that outlived their trace (the
/// flight recorder keeps copies after the request is gone).
std::string FormatSpanTree(uint64_t trace_id, uint64_t total_us,
                           const std::vector<TraceSpan>& spans,
                           const std::vector<TraceCounter>& counters);

/// \brief Structured log of requests slower than a threshold: each outlier
/// is rendered as its full span tree, so a p99 spike comes with the stage
/// that caused it attached.
class SlowRequestLog {
 public:
  using Sink = std::function<void(const std::string&)>;

  /// Requests taking >= `threshold_ms` (exactly at threshold triggers) are
  /// logged through `sink`; a null sink writes to stderr. `threshold_ms <=
  /// 0` disables the log.
  explicit SlowRequestLog(int threshold_ms, Sink sink = nullptr);

  /// Logs the trace when `total_us` meets the threshold; returns whether it
  /// was logged. Thread-safe (the sink is invoked under a mutex so lines
  /// from concurrent connections never interleave).
  bool MaybeLog(const RequestTrace& trace, uint64_t total_us);

  /// The most recent logged entries, oldest first (bounded ring of
  /// `kRecentCapacity`) — what the /slowz debug endpoint serves, so the
  /// last outliers are inspectable after the fact without stderr access.
  std::vector<std::string> Recent() const;

  static constexpr size_t kRecentCapacity = 32;

  uint64_t logged() const;

 private:
  int threshold_ms_;
  Sink sink_;
  mutable util::Mutex mu_{util::LockRank::kSlowLog, "slow_request_log"};
  /// ring, recent_[next_] is the oldest
  std::vector<std::string> recent_ CBIR_GUARDED_BY(mu_);
  size_t recent_next_ CBIR_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> logged_{0};
};

}  // namespace cbir::obs

#endif  // CBIR_OBS_TRACE_H_
