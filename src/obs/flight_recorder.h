#ifndef CBIR_OBS_FLIGHT_RECORDER_H_
#define CBIR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/sync.h"

namespace cbir::obs {

/// \brief Flight recorder knobs.
struct FlightRecorderOptions {
  /// Ring capacity: how many completed-request records are retained. Older
  /// records are overwritten, newest-first survives.
  size_t capacity = 256;
  /// Sampling period for healthy requests: 1 of every `sample_every`
  /// OK-and-fast requests is captured (deterministic — the 1st, N+1st,
  /// 2N+1st... non-error request is taken, so a short run always leaves at
  /// least one healthy record to compare outliers against). 0 disables
  /// sampling, leaving only errors and slow requests.
  uint64_t sample_every = 64;
  /// Requests at or above this total latency are always captured, like
  /// errors (0 disables the slow criterion).
  int slow_threshold_ms = 0;
};

/// \brief One retained request: identity, outcome, and the full span tree
/// with its work counters — everything needed to answer "why was trace
/// 0x7f3a slow" after the request is long gone.
struct FlightRecord {
  uint64_t sequence = 0;      ///< capture order, monotonic from 1
  uint64_t trace_id = 0;
  uint8_t message_type = 0;   ///< api::MessageType wire value
  uint32_t status_code = 0;   ///< wire status code; 0 = OK
  uint64_t total_us = 0;
  const char* reason = "";    ///< "error", "slow", or "sampled"
  std::vector<TraceSpan> spans;
  std::vector<TraceCounter> counters;
};

/// \brief Bounded lock-light ring buffer of recently completed requests.
///
/// Capture policy: 100% of error responses (non-OK wire status — sheds and
/// deadline expiries included, since those answer with kDeadlineExceeded /
/// kResourceExhausted), 100% of slow requests (>= slow_threshold_ms), and a
/// deterministic 1-in-N sample of everything else. The decision costs one
/// relaxed fetch_add per request; a capture claims its slot with a second
/// fetch_add and copies the spans under that slot's own mutex — no global
/// lock, so concurrent connection threads never serialize against each
/// other, only against a dump reading the same slot.
///
/// Dump() renders every retained record oldest-first, preceded by a header
/// line carrying the seen/captured accounting — including
/// `seen_errors=N captured_errors=N`, which the chaos CI job asserts are
/// equal (no error ever escapes the recorder; only healthy traffic is
/// sampled). Serve it on /flightz and dump it on SIGTERM.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Considers one completed request for capture. `status_code` is the wire
  /// status of the response (0 = OK). Thread-safe.
  void Record(const RequestTrace& trace, uint8_t message_type,
              uint32_t status_code, uint64_t total_us);

  /// Copies the retained records, oldest (lowest sequence) first.
  std::vector<FlightRecord> Snapshot() const;

  /// Renders the header line plus every retained record's span tree.
  std::string Dump() const;

  uint64_t seen() const { return seen_.load(std::memory_order_relaxed); }
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  uint64_t seen_errors() const {
    return seen_errors_.load(std::memory_order_relaxed);
  }
  uint64_t captured_errors() const {
    return captured_errors_.load(std::memory_order_relaxed);
  }
  uint64_t captured_slow() const {
    return captured_slow_.load(std::memory_order_relaxed);
  }
  uint64_t captured_sampled() const {
    return captured_sampled_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable util::Mutex mu{util::LockRank::kFlightRecorder,
                           "flight_recorder_slot"};
    /// record.sequence == 0 means never written
    FlightRecord record CBIR_GUARDED_BY(mu);
  };

  FlightRecorderOptions options_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_sequence_{0};  ///< claimed captures
  std::atomic<uint64_t> sample_tick_{0};    ///< healthy requests considered

  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> seen_errors_{0};
  std::atomic<uint64_t> captured_errors_{0};
  std::atomic<uint64_t> captured_slow_{0};
  std::atomic<uint64_t> captured_sampled_{0};
};

}  // namespace cbir::obs

#endif  // CBIR_OBS_FLIGHT_RECORDER_H_
