#ifndef CBIR_OBS_PROCESS_STATS_H_
#define CBIR_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace cbir::obs {

/// \brief Self-observability numbers read from the OS: how big the process
/// is and how much CPU it has burned. Zeroes on platforms without
/// /proc/self (the gauges then just read 0 — never an error path).
struct ProcessStats {
  int64_t rss_bytes = 0;     ///< resident set size
  double cpu_seconds = 0.0;  ///< user + system CPU time since start
};

/// Reads the current process' stats (on Linux: /proc/self/statm for RSS,
/// /proc/self/stat for CPU). Cheap enough for an OnGather callback — two
/// small reads per metrics scrape.
ProcessStats ReadProcessStats();

}  // namespace cbir::obs

#endif  // CBIR_OBS_PROCESS_STATS_H_
