#include "obs/structured_log.h"

#include <cstdio>
#include <ctime>

namespace cbir::obs {

std::string Iso8601Now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

StructuredLog::StructuredLog(std::ostream* os, double min_interval_seconds)
    : os_(os), min_interval_seconds_(min_interval_seconds) {}

void StructuredLog::Log(const std::string& event,
                        std::initializer_list<Field> fields) {
  util::MutexLock lock(mu_);
  EventState& state = events_[event];
  const auto now = std::chrono::steady_clock::now();
  if (min_interval_seconds_ > 0.0 && state.emitted_once &&
      std::chrono::duration<double>(now - state.last_emit).count() <
          min_interval_seconds_) {
    ++state.suppressed;
    ++lines_suppressed_;
    return;
  }
  state.last_emit = now;
  state.emitted_once = true;
  const uint64_t suppressed = state.suppressed;
  state.suppressed = 0;
  Emit(event, fields, suppressed);
}

void StructuredLog::LogAlways(const std::string& event,
                              std::initializer_list<Field> fields) {
  util::MutexLock lock(mu_);
  EventState& state = events_[event];
  state.last_emit = std::chrono::steady_clock::now();
  state.emitted_once = true;
  const uint64_t suppressed = state.suppressed;
  state.suppressed = 0;
  Emit(event, fields, suppressed);
}

void StructuredLog::Emit(const std::string& event,
                         std::initializer_list<Field> fields,
                         uint64_t suppressed) {
  *os_ << "ts=" << Iso8601Now() << " event=" << event;
  for (const Field& field : fields) {
    *os_ << " " << field.first << "=" << field.second;
  }
  if (suppressed > 0) *os_ << " suppressed=" << suppressed;
  *os_ << "\n" << std::flush;
  ++lines_written_;
}

uint64_t StructuredLog::lines_written() const {
  util::MutexLock lock(mu_);
  return lines_written_;
}

uint64_t StructuredLog::lines_suppressed() const {
  util::MutexLock lock(mu_);
  return lines_suppressed_;
}

}  // namespace cbir::obs
