#ifndef CBIR_OBS_EXPOSITION_H_
#define CBIR_OBS_EXPOSITION_H_

#include <atomic>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cbir::obs {

/// \brief Plaintext metrics listener: every TCP connection to its port gets
/// one HTTP/1.0 200 response whose body is the registry's Prometheus-style
/// exposition (`name{label="v"} value` lines), then the connection closes.
///
/// The response is written immediately on accept without reading a request
/// line, so `curl http://host:port/metrics`, `nc host port < /dev/null`,
/// and a Prometheus scraper all work. Connections are served serially from
/// one accept thread — a metrics port needs no concurrency, and a stuck
/// scraper cannot pile up threads (writes are bounded by a send timeout).
class ExpositionServer {
 public:
  /// `registry` must outlive the server.
  ExpositionServer(MetricsRegistry* registry, std::string host, int port);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds and starts the accept thread. port 0 = OS-assigned; read it back
  /// with port().
  Status Start();

  /// Stops accepting and joins. Idempotent.
  void Stop();

  int port() const { return port_; }
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();

  MetricsRegistry* registry_;
  std::string host_;
  int requested_port_;
  int port_ = -1;

  net::Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> scrapes_{0};
};

}  // namespace cbir::obs

#endif  // CBIR_OBS_EXPOSITION_H_
