#ifndef CBIR_OBS_EXPOSITION_H_
#define CBIR_OBS_EXPOSITION_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cbir::obs {

/// \brief Plaintext metrics-and-debug listener: every TCP connection to its
/// port gets one HTTP/1.0 200 response, then the connection closes.
///
/// The request line is parsed (bounded, with a short read timeout) to pick
/// the endpoint:
///
///   /metrics   the registry's Prometheus-style exposition (the default —
///              a peer that sends nothing at all, like `nc host port
///              < /dev/null`, still gets it after the read timeout)
///   <path>     any handler registered with SetHandler ("/statusz",
///              "/flightz", "/slowz" in cbir_server)
///   otherwise  404
///
/// Connections are served serially from one accept thread — a debug port
/// needs no concurrency, and a stuck scraper cannot pile up threads (reads
/// and writes are bounded by kernel timeouts).
class ExpositionServer {
 public:
  /// A handler renders one endpoint's plaintext body; invoked on the accept
  /// thread, one call at a time.
  using Handler = std::function<std::string()>;

  /// A status handler additionally chooses the HTTP status code — what a
  /// health endpoint needs: load balancers and orchestrators act on the
  /// code, not the body. Only 200 and 503 are supported.
  struct StatusResult {
    int code = 200;  ///< 200 or 503
    std::string body;
  };
  using StatusHandler = std::function<StatusResult()>;

  /// `registry` must outlive the server.
  ExpositionServer(MetricsRegistry* registry, std::string host, int port);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Registers (or replaces) the handler for `path` (e.g. "/statusz").
  /// Call before Start(); "/metrics" is built in and cannot be replaced.
  void SetHandler(const std::string& path, Handler handler);

  /// Registers (or replaces) a code-carrying handler for `path` (e.g.
  /// "/healthz" answering 200 while serving and 503 while draining or with
  /// no healthy backends). Call before Start(). A StatusHandler and a plain
  /// Handler on the same path: the StatusHandler wins.
  void SetStatusHandler(const std::string& path, StatusHandler handler);

  /// Binds and starts the accept thread. port 0 = OS-assigned; read it back
  /// with port().
  Status Start();

  /// Stops accepting and joins. Idempotent.
  void Stop();

  int port() const { return port_; }
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeOne(const net::Socket& client);

  MetricsRegistry* registry_;
  std::string host_;
  int requested_port_;
  int port_ = -1;

  std::map<std::string, Handler> handlers_;
  std::map<std::string, StatusHandler> status_handlers_;

  net::Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> scrapes_{0};
};

}  // namespace cbir::obs

#endif  // CBIR_OBS_EXPOSITION_H_
