#ifndef CBIR_OBS_METRICS_H_
#define CBIR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.h"

namespace cbir::obs {

/// \brief Latency percentiles summarized from a LatencyHistogram.
///
/// Percentile values are bucket upper bounds, so they over-estimate by at
/// most one bucket width (~12.5% with the log-linear layout below); `max_us`
/// has the same granularity. `saturated` counts the samples that landed
/// beyond the top bucket (~2^36 us): they are clamped into the last bucket
/// for the percentile math but reported here so a clamp never passes
/// silently.
struct LatencySummary {
  uint64_t count = 0;
  uint64_t saturated = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// \brief Fixed-bucket concurrent latency histogram (microsecond domain).
///
/// Log-linear layout: 8 linear buckets below 8us, then 8 sub-buckets per
/// power of two up to ~68s, so relative resolution stays ~12.5% across the
/// whole range. Record() is wait-free (one relaxed fetch_add per call plus
/// two for the mean), which keeps the serving hot path uncontended; the
/// percentile math happens only in Summarize().
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;                ///< 2^3 sub-buckets/octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kMaxOctave = 36;             ///< caps at ~2^36 us
  static constexpr int kBuckets = kSub + (kMaxOctave - kSubBits) * kSub;

  /// Raw bucket counts at one instant — the currency of windowed summaries:
  /// subtract two snapshots taken `window` apart and the difference
  /// summarizes exactly the samples recorded in between (counters are
  /// monotonic, so the delta is always well-formed).
  struct Counts {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t total_us = 0;
    uint64_t count = 0;
    uint64_t saturated = 0;
  };

  /// Records one latency observation. Values beyond the top bucket are
  /// clamped into it and counted as saturated. Safe to call from any number
  /// of threads.
  void Record(double micros);

  /// Aggregates the current counts into percentiles. Concurrent Record()
  /// calls may or may not be included — the summary is a snapshot, not a
  /// barrier.
  LatencySummary Summarize() const;

  /// Copies the current bucket counts (same snapshot semantics as
  /// Summarize: consistent enough for deltas, not a barrier).
  Counts SnapshotCounts() const;

  /// Percentiles over one counts snapshot (Summarize() is SummarizeCounts
  /// over SnapshotCounts()).
  static LatencySummary SummarizeCounts(const Counts& counts);

  /// `newer - older` per bucket, clamped at zero — the samples recorded
  /// between the two snapshots. Both must come from the same histogram
  /// with `older` taken first for the result to mean anything.
  static Counts DeltaCounts(const Counts& newer, const Counts& older);

  /// Samples in `counts` whose bucket lies entirely at or above
  /// `threshold_us`. The bucket straddling the threshold is NOT counted, so
  /// this under-reports by at most one bucket (~12.5%) — the conservative
  /// direction for a burn rate.
  static uint64_t CountAtOrAbove(const Counts& counts, uint64_t threshold_us);

  /// Zeroes all buckets (not atomic with respect to concurrent Record()).
  void Reset();

  /// Bucket index for a microsecond value; exposed for tests.
  static int BucketIndex(uint64_t us);
  /// Exclusive upper bound (in us) of the given bucket; exposed for tests.
  static uint64_t BucketUpperBound(int bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> saturated_{0};
};

/// \brief Monotonic named counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins signed gauge (e.g. bytes resident, sessions live).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One sampled metric in a MetricsSnapshot. `label_key`/`label_value` are
/// empty for unlabeled metrics.
struct CounterSample {
  std::string name, label_key, label_value;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name, label_key, label_value;
  int64_t value = 0;
};
struct HistogramSample {
  std::string name, label_key, label_value;
  LatencySummary summary;
};

/// \brief Point-in-time copy of every registered metric, ordered by
/// (name, label) so renderings are stable across snapshots. `help` maps a
/// metric name to its registered # HELP text (names without an entry render
/// with # TYPE only).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::map<std::string, std::string> help;
};

/// \brief Registry of named counters, gauges, and latency histograms.
///
/// Get*() registers on first use and returns a stable pointer: callers look
/// a metric up once (typically into a function-local static) and then
/// increment wait-free forever — registration takes the mutex, updates never
/// do. Metrics support one optional label dimension; the same name with
/// different label values yields distinct series (the per-stage latency
/// histograms are one name with stage="decode"/"solve"/... labels).
///
/// Naming scheme (docs/OBSERVABILITY.md): `cbir_<layer>_<what>[_<unit>]`,
/// counters suffixed `_total`, e.g. `cbir_net_bytes_read_total`,
/// `cbir_request_stage_us{stage="solve"}`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name,
                      const std::string& label_key = "",
                      const std::string& label_value = "");
  Gauge* GetGauge(const std::string& name, const std::string& label_key = "",
                  const std::string& label_value = "");
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& label_key = "",
                                 const std::string& label_value = "");

  /// Attaches a one-line # HELP text to a metric name (all label series of
  /// the name share it). Idempotent last-write-wins; call once next to the
  /// Get*() that registers the series.
  void SetHelp(const std::string& name, const std::string& help);

  /// Registers a callback that runs before every Snapshot(), outside the
  /// registry lock — the hook where pull-style sources (ServiceStats,
  /// TcpServerStats) copy their current values into gauges. Callbacks must
  /// stay valid for the registry's lifetime.
  void OnGather(std::function<void()> fn);

  /// Runs the gather callbacks, then copies every metric. Wait-free writers
  /// are never blocked; the snapshot is consistent per metric, not across
  /// metrics.
  MetricsSnapshot Snapshot();

  /// Renders a Snapshot() in the Prometheus plaintext exposition style:
  /// one `name{label="v"} value` line per counter/gauge, and per histogram
  /// `_count`/`_saturated`/`_sum` lines plus `quantile`-labeled p50/p95/p99.
  /// Each name is preceded by a `# TYPE` line (counter/gauge/summary) and,
  /// when SetHelp was called for it, a `# HELP` line.
  std::string RenderExposition();

  /// The process-wide registry every built-in instrumentation point writes
  /// to. Libraries record here; exporters (the wire MetricsResponse, the
  /// --metrics-port listener) read here.
  static MetricsRegistry& Default();

 private:
  struct Key {
    std::string name, label_key, label_value;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      if (label_key != o.label_key) return label_key < o.label_key;
      return label_value < o.label_value;
    }
  };

  // Reader-writer split: registrations and help/callback setup are rare and
  // take the lock exclusively; Snapshot (per scrape) only reads the maps —
  // the instrument values themselves are atomics — so scrapes proceed
  // concurrently.
  mutable util::SharedMutex mu_{util::LockRank::kMetrics, "metrics_registry"};
  // node-based maps: pointers handed out stay stable across registrations.
  std::map<Key, std::unique_ptr<Counter>> counters_ CBIR_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ CBIR_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_
      CBIR_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ CBIR_GUARDED_BY(mu_);
  std::vector<std::function<void()>> gather_callbacks_ CBIR_GUARDED_BY(mu_);
};

/// Renders one snapshot as exposition text (exposed for tests; the member
/// RenderExposition composes Snapshot + this).
std::string RenderExposition(const MetricsSnapshot& snapshot);

}  // namespace cbir::obs

#endif  // CBIR_OBS_METRICS_H_
