#include "obs/exposition.h"

#include <utility>

namespace cbir::obs {

ExpositionServer::ExpositionServer(MetricsRegistry* registry,
                                   std::string host, int port)
    : registry_(registry), host_(std::move(host)), requested_port_(port) {}

ExpositionServer::~ExpositionServer() { Stop(); }

Status ExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exposition server: already started");
  }
  CBIR_ASSIGN_OR_RETURN(
      listener_, net::Socket::ListenTcp(host_, requested_port_, 16));
  port_ = listener_.local_port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
}

void ExpositionServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<net::Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    const net::Socket client = std::move(accepted).value();
    // A scraper that stops draining must not wedge the accept loop.
    client.SetWriteTimeout(2000);
    const std::string body = registry_->RenderExposition();
    const std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n"
        "\r\n" + body;
    client.WriteAll(response.data(), response.size());  // best-effort
    client.Shutdown();
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace cbir::obs
