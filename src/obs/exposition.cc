#include "obs/exposition.h"

#include <utility>

namespace cbir::obs {

namespace {

/// How long the accept thread waits for a request line before falling back
/// to /metrics. Short enough that `nc host port < /dev/null` (which sends
/// nothing) barely notices, long enough for any real client's first packet.
constexpr int kRequestReadTimeoutMs = 250;
/// Upper bound on request bytes read (line + headers); a peer streaming
/// garbage is cut off here.
constexpr size_t kMaxRequestBytes = 4096;

/// Reads until the end of the HTTP request (blank line), EOF, the read
/// timeout, or the byte cap, and returns the first line. Draining the full
/// request head matters: responding and closing with unread bytes in the
/// receive buffer makes the kernel RST the connection, which can discard
/// the response before curl reads it.
std::string ReadRequestLine(const net::Socket& client) {
  std::string first_line;
  bool have_line = false;
  std::string tail;  // last 4 bytes, to spot the blank line
  for (size_t i = 0; i < kMaxRequestBytes; ++i) {
    char byte = 0;
    bool eof = false;
    if (!client.ReadFully(&byte, 1, &eof).ok() || eof) break;
    if (!have_line) {
      if (byte == '\n') {
        have_line = true;
      } else if (byte != '\r') {
        first_line.push_back(byte);
      }
    }
    tail.push_back(byte);
    if (tail.size() > 4) tail.erase(tail.begin());
    if (tail == "\r\n\r\n" || (tail.size() >= 2 && tail.substr(tail.size() - 2) == "\n\n")) {
      break;
    }
  }
  return first_line;
}

/// "GET /statusz HTTP/1.0" -> "/statusz" (query string stripped); empty
/// when the line does not look like a request.
std::string ParsePath(const std::string& request_line) {
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) return "";
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string path = sp2 == std::string::npos
                         ? request_line.substr(sp1 + 1)
                         : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

ExpositionServer::ExpositionServer(MetricsRegistry* registry,
                                   std::string host, int port)
    : registry_(registry), host_(std::move(host)), requested_port_(port) {}

ExpositionServer::~ExpositionServer() { Stop(); }

void ExpositionServer::SetHandler(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void ExpositionServer::SetStatusHandler(const std::string& path,
                                        StatusHandler handler) {
  status_handlers_[path] = std::move(handler);
}

Status ExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exposition server: already started");
  }
  CBIR_ASSIGN_OR_RETURN(
      listener_, net::Socket::ListenTcp(host_, requested_port_, 16));
  port_ = listener_.local_port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
}

void ExpositionServer::ServeOne(const net::Socket& client) {
  // A scraper that stops draining must not wedge the accept loop, and a
  // peer that never sends a request line must still get /metrics.
  client.SetWriteTimeout(2000);
  client.SetReadTimeout(kRequestReadTimeoutMs);
  const std::string path = ParsePath(ReadRequestLine(client));

  const char* status_line = "200 OK";
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  if (path.empty() || path == "/metrics" || path == "/") {
    // Prometheus' registered exposition-format version rides the
    // content type so real scrapers ingest it without content sniffing.
    body = registry_->RenderExposition();
    content_type = "text/plain; version=0.0.4";
  } else if (const auto sit = status_handlers_.find(path);
             sit != status_handlers_.end()) {
    StatusResult result = sit->second();
    if (result.code != 200) status_line = "503 Service Unavailable";
    body = std::move(result.body);
  } else if (const auto it = handlers_.find(path); it != handlers_.end()) {
    body = it->second();
  } else {
    status_line = "404 Not Found";
    body = "404 not found: " + path + "\n";
  }
  const std::string response =
      "HTTP/1.0 " + std::string(status_line) + "\r\n"
      "Content-Type: " + content_type + "\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "Connection: close\r\n"
      "\r\n" + body;
  client.WriteAll(response.data(), response.size());  // best-effort
  client.Shutdown();
  scrapes_.fetch_add(1, std::memory_order_relaxed);
}

void ExpositionServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<net::Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    const net::Socket client = std::move(accepted).value();
    ServeOne(client);
  }
}

}  // namespace cbir::obs
