#ifndef CBIR_API_MESSAGES_H_
#define CBIR_API_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "la/vector_ops.h"
#include "logdb/log_session.h"
#include "util/status.h"

namespace cbir::api {

/// \brief Transport-agnostic typed messages of the retrieval service API.
///
/// These plain structs are the one service surface shared by in-process
/// callers (api::Dispatcher -> serve::RetrievalService) and remote callers
/// (net::TcpClient -> wire codec -> net::TcpServer -> the same Dispatcher),
/// so the two paths can never drift apart. The wire layout lives in
/// api/codec.h; nothing in this header knows about bytes.

/// \brief Status as it crosses the wire: a stable uint32 code (see
/// StatusCodeToWireCode) plus the human-readable message. Every response
/// carries one; payload fields are meaningful only when ok().
struct WireStatus {
  uint32_t code = 0;  ///< StatusCodeToWireCode(StatusCode::kOk)
  std::string message;

  bool ok() const { return code == StatusCodeToWireCode(StatusCode::kOk); }

  bool operator==(const WireStatus& other) const {
    return code == other.code && message == other.message;
  }
};

/// Converts a util::Status into its wire form and back. Unknown wire codes
/// come back as kInternal (never kOk), so a corrupt frame cannot fake
/// success.
WireStatus ToWireStatus(const Status& status);
Status FromWireStatus(const WireStatus& wire);

/// \brief What a session queries for: either a corpus image id (the paper's
/// evaluation protocol) or a raw feature vector for an image the corpus has
/// never seen (the standard CBIR query-by-example deployment setting).
struct QuerySpec {
  enum class Kind : uint8_t {
    kCorpusId = 0,
    kFeature = 1,
  };

  Kind kind = Kind::kCorpusId;
  int32_t corpus_id = -1;  ///< valid when kind == kCorpusId
  la::Vec feature;         ///< valid when kind == kFeature

  static QuerySpec ById(int32_t id) {
    QuerySpec spec;
    spec.kind = Kind::kCorpusId;
    spec.corpus_id = id;
    return spec;
  }
  static QuerySpec ByFeature(la::Vec feature) {
    QuerySpec spec;
    spec.kind = Kind::kFeature;
    spec.feature = std::move(feature);
    return spec;
  }

  bool operator==(const QuerySpec& other) const {
    return kind == other.kind && corpus_id == other.corpus_id &&
           feature == other.feature;
  }
};

// ---------------------------------------------------------------- requests --

struct StartSessionRequest {
  QuerySpec query;

  bool operator==(const StartSessionRequest& o) const {
    return query == o.query;
  }
};

struct QueryRequest {
  uint64_t session_id = 0;
  int32_t k = 0;  ///< 0 = the service's default_k

  bool operator==(const QueryRequest& o) const {
    return session_id == o.session_id && k == o.k;
  }
};

struct FeedbackRequest {
  uint64_t session_id = 0;
  int32_t k = 0;
  std::vector<logdb::LogEntry> round;  ///< judgments, +-1 each

  bool operator==(const FeedbackRequest& o) const {
    if (session_id != o.session_id || k != o.k ||
        round.size() != o.round.size()) {
      return false;
    }
    for (size_t i = 0; i < round.size(); ++i) {
      if (round[i].image_id != o.round[i].image_id ||
          round[i].judgment != o.round[i].judgment) {
        return false;
      }
    }
    return true;
  }
};

struct EndSessionRequest {
  uint64_t session_id = 0;

  bool operator==(const EndSessionRequest& o) const {
    return session_id == o.session_id;
  }
};

struct StatsRequest {
  bool operator==(const StatsRequest&) const { return true; }
};

/// Asks for a full dump of the server's obs::MetricsRegistry — every
/// counter, gauge, and histogram summary, one sample per (name, label)
/// series. The wire twin of the --metrics-port plaintext exposition.
struct MetricsRequest {
  bool operator==(const MetricsRequest&) const { return true; }
};

/// Asks a server to describe the corpus and configuration it serves. The
/// connect-time handshake: the router validates shard compatibility with it,
/// remote drivers use it instead of rebuilding the corpus locally, and the
/// router's health checker uses it as the lightweight probe RPC.
struct DescribeRequest {
  bool operator==(const DescribeRequest&) const { return true; }
};

/// Asks for the first-round candidate set of a query — the top-k nearest
/// corpus images by exact feature distance, *with* the distances — without
/// creating a session. Stateless: the router scatter-gathers this across
/// shards and merges the per-shard lists by distance.
struct CandidateRequest {
  QuerySpec query;
  int32_t k = 0;  ///< 0 = the service's default_k

  bool operator==(const CandidateRequest& o) const {
    return query == o.query && k == o.k;
  }
};

// --------------------------------------------------------------- responses --

struct StartSessionResponse {
  WireStatus status;
  uint64_t session_id = 0;

  bool operator==(const StartSessionResponse& o) const {
    return status == o.status && session_id == o.session_id;
  }
};

struct QueryResponse {
  WireStatus status;
  std::vector<int32_t> ranking;

  bool operator==(const QueryResponse& o) const {
    return status == o.status && ranking == o.ranking;
  }
};

struct FeedbackResponse {
  WireStatus status;
  std::vector<int32_t> ranking;

  bool operator==(const FeedbackResponse& o) const {
    return status == o.status && ranking == o.ranking;
  }
};

struct EndSessionResponse {
  WireStatus status;

  bool operator==(const EndSessionResponse& o) const {
    return status == o.status;
  }
};

/// Snapshot of the serve::ServiceStats counters a remote operator needs.
struct StatsResponse {
  WireStatus status;
  uint64_t requests = 0;
  uint64_t queries = 0;
  uint64_t feedbacks = 0;
  uint64_t sessions_started = 0;
  uint64_t sessions_ended = 0;
  uint64_t active_sessions = 0;
  uint64_t log_sessions_appended = 0;
  double cache_hit_rate = 1.0;
  double qps = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  bool operator==(const StatsResponse& o) const {
    return status == o.status && requests == o.requests &&
           queries == o.queries && feedbacks == o.feedbacks &&
           sessions_started == o.sessions_started &&
           sessions_ended == o.sessions_ended &&
           active_sessions == o.active_sessions &&
           log_sessions_appended == o.log_sessions_appended &&
           cache_hit_rate == o.cache_hit_rate && qps == o.qps &&
           latency_p50_us == o.latency_p50_us &&
           latency_p95_us == o.latency_p95_us &&
           latency_p99_us == o.latency_p99_us;
  }
};

/// One metric series as it crosses the wire. `label_key`/`label_value` are
/// empty strings for unlabeled metrics.
struct MetricCounterSample {
  std::string name, label_key, label_value;
  uint64_t value = 0;

  bool operator==(const MetricCounterSample& o) const {
    return name == o.name && label_key == o.label_key &&
           label_value == o.label_value && value == o.value;
  }
};

struct MetricGaugeSample {
  std::string name, label_key, label_value;
  int64_t value = 0;

  bool operator==(const MetricGaugeSample& o) const {
    return name == o.name && label_key == o.label_key &&
           label_value == o.label_value && value == o.value;
  }
};

/// A histogram travels as its summary (count + saturation + percentiles),
/// not its buckets: operators and the load driver want the percentiles, and
/// the summary stays a fixed ~70 bytes however long the server has run.
struct MetricHistogramSample {
  std::string name, label_key, label_value;
  uint64_t count = 0;
  uint64_t saturated = 0;  ///< samples clamped beyond the top bucket
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  bool operator==(const MetricHistogramSample& o) const {
    return name == o.name && label_key == o.label_key &&
           label_value == o.label_value && count == o.count &&
           saturated == o.saturated && mean_us == o.mean_us &&
           p50_us == o.p50_us && p95_us == o.p95_us && p99_us == o.p99_us &&
           max_us == o.max_us;
  }
};

/// Snapshot of the server's metrics registry (samples sorted by name then
/// label, the registry's iteration order).
struct MetricsResponse {
  WireStatus status;
  std::vector<MetricCounterSample> counters;
  std::vector<MetricGaugeSample> gauges;
  std::vector<MetricHistogramSample> histograms;

  bool operator==(const MetricsResponse& o) const {
    return status == o.status && counters == o.counters &&
           gauges == o.gauges && histograms == o.histograms;
  }
};

/// What a server serves: corpus shape, feedback scheme, and index
/// configuration, enough for a peer to decide compatibility without seeing
/// the data. Two shards are mergeable when everything except corpus_size
/// matches (replicas additionally match corpus_size).
struct DescribeResponse {
  WireStatus status;
  uint64_t corpus_size = 0;     ///< images in this shard's corpus
  uint32_t dims = 0;            ///< feature dimensionality
  uint32_t num_categories = 0;  ///< ground-truth categories (eval corpora)
  int32_t candidate_depth = 0;  ///< first-round cutoff (<=0 = full corpus)
  int32_t default_k = 0;        ///< ranking length when the client passes 0
  std::string scheme;           ///< feedback scheme name (e.g. "RF-SVM")
  std::string index;            ///< index description (e.g. "exact", "none")

  bool operator==(const DescribeResponse& o) const {
    return status == o.status && corpus_size == o.corpus_size &&
           dims == o.dims && num_categories == o.num_categories &&
           candidate_depth == o.candidate_depth &&
           default_k == o.default_k && scheme == o.scheme &&
           index == o.index;
  }
};

/// One scored first-round candidate: a corpus image id plus its exact
/// feature distance to the query. Distances make per-shard lists mergeable.
struct Candidate {
  int32_t id = -1;
  double distance = 0.0;

  bool operator==(const Candidate& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// First-round candidates sorted by (distance, id) ascending — the same
/// total order the index uses, so merging shard lists reproduces the
/// single-node ranking on replicas.
struct CandidateResponse {
  WireStatus status;
  std::vector<Candidate> candidates;

  bool operator==(const CandidateResponse& o) const {
    return status == o.status && candidates == o.candidates;
  }
};

// ----------------------------------------------------- EXPLAIN profile --

/// One timed stage of the request, as it crosses the wire in a profile
/// block (the server-side obs::TraceSpan, flattened).
struct ProfileSpan {
  std::string name;
  uint64_t start_us = 0;     ///< offset from the request's trace start
  uint64_t duration_us = 0;
  uint8_t depth = 0;         ///< span-tree nesting depth

  bool operator==(const ProfileSpan& o) const {
    return name == o.name && start_us == o.start_us &&
           duration_us == o.duration_us && depth == o.depth;
  }
};

/// One named per-request work counter (smo_iterations,
/// kernel_cache_hits, index_rows_scanned...) — a delta for THIS request,
/// not a process aggregate.
struct ProfileCounter {
  std::string name;
  int64_t value = 0;

  bool operator==(const ProfileCounter& o) const {
    return name == o.name && value == o.value;
  }
};

/// \brief The per-query EXPLAIN block a server attaches to its response
/// when the request envelope carried the 0x08 profile flag: the stage
/// breakdown and work counters of exactly this request, measured where the
/// time was actually spent. Spans cover the stages completed before the
/// response was encoded (decode through solve); the encode/write stages
/// happen after the profile is serialized and so cannot appear in it.
struct ResponseProfile {
  uint64_t trace_id = 0;
  uint64_t total_us = 0;  ///< server time up to profile serialization
  std::vector<ProfileSpan> spans;
  std::vector<ProfileCounter> counters;

  bool operator==(const ResponseProfile& o) const {
    return trace_id == o.trace_id && total_us == o.total_us &&
           spans == o.spans && counters == o.counters;
  }
};

/// Sent when a request frame could not be decoded at all (bad magic,
/// unsupported version, malformed body): there is no request type to answer,
/// so the server replies with this and closes the connection (the stream may
/// be desynchronized).
struct ErrorResponse {
  WireStatus status;

  bool operator==(const ErrorResponse& o) const { return status == o.status; }
};

/// The closed set of API messages. The codec and the dispatcher both
/// std::visit these, so adding a message type is a compile-enforced
/// five-line checklist (struct, variant entry, MessageType, encode, decode).
using Request =
    std::variant<StartSessionRequest, QueryRequest, FeedbackRequest,
                 EndSessionRequest, StatsRequest, MetricsRequest,
                 DescribeRequest, CandidateRequest>;
using Response =
    std::variant<StartSessionResponse, QueryResponse, FeedbackResponse,
                 EndSessionResponse, StatsResponse, MetricsResponse,
                 DescribeResponse, CandidateResponse, ErrorResponse>;

}  // namespace cbir::api

#endif  // CBIR_API_MESSAGES_H_
