#ifndef CBIR_API_CODEC_H_
#define CBIR_API_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/messages.h"
#include "util/result.h"

namespace cbir::api {

/// \brief Versioned length-prefixed binary wire format for the API messages.
///
/// Every message travels as one frame (all integers little-endian, encoded
/// and decoded byte-by-byte so the codec is endian-portable):
///
///   uint32 magic       0x43424952 ("CBIR" read as a big-endian word)
///   uint16 version     kProtocolVersion
///   uint8  type        MessageType
///   uint8  reserved    0
///   uint32 body_size   bytes following this header
///   byte[body_size]    message body (layouts in docs/API.md)
///
/// Decoding never trusts the peer: truncated frames, bad magic, unsupported
/// versions, oversized bodies, unknown message types, short bodies, and
/// trailing bytes all return typed errors (never UB or a crash — the codec
/// tests run the malformed-frame corpus under ASan).
inline constexpr uint32_t kWireMagic = 0x43424952;  // "CBIR"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on body_size (64 MiB): a frame any bigger is rejected before
/// any allocation, so a hostile length prefix cannot OOM the server.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

/// \brief Wire discriminator of each message; values are part of the
/// protocol and never change once shipped.
enum class MessageType : uint8_t {
  kStartSessionRequest = 1,
  kStartSessionResponse = 2,
  kQueryRequest = 3,
  kQueryResponse = 4,
  kFeedbackRequest = 5,
  kFeedbackResponse = 6,
  kEndSessionRequest = 7,
  kEndSessionResponse = 8,
  kStatsRequest = 9,
  kStatsResponse = 10,
  kErrorResponse = 11,
};

/// \brief Parsed frame header (magic already verified).
struct FrameHeader {
  uint16_t version = 0;
  MessageType type = MessageType::kErrorResponse;
  uint32_t body_size = 0;
};

/// Serializes a message into one complete frame (header + body). Encoding
/// itself is unbounded — it cannot fail — so transports must check the
/// result against kFrameHeaderBytes + kMaxFrameBody before putting it on
/// the wire (net::TcpServer substitutes a typed ErrorResponse,
/// net::TcpClient::Send fails OutOfRange), or the receiving decoder would
/// reject the frame and desynchronize the stream.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Parses and validates the 12-byte frame header: checks size, magic,
/// version, body limit, and that `type` names a known message. `size` may
/// exceed kFrameHeaderBytes; only the first 12 bytes are read.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

/// Decodes one complete frame (header + body, exactly `size` bytes).
/// A response frame handed to DecodeRequest (or vice versa) is an
/// InvalidArgument, as are truncated/trailing bytes.
Result<Request> DecodeRequest(const uint8_t* data, size_t size);
Result<Response> DecodeResponse(const uint8_t* data, size_t size);

/// Body-only decoders for transports that read the header and body
/// separately (the TCP server/client do): `header` must come from
/// DecodeFrameHeader and `size` must equal header.body_size.
Result<Request> DecodeRequestBody(const FrameHeader& header,
                                  const uint8_t* body, size_t size);
Result<Response> DecodeResponseBody(const FrameHeader& header,
                                    const uint8_t* body, size_t size);

/// Wire type of a message (exposed for tests and the server loop).
MessageType TypeOf(const Request& request);
MessageType TypeOf(const Response& response);

}  // namespace cbir::api

#endif  // CBIR_API_CODEC_H_
