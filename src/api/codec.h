#ifndef CBIR_API_CODEC_H_
#define CBIR_API_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/messages.h"
#include "util/result.h"

namespace cbir::api {

/// \brief Versioned length-prefixed binary wire format for the API messages.
///
/// Every message travels as one frame (all integers little-endian, encoded
/// and decoded byte-by-byte so the codec is endian-portable):
///
///   uint32 magic       0x43424952 ("CBIR" read as a big-endian word)
///   uint16 version     1 or 2
///   uint8  type        MessageType
///   uint8  flags       v1: reserved, ignored. v2: envelope flags
///   uint32 body_size   bytes following this header (incl. envelope)
///   [envelope]         v2 request frames only, per flags (below)
///   byte[...]          message body (layouts in docs/API.md)
///
/// Protocol v2 adds an optional request envelope between header and body,
/// gated by flag bits:
///
///   0x01  u32 deadline_ms   relative deadline; the server sheds the
///                           request once that budget has elapsed (0 =
///                           already expired — a cancel)
///   0x02  u32 seq           per-session sequence number (nonzero); lets
///                           the service apply a retried Feedback at most
///                           once and replay the cached response
///   0x04  u64 trace_id      client-chosen trace id; the server stamps the
///                           request's span tree and slow-request log with
///                           it so a client-side outlier can be matched to
///                           the server-side stage breakdown
///   0x08  (no payload)      EXPLAIN: asks the server to attach a profile
///                           block to its response. On a request the flag
///                           carries zero envelope bytes; the server's
///                           response then comes back as a v2 frame with
///                           flag 0x08 and a profile block (layout in
///                           docs/API.md) between header and body
///   0x10  u32 crc32         integrity trailer: the IEEE CRC32 of the whole
///                           frame (canonical header + envelope/profile +
///                           body) appended as the LAST four body bytes and
///                           counted in body_size. Verified before anything
///                           else is parsed; a mismatch is a typed kDataLoss
///                           error, so a bit-flipped frame is rejected
///                           instead of decoding as a different valid
///                           message. Valid on requests and responses; a
///                           server echoes it on the response when the
///                           request carried it
///   0x20  (no payload)      degraded response: the result was merged from
///                           fewer shards than configured (a router lost a
///                           backend mid-request). Response frames only
///
/// Envelope fields are encoded in flag-bit order (deadline, seq, trace_id;
/// the crc32 trailer goes last by definition). Unknown v2 flag bits are
/// malformed. Encoders emit a v1 frame whenever the envelope is empty — and
/// responses carry no envelope and only ever the 0x08/0x10/0x20 flags, only
/// when asked — so a v1 peer sees byte-identical traffic unless the client
/// opts in.
///
/// Decoding never trusts the peer: truncated frames, bad magic, unsupported
/// versions, oversized bodies, unknown message types, short bodies, and
/// trailing bytes all return typed errors (never UB or a crash — the codec
/// tests run the malformed-frame corpus under ASan).
inline constexpr uint32_t kWireMagic = 0x43424952;  // "CBIR"
inline constexpr uint16_t kProtocolVersionV1 = 1;
inline constexpr uint16_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint8_t kFrameFlagDeadline = 0x01;
inline constexpr uint8_t kFrameFlagSeq = 0x02;
inline constexpr uint8_t kFrameFlagTraceId = 0x04;
inline constexpr uint8_t kFrameFlagProfile = 0x08;
inline constexpr uint8_t kFrameFlagChecksum = 0x10;
inline constexpr uint8_t kFrameFlagDegraded = 0x20;
inline constexpr uint8_t kKnownFrameFlags =
    kFrameFlagDeadline | kFrameFlagSeq | kFrameFlagTraceId |
    kFrameFlagProfile | kFrameFlagChecksum | kFrameFlagDegraded;
/// Bytes of the flag-0x10 integrity trailer (one little-endian u32 CRC32).
inline constexpr size_t kChecksumTrailerBytes = 4;
/// Upper bound on body_size (64 MiB): a frame any bigger is rejected before
/// any allocation, so a hostile length prefix cannot OOM the server.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

/// \brief Wire discriminator of each message; values are part of the
/// protocol and never change once shipped.
enum class MessageType : uint8_t {
  kStartSessionRequest = 1,
  kStartSessionResponse = 2,
  kQueryRequest = 3,
  kQueryResponse = 4,
  kFeedbackRequest = 5,
  kFeedbackResponse = 6,
  kEndSessionRequest = 7,
  kEndSessionResponse = 8,
  kStatsRequest = 9,
  kStatsResponse = 10,
  kErrorResponse = 11,
  kMetricsRequest = 12,
  kMetricsResponse = 13,
  kDescribeRequest = 14,
  kDescribeResponse = 15,
  kCandidateRequest = 16,
  kCandidateResponse = 17,
};

/// \brief Parsed frame header (magic already verified). `flags` is 0 for
/// v1 frames (whatever the reserved byte held — v1 never defined it).
struct FrameHeader {
  uint16_t version = 0;
  MessageType type = MessageType::kErrorResponse;
  uint8_t flags = 0;
  uint32_t body_size = 0;
};

/// \brief The optional v2 request envelope. Fields are meaningful only when
/// their `has_` bit is set; an empty envelope encodes as a plain v1 frame.
struct RequestEnvelope {
  bool has_deadline = false;
  bool has_seq = false;
  bool has_trace_id = false;
  /// EXPLAIN request: flag-only, no envelope bytes — the server answers
  /// with a profile block attached to the response.
  bool has_profile = false;
  /// Integrity: append the flag-0x10 CRC32 trailer to the frame. A server
  /// echoes the trailer on its response to a checksummed request.
  bool has_checksum = false;
  uint32_t deadline_ms = 0;
  uint32_t seq = 0;
  uint64_t trace_id = 0;

  bool empty() const {
    return !has_deadline && !has_seq && !has_trace_id && !has_profile &&
           !has_checksum;
  }

  static RequestEnvelope WithDeadline(uint32_t ms) {
    RequestEnvelope e;
    e.has_deadline = true;
    e.deadline_ms = ms;
    return e;
  }

  static RequestEnvelope WithTraceId(uint64_t id) {
    RequestEnvelope e;
    e.has_trace_id = true;
    e.trace_id = id;
    return e;
  }

  static RequestEnvelope WithProfile() {
    RequestEnvelope e;
    e.has_profile = true;
    return e;
  }

  static RequestEnvelope WithChecksum() {
    RequestEnvelope e;
    e.has_checksum = true;
    return e;
  }

  bool operator==(const RequestEnvelope& o) const {
    return has_deadline == o.has_deadline && has_seq == o.has_seq &&
           has_trace_id == o.has_trace_id && has_profile == o.has_profile &&
           has_checksum == o.has_checksum &&
           deadline_ms == o.deadline_ms && seq == o.seq &&
           trace_id == o.trace_id;
  }
};

/// \brief Transport metadata a server attaches when encoding a response.
/// All-defaults encodes the plain (v1, byte-identical) frame.
struct ResponseFrameOptions {
  /// EXPLAIN profile block (flag 0x08); null = none.
  const ResponseProfile* profile = nullptr;
  /// Degraded-result marker (flag 0x20): fewer shards answered than are
  /// configured.
  bool degraded = false;
  /// Append the flag-0x10 CRC32 trailer (echoed when the request carried
  /// one).
  bool checksum = false;

  bool plain() const {
    return profile == nullptr && !degraded && !checksum;
  }
};

/// Serializes a message into one complete frame (header + body). Encoding
/// itself is unbounded — it cannot fail — so transports must check the
/// result against kFrameHeaderBytes + kMaxFrameBody before putting it on
/// the wire (net::TcpServer substitutes a typed ErrorResponse,
/// net::TcpClient::Send fails OutOfRange), or the receiving decoder would
/// reject the frame and desynchronize the stream.
std::vector<uint8_t> EncodeRequest(const Request& request);
/// Encodes with an envelope: a v2 frame when any envelope field is set, a
/// byte-identical v1 frame otherwise.
std::vector<uint8_t> EncodeRequest(const Request& request,
                                   const RequestEnvelope& envelope);
std::vector<uint8_t> EncodeResponse(const Response& response);
/// Encodes with an EXPLAIN profile attached: a v2 frame with flag 0x08 and
/// the profile block between header and body. `profile == nullptr` is the
/// plain (v1, byte-identical) encoding.
std::vector<uint8_t> EncodeResponse(const Response& response,
                                    const ResponseProfile* profile);
/// Encodes with full transport metadata (profile, degraded flag, checksum
/// trailer). All-default options encode the plain frame.
std::vector<uint8_t> EncodeResponse(const Response& response,
                                    const ResponseFrameOptions& options);

/// Parses and validates the 12-byte frame header: checks size, magic,
/// version, body limit, and that `type` names a known message. `size` may
/// exceed kFrameHeaderBytes; only the first 12 bytes are read.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

/// Decodes one complete frame (header + body, exactly `size` bytes).
/// A response frame handed to DecodeRequest (or vice versa) is an
/// InvalidArgument, as are truncated/trailing bytes.
Result<Request> DecodeRequest(const uint8_t* data, size_t size,
                              RequestEnvelope* envelope = nullptr);
Result<Response> DecodeResponse(const uint8_t* data, size_t size,
                                ResponseProfile* profile = nullptr,
                                bool* degraded = nullptr);

/// Body-only decoders for transports that read the header and body
/// separately (the TCP server/client do): `header` must come from
/// DecodeFrameHeader and `size` must equal header.body_size. The request
/// decoder strips the v2 envelope (per header.flags) off the body first;
/// `envelope` (optional) receives it — empty for v1 frames. The response
/// decoder strips the 0x08 profile block the same way; `profile`
/// (optional) receives it (trace_id stays 0 when the frame carried none) —
/// a profile the caller did not ask to receive is still parsed and
/// validated, just dropped. The flag-0x10 checksum trailer, when present,
/// is verified FIRST (over the canonical header bytes plus the body up to
/// the trailer) and stripped — a mismatch is a typed kDataLoss error.
/// `degraded` (optional) receives the response's 0x20 flag. Any other flag
/// bit on a response frame is malformed: responses carry no envelope; and
/// 0x20 on a request frame is malformed in turn.
Result<Request> DecodeRequestBody(const FrameHeader& header,
                                  const uint8_t* body, size_t size,
                                  RequestEnvelope* envelope = nullptr);
Result<Response> DecodeResponseBody(const FrameHeader& header,
                                    const uint8_t* body, size_t size,
                                    ResponseProfile* profile = nullptr,
                                    bool* degraded = nullptr);

/// Wire type of a message (exposed for tests and the server loop).
MessageType TypeOf(const Request& request);
MessageType TypeOf(const Response& response);

}  // namespace cbir::api

#endif  // CBIR_API_CODEC_H_
