#include "api/codec.h"

#include <cstring>
#include <string>
#include <utility>

#include "logdb/wal.h"

namespace cbir::api {

namespace {

// ------------------------------------------------------------------ writer --

/// Appends little-endian primitives to a byte buffer. Encoding writes bytes
/// explicitly (no reinterpret_cast of multi-byte values), so the format is
/// identical on any host endianness.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) {
    for (int i = 0; i < 2; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  void PutI8(int8_t v) { PutU8(static_cast<uint8_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  std::vector<uint8_t>* out_;
};

// ------------------------------------------------------------------ reader --

/// Bounds-checked little-endian reader over one frame body. Every Read*
/// returns false instead of touching out-of-range memory; decoders translate
/// that into a typed error. Length-prefixed containers verify the prefix
/// against the bytes actually remaining *before* allocating, so a hostile
/// length cannot trigger a huge allocation.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) *v |= uint16_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool ReadI8(int8_t* v) {
    uint8_t raw;
    if (!ReadU8(&raw)) return false;
    *v = static_cast<int8_t>(raw);
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t raw;
    if (!ReadU32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (len > remaining()) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool ReadVecF64(std::vector<double>* v) {
    uint32_t n;
    if (!ReadU32(&n)) return false;
    if (static_cast<size_t>(n) * 8 > remaining()) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!ReadF64(&(*v)[i])) return false;
    }
    return true;
  }
  bool ReadVecI32(std::vector<int32_t>* v) {
    uint32_t n;
    if (!ReadU32(&n)) return false;
    if (static_cast<size_t>(n) * 4 > remaining()) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!ReadI32(&(*v)[i])) return false;
    }
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("wire codec: malformed frame (") +
                                 what + ")");
}

// ------------------------------------------------------- field (en|de)code --

void PutQuerySpec(Writer& w, const QuerySpec& spec) {
  w.PutU8(static_cast<uint8_t>(spec.kind));
  if (spec.kind == QuerySpec::Kind::kCorpusId) {
    w.PutI32(spec.corpus_id);
  } else {
    w.PutU32(static_cast<uint32_t>(spec.feature.size()));
    for (double v : spec.feature) w.PutF64(v);
  }
}

bool ReadQuerySpec(Reader& r, QuerySpec* spec) {
  uint8_t kind;
  if (!r.ReadU8(&kind)) return false;
  switch (kind) {
    case static_cast<uint8_t>(QuerySpec::Kind::kCorpusId):
      spec->kind = QuerySpec::Kind::kCorpusId;
      return r.ReadI32(&spec->corpus_id);
    case static_cast<uint8_t>(QuerySpec::Kind::kFeature):
      spec->kind = QuerySpec::Kind::kFeature;
      return r.ReadVecF64(&spec->feature);
    default:
      return false;  // unknown QuerySpec kind
  }
}

void PutWireStatus(Writer& w, const WireStatus& status) {
  w.PutU32(status.code);
  w.PutString(status.message);
}

bool ReadWireStatus(Reader& r, WireStatus* status) {
  return r.ReadU32(&status->code) && r.ReadString(&status->message);
}

/// The 0x08 profile block, between a v2 response header and its body:
///   u64 trace_id, u64 total_us,
///   u32 span_count,    { string name, u64 start_us, u64 duration_us,
///                        u8 depth } each,
///   u32 counter_count, { string name, u64 value (two's complement) } each.
void PutProfile(Writer& w, const ResponseProfile& profile) {
  w.PutU64(profile.trace_id);
  w.PutU64(profile.total_us);
  w.PutU32(static_cast<uint32_t>(profile.spans.size()));
  for (const ProfileSpan& span : profile.spans) {
    w.PutString(span.name);
    w.PutU64(span.start_us);
    w.PutU64(span.duration_us);
    w.PutU8(span.depth);
  }
  w.PutU32(static_cast<uint32_t>(profile.counters.size()));
  for (const ProfileCounter& counter : profile.counters) {
    w.PutString(counter.name);
    w.PutU64(static_cast<uint64_t>(counter.value));
  }
}

bool ReadProfile(Reader& r, ResponseProfile* profile) {
  if (!r.ReadU64(&profile->trace_id) || !r.ReadU64(&profile->total_us)) {
    return false;
  }
  uint32_t n;
  // Counts verified against the bytes remaining at minimum encoded size
  // before sizing the vector, like every other container in this codec.
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 21 > r.remaining()) return false;
  profile->spans.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    ProfileSpan& span = profile->spans[i];
    if (!r.ReadString(&span.name) || !r.ReadU64(&span.start_us) ||
        !r.ReadU64(&span.duration_us) || !r.ReadU8(&span.depth)) {
      return false;
    }
  }
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 12 > r.remaining()) return false;
  profile->counters.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    ProfileCounter& counter = profile->counters[i];
    uint64_t raw;
    if (!r.ReadString(&counter.name) || !r.ReadU64(&raw)) return false;
    counter.value = static_cast<int64_t>(raw);
  }
  return true;
}

// ----------------------------------------------------------- message bodies --

void PutBody(Writer& w, const StartSessionRequest& m) {
  PutQuerySpec(w, m.query);
}
void PutBody(Writer& w, const QueryRequest& m) {
  w.PutU64(m.session_id);
  w.PutI32(m.k);
}
void PutBody(Writer& w, const FeedbackRequest& m) {
  w.PutU64(m.session_id);
  w.PutI32(m.k);
  w.PutU32(static_cast<uint32_t>(m.round.size()));
  for (const logdb::LogEntry& e : m.round) {
    w.PutI32(e.image_id);
    w.PutI8(e.judgment);
  }
}
void PutBody(Writer& w, const EndSessionRequest& m) { w.PutU64(m.session_id); }
void PutBody(Writer&, const StatsRequest&) {}
void PutBody(Writer&, const MetricsRequest&) {}
void PutBody(Writer&, const DescribeRequest&) {}
void PutBody(Writer& w, const CandidateRequest& m) {
  PutQuerySpec(w, m.query);
  w.PutI32(m.k);
}

void PutBody(Writer& w, const StartSessionResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU64(m.session_id);
}
void PutBody(Writer& w, const QueryResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU32(static_cast<uint32_t>(m.ranking.size()));
  for (int32_t id : m.ranking) w.PutI32(id);
}
void PutBody(Writer& w, const FeedbackResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU32(static_cast<uint32_t>(m.ranking.size()));
  for (int32_t id : m.ranking) w.PutI32(id);
}
void PutBody(Writer& w, const EndSessionResponse& m) {
  PutWireStatus(w, m.status);
}
void PutBody(Writer& w, const StatsResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU64(m.requests);
  w.PutU64(m.queries);
  w.PutU64(m.feedbacks);
  w.PutU64(m.sessions_started);
  w.PutU64(m.sessions_ended);
  w.PutU64(m.active_sessions);
  w.PutU64(m.log_sessions_appended);
  w.PutF64(m.cache_hit_rate);
  w.PutF64(m.qps);
  w.PutF64(m.latency_p50_us);
  w.PutF64(m.latency_p95_us);
  w.PutF64(m.latency_p99_us);
}
void PutBody(Writer& w, const MetricsResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU32(static_cast<uint32_t>(m.counters.size()));
  for (const MetricCounterSample& c : m.counters) {
    w.PutString(c.name);
    w.PutString(c.label_key);
    w.PutString(c.label_value);
    w.PutU64(c.value);
  }
  w.PutU32(static_cast<uint32_t>(m.gauges.size()));
  for (const MetricGaugeSample& g : m.gauges) {
    w.PutString(g.name);
    w.PutString(g.label_key);
    w.PutString(g.label_value);
    w.PutU64(static_cast<uint64_t>(g.value));
  }
  w.PutU32(static_cast<uint32_t>(m.histograms.size()));
  for (const MetricHistogramSample& h : m.histograms) {
    w.PutString(h.name);
    w.PutString(h.label_key);
    w.PutString(h.label_value);
    w.PutU64(h.count);
    w.PutU64(h.saturated);
    w.PutF64(h.mean_us);
    w.PutF64(h.p50_us);
    w.PutF64(h.p95_us);
    w.PutF64(h.p99_us);
    w.PutF64(h.max_us);
  }
}
void PutBody(Writer& w, const DescribeResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU64(m.corpus_size);
  w.PutU32(m.dims);
  w.PutU32(m.num_categories);
  w.PutI32(m.candidate_depth);
  w.PutI32(m.default_k);
  w.PutString(m.scheme);
  w.PutString(m.index);
}
void PutBody(Writer& w, const CandidateResponse& m) {
  PutWireStatus(w, m.status);
  w.PutU32(static_cast<uint32_t>(m.candidates.size()));
  for (const Candidate& c : m.candidates) {
    w.PutI32(c.id);
    w.PutF64(c.distance);
  }
}
void PutBody(Writer& w, const ErrorResponse& m) { PutWireStatus(w, m.status); }

bool ReadBody(Reader& r, StartSessionRequest* m) {
  return ReadQuerySpec(r, &m->query);
}
bool ReadBody(Reader& r, QueryRequest* m) {
  return r.ReadU64(&m->session_id) && r.ReadI32(&m->k);
}
bool ReadBody(Reader& r, FeedbackRequest* m) {
  if (!r.ReadU64(&m->session_id) || !r.ReadI32(&m->k)) return false;
  uint32_t n;
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 5 > r.remaining()) return false;
  m->round.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.ReadI32(&m->round[i].image_id) ||
        !r.ReadI8(&m->round[i].judgment)) {
      return false;
    }
  }
  return true;
}
bool ReadBody(Reader& r, EndSessionRequest* m) {
  return r.ReadU64(&m->session_id);
}
bool ReadBody(Reader&, StatsRequest*) { return true; }
bool ReadBody(Reader&, MetricsRequest*) { return true; }
bool ReadBody(Reader&, DescribeRequest*) { return true; }
bool ReadBody(Reader& r, CandidateRequest* m) {
  return ReadQuerySpec(r, &m->query) && r.ReadI32(&m->k);
}

bool ReadBody(Reader& r, StartSessionResponse* m) {
  return ReadWireStatus(r, &m->status) && r.ReadU64(&m->session_id);
}
bool ReadBody(Reader& r, QueryResponse* m) {
  return ReadWireStatus(r, &m->status) && r.ReadVecI32(&m->ranking);
}
bool ReadBody(Reader& r, FeedbackResponse* m) {
  return ReadWireStatus(r, &m->status) && r.ReadVecI32(&m->ranking);
}
bool ReadBody(Reader& r, EndSessionResponse* m) {
  return ReadWireStatus(r, &m->status);
}
bool ReadBody(Reader& r, StatsResponse* m) {
  return ReadWireStatus(r, &m->status) && r.ReadU64(&m->requests) &&
         r.ReadU64(&m->queries) && r.ReadU64(&m->feedbacks) &&
         r.ReadU64(&m->sessions_started) && r.ReadU64(&m->sessions_ended) &&
         r.ReadU64(&m->active_sessions) &&
         r.ReadU64(&m->log_sessions_appended) &&
         r.ReadF64(&m->cache_hit_rate) && r.ReadF64(&m->qps) &&
         r.ReadF64(&m->latency_p50_us) && r.ReadF64(&m->latency_p95_us) &&
         r.ReadF64(&m->latency_p99_us);
}
bool ReadBody(Reader& r, MetricsResponse* m) {
  if (!ReadWireStatus(r, &m->status)) return false;
  uint32_t n;
  // Each count is verified against the bytes actually remaining (at the
  // sample's minimum encoded size) before the vector is sized, so a hostile
  // count cannot trigger a huge allocation.
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 20 > r.remaining()) return false;
  m->counters.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricCounterSample& c = m->counters[i];
    if (!r.ReadString(&c.name) || !r.ReadString(&c.label_key) ||
        !r.ReadString(&c.label_value) || !r.ReadU64(&c.value)) {
      return false;
    }
  }
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 20 > r.remaining()) return false;
  m->gauges.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricGaugeSample& g = m->gauges[i];
    uint64_t raw;
    if (!r.ReadString(&g.name) || !r.ReadString(&g.label_key) ||
        !r.ReadString(&g.label_value) || !r.ReadU64(&raw)) {
      return false;
    }
    g.value = static_cast<int64_t>(raw);
  }
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 68 > r.remaining()) return false;
  m->histograms.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricHistogramSample& h = m->histograms[i];
    if (!r.ReadString(&h.name) || !r.ReadString(&h.label_key) ||
        !r.ReadString(&h.label_value) || !r.ReadU64(&h.count) ||
        !r.ReadU64(&h.saturated) || !r.ReadF64(&h.mean_us) ||
        !r.ReadF64(&h.p50_us) || !r.ReadF64(&h.p95_us) ||
        !r.ReadF64(&h.p99_us) || !r.ReadF64(&h.max_us)) {
      return false;
    }
  }
  return true;
}
bool ReadBody(Reader& r, DescribeResponse* m) {
  return ReadWireStatus(r, &m->status) && r.ReadU64(&m->corpus_size) &&
         r.ReadU32(&m->dims) && r.ReadU32(&m->num_categories) &&
         r.ReadI32(&m->candidate_depth) && r.ReadI32(&m->default_k) &&
         r.ReadString(&m->scheme) && r.ReadString(&m->index);
}
bool ReadBody(Reader& r, CandidateResponse* m) {
  if (!ReadWireStatus(r, &m->status)) return false;
  uint32_t n;
  if (!r.ReadU32(&n)) return false;
  if (static_cast<size_t>(n) * 12 > r.remaining()) return false;
  m->candidates.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.ReadI32(&m->candidates[i].id) ||
        !r.ReadF64(&m->candidates[i].distance)) {
      return false;
    }
  }
  return true;
}
bool ReadBody(Reader& r, ErrorResponse* m) {
  return ReadWireStatus(r, &m->status);
}

// ----------------------------------------------------------------- framing --

/// Appends the flag-0x10 integrity trailer: the CRC32 of every frame byte
/// written so far (body_size must already count the four trailer bytes).
void AppendChecksum(std::vector<uint8_t>* out) {
  const uint32_t crc = logdb::Crc32(out->data(), out->size());
  Writer w(out);
  w.PutU32(crc);
}

/// Verifies and strips the flag-0x10 trailer off a frame body: recomputes
/// the CRC over the canonical header bytes plus the body up to the trailer
/// and compares. On success `*size` shrinks past the trailer; a mismatch is
/// a typed kDataLoss.
Status VerifyAndStripChecksum(const FrameHeader& header, const uint8_t* body,
                              size_t* size) {
  if (*size < kChecksumTrailerBytes) {
    return Malformed("short checksum trailer");
  }
  const size_t payload = *size - kChecksumTrailerBytes;
  // Rebuild the 12 header bytes exactly as the sender framed them — the
  // trailer covers type, flags, and body_size too, so a bit flip anywhere
  // in the frame is caught.
  std::vector<uint8_t> canonical;
  canonical.reserve(kFrameHeaderBytes);
  Writer w(&canonical);
  w.PutU32(kWireMagic);
  w.PutU16(header.version);
  w.PutU8(static_cast<uint8_t>(header.type));
  w.PutU8(header.flags);
  w.PutU32(header.body_size);
  uint32_t crc = logdb::Crc32(canonical.data(), canonical.size());
  crc = logdb::Crc32Continue(crc, body, payload);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= uint32_t(body[payload + i]) << (8 * i);
  }
  if (crc != stored) {
    return Status::DataLoss(
        "wire codec: frame failed its CRC32 integrity check (flag 0x10)");
  }
  *size = payload;
  return Status::OK();
}

template <typename Message>
std::vector<uint8_t> EncodeFrame(MessageType type, const Message& message,
                                 const RequestEnvelope& envelope) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutU32(kWireMagic);
  // An empty envelope encodes as a v1 frame, byte-identical to what this
  // codec emitted before v2 existed — v1 peers never see a v2 byte unless
  // the caller opted into deadlines or sequence numbers.
  if (envelope.empty()) {
    w.PutU16(kProtocolVersionV1);
    w.PutU8(static_cast<uint8_t>(type));
    w.PutU8(0);  // reserved
    w.PutU32(0);  // body_size placeholder
  } else {
    uint8_t flags = 0;
    if (envelope.has_deadline) flags |= kFrameFlagDeadline;
    if (envelope.has_seq) flags |= kFrameFlagSeq;
    if (envelope.has_trace_id) flags |= kFrameFlagTraceId;
    if (envelope.has_profile) flags |= kFrameFlagProfile;
    if (envelope.has_checksum) flags |= kFrameFlagChecksum;
    w.PutU16(kProtocolVersion);
    w.PutU8(static_cast<uint8_t>(type));
    w.PutU8(flags);
    w.PutU32(0);  // body_size placeholder
    if (envelope.has_deadline) w.PutU32(envelope.deadline_ms);
    if (envelope.has_seq) w.PutU32(envelope.seq);
    if (envelope.has_trace_id) w.PutU64(envelope.trace_id);
  }
  PutBody(w, message);
  const bool checksum = !envelope.empty() && envelope.has_checksum;
  const uint32_t body_size =
      static_cast<uint32_t>(out.size()) -
      static_cast<uint32_t>(kFrameHeaderBytes) +
      (checksum ? static_cast<uint32_t>(kChecksumTrailerBytes) : 0);
  for (int i = 0; i < 4; ++i) out[8 + i] = uint8_t(body_size >> (8 * i));
  if (checksum) AppendChecksum(&out);
  return out;
}

bool KnownMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kStartSessionRequest) &&
         type <= static_cast<uint8_t>(MessageType::kCandidateResponse);
}

/// Decodes one body into the variant alternative `header.type` names.
/// `Variant` is Request or Response; `Alternatives...` its member types.
template <typename Variant, typename Alternative>
Result<Variant> DecodeAs(const uint8_t* body, size_t size) {
  Reader r(body, size);
  Alternative message;
  if (!ReadBody(r, &message)) return Malformed("short body");
  if (r.remaining() != 0) return Malformed("trailing bytes");
  return Variant(std::move(message));
}

}  // namespace

MessageType TypeOf(const Request& request) {
  switch (request.index()) {
    case 0: return MessageType::kStartSessionRequest;
    case 1: return MessageType::kQueryRequest;
    case 2: return MessageType::kFeedbackRequest;
    case 3: return MessageType::kEndSessionRequest;
    case 4: return MessageType::kStatsRequest;
    case 5: return MessageType::kMetricsRequest;
    case 6: return MessageType::kDescribeRequest;
    default: return MessageType::kCandidateRequest;
  }
}

MessageType TypeOf(const Response& response) {
  switch (response.index()) {
    case 0: return MessageType::kStartSessionResponse;
    case 1: return MessageType::kQueryResponse;
    case 2: return MessageType::kFeedbackResponse;
    case 3: return MessageType::kEndSessionResponse;
    case 4: return MessageType::kStatsResponse;
    case 5: return MessageType::kMetricsResponse;
    case 6: return MessageType::kDescribeResponse;
    case 7: return MessageType::kCandidateResponse;
    default: return MessageType::kErrorResponse;
  }
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  return EncodeRequest(request, RequestEnvelope{});
}

std::vector<uint8_t> EncodeRequest(const Request& request,
                                   const RequestEnvelope& envelope) {
  return std::visit(
      [&](const auto& message) {
        return EncodeFrame(TypeOf(request), message, envelope);
      },
      request);
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  // Responses never carry an envelope, so they stay v1 frames forever: a
  // v1 client talking to a v2 server reads byte-identical replies.
  return std::visit(
      [&](const auto& message) {
        return EncodeFrame(TypeOf(response), message, RequestEnvelope{});
      },
      response);
}

std::vector<uint8_t> EncodeResponse(const Response& response,
                                    const ResponseProfile* profile) {
  ResponseFrameOptions options;
  options.profile = profile;
  return EncodeResponse(response, options);
}

std::vector<uint8_t> EncodeResponse(const Response& response,
                                    const ResponseFrameOptions& options) {
  if (options.plain()) return EncodeResponse(response);
  // The one place a response goes v2: a profile block (flag 0x08, between
  // header and body), a degraded marker (0x20, flag-only), or a checksum
  // trailer (0x10, echoed when the request carried one). Each is opt-in per
  // request, so v1 clients still see v1 bytes.
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutU32(kWireMagic);
  w.PutU16(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(TypeOf(response)));
  uint8_t flags = 0;
  if (options.profile != nullptr) flags |= kFrameFlagProfile;
  if (options.checksum) flags |= kFrameFlagChecksum;
  if (options.degraded) flags |= kFrameFlagDegraded;
  w.PutU8(flags);
  w.PutU32(0);  // body_size placeholder
  if (options.profile != nullptr) PutProfile(w, *options.profile);
  std::visit([&](const auto& message) { PutBody(w, message); }, response);
  const uint32_t body_size =
      static_cast<uint32_t>(out.size()) -
      static_cast<uint32_t>(kFrameHeaderBytes) +
      (options.checksum ? static_cast<uint32_t>(kChecksumTrailerBytes) : 0);
  for (int i = 0; i < 4; ++i) out[8 + i] = uint8_t(body_size >> (8 * i));
  if (options.checksum) AppendChecksum(&out);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes) return Malformed("truncated header");
  Reader r(data, kFrameHeaderBytes);
  uint32_t magic;
  uint16_t version;
  uint8_t type, reserved;
  uint32_t body_size;
  // The header reads cannot fail (12 bytes were checked), but keep the
  // pattern uniform.
  if (!r.ReadU32(&magic) || !r.ReadU16(&version) || !r.ReadU8(&type) ||
      !r.ReadU8(&reserved) || !r.ReadU32(&body_size)) {
    return Malformed("truncated header");
  }
  if (magic != kWireMagic) return Malformed("bad magic");
  if (version != kProtocolVersionV1 && version != kProtocolVersion) {
    return Status::NotImplemented(
        "wire codec: unsupported protocol version " + std::to_string(version) +
        " (this peer speaks up to " + std::to_string(kProtocolVersion) + ")");
  }
  // v1 never defined the reserved byte, so it stays ignored; v2 made it the
  // envelope flags, where an unknown bit means a peer newer than us.
  if (version == kProtocolVersion && (reserved & ~kKnownFrameFlags) != 0) {
    return Malformed("unknown frame flags");
  }
  if (body_size > kMaxFrameBody) {
    return Status::OutOfRange("wire codec: frame body of " +
                              std::to_string(body_size) +
                              " bytes exceeds the " +
                              std::to_string(kMaxFrameBody) + "-byte limit");
  }
  if (!KnownMessageType(type)) {
    return Malformed("unknown message type");
  }
  FrameHeader header;
  header.version = version;
  header.type = static_cast<MessageType>(type);
  header.flags = version == kProtocolVersion ? reserved : 0;
  header.body_size = body_size;
  return header;
}

Result<Request> DecodeRequestBody(const FrameHeader& header,
                                  const uint8_t* body, size_t size,
                                  RequestEnvelope* envelope) {
  // Strip the v2 envelope off the body prefix before the message decoder
  // sees it; a v1 frame has no flags, so this is a no-op there.
  RequestEnvelope parsed;
  if (header.flags & kFrameFlagDegraded) {
    // 0x20 marks a degraded *response*; on a request it is nonsense.
    return Malformed("degraded flag on a request");
  }
  if (header.flags & kFrameFlagChecksum) {
    // Integrity first: nothing else in the frame is parsed until the
    // trailer matches, so a flipped bit cannot decode as a different
    // valid request.
    Status verified = VerifyAndStripChecksum(header, body, &size);
    if (!verified.ok()) return verified;
    parsed.has_checksum = true;
  }
  if (header.flags != 0) {
    Reader r(body, size);
    if (header.flags & kFrameFlagDeadline) {
      parsed.has_deadline = true;
      if (!r.ReadU32(&parsed.deadline_ms)) return Malformed("short envelope");
    }
    if (header.flags & kFrameFlagSeq) {
      parsed.has_seq = true;
      if (!r.ReadU32(&parsed.seq)) return Malformed("short envelope");
    }
    if (header.flags & kFrameFlagTraceId) {
      parsed.has_trace_id = true;
      if (!r.ReadU64(&parsed.trace_id)) return Malformed("short envelope");
    }
    // 0x08 is flag-only on requests: the ask rides the bit, not bytes.
    if (header.flags & kFrameFlagProfile) parsed.has_profile = true;
    const size_t envelope_bytes = size - r.remaining();
    body += envelope_bytes;
    size -= envelope_bytes;
  }
  if (envelope != nullptr) *envelope = parsed;
  switch (header.type) {
    case MessageType::kStartSessionRequest:
      return DecodeAs<Request, StartSessionRequest>(body, size);
    case MessageType::kQueryRequest:
      return DecodeAs<Request, QueryRequest>(body, size);
    case MessageType::kFeedbackRequest:
      return DecodeAs<Request, FeedbackRequest>(body, size);
    case MessageType::kEndSessionRequest:
      return DecodeAs<Request, EndSessionRequest>(body, size);
    case MessageType::kStatsRequest:
      return DecodeAs<Request, StatsRequest>(body, size);
    case MessageType::kMetricsRequest:
      return DecodeAs<Request, MetricsRequest>(body, size);
    case MessageType::kDescribeRequest:
      return DecodeAs<Request, DescribeRequest>(body, size);
    case MessageType::kCandidateRequest:
      return DecodeAs<Request, CandidateRequest>(body, size);
    default:
      return Malformed("response type where a request was expected");
  }
}

Result<Response> DecodeResponseBody(const FrameHeader& header,
                                    const uint8_t* body, size_t size,
                                    ResponseProfile* profile,
                                    bool* degraded) {
  if ((header.flags &
       ~(kFrameFlagProfile | kFrameFlagChecksum | kFrameFlagDegraded)) != 0) {
    // Responses carry no envelope: deadline/seq/trace bits on a response
    // frame mean a confused or hostile peer, not a newer protocol.
    return Malformed("request envelope flags on a response");
  }
  if (header.flags & kFrameFlagChecksum) {
    Status verified = VerifyAndStripChecksum(header, body, &size);
    if (!verified.ok()) return verified;
  }
  if (degraded != nullptr) {
    *degraded = (header.flags & kFrameFlagDegraded) != 0;
  }
  if (header.flags & kFrameFlagProfile) {
    ResponseProfile parsed;
    Reader r(body, size);
    if (!ReadProfile(r, &parsed)) return Malformed("short profile block");
    const size_t profile_bytes = size - r.remaining();
    body += profile_bytes;
    size -= profile_bytes;
    if (profile != nullptr) *profile = std::move(parsed);
  }
  switch (header.type) {
    case MessageType::kStartSessionResponse:
      return DecodeAs<Response, StartSessionResponse>(body, size);
    case MessageType::kQueryResponse:
      return DecodeAs<Response, QueryResponse>(body, size);
    case MessageType::kFeedbackResponse:
      return DecodeAs<Response, FeedbackResponse>(body, size);
    case MessageType::kEndSessionResponse:
      return DecodeAs<Response, EndSessionResponse>(body, size);
    case MessageType::kStatsResponse:
      return DecodeAs<Response, StatsResponse>(body, size);
    case MessageType::kMetricsResponse:
      return DecodeAs<Response, MetricsResponse>(body, size);
    case MessageType::kDescribeResponse:
      return DecodeAs<Response, DescribeResponse>(body, size);
    case MessageType::kCandidateResponse:
      return DecodeAs<Response, CandidateResponse>(body, size);
    case MessageType::kErrorResponse:
      return DecodeAs<Response, ErrorResponse>(body, size);
    default:
      return Malformed("request type where a response was expected");
  }
}

namespace {

Result<FrameHeader> DecodeWholeFrameHeader(const uint8_t* data, size_t size) {
  CBIR_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(data, size));
  if (size != kFrameHeaderBytes + header.body_size) {
    return Malformed(size < kFrameHeaderBytes + header.body_size
                         ? "truncated body"
                         : "trailing bytes after frame");
  }
  return header;
}

}  // namespace

Result<Request> DecodeRequest(const uint8_t* data, size_t size,
                              RequestEnvelope* envelope) {
  CBIR_ASSIGN_OR_RETURN(FrameHeader header,
                        DecodeWholeFrameHeader(data, size));
  return DecodeRequestBody(header, data + kFrameHeaderBytes, header.body_size,
                           envelope);
}

Result<Response> DecodeResponse(const uint8_t* data, size_t size,
                                ResponseProfile* profile, bool* degraded) {
  CBIR_ASSIGN_OR_RETURN(FrameHeader header,
                        DecodeWholeFrameHeader(data, size));
  return DecodeResponseBody(header, data + kFrameHeaderBytes,
                            header.body_size, profile, degraded);
}

}  // namespace cbir::api
