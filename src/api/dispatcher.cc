#include "api/dispatcher.h"

#include <utility>
#include <variant>

namespace cbir::api {

namespace {

/// Copies a ranking into the int32 wire representation (image ids are int in
/// memory; the wire fixes them at 32 bits).
std::vector<int32_t> ToWireRanking(const std::vector<int>& ranking) {
  return std::vector<int32_t>(ranking.begin(), ranking.end());
}

}  // namespace

Response Dispatcher::Dispatch(const Request& request) {
  return std::visit(
      [this](const auto& typed) -> Response { return Handle(typed); },
      request);
}

StartSessionResponse Dispatcher::Handle(const StartSessionRequest& request) {
  StartSessionResponse response;
  Result<uint64_t> session =
      request.query.kind == QuerySpec::Kind::kCorpusId
          ? service_->StartSession(static_cast<int>(request.query.corpus_id))
          : service_->StartSession(request.query.feature);
  if (session.ok()) {
    response.session_id = session.value();
  } else {
    response.status = ToWireStatus(session.status());
  }
  return response;
}

QueryResponse Dispatcher::Handle(const QueryRequest& request) {
  QueryResponse response;
  Result<std::vector<int>> ranking =
      service_->Query(request.session_id, static_cast<int>(request.k));
  if (ranking.ok()) {
    response.ranking = ToWireRanking(ranking.value());
  } else {
    response.status = ToWireStatus(ranking.status());
  }
  return response;
}

FeedbackResponse Dispatcher::Handle(const FeedbackRequest& request) {
  FeedbackResponse response;
  Result<std::vector<int>> ranking = service_->Feedback(
      request.session_id, request.round, static_cast<int>(request.k));
  if (ranking.ok()) {
    response.ranking = ToWireRanking(ranking.value());
  } else {
    response.status = ToWireStatus(ranking.status());
  }
  return response;
}

EndSessionResponse Dispatcher::Handle(const EndSessionRequest& request) {
  EndSessionResponse response;
  response.status = ToWireStatus(service_->EndSession(request.session_id));
  return response;
}

StatsResponse Dispatcher::Handle(const StatsRequest&) {
  const serve::ServiceStats stats = service_->stats();
  StatsResponse response;
  response.requests = stats.requests;
  response.queries = stats.queries;
  response.feedbacks = stats.feedbacks;
  response.sessions_started = stats.sessions_started;
  response.sessions_ended = stats.sessions_ended;
  response.active_sessions = stats.active_sessions;
  response.log_sessions_appended = stats.log_sessions_appended;
  response.cache_hit_rate = stats.cache_hit_rate;
  response.qps = stats.qps;
  response.latency_p50_us = stats.latency.p50_us;
  response.latency_p95_us = stats.latency.p95_us;
  response.latency_p99_us = stats.latency.p99_us;
  return response;
}

}  // namespace cbir::api
