#include "api/dispatcher.h"

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "obs/metrics.h"

namespace cbir::api {

namespace {

/// Copies a ranking into the int32 wire representation (image ids are int in
/// memory; the wire fixes them at 32 bits).
std::vector<int32_t> ToWireRanking(const std::vector<int>& ranking) {
  return std::vector<int32_t>(ranking.begin(), ranking.end());
}

}  // namespace

Response StatusOnlyResponse(const Request& request, const Status& status) {
  const WireStatus wire = ToWireStatus(status);
  return std::visit(
      [&](const auto& typed) -> Response {
        using Req = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<Req, StartSessionRequest>) {
          StartSessionResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, QueryRequest>) {
          QueryResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, FeedbackRequest>) {
          FeedbackResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, EndSessionRequest>) {
          EndSessionResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, StatsRequest>) {
          StatsResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, DescribeRequest>) {
          DescribeResponse r;
          r.status = wire;
          return r;
        } else if constexpr (std::is_same_v<Req, CandidateRequest>) {
          CandidateResponse r;
          r.status = wire;
          return r;
        } else {
          MetricsResponse r;
          r.status = wire;
          return r;
        }
      },
      request);
}

Response Dispatcher::Dispatch(const Request& request) {
  return std::visit(
      [this](const auto& typed) -> Response { return Handle(typed); },
      request);
}

Response Dispatcher::Dispatch(const Request& request,
                              const RequestEnvelope& envelope,
                              int64_t elapsed_ms) {
  if (envelope.has_deadline &&
      elapsed_ms >= static_cast<int64_t>(envelope.deadline_ms)) {
    service_->RecordDeadlineShed();
    return StatusOnlyResponse(
        request,
        Status::DeadlineExceeded(
            "request deadline of " + std::to_string(envelope.deadline_ms) +
            "ms expired before dispatch (" + std::to_string(elapsed_ms) +
            "ms elapsed)"));
  }
  if (envelope.has_seq) {
    if (const auto* feedback = std::get_if<FeedbackRequest>(&request)) {
      return Handle(*feedback, envelope.seq);
    }
  }
  return Dispatch(request);
}

Response Dispatcher::HandleRequest(const Request& request,
                                   const RequestEnvelope& envelope,
                                   int64_t elapsed_ms,
                                   ResponseContext* /*context*/) {
  return Dispatch(request, envelope, elapsed_ms);
}

StartSessionResponse Dispatcher::Handle(const StartSessionRequest& request) {
  StartSessionResponse response;
  Result<uint64_t> session =
      request.query.kind == QuerySpec::Kind::kCorpusId
          ? service_->StartSession(static_cast<int>(request.query.corpus_id))
          : service_->StartSession(request.query.feature);
  if (session.ok()) {
    response.session_id = session.value();
  } else {
    response.status = ToWireStatus(session.status());
  }
  return response;
}

QueryResponse Dispatcher::Handle(const QueryRequest& request) {
  QueryResponse response;
  Result<std::vector<int>> ranking =
      service_->Query(request.session_id, static_cast<int>(request.k));
  if (ranking.ok()) {
    response.ranking = ToWireRanking(ranking.value());
  } else {
    response.status = ToWireStatus(ranking.status());
  }
  return response;
}

FeedbackResponse Dispatcher::Handle(const FeedbackRequest& request,
                                    uint32_t seq) {
  FeedbackResponse response;
  Result<std::vector<int>> ranking = service_->Feedback(
      request.session_id, request.round, static_cast<int>(request.k), seq);
  if (ranking.ok()) {
    response.ranking = ToWireRanking(ranking.value());
  } else {
    response.status = ToWireStatus(ranking.status());
  }
  return response;
}

EndSessionResponse Dispatcher::Handle(const EndSessionRequest& request) {
  EndSessionResponse response;
  response.status = ToWireStatus(service_->EndSession(request.session_id));
  return response;
}

StatsResponse Dispatcher::Handle(const StatsRequest&) {
  const serve::ServiceStats stats = service_->stats();
  StatsResponse response;
  response.requests = stats.requests;
  response.queries = stats.queries;
  response.feedbacks = stats.feedbacks;
  response.sessions_started = stats.sessions_started;
  response.sessions_ended = stats.sessions_ended;
  response.active_sessions = stats.active_sessions;
  response.log_sessions_appended = stats.log_sessions_appended;
  response.cache_hit_rate = stats.cache_hit_rate;
  response.qps = stats.qps;
  response.latency_p50_us = stats.latency.p50_us;
  response.latency_p95_us = stats.latency.p95_us;
  response.latency_p99_us = stats.latency.p99_us;
  return response;
}

DescribeResponse Dispatcher::Handle(const DescribeRequest&) {
  const retrieval::ImageDatabase& db = service_->db();
  const serve::ServiceOptions& options = service_->options();
  DescribeResponse response;
  response.corpus_size = static_cast<uint64_t>(db.num_images());
  response.dims = static_cast<uint32_t>(db.features().cols());
  response.num_categories = static_cast<uint32_t>(db.num_categories());
  response.candidate_depth = options.candidate_depth;
  response.default_k = options.default_k;
  response.scheme = options.scheme;
  response.index = db.index() == nullptr ? "none" : db.index()->name();
  return response;
}

CandidateResponse Dispatcher::Handle(const CandidateRequest& request) {
  CandidateResponse response;
  // An in-corpus query resolves to its stored feature and excludes itself
  // from the answer, mirroring StartSession's session semantics; an
  // external feature is used as-is.
  const retrieval::ImageDatabase& db = service_->db();
  la::Vec feature;
  int exclude_id = -1;
  if (request.query.kind == QuerySpec::Kind::kCorpusId) {
    const int id = static_cast<int>(request.query.corpus_id);
    if (id < 0 || id >= db.num_images()) {
      response.status = ToWireStatus(Status::InvalidArgument(
          "retrieval service: query id " + std::to_string(id) +
          " out of range [0, " + std::to_string(db.num_images()) + ")"));
      return response;
    }
    feature = db.feature(id);
    exclude_id = id;
  } else {
    feature = request.query.feature;
  }
  Result<std::vector<serve::ScoredCandidate>> candidates =
      service_->FirstRoundCandidates(feature, static_cast<int>(request.k),
                                     exclude_id);
  if (!candidates.ok()) {
    response.status = ToWireStatus(candidates.status());
    return response;
  }
  response.candidates.reserve(candidates.value().size());
  for (const serve::ScoredCandidate& c : candidates.value()) {
    Candidate wire;
    wire.id = c.id;
    wire.distance = c.distance;
    response.candidates.push_back(wire);
  }
  return response;
}

MetricsResponse Dispatcher::Handle(const MetricsRequest&) {
  return MetricsSnapshotResponse();
}

MetricsResponse MetricsSnapshotResponse() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  MetricsResponse response;
  response.counters.reserve(snap.counters.size());
  for (const auto& c : snap.counters) {
    MetricCounterSample s;
    s.name = c.name;
    s.label_key = c.label_key;
    s.label_value = c.label_value;
    s.value = c.value;
    response.counters.push_back(std::move(s));
  }
  response.gauges.reserve(snap.gauges.size());
  for (const auto& g : snap.gauges) {
    MetricGaugeSample s;
    s.name = g.name;
    s.label_key = g.label_key;
    s.label_value = g.label_value;
    s.value = g.value;
    response.gauges.push_back(std::move(s));
  }
  response.histograms.reserve(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    MetricHistogramSample s;
    s.name = h.name;
    s.label_key = h.label_key;
    s.label_value = h.label_value;
    s.count = h.summary.count;
    s.saturated = h.summary.saturated;
    s.mean_us = h.summary.mean_us;
    s.p50_us = h.summary.p50_us;
    s.p95_us = h.summary.p95_us;
    s.p99_us = h.summary.p99_us;
    s.max_us = h.summary.max_us;
    response.histograms.push_back(std::move(s));
  }
  return response;
}

}  // namespace cbir::api
