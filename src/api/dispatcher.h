#ifndef CBIR_API_DISPATCHER_H_
#define CBIR_API_DISPATCHER_H_

#include <cstdint>

#include "api/codec.h"
#include "api/handler.h"
#include "api/messages.h"
#include "serve/retrieval_service.h"

namespace cbir::api {

/// \brief Maps each typed API request onto one serve::RetrievalService.
///
/// The dispatcher is the single point where the message surface meets the
/// service, so in-process callers (tests, embedded use) and remote callers
/// (net::TcpServer) share one code path and cannot drift: a remote session
/// is the same sequence of service calls an in-process session is.
///
/// Every handler is total — service errors come back as the response's
/// WireStatus, never as an exception or a crash — and thread-safe, because
/// RetrievalService is (the TCP server dispatches from one thread per
/// connection).
class Dispatcher : public RequestHandler {
 public:
  /// `service` must outlive the dispatcher.
  explicit Dispatcher(serve::RetrievalService* service) : service_(service) {}

  /// Routes a request to its typed handler.
  Response Dispatch(const Request& request);

  /// Envelope-aware dispatch (the transports' entry point). When the
  /// request carries a deadline and `elapsed_ms` — time already spent since
  /// the frame finished arriving — has consumed it, the request is shed
  /// with kDeadlineExceeded (in the matching response type, so pipelined
  /// clients stay in sync) and counted, without touching the service. A
  /// deadline of 0 is an arrival-time cancel. envelope.seq routes into the
  /// idempotent Feedback path.
  Response Dispatch(const Request& request, const RequestEnvelope& envelope,
                    int64_t elapsed_ms);

  /// RequestHandler: the transport entry point. A single-node dispatcher
  /// never degrades a result, so `context` is left untouched.
  Response HandleRequest(const Request& request,
                         const RequestEnvelope& envelope, int64_t elapsed_ms,
                         ResponseContext* context) override;

  StartSessionResponse Handle(const StartSessionRequest& request);
  QueryResponse Handle(const QueryRequest& request);
  FeedbackResponse Handle(const FeedbackRequest& request, uint32_t seq = 0);
  EndSessionResponse Handle(const EndSessionRequest& request);
  StatsResponse Handle(const StatsRequest& request);
  /// Snapshots obs::MetricsRegistry::Default() (running its OnGather
  /// callbacks first, so pull-style gauges are fresh).
  MetricsResponse Handle(const MetricsRequest& request);
  /// Describes the service's corpus and configuration — the connect-time
  /// compatibility handshake and the router's health probe.
  DescribeResponse Handle(const DescribeRequest& request);
  /// Sessionless first-round candidates with distances (the router's
  /// scatter-gather unit; served from the same index/cache path as
  /// StartSession+Query).
  CandidateResponse Handle(const CandidateRequest& request);

  serve::RetrievalService& service() { return *service_; }

 private:
  serve::RetrievalService* service_;
};

}  // namespace cbir::api

#endif  // CBIR_API_DISPATCHER_H_
