#ifndef CBIR_API_DISPATCHER_H_
#define CBIR_API_DISPATCHER_H_

#include "api/messages.h"
#include "serve/retrieval_service.h"

namespace cbir::api {

/// \brief Maps each typed API request onto one serve::RetrievalService.
///
/// The dispatcher is the single point where the message surface meets the
/// service, so in-process callers (tests, embedded use) and remote callers
/// (net::TcpServer) share one code path and cannot drift: a remote session
/// is the same sequence of service calls an in-process session is.
///
/// Every handler is total — service errors come back as the response's
/// WireStatus, never as an exception or a crash — and thread-safe, because
/// RetrievalService is (the TCP server dispatches from one thread per
/// connection).
class Dispatcher {
 public:
  /// `service` must outlive the dispatcher.
  explicit Dispatcher(serve::RetrievalService* service) : service_(service) {}

  /// Routes a request to its typed handler.
  Response Dispatch(const Request& request);

  StartSessionResponse Handle(const StartSessionRequest& request);
  QueryResponse Handle(const QueryRequest& request);
  FeedbackResponse Handle(const FeedbackRequest& request);
  EndSessionResponse Handle(const EndSessionRequest& request);
  StatsResponse Handle(const StatsRequest& request);

  serve::RetrievalService& service() { return *service_; }

 private:
  serve::RetrievalService* service_;
};

}  // namespace cbir::api

#endif  // CBIR_API_DISPATCHER_H_
