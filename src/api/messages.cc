#include "api/messages.h"

namespace cbir::api {

WireStatus ToWireStatus(const Status& status) {
  WireStatus wire;
  wire.code = StatusCodeToWireCode(status.code());
  wire.message = status.message();
  return wire;
}

Status FromWireStatus(const WireStatus& wire) {
  const StatusCode code = StatusCodeFromWireCode(wire.code);
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, wire.message);
}

}  // namespace cbir::api
