#ifndef CBIR_API_HANDLER_H_
#define CBIR_API_HANDLER_H_

#include <cstdint>

#include "api/codec.h"
#include "api/messages.h"
#include "util/status.h"

namespace cbir::api {

/// \brief Per-response transport metadata a handler hands back to the
/// transport alongside the typed response. The transport turns these into
/// response frame flags (api::ResponseFrameOptions).
struct ResponseContext {
  /// The result was assembled from fewer shards than are configured (a
  /// router lost a backend mid-request): still useful, but partial. Encoded
  /// as response frame flag 0x20.
  bool degraded = false;
};

/// \brief The transport-facing request surface: one call per decoded frame.
///
/// net::TcpServer dispatches every well-formed request through this
/// interface, so anything that can answer the API — the single-node
/// api::Dispatcher or the multi-node router::ShardRouter — plugs into the
/// same transport unchanged. Implementations must be total (errors come
/// back as the response's WireStatus, never an exception) and thread-safe
/// (the server calls from one thread per connection).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// Answers `request`. `envelope` is the request's v2 envelope (empty for
  /// v1 frames); `elapsed_ms` is the time already spent since the frame
  /// finished arriving, for deadline shedding. `context` (never null)
  /// carries response transport metadata back to the caller.
  virtual Response HandleRequest(const Request& request,
                                 const RequestEnvelope& envelope,
                                 int64_t elapsed_ms,
                                 ResponseContext* context) = 0;
};

/// Builds the response type matching `request` carrying only `status` — the
/// shape of every shed or fail-fast reply. The type must match the request
/// so a client pipelining over one connection still pairs replies with
/// requests.
Response StatusOnlyResponse(const Request& request, const Status& status);

/// Snapshots the process-wide obs::MetricsRegistry into the wire
/// representation — the MetricsRequest answer shared by the single-node
/// Dispatcher and the router.
MetricsResponse MetricsSnapshotResponse();

}  // namespace cbir::api

#endif  // CBIR_API_HANDLER_H_
