#include "logdb/simulated_user.h"

#include <algorithm>
#include <numeric>

#include "la/vector_ops.h"
#include "util/logging.h"

namespace cbir::logdb {

SimulatedUser::SimulatedUser(std::vector<int> categories,
                             const UserModel& model)
    : categories_(std::move(categories)), model_(model) {
  CBIR_CHECK(!categories_.empty());
  CBIR_CHECK_GE(model_.noise_rate, 0.0);
  CBIR_CHECK_LE(model_.noise_rate, 1.0);
}

int SimulatedUser::category(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return categories_[static_cast<size_t>(image_id)];
}

bool SimulatedUser::IsRelevant(int image_id, int query_category) const {
  return category(image_id) == query_category;
}

int8_t SimulatedUser::Judge(int image_id, int query_category,
                            Rng* rng) const {
  int8_t truth = IsRelevant(image_id, query_category) ? int8_t{1} : int8_t{-1};
  if (rng->Bernoulli(model_.noise_rate)) {
    truth = static_cast<int8_t>(-truth);
  }
  return truth;
}

LogStore CollectLogs(const la::Matrix& features,
                     const std::vector<int>& categories,
                     const LogCollectionOptions& options) {
  CBIR_CHECK_EQ(features.rows(), categories.size());
  CBIR_CHECK_GT(options.num_sessions, 0);
  CBIR_CHECK_GT(options.session_size, 0);
  const int n = static_cast<int>(features.rows());

  SimulatedUser user(categories, options.user);
  Rng rng(options.seed);
  LogStore store;

  std::vector<int> order(static_cast<size_t>(n));
  std::vector<double> dist(static_cast<size_t>(n));

  for (int s = 0; s < options.num_sessions; ++s) {
    const int query = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(n)));
    const la::Vec q = features.Row(static_cast<size_t>(query));

    for (int i = 0; i < n; ++i) {
      dist[static_cast<size_t>(i)] = la::SquaredDistance(
          features.Row(static_cast<size_t>(i)), q);
    }
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (dist[static_cast<size_t>(a)] != dist[static_cast<size_t>(b)]) {
        return dist[static_cast<size_t>(a)] < dist[static_cast<size_t>(b)];
      }
      return a < b;
    });

    LogSession session;
    session.query_image_id = query;
    const int qcat = categories[static_cast<size_t>(query)];
    int taken = 0;
    for (int rank = 0; rank < n && taken < options.session_size; ++rank) {
      const int candidate = order[static_cast<size_t>(rank)];
      if (candidate == query) continue;  // the query itself is not judged
      session.entries.push_back(
          LogEntry{candidate, user.Judge(candidate, qcat, &rng)});
      ++taken;
    }
    store.Append(std::move(session));
  }
  return store;
}

}  // namespace cbir::logdb
