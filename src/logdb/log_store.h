#ifndef CBIR_LOGDB_LOG_STORE_H_
#define CBIR_LOGDB_LOG_STORE_H_

#include <mutex>
#include <string>
#include <vector>

#include "logdb/log_session.h"
#include "logdb/relevance_matrix.h"
#include "util/result.h"
#include "util/status.h"

namespace cbir::logdb {

/// \brief Append-only store of user-feedback sessions with file persistence.
///
/// This is the "log database" of the paper: a CBIR deployment appends one
/// session per completed feedback round and periodically rebuilds the
/// relevance matrix consumed by the log-based learners.
///
/// Thread safety: Append, num_sessions, TotalJudgments, BuildMatrix,
/// SaveToFile, and Snapshot synchronize on an internal mutex, so the serving
/// layer can append from many worker threads while readers rebuild matrices
/// or persist the store. The zero-copy sessions() accessor is the one
/// exception: it returns a reference into the store, so it must not run
/// concurrently with Append — use Snapshot() when writers may be live.
class LogStore {
 public:
  LogStore() = default;

  LogStore(const LogStore& other);
  LogStore& operator=(const LogStore& other);
  LogStore(LogStore&& other) noexcept;
  LogStore& operator=(LogStore&& other) noexcept;

  void Append(LogSession session);

  int num_sessions() const;

  /// Borrowed view of the sessions. NOT safe against concurrent Append (the
  /// vector may reallocate under the reader); single-writer phases only.
  const std::vector<LogSession>& sessions() const { return sessions_; }

  /// Copy of the sessions, consistent under concurrent appends.
  std::vector<LogSession> Snapshot() const;

  /// Builds the relevance matrix over a database of `num_images` images,
  /// optionally truncated to the first `max_sessions` sessions (-1 = all);
  /// the truncation supports the log-volume ablation.
  RelevanceMatrix BuildMatrix(int num_images, int max_sessions = -1) const;

  /// Line-oriented text persistence:
  ///   session <query_id> <n>
  ///   <image_id> <judgment>   (n lines)
  Status SaveToFile(const std::string& path) const;
  static Result<LogStore> LoadFromFile(const std::string& path);

  int64_t TotalJudgments() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogSession> sessions_;
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_LOG_STORE_H_
