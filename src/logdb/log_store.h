#ifndef CBIR_LOGDB_LOG_STORE_H_
#define CBIR_LOGDB_LOG_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "logdb/log_session.h"
#include "logdb/relevance_matrix.h"
#include "logdb/wal.h"
#include "util/result.h"
#include "util/status.h"
#include "util/sync.h"

namespace cbir::logdb {

/// \brief Append-only store of user-feedback sessions with file persistence.
///
/// This is the "log database" of the paper: a CBIR deployment appends one
/// session per completed feedback round and periodically rebuilds the
/// relevance matrix consumed by the log-based learners.
///
/// Thread safety: Append, num_sessions, TotalJudgments, BuildMatrix,
/// SaveToFile, and Snapshot synchronize on an internal mutex, so the serving
/// layer can append from many worker threads while readers rebuild matrices
/// or persist the store. The zero-copy sessions() accessor is the one
/// exception: it returns a reference into the store, so it must not run
/// concurrently with Append — use Snapshot() when writers may be live.
class LogStore {
 public:
  LogStore() = default;

  /// Copies carry the sessions only — a copy is an in-memory snapshot, never
  /// a second writer of the original's WAL. Moves carry the WAL attachment.
  LogStore(const LogStore& other);
  LogStore& operator=(const LogStore& other);
  LogStore(LogStore&& other) noexcept;
  LogStore& operator=(LogStore&& other) noexcept;

  /// Opens a crash-durable store: loads `snapshot_path` (the SaveToFile
  /// v-format; missing = empty), replays the committed prefix of
  /// `wal_path` on top (truncating any torn tail from a previous crash),
  /// and attaches the WAL so every subsequent Append is flushed to it
  /// before returning — an acknowledged session survives `kill -9`.
  /// `recovery` (optional) reports what the replay found.
  static Result<LogStore> OpenDurable(const std::string& snapshot_path,
                                      const std::string& wal_path,
                                      WalRecoveryStats* recovery = nullptr);

  /// Folds the WAL into the snapshot: atomically rewrites `snapshot_path`
  /// (write-temp-then-rename) with every current session, then empties the
  /// WAL. Bounds WAL growth; crash-safe at every step (a crash before the
  /// rename keeps the old snapshot + full WAL; after it, the new snapshot
  /// + a possibly stale WAL whose replay is idempotent only until the
  /// reset — hence the rename happens first). FailedPrecondition when the
  /// store is not durable.
  Status Compact();

  /// True when OpenDurable attached a WAL to this store.
  bool durable() const;

  /// OK, or the first WAL append/flush failure (a disk-full log store keeps
  /// serving from memory but stops being durable; operators poll this).
  Status wal_status() const;

  void Append(LogSession session);

  int num_sessions() const;

  /// Borrowed view of the sessions. NOT safe against concurrent Append (the
  /// vector may reallocate under the reader); single-writer phases only —
  /// which is why it is exempted from the static analysis instead of taking
  /// the lock.
  const std::vector<LogSession>& sessions() const
      CBIR_NO_THREAD_SAFETY_ANALYSIS {
    return sessions_;
  }

  /// Copy of the sessions, consistent under concurrent appends.
  std::vector<LogSession> Snapshot() const;

  /// Builds the relevance matrix over a database of `num_images` images,
  /// optionally truncated to the first `max_sessions` sessions (-1 = all);
  /// the truncation supports the log-volume ablation.
  RelevanceMatrix BuildMatrix(int num_images, int max_sessions = -1) const;

  /// Line-oriented text persistence:
  ///   session <query_id> <n>
  ///   <image_id> <judgment>   (n lines)
  /// Compaction snapshots append an optional `wal_gen <g>` trailer naming
  /// the WAL generation they folded; `wal_folded_gen` (optional) receives it
  /// (0 when absent). Pre-trailer files load unchanged.
  Status SaveToFile(const std::string& path) const;
  static Result<LogStore> LoadFromFile(const std::string& path,
                                       uint64_t* wal_folded_gen = nullptr);

  int64_t TotalJudgments() const;

 private:
  /// Writes the v-format text under an already-held lock (SaveToFile and
  /// Compact share it). Nonzero `wal_gen` appends the `wal_gen` trailer.
  static Status WriteSessions(const std::vector<LogSession>& sessions,
                              const std::string& path, uint64_t wal_gen);

  mutable util::Mutex mu_{util::LockRank::kLogStore, "log_store"};
  std::vector<LogSession> sessions_ CBIR_GUARDED_BY(mu_);
  /// Durable mode (OpenDurable): appends also land here, pre-flush.
  std::unique_ptr<WalWriter> wal_ CBIR_GUARDED_BY(mu_);
  std::string snapshot_path_ CBIR_GUARDED_BY(mu_);
  Status wal_status_ CBIR_GUARDED_BY(mu_);
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_LOG_STORE_H_
