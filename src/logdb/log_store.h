#ifndef CBIR_LOGDB_LOG_STORE_H_
#define CBIR_LOGDB_LOG_STORE_H_

#include <string>
#include <vector>

#include "logdb/log_session.h"
#include "logdb/relevance_matrix.h"
#include "util/result.h"
#include "util/status.h"

namespace cbir::logdb {

/// \brief Append-only store of user-feedback sessions with file persistence.
///
/// This is the "log database" of the paper: a CBIR deployment appends one
/// session per completed feedback round and periodically rebuilds the
/// relevance matrix consumed by the log-based learners.
class LogStore {
 public:
  LogStore() = default;

  void Append(LogSession session);

  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  const std::vector<LogSession>& sessions() const { return sessions_; }

  /// Builds the relevance matrix over a database of `num_images` images,
  /// optionally truncated to the first `max_sessions` sessions (-1 = all);
  /// the truncation supports the log-volume ablation.
  RelevanceMatrix BuildMatrix(int num_images, int max_sessions = -1) const;

  /// Line-oriented text persistence:
  ///   session <query_id> <n>
  ///   <image_id> <judgment>   (n lines)
  Status SaveToFile(const std::string& path) const;
  static Result<LogStore> LoadFromFile(const std::string& path);

  int64_t TotalJudgments() const;

 private:
  std::vector<LogSession> sessions_;
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_LOG_STORE_H_
