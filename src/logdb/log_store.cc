#include "logdb/log_store.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "util/logging.h"

namespace cbir::logdb {

LogStore::LogStore(const LogStore& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  sessions_ = other.sessions_;
}

LogStore& LogStore::operator=(const LogStore& other) {
  if (this == &other) return *this;
  // Consistent order (address order) would matter only for concurrent
  // cross-assignment; scoped_lock's deadlock-avoidance handles it.
  std::scoped_lock lock(mu_, other.mu_);
  sessions_ = other.sessions_;
  return *this;
}

LogStore::LogStore(LogStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  sessions_ = std::move(other.sessions_);
}

LogStore& LogStore::operator=(LogStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  sessions_ = std::move(other.sessions_);
  return *this;
}

void LogStore::Append(LogSession session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.push_back(std::move(session));
}

int LogStore::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

std::vector<LogSession> LogStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_;
}

RelevanceMatrix LogStore::BuildMatrix(int num_images,
                                      int max_sessions) const {
  std::lock_guard<std::mutex> lock(mu_);
  RelevanceMatrix matrix(num_images);
  const int available = static_cast<int>(sessions_.size());
  int limit =
      max_sessions < 0 ? available : std::min(max_sessions, available);
  for (int s = 0; s < limit; ++s) {
    matrix.AddSession(sessions_[static_cast<size_t>(s)]);
  }
  return matrix;
}

Status LogStore::SaveToFile(const std::string& path) const {
  // Write a snapshot so the (possibly slow) file I/O never holds the mutex
  // — concurrent appends land in the store, just not in this save.
  const std::vector<LogSession> sessions = Snapshot();
  std::ofstream ofs(path, std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "cbir_log v1 " << sessions.size() << "\n";
  for (const LogSession& s : sessions) {
    ofs << "session " << s.query_image_id << " " << s.entries.size() << "\n";
    for (const LogEntry& e : s.entries) {
      ofs << e.image_id << " " << static_cast<int>(e.judgment) << "\n";
    }
  }
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<LogStore> LogStore::LoadFromFile(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) return Status::IoError("cannot open for reading: " + path);
  std::string magic, version;
  size_t count = 0;
  if (!(ifs >> magic >> version >> count) || magic != "cbir_log" ||
      version != "v1") {
    return Status::InvalidArgument("log store: bad header in " + path);
  }
  LogStore store;
  for (size_t s = 0; s < count; ++s) {
    std::string tag;
    LogSession session;
    size_t entries = 0;
    if (!(ifs >> tag >> session.query_image_id >> entries) ||
        tag != "session") {
      return Status::IoError("log store: truncated session header");
    }
    session.entries.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      int image_id = 0, judgment = 0;
      if (!(ifs >> image_id >> judgment)) {
        return Status::IoError("log store: truncated entry");
      }
      if (judgment != 1 && judgment != -1) {
        return Status::InvalidArgument("log store: judgment must be +-1");
      }
      session.entries.push_back(
          LogEntry{image_id, static_cast<int8_t>(judgment)});
    }
    store.Append(std::move(session));
  }
  return store;
}

int64_t LogStore::TotalJudgments() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const LogSession& s : sessions_) {
    total += static_cast<int64_t>(s.entries.size());
  }
  return total;
}

}  // namespace cbir::logdb
