#include "logdb/log_store.h"

#include <cstdio>
#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace cbir::logdb {

namespace {

/// Registry series of the durable store (cached once, see obs docs).
struct LogdbMetrics {
  obs::Counter* wal_appends;
  obs::Counter* wal_append_errors;
  obs::Counter* compactions;
  obs::Counter* recoveries;
  obs::Counter* recovered_sessions;
  obs::Counter* torn_bytes;
};

const LogdbMetrics& Metrics() {
  static const LogdbMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    LogdbMetrics m;
    m.wal_appends = r.GetCounter("cbir_logdb_wal_appends_total");
    m.wal_append_errors = r.GetCounter("cbir_logdb_wal_append_errors_total");
    m.compactions = r.GetCounter("cbir_logdb_compactions_total");
    m.recoveries = r.GetCounter("cbir_logdb_recoveries_total");
    m.recovered_sessions =
        r.GetCounter("cbir_logdb_recovered_sessions_total");
    m.torn_bytes = r.GetCounter("cbir_logdb_wal_torn_bytes_total");
    return m;
  }();
  return metrics;
}

}  // namespace

LogStore::LogStore(const LogStore& other) {
  util::MutexLock lock(other.mu_);
  sessions_ = other.sessions_;
}

LogStore& LogStore::operator=(const LogStore& other) {
  if (this == &other) return *this;
  // Same-rank pair: TwoMutexLock orders the acquisitions by address, the
  // one sanctioned way to hold two kLogStore locks at once.
  util::TwoMutexLock lock(mu_, other.mu_);
  sessions_ = other.sessions_;
  return *this;
}

LogStore::LogStore(LogStore&& other) noexcept {
  util::MutexLock lock(other.mu_);
  sessions_ = std::move(other.sessions_);
  wal_ = std::move(other.wal_);
  snapshot_path_ = std::move(other.snapshot_path_);
  wal_status_ = std::move(other.wal_status_);
}

LogStore& LogStore::operator=(LogStore&& other) noexcept {
  if (this == &other) return *this;
  util::TwoMutexLock lock(mu_, other.mu_);
  sessions_ = std::move(other.sessions_);
  wal_ = std::move(other.wal_);
  snapshot_path_ = std::move(other.snapshot_path_);
  wal_status_ = std::move(other.wal_status_);
  return *this;
}

// Builds up a local store nobody else can see yet; lockless by design, so
// the static analysis is waived for the function body.
Result<LogStore> LogStore::OpenDurable(const std::string& snapshot_path,
                                       const std::string& wal_path,
                                       WalRecoveryStats* recovery)
    CBIR_NO_THREAD_SAFETY_ANALYSIS {
  LogStore store;
  // Base state: the last compaction snapshot (absence = a fresh store).
  uint64_t folded_gen = 0;
  if (std::ifstream probe(snapshot_path); probe) {
    probe.close();
    CBIR_ASSIGN_OR_RETURN(LogStore snapshot,
                          LoadFromFile(snapshot_path, &folded_gen));
    store.sessions_ = std::move(snapshot.sessions_);
  }
  // Replay the sessions committed after that snapshot; a torn tail from a
  // crash mid-append is measured here and truncated by WalWriter::Open.
  WalRecoveryStats stats;
  CBIR_ASSIGN_OR_RETURN(std::vector<LogSession> replayed,
                        RecoverWal(wal_path, &stats));
  if (folded_gen != 0 && folded_gen == stats.generation) {
    // Crash landed between publishing the snapshot and resetting the WAL:
    // the snapshot already folded this WAL generation, so replaying it
    // would double-count every session. Discard it and start the WAL over.
    stats.sessions = 0;
    stats.torn_bytes = 0;
    stats.valid_bytes = 0;  // forces a fresh generation below
    replayed.clear();
  }
  for (LogSession& session : replayed) {
    store.sessions_.push_back(std::move(session));
  }
  CBIR_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Open(wal_path, stats.valid_bytes, stats.generation));
  store.wal_ = std::make_unique<WalWriter>(std::move(writer));
  store.snapshot_path_ = snapshot_path;
  Metrics().recoveries->Increment();
  Metrics().recovered_sessions->Increment(stats.sessions);
  Metrics().torn_bytes->Increment(stats.torn_bytes);
  if (recovery != nullptr) *recovery = stats;
  return store;
}

Status LogStore::Compact() {
  util::MutexLock lock(mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("log store: not opened durable");
  }
  // Snapshot first, reset the WAL after. A crash between the two leaves a
  // snapshot that already folded the WAL's sessions plus the intact WAL —
  // the `wal_gen` trailer written here lets recovery detect exactly that
  // window and discard the already-folded WAL instead of double-counting.
  const std::string tmp = snapshot_path_ + ".tmp";
  CBIR_RETURN_NOT_OK(WriteSessions(sessions_, tmp, wal_->generation()));
  if (std::rename(tmp.c_str(), snapshot_path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("log store: cannot publish snapshot " +
                           snapshot_path_);
  }
  Metrics().compactions->Increment();
  return wal_->Reset();
}

bool LogStore::durable() const {
  util::MutexLock lock(mu_);
  return wal_ != nullptr;
}

Status LogStore::wal_status() const {
  util::MutexLock lock(mu_);
  return wal_status_;
}

void LogStore::Append(LogSession session) {
  util::MutexLock lock(mu_);
  if (wal_ != nullptr) {
    // WAL first: the in-memory store must never acknowledge a session the
    // log on disk does not have. A failed append (disk full) is remembered
    // and the session still serves from memory.
    if (Status s = wal_->Append(session); s.ok()) {
      Metrics().wal_appends->Increment();
    } else {
      Metrics().wal_append_errors->Increment();
      if (wal_status_.ok()) wal_status_ = std::move(s);
    }
  }
  sessions_.push_back(std::move(session));
}

int LogStore::num_sessions() const {
  util::MutexLock lock(mu_);
  return static_cast<int>(sessions_.size());
}

std::vector<LogSession> LogStore::Snapshot() const {
  util::MutexLock lock(mu_);
  return sessions_;
}

RelevanceMatrix LogStore::BuildMatrix(int num_images,
                                      int max_sessions) const {
  util::MutexLock lock(mu_);
  RelevanceMatrix matrix(num_images);
  const int available = static_cast<int>(sessions_.size());
  int limit =
      max_sessions < 0 ? available : std::min(max_sessions, available);
  for (int s = 0; s < limit; ++s) {
    matrix.AddSession(sessions_[static_cast<size_t>(s)]);
  }
  return matrix;
}

Status LogStore::WriteSessions(const std::vector<LogSession>& sessions,
                               const std::string& path, uint64_t wal_gen) {
  std::ofstream ofs(path, std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "cbir_log v1 " << sessions.size() << "\n";
  for (const LogSession& s : sessions) {
    ofs << "session " << s.query_image_id << " " << s.entries.size() << "\n";
    for (const LogEntry& e : s.entries) {
      ofs << e.image_id << " " << static_cast<int>(e.judgment) << "\n";
    }
  }
  if (wal_gen != 0) ofs << "wal_gen " << wal_gen << "\n";
  ofs.flush();
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LogStore::SaveToFile(const std::string& path) const {
  // Write a snapshot so the (possibly slow) file I/O never holds the mutex
  // — concurrent appends land in the store, just not in this save.
  return WriteSessions(Snapshot(), path, /*wal_gen=*/0);
}

Result<LogStore> LogStore::LoadFromFile(const std::string& path,
                                        uint64_t* wal_folded_gen) {
  if (wal_folded_gen != nullptr) *wal_folded_gen = 0;
  std::ifstream ifs(path);
  if (!ifs) return Status::IoError("cannot open for reading: " + path);
  std::string magic, version;
  size_t count = 0;
  if (!(ifs >> magic >> version >> count) || magic != "cbir_log" ||
      version != "v1") {
    return Status::InvalidArgument("log store: bad header in " + path);
  }
  LogStore store;
  for (size_t s = 0; s < count; ++s) {
    std::string tag;
    LogSession session;
    size_t entries = 0;
    if (!(ifs >> tag >> session.query_image_id >> entries) ||
        tag != "session") {
      return Status::IoError("log store: truncated session header");
    }
    session.entries.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      int image_id = 0, judgment = 0;
      if (!(ifs >> image_id >> judgment)) {
        return Status::IoError("log store: truncated entry");
      }
      if (judgment != 1 && judgment != -1) {
        return Status::InvalidArgument("log store: judgment must be +-1");
      }
      session.entries.push_back(
          LogEntry{image_id, static_cast<int8_t>(judgment)});
    }
    store.Append(std::move(session));
  }
  if (wal_folded_gen != nullptr) {
    std::string tag;
    uint64_t gen = 0;
    if (ifs >> tag >> gen && tag == "wal_gen") *wal_folded_gen = gen;
  }
  return store;
}

int64_t LogStore::TotalJudgments() const {
  util::MutexLock lock(mu_);
  int64_t total = 0;
  for (const LogSession& s : sessions_) {
    total += static_cast<int64_t>(s.entries.size());
  }
  return total;
}

}  // namespace cbir::logdb
