#ifndef CBIR_LOGDB_SIMULATED_USER_H_
#define CBIR_LOGDB_SIMULATED_USER_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "logdb/log_store.h"
#include "util/rng.h"

namespace cbir::logdb {

/// \brief Noise model for simulated relevance judgments.
///
/// The paper collected logs from real users and notes the data "contain more
/// or less noise" from subjectivity differences. We model that as an i.i.d.
/// label-flip probability, an explicit knob swept by the noise ablation.
struct UserModel {
  double noise_rate = 0.10;
};

/// \brief Simulates a user judging images against a query's category.
class SimulatedUser {
 public:
  /// `categories[i]` is the ground-truth category of image i.
  SimulatedUser(std::vector<int> categories, const UserModel& model);

  /// Judges one image for a query of category `query_category`: returns +1
  /// for same-category (relevant), -1 otherwise, with the noise model's flip
  /// probability applied. Deterministic given `rng` state.
  int8_t Judge(int image_id, int query_category, Rng* rng) const;

  /// Noise-free ground-truth relevance (used by the evaluation protocol,
  /// which the paper runs with automatic category-based judgments).
  bool IsRelevant(int image_id, int query_category) const;

  int category(int image_id) const;
  int num_images() const { return static_cast<int>(categories_.size()); }

 private:
  std::vector<int> categories_;
  UserModel model_;
};

/// \brief Options for replaying the paper's log-collection protocol (§6.3).
struct LogCollectionOptions {
  int num_sessions = 150;  ///< paper: 150 per dataset
  int session_size = 20;   ///< paper: 20 returned images judged per round
  UserModel user;
  uint64_t seed = 7;
};

/// \brief Runs the §6.3 protocol against a feature database:
/// for each session, draw a random query image, rank the corpus by Euclidean
/// distance on `features`, present the top `session_size` images (excluding
/// the query itself) and record the simulated user's judgments.
///
/// `features` must hold one (normalized) row per image; `categories` the
/// ground truth. Deterministic in `options.seed`.
LogStore CollectLogs(const la::Matrix& features,
                     const std::vector<int>& categories,
                     const LogCollectionOptions& options);

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_SIMULATED_USER_H_
