#ifndef CBIR_LOGDB_RELEVANCE_MATRIX_H_
#define CBIR_LOGDB_RELEVANCE_MATRIX_H_

#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "logdb/log_session.h"

namespace cbir::logdb {

/// \brief The paper's relevance matrix R (Section 2).
///
/// Rows are user log sessions, columns are images; entries are +1 (relevant),
/// -1 (irrelevant) or 0 (not judged). Storage is sparse by session; an
/// inverted per-image index supports fast column (log vector r_i) extraction.
///
/// Each image's log vector r_i has dimension M = number of sessions; that is
/// the representation the log-side SVM consumes.
class RelevanceMatrix {
 public:
  /// Creates an empty matrix over `num_images` columns.
  explicit RelevanceMatrix(int num_images);

  int num_images() const { return num_images_; }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }

  /// Appends one session (one row). Entries with out-of-range image ids or
  /// zero judgments are ignored; duplicate judgments for the same image in
  /// one session keep the last value.
  void AddSession(const LogSession& session);

  /// Relevance value R[session][image] in {-1, 0, +1}.
  int Value(int session, int image_id) const;

  /// Rocchio-style default down-weighting of negative marks in the dense
  /// representation. Positive marks ("this image matches my query concept")
  /// are strong category evidence; negative marks only exclude one concept
  /// among many, so classical relevance feedback weights them lower
  /// (Rocchio 1971 — the root of the paper's Section 7 lineage). 1.0
  /// recovers the paper's literal +-1 matrix (see the log-representation
  /// ablation bench).
  static constexpr double kRocchioNegativeWeight = 0.25;

  /// Dense M-dim log vector r_i for one image (column of R); -1 marks are
  /// scaled by `negative_weight`.
  la::Vec LogVector(int image_id,
                    double negative_weight = kRocchioNegativeWeight) const;

  /// Materializes all log vectors as an (num_images x M) row-major matrix;
  /// row i is r_i. The experiment harness builds this once and shares it.
  /// -1 marks are scaled by `negative_weight`.
  la::Matrix ToDenseMatrix(
      double negative_weight = kRocchioNegativeWeight) const;

  /// Number of images with at least one judgment.
  int CoveredImages() const;

  /// Total +1 and -1 marks.
  int64_t PositiveCount() const { return positive_count_; }
  int64_t NegativeCount() const { return negative_count_; }

 private:
  struct Mark {
    int session;
    int8_t value;
  };

  int num_images_;
  /// Per-session sparse rows (image_id, value), deduplicated.
  std::vector<std::vector<LogEntry>> sessions_;
  /// Inverted index: per-image list of (session, value).
  std::vector<std::vector<Mark>> image_marks_;
  int64_t positive_count_ = 0;
  int64_t negative_count_ = 0;
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_RELEVANCE_MATRIX_H_
