#include "logdb/wal.h"

#include "util/string_util.h"

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <utility>

namespace cbir::logdb {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

/// A nonzero value that is fresh across process lifetimes and resets
/// (0 is reserved for "no WAL"). Uniqueness only has to hold between one
/// snapshot's folded generation and the next WAL incarnation, so entropy
/// plus a wall-clock tick is far more than enough.
uint64_t FreshGeneration() {
  static std::random_device rd;
  const uint64_t entropy =
      (uint64_t(rd()) << 32) ^ uint64_t(rd());
  const uint64_t tick = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const uint64_t gen = entropy ^ tick;
  return gen == 0 ? 1 : gen;
}

/// Decodes one payload; false on any structural mismatch (recovery treats
/// that as a torn tail even when the CRC accidentally matched garbage).
bool DecodePayload(const uint8_t* data, size_t size, LogSession* session) {
  if (size < 8) return false;
  session->query_image_id = static_cast<int32_t>(ReadU32(data));
  const uint32_t n = ReadU32(data + 4);
  if (size != 8 + static_cast<size_t>(n) * 5) return false;
  session->entries.clear();
  session->entries.reserve(n);
  const uint8_t* p = data + 8;
  for (uint32_t i = 0; i < n; ++i, p += 5) {
    const int image_id = static_cast<int32_t>(ReadU32(p));
    const int8_t judgment = static_cast<int8_t>(p[4]);
    if (judgment != 1 && judgment != -1) return false;
    session->entries.push_back(LogEntry{image_id, judgment});
  }
  return true;
}

Status WriteHeaderAndFlush(std::FILE* file, uint64_t generation,
                           const std::string& path) {
  std::vector<uint8_t> header = EncodeWalFileHeader(generation);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fflush(file) != 0) {
    return Status::IoError("wal: cannot write header of " + path + ": " +
                           ErrnoString(errno));
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32Continue(uint32_t crc, const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  // Un-finalize the incoming value so chunked calls chain as if the chunks
  // were one contiguous buffer (Crc32Continue(Crc32(a), b) == Crc32(a||b)).
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Continue(0, data, size);
}

std::vector<uint8_t> EncodeWalRecord(const LogSession& session) {
  std::vector<uint8_t> payload;
  payload.reserve(8 + session.entries.size() * 5);
  PutI32(&payload, session.query_image_id);
  PutU32(&payload, static_cast<uint32_t>(session.entries.size()));
  for (const LogEntry& e : session.entries) {
    PutI32(&payload, e.image_id);
    payload.push_back(static_cast<uint8_t>(e.judgment));
  }
  std::vector<uint8_t> record;
  record.reserve(kWalRecordHeaderBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

std::vector<uint8_t> EncodeWalFileHeader(uint64_t generation) {
  std::vector<uint8_t> header;
  header.reserve(kWalFileHeaderBytes);
  PutU32(&header, kWalMagic);
  PutU32(&header, kWalVersion);
  PutU64(&header, generation);
  return header;
}

Result<std::vector<LogSession>> RecoverWal(const std::string& path,
                                           WalRecoveryStats* stats) {
  WalRecoveryStats local;
  std::vector<LogSession> sessions;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      if (stats != nullptr) *stats = local;
      return sessions;  // no WAL yet: a fresh log
    }
    return Status::IoError("wal: cannot open " + path + ": " +
                           ErrnoString(errno));
  }

  const auto file_size = [&] {
    const long pos = std::ftell(file);
    std::fseek(file, 0, SEEK_END);
    const long end = std::ftell(file);
    std::fseek(file, pos, SEEK_SET);
    return end > 0 ? static_cast<uint64_t>(end) : 0;
  };
  const auto torn = [&](const char* reason) {
    local.torn_bytes = file_size() - local.valid_bytes;
    local.torn_reason = reason;
  };

  // File header first: a torn or foreign header means no record can be
  // trusted — recover empty and let the opener start the file over.
  uint8_t file_header[kWalFileHeaderBytes];
  const size_t header_got =
      std::fread(file_header, 1, sizeof(file_header), file);
  if (header_got < sizeof(file_header)) {
    if (file_size() > 0) torn("truncated file header");
  } else if (ReadU32(file_header) != kWalMagic ||
             ReadU32(file_header + 4) != kWalVersion) {
    torn("bad file header");
  } else {
    local.generation = ReadU64(file_header + 8);
    local.valid_bytes = kWalFileHeaderBytes;
    std::vector<uint8_t> buffer;
    uint8_t record_header[kWalRecordHeaderBytes];
    for (;;) {
      const size_t got =
          std::fread(record_header, 1, sizeof(record_header), file);
      if (got == 0) break;  // clean end
      if (got < sizeof(record_header)) {
        torn("truncated record header");
        break;
      }
      const uint32_t length = ReadU32(record_header);
      const uint32_t crc = ReadU32(record_header + 4);
      if (length > kMaxWalRecordBytes) {
        torn("hostile record length");
        break;
      }
      buffer.resize(length);
      if (std::fread(buffer.data(), 1, length, file) < length) {
        torn("truncated record body");
        break;
      }
      if (Crc32(buffer.data(), buffer.size()) != crc) {
        torn("crc mismatch");
        break;
      }
      LogSession session;
      if (!DecodePayload(buffer.data(), buffer.size(), &session)) {
        torn("undecodable payload");
        break;
      }
      sessions.push_back(std::move(session));
      ++local.sessions;
      local.valid_bytes += kWalRecordHeaderBytes + length;
    }
  }
  std::fclose(file);
  if (stats != nullptr) *stats = local;
  return sessions;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    generation_ = other.generation_;
    other.file_ = nullptr;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  uint64_t valid_bytes, uint64_t generation) {
  WalWriter writer;
  writer.path_ = path;
  if (valid_bytes < kWalFileHeaderBytes) {
    // No usable WAL: start the file over under a fresh generation.
    writer.file_ = std::fopen(path.c_str(), "wb");
    if (writer.file_ == nullptr) {
      return Status::IoError("wal: cannot create " + path + ": " +
                             ErrnoString(errno));
    }
    writer.generation_ = FreshGeneration();
    CBIR_RETURN_NOT_OK(
        WriteHeaderAndFlush(writer.file_, writer.generation_, path));
    return writer;
  }
  // Drop any torn tail first so fresh appends extend the committed prefix.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 &&
      static_cast<uint64_t>(st.st_size) > valid_bytes) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::IoError("wal: cannot truncate torn tail of " + path +
                             ": " + ErrnoString(errno));
    }
  }
  writer.file_ = std::fopen(path.c_str(), "ab");
  if (writer.file_ == nullptr) {
    return Status::IoError("wal: cannot open " + path + " for append: " +
                           ErrnoString(errno));
  }
  writer.generation_ = generation;
  return writer;
}

Status WalWriter::Append(const LogSession& session) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal: writer not open");
  }
  const std::vector<uint8_t> record = EncodeWalRecord(session);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError("wal: append to " + path_ + " failed: " +
                           ErrnoString(errno));
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal: writer not open");
  }
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");  // truncate
  if (file_ == nullptr) {
    return Status::IoError("wal: cannot reset " + path_ + ": " +
                           ErrnoString(errno));
  }
  generation_ = FreshGeneration();
  return WriteHeaderAndFlush(file_, generation_, path_);
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace cbir::logdb
