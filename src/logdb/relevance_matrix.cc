#include "logdb/relevance_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace cbir::logdb {

RelevanceMatrix::RelevanceMatrix(int num_images) : num_images_(num_images) {
  CBIR_CHECK_GT(num_images, 0);
  image_marks_.resize(static_cast<size_t>(num_images));
}

void RelevanceMatrix::AddSession(const LogSession& session) {
  const int session_index = num_sessions();
  std::vector<LogEntry> row;
  row.reserve(session.entries.size());
  for (const LogEntry& e : session.entries) {
    if (e.image_id < 0 || e.image_id >= num_images_) continue;
    if (e.judgment != 1 && e.judgment != -1) continue;
    auto it = std::find_if(row.begin(), row.end(), [&](const LogEntry& r) {
      return r.image_id == e.image_id;
    });
    if (it != row.end()) {
      it->judgment = e.judgment;  // keep last
    } else {
      row.push_back(e);
    }
  }
  for (const LogEntry& e : row) {
    image_marks_[static_cast<size_t>(e.image_id)].push_back(
        Mark{session_index, e.judgment});
    if (e.judgment > 0) {
      ++positive_count_;
    } else {
      ++negative_count_;
    }
  }
  sessions_.push_back(std::move(row));
}

int RelevanceMatrix::Value(int session, int image_id) const {
  CBIR_CHECK_GE(session, 0);
  CBIR_CHECK_LT(session, num_sessions());
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images_);
  for (const LogEntry& e : sessions_[static_cast<size_t>(session)]) {
    if (e.image_id == image_id) return e.judgment;
  }
  return 0;
}

la::Vec RelevanceMatrix::LogVector(int image_id,
                                   double negative_weight) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images_);
  la::Vec out(static_cast<size_t>(num_sessions()), 0.0);
  for (const Mark& m : image_marks_[static_cast<size_t>(image_id)]) {
    out[static_cast<size_t>(m.session)] =
        m.value > 0 ? 1.0 : -negative_weight;
  }
  return out;
}

la::Matrix RelevanceMatrix::ToDenseMatrix(double negative_weight) const {
  la::Matrix out(static_cast<size_t>(num_images_),
                 static_cast<size_t>(num_sessions()), 0.0);
  for (int i = 0; i < num_images_; ++i) {
    double* row = out.RowPtr(static_cast<size_t>(i));
    for (const Mark& m : image_marks_[static_cast<size_t>(i)]) {
      row[m.session] = m.value > 0 ? 1.0 : -negative_weight;
    }
  }
  return out;
}

int RelevanceMatrix::CoveredImages() const {
  int covered = 0;
  for (const auto& marks : image_marks_) {
    if (!marks.empty()) ++covered;
  }
  return covered;
}

}  // namespace cbir::logdb
