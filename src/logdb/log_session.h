#ifndef CBIR_LOGDB_LOG_SESSION_H_
#define CBIR_LOGDB_LOG_SESSION_H_

#include <cstdint>
#include <vector>

namespace cbir::logdb {

/// \brief One relevance judgment inside a feedback session.
struct LogEntry {
  int image_id = 0;
  /// +1 = marked relevant, -1 = marked irrelevant. Unjudged images simply
  /// have no entry (the implicit "0" of the paper's relevance matrix).
  int8_t judgment = 0;
};

/// \brief One unit of user-feedback log: a single relevance-feedback round.
///
/// Matches the paper's definition (Section 2): each round in which a user
/// marks the returned images forms one log session, i.e. one row of the
/// relevance matrix R.
struct LogSession {
  /// The query image that initiated the session (diagnostic; the learning
  /// algorithms only consume the judgments).
  int query_image_id = -1;
  std::vector<LogEntry> entries;
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_LOG_SESSION_H_
