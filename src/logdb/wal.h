#ifndef CBIR_LOGDB_WAL_H_
#define CBIR_LOGDB_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "logdb/log_session.h"
#include "util/result.h"

namespace cbir::logdb {

/// \brief CRC-framed write-ahead log for LogSessions.
///
/// The feedback log is the paper's central artifact; whole-file snapshots
/// (LogStore::SaveToFile) lose every session since the last save on a
/// crash. The WAL closes that window: each committed session is one
/// append-and-flush record, so after a `kill -9` recovery replays exactly
/// the prefix of sessions whose Append() returned — never a torn or
/// corrupted one.
///
/// File layout (all integers little-endian):
///
///   file header (16 bytes):
///     u32 magic        0x4C574243 ("CBWL")
///     u32 version      1
///     u64 generation   fresh nonzero value per created/reset WAL
///   records:
///     u32 length       payload bytes (bounded by kMaxWalRecordBytes)
///     u32 crc32        CRC-32 (IEEE 802.3) of the payload bytes
///     payload          i32 query_image_id, u32 n, then n x (i32 image_id,
///                      i8 judgment)
///
/// The generation makes compaction crash-safe: a snapshot records which WAL
/// generation it folded, so if the process dies between publishing the
/// snapshot and resetting the WAL, recovery sees generation == folded
/// generation and discards the WAL instead of double-counting its sessions.
///
/// Recovery walks records from the start and stops at the first anomaly —
/// truncated header, truncated body, hostile length, CRC mismatch, or a
/// payload that does not decode — reporting the committed prefix and the
/// torn-tail bytes to drop. Everything before the anomaly is trusted
/// (CRC-verified); everything at and after it is a torn tail from a crash
/// mid-write (or corruption) and is truncated by the opener.

inline constexpr uint32_t kWalMagic = 0x4C574243;  // "CBWL"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalFileHeaderBytes = 16;
inline constexpr size_t kWalRecordHeaderBytes = 8;
/// Upper bound on one record's payload (a session is a handful of
/// judgments; 16 MiB is ~3M entries). A corrupt length prefix past this is
/// treated as a torn tail instead of an allocation.
inline constexpr uint32_t kMaxWalRecordBytes = 16u << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Incremental form: extends `crc` (a value returned by Crc32 or
/// Crc32Continue) over `data`, as if the chunks were one contiguous buffer —
/// Crc32Continue(Crc32(a, n), b, m) == Crc32(a||b, n + m). Lets callers
/// checksum non-contiguous pieces (the wire codec's header + body) without
/// copying them together.
uint32_t Crc32Continue(uint32_t crc, const uint8_t* data, size_t size);

/// Serializes one session into a complete WAL record (header + payload).
std::vector<uint8_t> EncodeWalRecord(const LogSession& session);

/// Serializes a WAL file header for the given generation (fixture builder
/// for tests; WalWriter writes it itself).
std::vector<uint8_t> EncodeWalFileHeader(uint64_t generation);

/// \brief What recovery found in a WAL file.
struct WalRecoveryStats {
  uint64_t generation = 0;   ///< 0 = no (valid) WAL file existed
  uint64_t sessions = 0;     ///< committed sessions recovered
  uint64_t valid_bytes = 0;  ///< committed prefix end (incl. file header)
  uint64_t torn_bytes = 0;   ///< tail bytes dropped past valid_bytes
  std::string torn_reason;   ///< empty when the file ended cleanly
};

/// Reads the committed prefix of a WAL file. A missing file — or one whose
/// file header is itself torn — recovers as an empty log with generation 0.
/// IO errors are typed; record corruption is never an error, it marks the
/// end of the committed prefix (stats.torn_reason says why).
Result<std::vector<LogSession>> RecoverWal(const std::string& path,
                                           WalRecoveryStats* stats = nullptr);

/// \brief Appender over one WAL file: Append() writes a record and flushes
/// it to the OS before returning, so an acknowledged session survives the
/// process dying (kill -9). Not internally synchronized — the owning
/// LogStore serializes appends under its mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(WalWriter&& other) noexcept
      : file_(other.file_),
        path_(std::move(other.path_)),
        generation_(other.generation_) {
    other.file_ = nullptr;
  }
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the WAL for appending after recovery: truncates the file to
  /// `valid_bytes` — the committed prefix RecoverWal reported — so a torn
  /// tail from a previous crash never precedes fresh records. When
  /// `valid_bytes` < the file-header size (no usable WAL: missing, empty,
  /// or header torn), the file is created fresh with a new generation;
  /// otherwise `generation` (the recovered one) is kept.
  static Result<WalWriter> Open(const std::string& path, uint64_t valid_bytes,
                                uint64_t generation);

  /// Appends one record and flushes it. On return the record is in the OS
  /// page cache: it survives process death, though not power loss (add
  /// fsync at the call site if that matters).
  Status Append(const LogSession& session);

  /// Empties the file and starts a fresh generation (after a compaction
  /// snapshot has been persisted).
  Status Reset();

  void Close();
  bool open() const { return file_ != nullptr; }
  uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t generation_ = 0;
};

}  // namespace cbir::logdb

#endif  // CBIR_LOGDB_WAL_H_
