#include "features/dwt.h"

#include <cmath>

#include "util/logging.h"

namespace cbir::features {

namespace {

// Daubechies-4 (db2) filter coefficients.
const double kSqrt3 = std::sqrt(3.0);
const double kNorm = 4.0 * std::sqrt(2.0);
const double kH[4] = {(1.0 + kSqrt3) / kNorm, (3.0 + kSqrt3) / kNorm,
                      (3.0 - kSqrt3) / kNorm, (1.0 - kSqrt3) / kNorm};
// High-pass via alternating flip: g[k] = (-1)^k h[3-k].
const double kG[4] = {kH[3], -kH[2], kH[1], -kH[0]};

}  // namespace

void Dwt1d(const std::vector<double>& input, std::vector<double>* approx,
           std::vector<double>* detail) {
  const size_t n = input.size();
  CBIR_CHECK_GE(n, 2u);
  CBIR_CHECK_EQ(n % 2, 0u);
  const size_t half = n / 2;
  approx->assign(half, 0.0);
  detail->assign(half, 0.0);
  for (size_t i = 0; i < half; ++i) {
    double a = 0.0;
    double d = 0.0;
    for (size_t k = 0; k < 4; ++k) {
      const double x = input[(2 * i + k) % n];
      a += kH[k] * x;
      d += kG[k] * x;
    }
    (*approx)[i] = a;
    (*detail)[i] = d;
  }
}

std::vector<double> Idwt1d(const std::vector<double>& approx,
                           const std::vector<double>& detail) {
  const size_t half = approx.size();
  CBIR_CHECK_EQ(half, detail.size());
  CBIR_CHECK_GE(half, 1u);
  const size_t n = half * 2;
  std::vector<double> out(n, 0.0);
  // Adjoint of the periodic analysis operator (orthonormal filters, so the
  // transpose is the inverse).
  for (size_t i = 0; i < half; ++i) {
    for (size_t k = 0; k < 4; ++k) {
      const size_t j = (2 * i + k) % n;
      out[j] += kH[k] * approx[i] + kG[k] * detail[i];
    }
  }
  return out;
}

DwtLevel Dwt2d(const imaging::GrayImage& src) {
  const int w = src.width();
  const int h = src.height();
  CBIR_CHECK_EQ(w % 2, 0);
  CBIR_CHECK_EQ(h % 2, 0);
  const int hw = w / 2;
  const int hh = h / 2;

  // Row pass: produce low/high half-width planes.
  imaging::GrayImage row_lo(hw, h), row_hi(hw, h);
  std::vector<double> buf(static_cast<size_t>(w));
  std::vector<double> a, d;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) buf[static_cast<size_t>(x)] = src.At(x, y);
    Dwt1d(buf, &a, &d);
    for (int x = 0; x < hw; ++x) {
      row_lo.Set(x, y, static_cast<float>(a[static_cast<size_t>(x)]));
      row_hi.Set(x, y, static_cast<float>(d[static_cast<size_t>(x)]));
    }
  }

  // Column pass on each half.
  DwtLevel out{imaging::GrayImage(hw, hh), imaging::GrayImage(hw, hh),
               imaging::GrayImage(hw, hh), imaging::GrayImage(hw, hh)};
  std::vector<double> col(static_cast<size_t>(h));
  for (int x = 0; x < hw; ++x) {
    for (int y = 0; y < h; ++y) col[static_cast<size_t>(y)] = row_lo.At(x, y);
    Dwt1d(col, &a, &d);
    for (int y = 0; y < hh; ++y) {
      out.ll.Set(x, y, static_cast<float>(a[static_cast<size_t>(y)]));
      out.lh.Set(x, y, static_cast<float>(d[static_cast<size_t>(y)]));
    }
    for (int y = 0; y < h; ++y) col[static_cast<size_t>(y)] = row_hi.At(x, y);
    Dwt1d(col, &a, &d);
    for (int y = 0; y < hh; ++y) {
      out.hl.Set(x, y, static_cast<float>(a[static_cast<size_t>(y)]));
      out.hh.Set(x, y, static_cast<float>(d[static_cast<size_t>(y)]));
    }
  }
  return out;
}

DwtPyramid DwtPyramidDecompose(const imaging::GrayImage& src, int num_levels) {
  CBIR_CHECK_GT(num_levels, 0);
  const int divisor = 1 << num_levels;
  CBIR_CHECK_EQ(src.width() % divisor, 0)
      << "width " << src.width() << " not divisible by 2^" << num_levels;
  CBIR_CHECK_EQ(src.height() % divisor, 0)
      << "height " << src.height() << " not divisible by 2^" << num_levels;

  DwtPyramid pyramid;
  imaging::GrayImage current = src;
  for (int level = 0; level < num_levels; ++level) {
    DwtLevel decomposed = Dwt2d(current);
    current = decomposed.ll;
    pyramid.levels.push_back(std::move(decomposed));
  }
  pyramid.final_ll = current;
  return pyramid;
}

}  // namespace cbir::features
