#ifndef CBIR_FEATURES_SOBEL_H_
#define CBIR_FEATURES_SOBEL_H_

#include "imaging/image.h"

namespace cbir::features {

/// \brief Per-pixel gradient field produced by the Sobel operator.
struct GradientField {
  imaging::GrayImage gx;         ///< horizontal derivative
  imaging::GrayImage gy;         ///< vertical derivative
  imaging::GrayImage magnitude;  ///< sqrt(gx^2 + gy^2)
};

/// Applies the 3x3 Sobel operator with replicate borders.
GradientField Sobel(const imaging::GrayImage& src);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_SOBEL_H_
