#ifndef CBIR_FEATURES_DWT_H_
#define CBIR_FEATURES_DWT_H_

#include <vector>

#include "imaging/image.h"

namespace cbir::features {

/// \brief One-dimensional Daubechies-4 (db2) analysis step with periodic
/// boundary extension.
///
/// Input length must be even; `approx` and `detail` each receive n/2
/// coefficients.
void Dwt1d(const std::vector<double>& input, std::vector<double>* approx,
           std::vector<double>* detail);

/// Inverse of Dwt1d (perfect reconstruction up to floating-point error).
std::vector<double> Idwt1d(const std::vector<double>& approx,
                           const std::vector<double>& detail);

/// \brief The four subbands of a single 2-D DWT level.
struct DwtLevel {
  imaging::GrayImage ll;  ///< approximation
  imaging::GrayImage lh;  ///< horizontal detail (rows low-passed)
  imaging::GrayImage hl;  ///< vertical detail
  imaging::GrayImage hh;  ///< diagonal detail
};

/// Single-level separable 2-D DWT (rows first, then columns).
/// Requires even width and height.
DwtLevel Dwt2d(const imaging::GrayImage& src);

/// \brief Multi-level pyramid: the LL band is recursively decomposed.
///
/// `levels[k]` holds the detail subbands of decomposition level k (level 0 is
/// the finest). `final_ll` is the coarsest approximation (the "subsampled
/// average image" the paper discards before computing texture entropy).
struct DwtPyramid {
  std::vector<DwtLevel> levels;
  imaging::GrayImage final_ll;
};

/// Performs `num_levels` decompositions. Width and height must be divisible
/// by 2^num_levels.
DwtPyramid DwtPyramidDecompose(const imaging::GrayImage& src, int num_levels);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_DWT_H_
