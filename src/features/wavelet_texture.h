#ifndef CBIR_FEATURES_WAVELET_TEXTURE_H_
#define CBIR_FEATURES_WAVELET_TEXTURE_H_

#include "features/dwt.h"
#include "imaging/image.h"
#include "la/vector_ops.h"

namespace cbir::features {

/// Number of texture dimensions with the paper's 3-level decomposition:
/// 3 levels x 3 orientations (LH, HL, HH); the final LL average image is
/// discarded, per the paper.
inline constexpr int kWaveletTextureDims = 9;

/// \brief Wavelet texture configuration.
struct WaveletTextureOptions {
  int levels = 3;        ///< decomposition depth (Daubechies-4)
  int entropy_bins = 32; ///< histogram resolution for subband entropy
};

/// \brief Computes subband-entropy texture features.
///
/// For each of the `3 * levels` detail subbands, the Shannon entropy (base 2)
/// of the distribution of absolute coefficient values is computed over a
/// `entropy_bins`-bucket histogram spanning [0, max|coef|]. A constant
/// subband yields entropy 0.
///
/// Layout: level-0 (finest) [LH, HL, HH], then level-1, then level-2, ...
la::Vec WaveletTexture(const imaging::GrayImage& gray,
                       const WaveletTextureOptions& options = {});

/// Entropy of one subband (exposed for tests).
double SubbandEntropy(const imaging::GrayImage& band, int bins);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_WAVELET_TEXTURE_H_
