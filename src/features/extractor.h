#ifndef CBIR_FEATURES_EXTRACTOR_H_
#define CBIR_FEATURES_EXTRACTOR_H_

#include <string>
#include <vector>

#include "features/canny.h"
#include "features/wavelet_texture.h"
#include "imaging/image.h"
#include "la/vector_ops.h"

namespace cbir::features {

/// \brief Configuration for the full 36-dim feature pipeline.
struct FeatureOptions {
  CannyOptions canny;
  int edge_bins = 18;
  WaveletTextureOptions texture;
};

/// \brief Describes the dimension ranges of the concatenated feature vector.
struct FeatureLayout {
  int color_offset = 0;
  int color_dims = 9;
  int edge_offset = 9;
  int edge_dims = 18;
  int texture_offset = 27;
  int texture_dims = 9;

  int total() const { return color_dims + edge_dims + texture_dims; }

  /// Human-readable name of a dimension, e.g. "color:meanH" or "edge:bin07".
  std::string DimensionName(int dim) const;
};

/// \brief Extracts the paper's visual representation: 9-dim HSV color
/// moments + 18-dim edge direction histogram + 9-dim wavelet texture.
///
/// The extractor is stateless and safe to share across threads.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const FeatureOptions& options = {});

  const FeatureOptions& options() const { return options_; }
  const FeatureLayout& layout() const { return layout_; }
  int dims() const { return layout_.total(); }

  /// Computes the concatenated feature vector for one image.
  la::Vec Extract(const imaging::Image& image) const;

 private:
  FeatureOptions options_;
  FeatureLayout layout_;
};

}  // namespace cbir::features

#endif  // CBIR_FEATURES_EXTRACTOR_H_
