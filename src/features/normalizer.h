#ifndef CBIR_FEATURES_NORMALIZER_H_
#define CBIR_FEATURES_NORMALIZER_H_

#include <iosfwd>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/result.h"
#include "util/status.h"

namespace cbir::features {

/// \brief Per-dimension z-score normalization fitted on a feature matrix.
///
/// SVM relevance feedback is sensitive to feature scales (color moments,
/// histogram mass and subband entropies live on very different ranges); the
/// database fits one normalizer over all images and applies it to every
/// query/feature vector before kernel evaluation or Euclidean ranking.
class Normalizer {
 public:
  Normalizer() = default;

  /// Computes per-column mean and standard deviation. Constant columns get
  /// stddev 1 so they map to exactly 0.
  static Normalizer Fit(const la::Matrix& features);

  bool fitted() const { return !mean_.empty(); }
  int dims() const { return static_cast<int>(mean_.size()); }

  /// Transforms one vector in place.
  void Apply(la::Vec* v) const;

  /// Transforms every row of the matrix in place.
  void ApplyAll(la::Matrix* features) const;

  /// Returns the transformed copy.
  la::Vec Transform(const la::Vec& v) const;

  const la::Vec& mean() const { return mean_; }
  const la::Vec& stddev() const { return stddev_; }

  /// Text serialization (one line per dimension: mean stddev).
  void Save(std::ostream& os) const;
  static Result<Normalizer> Load(std::istream& is);

 private:
  la::Vec mean_;
  la::Vec stddev_;
};

}  // namespace cbir::features

#endif  // CBIR_FEATURES_NORMALIZER_H_
