#include "features/color_moments.h"

#include "imaging/color.h"
#include "la/stats.h"
#include "util/logging.h"

namespace cbir::features {

la::Vec ColorMoments(const imaging::Image& image) {
  CBIR_CHECK(!image.empty());
  const size_t n = static_cast<size_t>(image.width()) * image.height();
  std::vector<double> hch, sch, vch;
  hch.reserve(n);
  sch.reserve(n);
  vch.reserve(n);
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const imaging::Hsv hsv = imaging::RgbToHsv(image.At(x, y));
      hch.push_back(hsv.h / 360.0);
      sch.push_back(hsv.s);
      vch.push_back(hsv.v);
    }
  }

  la::Vec out;
  out.reserve(kColorMomentDims);
  for (const auto* channel : {&hch, &sch, &vch}) {
    out.push_back(la::Mean(*channel));
    out.push_back(la::StdDev(*channel));
    out.push_back(la::SkewnessCubeRoot(*channel));
  }
  return out;
}

}  // namespace cbir::features
