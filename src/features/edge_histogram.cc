#include "features/edge_histogram.h"

#include <cmath>

#include "util/logging.h"

namespace cbir::features {

la::Vec EdgeDirectionHistogram(const CannyResult& canny, int bins) {
  CBIR_CHECK_GT(bins, 0);
  la::Vec hist(static_cast<size_t>(bins), 0.0);
  const int w = canny.edges.width();
  const int h = canny.edges.height();
  double total = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (canny.edges.At(x, y) <= 0.0f) continue;
      const float gx = canny.gradient.gx.At(x, y);
      const float gy = canny.gradient.gy.At(x, y);
      double angle = std::atan2(gy, gx) * 180.0 / M_PI;
      if (angle < 0.0) angle += 360.0;
      int bin = static_cast<int>(angle / (360.0 / bins));
      if (bin >= bins) bin = bins - 1;
      hist[static_cast<size_t>(bin)] += 1.0;
      total += 1.0;
    }
  }
  if (total > 0.0) {
    for (double& v : hist) v /= total;
  }
  return hist;
}

la::Vec EdgeDirectionHistogram(const imaging::GrayImage& gray,
                               const CannyOptions& options, int bins) {
  return EdgeDirectionHistogram(Canny(gray, options), bins);
}

}  // namespace cbir::features
