#include "features/normalizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace cbir::features {

Normalizer Normalizer::Fit(const la::Matrix& features) {
  CBIR_CHECK(!features.empty());
  const size_t rows = features.rows();
  const size_t cols = features.cols();

  Normalizer out;
  out.mean_.assign(cols, 0.0);
  out.stddev_.assign(cols, 0.0);

  for (size_t r = 0; r < rows; ++r) {
    const double* p = features.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) out.mean_[c] += p[c];
  }
  for (double& m : out.mean_) m /= static_cast<double>(rows);

  for (size_t r = 0; r < rows; ++r) {
    const double* p = features.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      const double d = p[c] - out.mean_[c];
      out.stddev_[c] += d * d;
    }
  }
  for (double& s : out.stddev_) {
    s = std::sqrt(s / static_cast<double>(rows));
    if (s < 1e-12) s = 1.0;  // constant column -> map to 0
  }
  return out;
}

void Normalizer::Apply(la::Vec* v) const {
  CBIR_CHECK(fitted());
  CBIR_CHECK_EQ(v->size(), mean_.size());
  for (size_t i = 0; i < v->size(); ++i) {
    (*v)[i] = ((*v)[i] - mean_[i]) / stddev_[i];
  }
}

void Normalizer::ApplyAll(la::Matrix* features) const {
  CBIR_CHECK(fitted());
  CBIR_CHECK_EQ(features->cols(), mean_.size());
  for (size_t r = 0; r < features->rows(); ++r) {
    double* p = features->RowPtr(r);
    for (size_t c = 0; c < features->cols(); ++c) {
      p[c] = (p[c] - mean_[c]) / stddev_[c];
    }
  }
}

la::Vec Normalizer::Transform(const la::Vec& v) const {
  la::Vec out = v;
  Apply(&out);
  return out;
}

void Normalizer::Save(std::ostream& os) const {
  os << mean_.size() << "\n";
  os.precision(17);
  for (size_t i = 0; i < mean_.size(); ++i) {
    os << mean_[i] << " " << stddev_[i] << "\n";
  }
}

Result<Normalizer> Normalizer::Load(std::istream& is) {
  size_t dims = 0;
  if (!(is >> dims)) {
    return Status::IoError("normalizer: cannot read dimension count");
  }
  Normalizer out;
  out.mean_.resize(dims);
  out.stddev_.resize(dims);
  for (size_t i = 0; i < dims; ++i) {
    if (!(is >> out.mean_[i] >> out.stddev_[i])) {
      return Status::IoError("normalizer: truncated payload");
    }
    if (out.stddev_[i] <= 0.0) {
      return Status::InvalidArgument("normalizer: non-positive stddev");
    }
  }
  return out;
}

}  // namespace cbir::features
