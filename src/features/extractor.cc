#include "features/extractor.h"

#include <cstdio>

#include "features/color_moments.h"
#include "features/edge_histogram.h"
#include "imaging/color.h"
#include "util/logging.h"

namespace cbir::features {

std::string FeatureLayout::DimensionName(int dim) const {
  static const char* kMomentNames[] = {"mean", "std", "skew"};
  static const char* kChannelNames[] = {"H", "S", "V"};
  if (dim >= color_offset && dim < color_offset + color_dims) {
    const int rel = dim - color_offset;
    return std::string("color:") + kMomentNames[rel % 3] +
           kChannelNames[rel / 3];
  }
  if (dim >= edge_offset && dim < edge_offset + edge_dims) {
    const int rel = dim - edge_offset;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "edge:bin%02d", rel);
    return buf;
  }
  if (dim >= texture_offset && dim < texture_offset + texture_dims) {
    static const char* kBandNames[] = {"LH", "HL", "HH"};
    const int rel = dim - texture_offset;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "texture:L%d%s", rel / 3,
                  kBandNames[rel % 3]);
    return buf;
  }
  return "unknown:" + std::to_string(dim);
}

FeatureExtractor::FeatureExtractor(const FeatureOptions& options)
    : options_(options) {
  layout_.color_offset = 0;
  layout_.color_dims = kColorMomentDims;
  layout_.edge_offset = layout_.color_dims;
  layout_.edge_dims = options_.edge_bins;
  layout_.texture_offset = layout_.edge_offset + layout_.edge_dims;
  layout_.texture_dims = 3 * options_.texture.levels;
}

la::Vec FeatureExtractor::Extract(const imaging::Image& image) const {
  CBIR_CHECK(!image.empty());
  const la::Vec color = ColorMoments(image);

  const imaging::GrayImage gray = imaging::ToGray(image);
  const CannyResult canny = Canny(gray, options_.canny);
  const la::Vec edge = EdgeDirectionHistogram(canny, options_.edge_bins);
  const la::Vec texture = WaveletTexture(gray, options_.texture);

  la::Vec out;
  out.reserve(color.size() + edge.size() + texture.size());
  out.insert(out.end(), color.begin(), color.end());
  out.insert(out.end(), edge.begin(), edge.end());
  out.insert(out.end(), texture.begin(), texture.end());
  CBIR_CHECK_EQ(static_cast<int>(out.size()), dims());
  return out;
}

}  // namespace cbir::features
