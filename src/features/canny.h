#ifndef CBIR_FEATURES_CANNY_H_
#define CBIR_FEATURES_CANNY_H_

#include "features/sobel.h"
#include "imaging/image.h"

namespace cbir::features {

/// \brief Canny edge detector configuration.
struct CannyOptions {
  /// Pre-smoothing Gaussian sigma.
  double sigma = 1.4;
  /// High hysteresis threshold, as a fraction of the maximum gradient
  /// magnitude after non-maximum suppression.
  double high_ratio = 0.20;
  /// Low threshold as a fraction of the high threshold.
  double low_ratio = 0.40;
};

/// \brief Output of Canny edge detection.
struct CannyResult {
  /// Binary edge map: 1.0 at edge pixels, 0.0 elsewhere.
  imaging::GrayImage edges;
  /// Gradient field computed on the smoothed image (used downstream by the
  /// edge-direction histogram, so directions match the detected edges).
  GradientField gradient;
  /// Number of edge pixels.
  int edge_count = 0;
};

/// Full Canny pipeline: Gaussian smoothing, Sobel gradients, non-maximum
/// suppression along the quantized gradient direction, and double-threshold
/// hysteresis (weak pixels survive only when 8-connected to a strong pixel).
CannyResult Canny(const imaging::GrayImage& src,
                  const CannyOptions& options = {});

}  // namespace cbir::features

#endif  // CBIR_FEATURES_CANNY_H_
