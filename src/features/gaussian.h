#ifndef CBIR_FEATURES_GAUSSIAN_H_
#define CBIR_FEATURES_GAUSSIAN_H_

#include <vector>

#include "imaging/image.h"

namespace cbir::features {

/// Builds a normalized 1-D Gaussian kernel with radius ceil(3*sigma).
std::vector<float> GaussianKernel1d(double sigma);

/// Separable Gaussian blur with replicate border handling.
/// sigma <= 0 returns the input unchanged.
imaging::GrayImage GaussianBlur(const imaging::GrayImage& src, double sigma);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_GAUSSIAN_H_
