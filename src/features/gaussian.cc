#include "features/gaussian.h"

#include <cmath>

#include "util/logging.h"

namespace cbir::features {

std::vector<float> GaussianKernel1d(double sigma) {
  CBIR_CHECK_GT(sigma, 0.0);
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(2 * radius + 1);
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i * i) / (sigma * sigma));
    kernel[static_cast<size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (float& v : kernel) v = static_cast<float>(v / sum);
  return kernel;
}

imaging::GrayImage GaussianBlur(const imaging::GrayImage& src, double sigma) {
  if (sigma <= 0.0 || src.empty()) return src;
  const std::vector<float> kernel = GaussianKernel1d(sigma);
  const int radius = static_cast<int>(kernel.size() / 2);
  const int w = src.width();
  const int h = src.height();

  imaging::GrayImage tmp(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<size_t>(k + radius)] *
               src.AtClamped(x + k, y);
      }
      tmp.Set(x, y, acc);
    }
  }

  imaging::GrayImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<size_t>(k + radius)] *
               tmp.AtClamped(x, y + k);
      }
      out.Set(x, y, acc);
    }
  }
  return out;
}

}  // namespace cbir::features
