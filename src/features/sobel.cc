#include "features/sobel.h"

#include <cmath>

namespace cbir::features {

GradientField Sobel(const imaging::GrayImage& src) {
  const int w = src.width();
  const int h = src.height();
  GradientField out{imaging::GrayImage(w, h), imaging::GrayImage(w, h),
                    imaging::GrayImage(w, h)};

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float p00 = src.AtClamped(x - 1, y - 1);
      const float p10 = src.AtClamped(x, y - 1);
      const float p20 = src.AtClamped(x + 1, y - 1);
      const float p01 = src.AtClamped(x - 1, y);
      const float p21 = src.AtClamped(x + 1, y);
      const float p02 = src.AtClamped(x - 1, y + 1);
      const float p12 = src.AtClamped(x, y + 1);
      const float p22 = src.AtClamped(x + 1, y + 1);

      const float gx = (p20 + 2.0f * p21 + p22) - (p00 + 2.0f * p01 + p02);
      const float gy = (p02 + 2.0f * p12 + p22) - (p00 + 2.0f * p10 + p20);
      out.gx.Set(x, y, gx);
      out.gy.Set(x, y, gy);
      out.magnitude.Set(x, y, std::sqrt(gx * gx + gy * gy));
    }
  }
  return out;
}

}  // namespace cbir::features
