#include "features/canny.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "features/gaussian.h"

namespace cbir::features {

namespace {

// Quantizes an angle to one of 4 NMS neighbor axes:
// 0 = E/W, 1 = NE/SW, 2 = N/S, 3 = NW/SE.
int QuantizeDirection(float gx, float gy) {
  double angle = std::atan2(gy, gx) * 180.0 / M_PI;  // [-180, 180]
  if (angle < 0.0) angle += 180.0;                   // fold to [0, 180)
  if (angle < 22.5 || angle >= 157.5) return 0;
  if (angle < 67.5) return 1;
  if (angle < 112.5) return 2;
  return 3;
}

}  // namespace

CannyResult Canny(const imaging::GrayImage& src, const CannyOptions& options) {
  const imaging::GrayImage smoothed = GaussianBlur(src, options.sigma);
  GradientField grad = Sobel(smoothed);

  const int w = src.width();
  const int h = src.height();

  // Non-maximum suppression.
  imaging::GrayImage nms(w, h, 0.0f);
  float max_mag = 0.0f;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float mag = grad.magnitude.At(x, y);
      if (mag <= 0.0f) continue;
      const int dir =
          QuantizeDirection(grad.gx.At(x, y), grad.gy.At(x, y));
      float n1 = 0.0f, n2 = 0.0f;
      switch (dir) {
        case 0:
          n1 = grad.magnitude.AtClamped(x - 1, y);
          n2 = grad.magnitude.AtClamped(x + 1, y);
          break;
        case 1:
          n1 = grad.magnitude.AtClamped(x + 1, y - 1);
          n2 = grad.magnitude.AtClamped(x - 1, y + 1);
          break;
        case 2:
          n1 = grad.magnitude.AtClamped(x, y - 1);
          n2 = grad.magnitude.AtClamped(x, y + 1);
          break;
        default:
          n1 = grad.magnitude.AtClamped(x - 1, y - 1);
          n2 = grad.magnitude.AtClamped(x + 1, y + 1);
          break;
      }
      if (mag >= n1 && mag >= n2) {
        nms.Set(x, y, mag);
        max_mag = std::max(max_mag, mag);
      }
    }
  }

  CannyResult result{imaging::GrayImage(w, h, 0.0f), std::move(grad), 0};
  if (max_mag <= 0.0f) return result;

  const float high = static_cast<float>(options.high_ratio) * max_mag;
  const float low = static_cast<float>(options.low_ratio) * high;

  // Hysteresis: seed from strong pixels, grow through weak ones (8-conn).
  std::vector<std::pair<int, int>> stack;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (nms.At(x, y) >= high && result.edges.At(x, y) == 0.0f) {
        result.edges.Set(x, y, 1.0f);
        stack.emplace_back(x, y);
        while (!stack.empty()) {
          auto [cx, cy] = stack.back();
          stack.pop_back();
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0) continue;
              const int nx = cx + dx;
              const int ny = cy + dy;
              if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
              if (result.edges.At(nx, ny) == 0.0f && nms.At(nx, ny) >= low) {
                result.edges.Set(nx, ny, 1.0f);
                stack.emplace_back(nx, ny);
              }
            }
          }
        }
      }
    }
  }

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (result.edges.At(x, y) > 0.0f) ++result.edge_count;
    }
  }
  return result;
}

}  // namespace cbir::features
