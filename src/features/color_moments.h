#ifndef CBIR_FEATURES_COLOR_MOMENTS_H_
#define CBIR_FEATURES_COLOR_MOMENTS_H_

#include "imaging/image.h"
#include "la/vector_ops.h"

namespace cbir::features {

/// Number of color-moment dimensions (3 moments x 3 HSV channels).
inline constexpr int kColorMomentDims = 9;

/// \brief Extracts the paper's 9-dim color-moment feature.
///
/// Per HSV channel: mean, standard deviation ("variance" in the paper's
/// terminology) and signed cube root of the third central moment
/// ("skewness", Stricker-Orengo convention). Hue is expressed in [0, 1]
/// (i.e. degrees / 360) so all nine dimensions share a comparable scale.
///
/// Layout: [meanH, stdH, skewH, meanS, stdS, skewS, meanV, stdV, skewV].
la::Vec ColorMoments(const imaging::Image& image);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_COLOR_MOMENTS_H_
