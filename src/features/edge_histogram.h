#ifndef CBIR_FEATURES_EDGE_HISTOGRAM_H_
#define CBIR_FEATURES_EDGE_HISTOGRAM_H_

#include "features/canny.h"
#include "imaging/image.h"
#include "la/vector_ops.h"

namespace cbir::features {

/// Default bin count from the paper: 18 bins of 20 degrees each.
inline constexpr int kEdgeHistogramBins = 18;

/// \brief Computes the edge direction histogram (Jain & Vailaya).
///
/// At every Canny edge pixel the gradient direction atan2(gy, gx) in
/// [0, 360) is quantized into `bins` equal sectors; the histogram is
/// normalized to sum to 1 (all-zero when the image has no edges, e.g. a
/// constant raster).
la::Vec EdgeDirectionHistogram(const CannyResult& canny,
                               int bins = kEdgeHistogramBins);

/// Convenience overload: runs Canny on a grayscale image first.
la::Vec EdgeDirectionHistogram(const imaging::GrayImage& gray,
                               const CannyOptions& options = {},
                               int bins = kEdgeHistogramBins);

}  // namespace cbir::features

#endif  // CBIR_FEATURES_EDGE_HISTOGRAM_H_
