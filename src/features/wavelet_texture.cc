#include "features/wavelet_texture.h"

#include <algorithm>
#include <cmath>

#include "la/stats.h"
#include "util/logging.h"

namespace cbir::features {

double SubbandEntropy(const imaging::GrayImage& band, int bins) {
  CBIR_CHECK_GT(bins, 0);
  std::vector<double> magnitudes;
  magnitudes.reserve(static_cast<size_t>(band.width()) * band.height());
  double max_mag = 0.0;
  for (int y = 0; y < band.height(); ++y) {
    for (int x = 0; x < band.width(); ++x) {
      const double m = std::fabs(static_cast<double>(band.At(x, y)));
      magnitudes.push_back(m);
      max_mag = std::max(max_mag, m);
    }
  }
  if (max_mag <= 0.0) return 0.0;
  const std::vector<double> hist = la::Histogram(
      magnitudes, static_cast<size_t>(bins), 0.0, max_mag + 1e-12);
  return la::Entropy(hist);
}

la::Vec WaveletTexture(const imaging::GrayImage& gray,
                       const WaveletTextureOptions& options) {
  const DwtPyramid pyramid = DwtPyramidDecompose(gray, options.levels);
  la::Vec out;
  out.reserve(static_cast<size_t>(3 * options.levels));
  for (const DwtLevel& level : pyramid.levels) {
    out.push_back(SubbandEntropy(level.lh, options.entropy_bins));
    out.push_back(SubbandEntropy(level.hl, options.entropy_bins));
    out.push_back(SubbandEntropy(level.hh, options.entropy_bins));
  }
  return out;
}

}  // namespace cbir::features
