#ifndef CBIR_SERVE_QUERY_CACHE_H_
#define CBIR_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "la/vector_ops.h"
#include "util/sync.h"

namespace cbir::serve {

/// \brief Knobs for the first-round result cache.
struct QueryCacheOptions {
  /// Total cached rankings across all shards (0 disables the cache).
  size_t capacity = 4096;
  /// Lock shards; rounded up to a power of two. More shards = less mutex
  /// contention between unrelated queries.
  int num_shards = 8;
};

/// \brief Lifetime counters of a QueryCache.
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      ///< LRU capacity evictions
  uint64_t invalidations = 0;  ///< Invalidate() epoch bumps

  double hit_rate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// \brief Sharded LRU cache of first-round top-k rankings.
///
/// Keys are 64-bit fingerprints of (query feature, retrieval depth, index
/// configuration) — see FingerprintQuery — so two sessions issuing the same
/// query image against the same index share one ranking computation.
/// Invalidation is epoch-based: every entry is stamped with the epoch
/// observed *before* its ranking was computed (pass `epoch()` to Insert),
/// and Invalidate() bumps the epoch, making every older entry a miss.
/// Stale entries are reclaimed lazily on lookup and by LRU eviction; no
/// global sweep ever blocks the serving path.
///
/// All methods are thread-safe; Lookup/Insert take exactly one shard mutex.
class QueryCache {
 public:
  explicit QueryCache(const QueryCacheOptions& options);

  /// Current invalidation epoch. Read it before computing a ranking and
  /// hand it to Insert so a concurrent Invalidate() poisons the entry.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// On hit, copies the cached ranking into `out` and refreshes its LRU
  /// position. Counts a miss (and erases the entry) when the entry's epoch
  /// is stale.
  bool Lookup(uint64_t key, std::vector<int>* out);

  /// Caches `ranking` under `key`, stamped with `epoch` (from epoch()).
  /// Replaces an existing entry for the key; evicts the shard's LRU tail
  /// beyond capacity. No-op when the entry is already stale or capacity 0.
  void Insert(uint64_t key, const std::vector<int>& ranking, uint64_t epoch);

  /// Makes every current entry a miss (epoch bump). Call after the data a
  /// cached ranking derives from (index, corpus) has been swapped.
  void Invalidate();

  QueryCacheStats stats() const;

  /// Live entries across all shards (stale-but-unreclaimed ones included).
  size_t size() const;

  /// FNV-1a fingerprint of a query feature vector plus the retrieval depth
  /// and an index-configuration fingerprint. 64-bit collisions across live
  /// cache entries are vanishingly rare; a collision serves the colliding
  /// query the other query's (deterministic) ranking.
  static uint64_t FingerprintQuery(const la::Vec& query, int depth,
                                   uint64_t config_fingerprint);

  /// Fingerprint helper for the index-configuration part of the key.
  static uint64_t HashCombine(uint64_t seed, uint64_t value);

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t epoch = 0;
    std::vector<int> ranking;
  };
  struct Shard {
    util::Mutex mu{util::LockRank::kQueryCache, "query_cache_shard"};
    /// front = most recently used
    std::list<Entry> lru CBIR_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map
        CBIR_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key);

  size_t shard_mask_ = 0;  ///< num_shards - 1 (power of two)
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> epoch_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace cbir::serve

#endif  // CBIR_SERVE_QUERY_CACHE_H_
