#include "serve/session_manager.h"

#include <utility>

#include "util/logging.h"

namespace cbir::serve {

SessionManager::SessionManager(const SessionManagerOptions& options,
                               EvictCallback on_evict)
    : options_(options), on_evict_(std::move(on_evict)) {
  CBIR_CHECK_GT(options_.max_sessions, 0u);
  CBIR_CHECK_GE(options_.ttl_seconds, 0.0);
}

std::vector<std::shared_ptr<ServeSession>>
SessionManager::CollectVictimsLocked(bool need_room) {
  std::vector<std::shared_ptr<ServeSession>> victims;
  // TTL pass: walk from the LRU tail, the oldest touches; stop at the first
  // still-fresh session (touch times are monotone along the list).
  if (options_.ttl_seconds > 0.0 && !lru_.empty()) {
    const auto cutoff =
        Clock::now() - std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options_.ttl_seconds));
    while (!lru_.empty()) {
      auto it = entries_.find(lru_.back());
      CBIR_CHECK(it != entries_.end());
      if (it->second.last_touch > cutoff) break;
      victims.push_back(std::move(it->second.session));
      lru_.pop_back();
      entries_.erase(it);
      ++evicted_ttl_;
    }
  }
  // Capacity pass: make room for one more.
  if (need_room) {
    while (entries_.size() >= options_.max_sessions && !lru_.empty()) {
      auto it = entries_.find(lru_.back());
      CBIR_CHECK(it != entries_.end());
      victims.push_back(std::move(it->second.session));
      lru_.pop_back();
      entries_.erase(it);
      ++evicted_capacity_;
    }
  }
  return victims;
}

void SessionManager::FinishVictims(
    const std::vector<std::shared_ptr<ServeSession>>& victims) {
  for (const std::shared_ptr<ServeSession>& victim : victims) {
    util::MutexLock lock(victim->mu);
    victim->ended = true;
    if (on_evict_) on_evict_(*victim);
  }
}

void SessionManager::Register(std::shared_ptr<ServeSession> session) {
  CBIR_CHECK(session != nullptr);
  const uint64_t id = session->id;
  std::vector<std::shared_ptr<ServeSession>> victims;
  {
    util::MutexLock lock(mu_);
    victims = CollectVictimsLocked(/*need_room=*/true);
    CBIR_CHECK(entries_.find(id) == entries_.end())
        << "duplicate session id " << id;
    lru_.push_front(id);
    entries_[id] = Entry{std::move(session), lru_.begin(), Clock::now()};
    ++started_;
  }
  FinishVictims(victims);
}

std::shared_ptr<ServeSession> SessionManager::Acquire(uint64_t id) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.last_touch = Clock::now();
  return it->second.session;
}

std::shared_ptr<ServeSession> SessionManager::Remove(uint64_t id) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  std::shared_ptr<ServeSession> session = std::move(it->second.session);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++ended_;
  return session;
}

size_t SessionManager::EvictExpired() {
  if (options_.ttl_seconds <= 0.0) return 0;
  std::vector<std::shared_ptr<ServeSession>> victims;
  {
    util::MutexLock lock(mu_);
    victims = CollectVictimsLocked(/*need_room=*/false);
  }
  FinishVictims(victims);
  return victims.size();
}

SessionManagerStats SessionManager::stats() const {
  util::MutexLock lock(mu_);
  SessionManagerStats s;
  s.started = started_;
  s.ended = ended_;
  s.evicted_capacity = evicted_capacity_;
  s.evicted_ttl = evicted_ttl_;
  s.active = entries_.size();
  return s;
}

size_t SessionManager::active() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace cbir::serve
