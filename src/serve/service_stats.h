#ifndef CBIR_SERVE_SERVICE_STATS_H_
#define CBIR_SERVE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace cbir::serve {

/// \brief Latency percentiles summarized from a LatencyHistogram.
///
/// Percentile values are bucket upper bounds, so they over-estimate by at
/// most one bucket width (~12.5% with the log-linear layout below); `max_us`
/// has the same granularity.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// \brief Fixed-bucket concurrent latency histogram (microsecond domain).
///
/// Log-linear layout: 8 linear buckets below 8us, then 8 sub-buckets per
/// power of two up to ~68s, so relative resolution stays ~12.5% across the
/// whole range. Record() is wait-free (one relaxed fetch_add per call plus
/// two for the mean), which keeps the serving hot path uncontended; the
/// percentile math happens only in Summarize().
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;                ///< 2^3 sub-buckets/octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kMaxOctave = 36;             ///< caps at ~2^36 us
  static constexpr int kBuckets = kSub + (kMaxOctave - kSubBits) * kSub;

  /// Records one latency observation (values are clamped to the last
  /// bucket). Safe to call from any number of threads.
  void Record(double micros);

  /// Aggregates the current counts into percentiles. Concurrent Record()
  /// calls may or may not be included — the summary is a snapshot, not a
  /// barrier.
  LatencySummary Summarize() const;

  /// Zeroes all buckets (not atomic with respect to concurrent Record()).
  void Reset();

  /// Bucket index for a microsecond value; exposed for tests.
  static int BucketIndex(uint64_t us);
  /// Exclusive upper bound (in us) of the given bucket; exposed for tests.
  static uint64_t BucketUpperBound(int bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> count_{0};
};

/// \brief One coherent snapshot of everything the serving layer counts,
/// surfaced the way IndexStats / CacheStats are for the lower layers.
struct ServiceStats {
  // Request counters.
  uint64_t queries = 0;        ///< first-round Query() calls answered
  uint64_t feedbacks = 0;      ///< Feedback() rounds ranked
  uint64_t requests = 0;       ///< queries + feedbacks

  // Session lifecycle (from the SessionManager).
  uint64_t sessions_started = 0;
  uint64_t sessions_ended = 0;          ///< explicit EndSession calls
  uint64_t sessions_evicted_capacity = 0;
  uint64_t sessions_evicted_ttl = 0;
  uint64_t active_sessions = 0;

  // First-round cache (from the QueryCache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;

  // Feedback log integration.
  uint64_t log_sessions_appended = 0;  ///< LogSessions flushed to the store

  // Fault tolerance: requests rejected instead of served, and retried
  // requests answered from the idempotency cache instead of re-applied.
  uint64_t requests_shed_overload = 0;  ///< kUnavailable: over max_inflight
  uint64_t requests_shed_deadline = 0;  ///< kDeadlineExceeded on arrival
  uint64_t feedback_replays = 0;        ///< duplicate seq answered from cache

  // Session memory: bytes held by per-session cross-round kernel caches
  // (slabs + gathered training matrices) across all live sessions. Grows
  // with feedback rounds, returns to zero as sessions end or are evicted.
  uint64_t session_kernel_cache_bytes = 0;

  double elapsed_seconds = 0.0;  ///< since service start (or ResetStats)
  /// requests / elapsed_seconds (0 when no time has passed).
  double qps = 0.0;
  /// cache_hits / (cache_hits + cache_misses), 1.0 when no lookups ran.
  double cache_hit_rate = 1.0;

  LatencySummary latency;  ///< over all Query + Feedback requests
};

/// One-line human-readable rendering, in the "index stats:" key=value style
/// the experiment driver uses.
std::string FormatServiceStats(const ServiceStats& stats);

}  // namespace cbir::serve

#endif  // CBIR_SERVE_SERVICE_STATS_H_
