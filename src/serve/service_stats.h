#ifndef CBIR_SERVE_SERVICE_STATS_H_
#define CBIR_SERVE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace cbir::serve {

/// The latency machinery lives in obs/metrics.h now (the metrics registry
/// hands out the same histogram type for any named series); these aliases
/// keep the serve API spelled the way it always was.
using LatencySummary = obs::LatencySummary;
using LatencyHistogram = obs::LatencyHistogram;

/// \brief One coherent snapshot of everything the serving layer counts,
/// surfaced the way IndexStats / CacheStats are for the lower layers.
struct ServiceStats {
  // Request counters.
  uint64_t queries = 0;        ///< first-round Query() calls answered
  uint64_t feedbacks = 0;      ///< Feedback() rounds ranked
  uint64_t candidate_queries = 0;  ///< sessionless FirstRoundCandidates calls
  uint64_t requests = 0;       ///< queries + feedbacks + candidate_queries

  // Session lifecycle (from the SessionManager).
  uint64_t sessions_started = 0;
  uint64_t sessions_ended = 0;          ///< explicit EndSession calls
  uint64_t sessions_evicted_capacity = 0;
  uint64_t sessions_evicted_ttl = 0;
  uint64_t active_sessions = 0;

  // First-round cache (from the QueryCache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;

  // Feedback log integration.
  uint64_t log_sessions_appended = 0;  ///< LogSessions flushed to the store

  // Fault tolerance: requests rejected instead of served, and retried
  // requests answered from the idempotency cache instead of re-applied.
  uint64_t requests_shed_overload = 0;  ///< kUnavailable: over max_inflight
  uint64_t requests_shed_deadline = 0;  ///< kDeadlineExceeded on arrival
  uint64_t feedback_replays = 0;        ///< duplicate seq answered from cache

  // Session memory: bytes held by per-session cross-round kernel caches
  // (slabs + gathered training matrices) across all live sessions. Grows
  // with feedback rounds, returns to zero as sessions end or are evicted.
  uint64_t session_kernel_cache_bytes = 0;

  double elapsed_seconds = 0.0;  ///< since service start (or ResetStats)
  /// requests / elapsed_seconds (0 when no time has passed).
  double qps = 0.0;
  /// cache_hits / (cache_hits + cache_misses), 1.0 when no lookups ran.
  double cache_hit_rate = 1.0;

  LatencySummary latency;  ///< over all Query + Feedback requests
};

/// One-line human-readable rendering, in the "index stats:" key=value style
/// the experiment driver uses.
std::string FormatServiceStats(const ServiceStats& stats);

}  // namespace cbir::serve

#endif  // CBIR_SERVE_SERVICE_STATS_H_
