#include "serve/query_cache.h"

#include <bit>
#include <cstring>

#include "util/logging.h"

namespace cbir::serve {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvMix(uint64_t hash, const void* bytes, size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

QueryCache::QueryCache(const QueryCacheOptions& options) {
  const size_t shards = std::bit_ceil(static_cast<size_t>(
      options.num_shards < 1 ? 1 : options.num_shards));
  shard_mask_ = shards - 1;
  // Ceil-divide so the summed shard capacity is never below the requested
  // total (a capacity smaller than the shard count still caches something).
  per_shard_capacity_ = options.capacity == 0
                            ? 0
                            : (options.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::Shard& QueryCache::ShardFor(uint64_t key) {
  // Multiplicative scramble so adjacent keys spread across shards even when
  // the low key bits correlate.
  const uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return *shards_[static_cast<size_t>(h >> 32) & shard_mask_];
}

bool QueryCache::Lookup(uint64_t key, std::vector<int>* out) {
  CBIR_CHECK(out != nullptr);
  const uint64_t now = epoch();
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->epoch != now) {
    // Stale epoch: reclaim lazily and report a miss.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->ranking;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void QueryCache::Insert(uint64_t key, const std::vector<int>& ranking,
                        uint64_t epoch) {
  if (per_shard_capacity_ == 0) return;
  if (epoch != this->epoch()) return;  // computed against invalidated data
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->epoch = epoch;
    it->second->ranking = ranking;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, ranking});
  shard.map[key] = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryCache::Invalidate() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

uint64_t QueryCache::FingerprintQuery(const la::Vec& query, int depth,
                                      uint64_t config_fingerprint) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, query.data(), query.size() * sizeof(double));
  hash = FnvMix(hash, &depth, sizeof(depth));
  hash = FnvMix(hash, &config_fingerprint, sizeof(config_fingerprint));
  return hash;
}

uint64_t QueryCache::HashCombine(uint64_t seed, uint64_t value) {
  return FnvMix(seed == 0 ? kFnvOffset : seed, &value, sizeof(value));
}

}  // namespace cbir::serve
