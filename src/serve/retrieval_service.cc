#include "serve/retrieval_service.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "index/signature_index.h"
#include "la/vector_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/sync.h"

namespace cbir::serve {

namespace {

/// Registry series the service writes (cached once; see obs::MetricsRegistry).
/// The stage histograms share the net layer's `cbir_request_stage_us` family,
/// so one metric name tells the whole per-request story across layers.
struct ServeMetrics {
  obs::Counter* queries;
  obs::Counter* feedbacks;
  obs::Counter* shed_overload;
  obs::Counter* shed_deadline;
  obs::Counter* feedback_replays;
  obs::Counter* log_sessions_appended;
  obs::LatencyHistogram* stage_admission;
  obs::LatencyHistogram* stage_queue_wait;
  obs::LatencyHistogram* stage_index_scan;
  obs::LatencyHistogram* stage_solve;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    ServeMetrics m;
    m.queries = r.GetCounter("cbir_serve_queries_total");
    m.feedbacks = r.GetCounter("cbir_serve_feedbacks_total");
    m.shed_overload = r.GetCounter("cbir_serve_shed_overload_total");
    m.shed_deadline = r.GetCounter("cbir_serve_shed_deadline_total");
    m.feedback_replays = r.GetCounter("cbir_serve_feedback_replays_total");
    m.log_sessions_appended =
        r.GetCounter("cbir_serve_log_sessions_appended_total");
    m.stage_admission =
        r.GetHistogram("cbir_request_stage_us", "stage", "admission");
    m.stage_queue_wait =
        r.GetHistogram("cbir_request_stage_us", "stage", "queue_wait");
    m.stage_index_scan =
        r.GetHistogram("cbir_request_stage_us", "stage", "index_scan");
    m.stage_solve = r.GetHistogram("cbir_request_stage_us", "stage", "solve");
    return m;
  }();
  return metrics;
}

/// Hashes the parts of the retrieval configuration a cached first-round
/// ranking depends on, so rankings computed against a differently-built
/// index can never alias in the cache.
uint64_t ConfigFingerprint(const retrieval::ImageDatabase& db) {
  uint64_t fp = QueryCache::HashCombine(
      0, static_cast<uint64_t>(db.num_images()));
  const retrieval::Index* index = db.index();
  if (index == nullptr) {
    return QueryCache::HashCombine(fp, 0x6e6f6e65ull);  // "none"
  }
  for (char c : index->name()) {
    fp = QueryCache::HashCombine(fp, static_cast<uint64_t>(c));
  }
  if (const auto* sig = dynamic_cast<const retrieval::SignatureIndex*>(index);
      sig != nullptr) {
    fp = QueryCache::HashCombine(fp, static_cast<uint64_t>(sig->bits()));
    fp = QueryCache::HashCombine(
        fp, static_cast<uint64_t>(sig->options().candidate_factor));
    fp = QueryCache::HashCombine(fp, sig->options().seed);
  }
  return fp;
}

/// Attaches the index work done inside its scope to the current request's
/// trace as per-request counters (EXPLAIN's `index_*` lines). The index
/// counters are process-wide atomics, so under concurrent traffic a delta
/// can include a slice of another request's scan — the numbers are
/// attributions, not exact accounting (see docs/OBSERVABILITY.md).
class ScopedIndexCounters {
 public:
  explicit ScopedIndexCounters(const retrieval::Index* index)
      : index_(index), trace_(obs::CurrentTrace()) {
    if (index_ != nullptr && trace_ != nullptr) before_ = index_->stats();
  }
  ~ScopedIndexCounters() {
    if (index_ == nullptr || trace_ == nullptr) return;
    const retrieval::IndexStats after = index_->stats();
    trace_->AddCounter(
        "index_rows_scanned",
        static_cast<int64_t>(after.rows_scanned - before_.rows_scanned));
    trace_->AddCounter("index_signatures_scanned",
                       static_cast<int64_t>(after.signatures_scanned -
                                            before_.signatures_scanned));
    trace_->AddCounter("index_candidates_reranked",
                       static_cast<int64_t>(after.candidates_reranked -
                                            before_.candidates_reranked));
  }
  ScopedIndexCounters(const ScopedIndexCounters&) = delete;
  ScopedIndexCounters& operator=(const ScopedIndexCounters&) = delete;

 private:
  const retrieval::Index* index_;
  obs::RequestTrace* trace_;
  retrieval::IndexStats before_;
};

}  // namespace

RetrievalService::RetrievalService(
    const retrieval::ImageDatabase* db, const la::Matrix* log_features,
    logdb::LogStore* log_store,
    std::shared_ptr<const core::FeedbackScheme> scheme,
    const ServiceOptions& options)
    : db_(db),
      log_features_(log_features),
      log_store_(log_store),
      scheme_(std::move(scheme)),
      options_(options),
      cache_(options.cache),
      config_fingerprint_(ConfigFingerprint(*db)) {
  next_session_id_.store(options_.first_session_id,
                         std::memory_order_relaxed);
  sessions_ = std::make_unique<SessionManager>(
      options_.sessions,
      [this](ServeSession& session) {
        // The manager holds the victim's lock across the callback; re-assert
        // the capability across the type-erased std::function boundary.
        session.mu.AssertHeld();
        FlushSessionLocked(session);
      });
}

Result<std::unique_ptr<RetrievalService>> RetrievalService::Create(
    const retrieval::ImageDatabase* db, const la::Matrix* log_features,
    logdb::LogStore* log_store, const core::SchemeOptions& scheme_options,
    const ServiceOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("retrieval service: null database");
  }
  if (options.default_k <= 0) {
    return Status::InvalidArgument("retrieval service: default_k must be > 0");
  }
  if (options.candidate_depth < 0) {
    return Status::InvalidArgument(
        "retrieval service: candidate_depth must be >= 0");
  }
  if (options.sessions.max_sessions == 0) {
    return Status::InvalidArgument(
        "retrieval service: max_sessions must be > 0");
  }
  if (options.first_session_id == 0) {
    return Status::InvalidArgument(
        "retrieval service: first_session_id must be >= 1");
  }
  if (options.sessions.ttl_seconds < 0.0) {
    return Status::InvalidArgument(
        "retrieval service: ttl_seconds must be >= 0");
  }
  CBIR_ASSIGN_OR_RETURN(
      std::shared_ptr<core::FeedbackScheme> scheme,
      core::MakeScheme(options.scheme, scheme_options, options.csvm));
  return std::unique_ptr<RetrievalService>(new RetrievalService(
      db, log_features, log_store, std::move(scheme), options));
}

int RetrievalService::EffectiveDepth() const {
  if (options_.candidate_depth <= 0) return -1;
  // Without an index the exhaustive scan produces the full ranking anyway;
  // mirroring RunFeedbackSession keeps the two paths rank-identical.
  return db_->index() == nullptr ? -1 : options_.candidate_depth;
}

Result<uint64_t> RetrievalService::StartSession(int query_id) {
  if (query_id < 0 || query_id >= db_->num_images()) {
    return Status::InvalidArgument(
        "retrieval service: query id " + std::to_string(query_id) +
        " out of range [0, " + std::to_string(db_->num_images()) + ")");
  }
  return RegisterSession(query_id, db_->feature(query_id));
}

Result<uint64_t> RetrievalService::StartSession(const la::Vec& query_feature) {
  if (query_feature.size() != db_->features().cols()) {
    return Status::InvalidArgument(
        "retrieval service: query feature has " +
        std::to_string(query_feature.size()) + " dims, corpus has " +
        std::to_string(db_->features().cols()));
  }
  for (double v : query_feature) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "retrieval service: query feature contains a non-finite value");
    }
  }
  return RegisterSession(-1, query_feature);
}

uint64_t RetrievalService::RegisterSession(int query_id,
                                           la::Vec query_feature) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  // Fully initialize before registering: the session only becomes visible
  // to concurrent Acquire calls once its context is ready. Register() also
  // runs the lazy TTL sweep.
  auto session = std::make_shared<ServeSession>();
  session->id = id;
  session->ctx.db = db_;
  session->ctx.log_features = log_features_;
  session->ctx.query_id = query_id;
  session->ctx.candidate_depth =
      options_.candidate_depth > 0 ? options_.candidate_depth : 0;
  session->ctx.session_state = &session->warm_start;
  session->ctx.query_feature = std::move(query_feature);
  sessions_->Register(std::move(session));
  return id;
}

std::vector<int> RetrievalService::FirstRoundRanking(
    const la::Vec& query_feature) {
  const int depth = EffectiveDepth();
  // Full-corpus rankings (depth <= 0) are never cached: the cache capacity
  // counts entries, so corpus-length vectors would turn it into
  // corpus-size x 4096 bytes of memory. Bounded-depth serving configs (a
  // positive candidate_depth over an index) get the memoization.
  std::vector<int> ranking;
  if (depth <= 0) {
    ScopedIndexCounters index_counters(db_->index());
    ranking = db_->TopK(query_feature, depth);
  } else {
    // The cached ranking still contains the query row itself: the TopK
    // result depends only on (feature, depth, index config), so sessions
    // for different images with identical features can share one entry;
    // the caller-specific self-exclusion happens after the fetch.
    const uint64_t key = QueryCache::FingerprintQuery(query_feature, depth,
                                                     config_fingerprint_);
    const bool hit = cache_.Lookup(key, &ranking);
    if (!hit) {
      const uint64_t epoch = cache_.epoch();
      ScopedIndexCounters index_counters(db_->index());
      ranking = db_->TopK(query_feature, depth);
      cache_.Insert(key, ranking, epoch);
    }
    if (obs::RequestTrace* trace = obs::CurrentTrace(); trace != nullptr) {
      trace->AddCounter("query_cache_hit", hit ? 1 : 0);
    }
  }
  return ranking;
}

void RetrievalService::EnsureFirstRoundLocked(ServeSession& session) {
  if (session.has_ranking) return;
  std::vector<int> ranking = FirstRoundRanking(session.ctx.query_feature);
  ranking.erase(
      std::remove(ranking.begin(), ranking.end(), session.ctx.query_id),
      ranking.end());
  session.ranking = std::move(ranking);
  session.has_ranking = true;
}

Result<std::vector<ScoredCandidate>> RetrievalService::FirstRoundCandidates(
    const la::Vec& query_feature, int k, int exclude_id) {
  Stopwatch watch;
  obs::ScopedSpan admission_span("admission", Metrics().stage_admission);
  AdmissionSlot slot(this);
  if (!slot.admitted()) return ShedOverload();
  admission_span.End();
  if (query_feature.size() != db_->features().cols()) {
    return Status::InvalidArgument(
        "retrieval service: query feature has " +
        std::to_string(query_feature.size()) + " dims, corpus has " +
        std::to_string(db_->features().cols()));
  }
  for (double v : query_feature) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "retrieval service: query feature contains a non-finite value");
    }
  }
  std::vector<int> ranking;
  {
    obs::ScopedSpan scan_span("index_scan", Metrics().stage_index_scan);
    ranking = FirstRoundRanking(query_feature);
  }
  if (exclude_id >= 0) {
    ranking.erase(std::remove(ranking.begin(), ranking.end(), exclude_id),
                  ranking.end());
  }
  const int want = k > 0 ? k : options_.default_k;
  const size_t n =
      std::min(ranking.size(), static_cast<size_t>(want));
  std::vector<ScoredCandidate> out(n);
  // Distances are recomputed exactly over the truncated prefix (n rows, not
  // the whole ranking): TopK already ordered by exact distance, the router
  // just needs the values to merge shard lists on.
  const la::Matrix& features = db_->features();
  for (size_t i = 0; i < n; ++i) {
    out[i].id = ranking[i];
    out[i].distance = std::sqrt(la::SquaredDistanceN(
        query_feature.data(), features.RowPtr(static_cast<size_t>(ranking[i])),
        features.cols()));
  }
  candidate_queries_.fetch_add(1, std::memory_order_relaxed);
  Metrics().queries->Increment();
  latency_.Record(watch.ElapsedSeconds() * 1e6);
  return out;
}

Result<std::vector<int>> RetrievalService::TopKOfRanking(
    const ServeSession& session, int k) const {
  const int want = k > 0 ? k : options_.default_k;
  const size_t n = std::min(session.ranking.size(),
                            static_cast<size_t>(want));
  return std::vector<int>(session.ranking.begin(),
                          session.ranking.begin() + static_cast<long>(n));
}

RetrievalService::AdmissionSlot::AdmissionSlot(RetrievalService* service)
    : service_(service), admitted_(true) {
  const size_t cap = service_->options_.max_inflight;
  if (cap == 0) return;  // unbounded: every request is admitted
  // Optimistically claim a slot and back out when over the cap; the window
  // where two racers both see the cap reached just sheds both, which is the
  // safe direction for an overload valve.
  const uint64_t prior =
      service_->inflight_.fetch_add(1, std::memory_order_relaxed);
  if (prior >= cap) {
    service_->inflight_.fetch_sub(1, std::memory_order_relaxed);
    admitted_ = false;
  }
}

RetrievalService::AdmissionSlot::~AdmissionSlot() {
  if (admitted_ && service_->options_.max_inflight > 0) {
    service_->inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Status RetrievalService::ShedOverload() {
  shed_overload_.fetch_add(1, std::memory_order_relaxed);
  Metrics().shed_overload->Increment();
  // The hint is a rough p50 of recent requests: by then a slot has likely
  // freed up. Clients without better information back off around it.
  const double p50_us = latency_.Summarize().p50_us;
  const int retry_ms =
      std::max(1, static_cast<int>(p50_us / 1000.0));
  return Status::Unavailable(
      "retrieval service: overloaded (" +
      std::to_string(options_.max_inflight) +
      " requests in flight); retry after ~" + std::to_string(retry_ms) +
      "ms");
}

void RetrievalService::RecordDeadlineShed() {
  shed_deadline_.fetch_add(1, std::memory_order_relaxed);
  Metrics().shed_deadline->Increment();
}

Result<std::vector<int>> RetrievalService::Query(uint64_t session_id, int k) {
  Stopwatch watch;
  obs::ScopedSpan admission_span("admission", Metrics().stage_admission);
  AdmissionSlot slot(this);
  if (!slot.admitted()) return ShedOverload();
  admission_span.End();
  obs::ScopedSpan queue_span("queue_wait", Metrics().stage_queue_wait);
  std::shared_ptr<ServeSession> session = sessions_->Acquire(session_id);
  if (session == nullptr) {
    return Status::NotFound("retrieval service: unknown session");
  }
  util::MutexLock lock(session->mu);
  queue_span.End();
  if (session->ended) {
    return Status::NotFound("retrieval service: session already ended");
  }
  if (!session->has_ranking) {
    obs::ScopedSpan scan_span("index_scan", Metrics().stage_index_scan);
    EnsureFirstRoundLocked(*session);
  }
  Result<std::vector<int>> out = TopKOfRanking(*session, k);
  queries_.fetch_add(1, std::memory_order_relaxed);
  Metrics().queries->Increment();
  latency_.Record(watch.ElapsedSeconds() * 1e6);
  return out;
}

Result<std::vector<int>> RetrievalService::Feedback(
    uint64_t session_id, const std::vector<logdb::LogEntry>& round, int k,
    uint32_t seq) {
  Stopwatch watch;
  obs::ScopedSpan admission_span("admission", Metrics().stage_admission);
  AdmissionSlot slot(this);
  if (!slot.admitted()) return ShedOverload();
  admission_span.End();
  for (const logdb::LogEntry& e : round) {
    if (e.image_id < 0 || e.image_id >= db_->num_images()) {
      return Status::InvalidArgument(
          "retrieval service: judged image id out of range");
    }
    if (e.judgment != 1 && e.judgment != -1) {
      return Status::InvalidArgument(
          "retrieval service: judgment must be +-1");
    }
  }
  obs::ScopedSpan queue_span("queue_wait", Metrics().stage_queue_wait);
  std::shared_ptr<ServeSession> session = sessions_->Acquire(session_id);
  if (session == nullptr) {
    return Status::NotFound("retrieval service: unknown session");
  }
  util::MutexLock lock(session->mu);
  queue_span.End();
  if (session->ended) {
    return Status::NotFound("retrieval service: session already ended");
  }
  if (seq != 0 && session->last_feedback_seq != 0) {
    if (seq == session->last_feedback_seq) {
      // A retry of the round already applied (the reply got lost, not the
      // request): answer from the cache, apply nothing a second time.
      feedback_replays_.fetch_add(1, std::memory_order_relaxed);
      Metrics().feedback_replays->Increment();
      return session->last_feedback_response;
    }
    if (seq < session->last_feedback_seq) {
      return Status::FailedPrecondition(
          "retrieval service: stale feedback seq " + std::to_string(seq) +
          " (already applied up to " +
          std::to_string(session->last_feedback_seq) + ")");
    }
  }
  // Covers the (first-round) candidate scan and everything Rank touches —
  // the index work EXPLAIN attributes to this feedback round.
  ScopedIndexCounters index_counters(db_->index());
  if (!session->prepared) {
    // One candidate scan narrows every subsequent round's scoring loops,
    // exactly like RunFeedbackSession's single Prepare() call. A Prepare
    // failure is typed, not fatal: the session's inputs were validated at
    // StartSession, but the invariant must hold even for future callers.
    CBIR_RETURN_NOT_OK(session->ctx.Prepare());
    session->prepared = true;
  }

  std::unordered_set<int> seen(session->ctx.labeled_ids.begin(),
                               session->ctx.labeled_ids.end());
  seen.insert(session->ctx.query_id);
  logdb::LogSession record;
  record.query_image_id = session->ctx.query_id;
  for (const logdb::LogEntry& e : round) {
    if (!seen.insert(e.image_id).second) continue;  // duplicate or query
    session->ctx.labeled_ids.push_back(e.image_id);
    session->ctx.labels.push_back(static_cast<double>(e.judgment));
    record.entries.push_back(e);
  }

  {
    obs::ScopedSpan solve_span("solve", Metrics().stage_solve);
    CBIR_ASSIGN_OR_RETURN(session->ranking, scheme_->Rank(session->ctx));
  }
  // Recorded only after the round actually ranked: a failed round must not
  // end up in the persisted feedback log.
  if (!record.entries.empty()) {
    session->pending_log.push_back(std::move(record));
  }
  // Settle this session's kernel-cache memory against the service-wide
  // counter (the round may have grown the caches' slabs or, on the first
  // round, created them).
  const size_t kernel_bytes = session->warm_start.AllocatedKernelBytes();
  session_kernel_bytes_.fetch_add(
      static_cast<int64_t>(kernel_bytes) -
          static_cast<int64_t>(session->accounted_kernel_bytes),
      std::memory_order_relaxed);
  session->accounted_kernel_bytes = kernel_bytes;
  session->has_ranking = true;
  ++session->rounds;
  Result<std::vector<int>> out = TopKOfRanking(*session, k);
  if (seq != 0 && out.ok()) {
    session->last_feedback_seq = seq;
    session->last_feedback_response = out.value();
  }
  feedbacks_.fetch_add(1, std::memory_order_relaxed);
  Metrics().feedbacks->Increment();
  latency_.Record(watch.ElapsedSeconds() * 1e6);
  return out;
}

Status RetrievalService::EndSession(uint64_t session_id) {
  std::shared_ptr<ServeSession> session = sessions_->Remove(session_id);
  if (session == nullptr) {
    return Status::NotFound("retrieval service: unknown session");
  }
  util::MutexLock lock(session->mu);
  session->ended = true;
  FlushSessionLocked(*session);
  return Status::OK();
}

size_t RetrievalService::EvictExpiredSessions() {
  return sessions_->EvictExpired();
}

void RetrievalService::FlushSessionLocked(ServeSession& session) {
  // The PR 3 invariant, now machine-checked: flushes (end, TTL/capacity
  // eviction) run under the victim's session lock but never under the
  // manager lock, so a slow log append cannot stall Start/Acquire traffic
  // for every other session.
  util::AssertRankNotHeld(util::LockRank::kSessionManager,
                          "flushing a session to the log store");
  if (log_store_ != nullptr) {
    for (logdb::LogSession& record : session.pending_log) {
      log_store_->Append(std::move(record));
      log_sessions_appended_.fetch_add(1, std::memory_order_relaxed);
      Metrics().log_sessions_appended->Increment();
    }
  }
  session.pending_log.clear();
  // The session is ended (or evicted): its warm-start duals and kernel-cache
  // slabs can never be reused, so release them now — eviction must actually
  // bound memory — and refund the accounted bytes.
  session.warm_start.Clear();
  if (session.accounted_kernel_bytes != 0) {
    session_kernel_bytes_.fetch_sub(
        static_cast<int64_t>(session.accounted_kernel_bytes),
        std::memory_order_relaxed);
    session.accounted_kernel_bytes = 0;
  }
}

void RetrievalService::InvalidateCache() { cache_.Invalidate(); }

ServiceStats RetrievalService::stats() const {
  ServiceStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.feedbacks = feedbacks_.load(std::memory_order_relaxed);
  s.candidate_queries = candidate_queries_.load(std::memory_order_relaxed);
  s.requests = s.queries + s.feedbacks + s.candidate_queries;

  const SessionManagerStats sm = sessions_->stats();
  s.sessions_started = sm.started;
  s.sessions_ended = sm.ended;
  s.sessions_evicted_capacity = sm.evicted_capacity;
  s.sessions_evicted_ttl = sm.evicted_ttl;
  s.active_sessions = sm.active;

  const QueryCacheStats qc = cache_.stats();
  s.cache_hits = qc.hits;
  s.cache_misses = qc.misses;
  s.cache_evictions = qc.evictions;
  s.cache_invalidations = qc.invalidations;
  s.cache_hit_rate = qc.hit_rate();

  s.log_sessions_appended =
      log_sessions_appended_.load(std::memory_order_relaxed);
  s.requests_shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.requests_shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.feedback_replays = feedback_replays_.load(std::memory_order_relaxed);
  s.session_kernel_cache_bytes = static_cast<uint64_t>(std::max<int64_t>(
      session_kernel_bytes_.load(std::memory_order_relaxed), 0));
  s.elapsed_seconds = uptime_.ElapsedSeconds();
  s.qps = s.elapsed_seconds > 0.0
              ? static_cast<double>(s.requests) / s.elapsed_seconds
              : 0.0;
  s.latency = latency_.Summarize();
  return s;
}

void RetrievalService::ResetStats() {
  queries_.store(0, std::memory_order_relaxed);
  feedbacks_.store(0, std::memory_order_relaxed);
  latency_.Reset();
  uptime_.Restart();
}

}  // namespace cbir::serve
