#include "serve/service_stats.h"

#include <sstream>

#include "util/string_util.h"

namespace cbir::serve {

std::string FormatServiceStats(const ServiceStats& stats) {
  std::ostringstream os;
  os << "serve stats: uptime=" << FormatDouble(stats.elapsed_seconds, 1)
     << "s qps=" << FormatDouble(stats.qps, 1)
     << " requests=" << stats.requests << " (queries=" << stats.queries
     << " feedbacks=" << stats.feedbacks
     << " candidates=" << stats.candidate_queries << ")"
     << " sessions=" << stats.sessions_started << " started/"
     << stats.sessions_ended << " ended/"
     << stats.sessions_evicted_capacity + stats.sessions_evicted_ttl
     << " evicted/" << stats.active_sessions << " active"
     << " cache_hit_rate=" << FormatDouble(stats.cache_hit_rate, 3)
     << " session_kernel_kb="
     << stats.session_kernel_cache_bytes / 1024
     << " log_appends=" << stats.log_sessions_appended
     << " shed{overload=" << stats.requests_shed_overload
     << " deadline=" << stats.requests_shed_deadline
     << "} feedback_replays=" << stats.feedback_replays
     << " latency_us{p50=" << FormatDouble(stats.latency.p50_us, 0)
     << " p95=" << FormatDouble(stats.latency.p95_us, 0)
     << " p99=" << FormatDouble(stats.latency.p99_us, 0)
     << " mean=" << FormatDouble(stats.latency.mean_us, 0);
  if (stats.latency.saturated > 0) {
    os << " saturated=" << stats.latency.saturated;
  }
  os << "}";
  return os.str();
}

}  // namespace cbir::serve
