#include "serve/service_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace cbir::serve {

int LatencyHistogram::BucketIndex(uint64_t us) {
  if (us < kSub) return static_cast<int>(us);
  const int octave = 63 - std::countl_zero(us);
  if (octave >= kMaxOctave) return kBuckets - 1;
  const int sub =
      static_cast<int>((us >> (octave - kSubBits)) & (kSub - 1));
  return kSub + (octave - kSubBits) * kSub + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < kSub) return static_cast<uint64_t>(bucket) + 1;
  const int octave = kSubBits + (bucket - kSub) / kSub;
  const int sub = (bucket - kSub) % kSub;
  const uint64_t base = uint64_t{1} << octave;
  const uint64_t step = uint64_t{1} << (octave - kSubBits);
  return base + static_cast<uint64_t>(sub + 1) * step;
}

void LatencyHistogram::Record(double micros) {
  const uint64_t us =
      micros <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(micros));
  buckets_[static_cast<size_t>(BucketIndex(us))].fetch_add(
      1, std::memory_order_relaxed);
  total_us_.fetch_add(us, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

LatencySummary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  int top = -1;
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(b)];
    if (counts[static_cast<size_t>(b)] > 0) top = b;
  }
  LatencySummary s;
  s.count = total;
  if (total == 0) return s;
  s.mean_us = static_cast<double>(total_us_.load(std::memory_order_relaxed)) /
              static_cast<double>(std::max<uint64_t>(
                  count_.load(std::memory_order_relaxed), 1));
  s.max_us = static_cast<double>(BucketUpperBound(top));

  const auto percentile = [&](double q) {
    const uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts[static_cast<size_t>(b)];
      if (cum >= target) return static_cast<double>(BucketUpperBound(b));
    }
    return static_cast<double>(BucketUpperBound(kBuckets - 1));
  };
  s.p50_us = percentile(0.50);
  s.p95_us = percentile(0.95);
  s.p99_us = percentile(0.99);
  return s;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_us_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::string FormatServiceStats(const ServiceStats& stats) {
  std::ostringstream os;
  os << "serve stats: qps=" << FormatDouble(stats.qps, 1)
     << " requests=" << stats.requests << " (queries=" << stats.queries
     << " feedbacks=" << stats.feedbacks << ")"
     << " sessions=" << stats.sessions_started << " started/"
     << stats.sessions_ended << " ended/"
     << stats.sessions_evicted_capacity + stats.sessions_evicted_ttl
     << " evicted/" << stats.active_sessions << " active"
     << " cache_hit_rate=" << FormatDouble(stats.cache_hit_rate, 3)
     << " session_kernel_kb="
     << stats.session_kernel_cache_bytes / 1024
     << " log_appends=" << stats.log_sessions_appended
     << " shed{overload=" << stats.requests_shed_overload
     << " deadline=" << stats.requests_shed_deadline
     << "} feedback_replays=" << stats.feedback_replays
     << " latency_us{p50=" << FormatDouble(stats.latency.p50_us, 0)
     << " p95=" << FormatDouble(stats.latency.p95_us, 0)
     << " p99=" << FormatDouble(stats.latency.p99_us, 0)
     << " mean=" << FormatDouble(stats.latency.mean_us, 0) << "}";
  return os.str();
}

}  // namespace cbir::serve
