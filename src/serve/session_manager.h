#ifndef CBIR_SERVE_SESSION_MANAGER_H_
#define CBIR_SERVE_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/feedback_scheme.h"
#include "logdb/log_session.h"
#include "util/sync.h"

namespace cbir::serve {

/// \brief Mutable per-session serving state.
///
/// All fields after `mu` are guarded by `mu`; the RetrievalService (and the
/// SessionManager's eviction path) lock it for the duration of one request.
/// Sessions are handed out as shared_ptr so an eviction never pulls state
/// out from under a request already in flight: the evicted session is marked
/// `ended` and later requests see NotFound.
struct ServeSession {
  uint64_t id = 0;
  util::Mutex mu{util::LockRank::kSession, "serve_session"};

  /// Set by EndSession or eviction; requests on an ended session fail.
  bool ended CBIR_GUARDED_BY(mu) = false;
  /// True once ctx.Prepare() ran (deferred to the first Feedback so
  /// query-only sessions never pay the candidate scan).
  bool prepared CBIR_GUARDED_BY(mu) = false;
  /// Completed feedback rounds.
  int rounds CBIR_GUARDED_BY(mu) = 0;
  /// Per-round judgments not yet flushed to the log store.
  std::vector<logdb::LogSession> pending_log CBIR_GUARDED_BY(mu);

  /// The same context + warm-start state RunFeedbackSession threads through
  /// a single-user session, owned here so rankings match it exactly. The
  /// state carries dual variables *and* per-modality kernel caches across
  /// rounds; both are released when the session ends or is evicted.
  core::FeedbackContext ctx CBIR_GUARDED_BY(mu);
  core::SessionState warm_start CBIR_GUARDED_BY(mu);
  /// Bytes of warm_start kernel-cache memory currently charged to the
  /// service's aggregate counter (updated after every feedback round,
  /// zeroed on flush).
  size_t accounted_kernel_bytes CBIR_GUARDED_BY(mu) = 0;

  /// Current ranking (query id excluded); round 0 = first-round retrieval.
  std::vector<int> ranking CBIR_GUARDED_BY(mu);
  bool has_ranking CBIR_GUARDED_BY(mu) = false;

  /// Idempotency cache for retried Feedback: the highest sequence number
  /// applied so far (0 = none seen) and the top-k answered for it. A retry
  /// carrying the same seq gets this response back without re-applying the
  /// round — at-most-once application under client retries.
  uint32_t last_feedback_seq CBIR_GUARDED_BY(mu) = 0;
  std::vector<int> last_feedback_response CBIR_GUARDED_BY(mu);
};

/// \brief Session capacity policy.
struct SessionManagerOptions {
  /// Hard cap on live sessions; starting one beyond it evicts the least
  /// recently used session first. Bounds serving memory no matter how many
  /// users arrive.
  size_t max_sessions = 4096;
  /// Idle time-to-live in seconds (0 = no TTL): sessions untouched longer
  /// than this are evicted lazily on the next StartSession / EvictExpired.
  double ttl_seconds = 0.0;
};

/// \brief Lifetime counters of a SessionManager.
struct SessionManagerStats {
  uint64_t started = 0;
  uint64_t ended = 0;  ///< explicit Remove() (EndSession)
  uint64_t evicted_capacity = 0;
  uint64_t evicted_ttl = 0;
  uint64_t active = 0;
};

/// \brief Owns the live ServeSessions behind one mutex-guarded id map with
/// LRU + TTL eviction.
///
/// Locking protocol: the manager mutex only ever guards the map / LRU list
/// bookkeeping — it is never held while a session's own mutex is taken, so
/// a slow request (an SVM retrain) on one session cannot block Start/Acquire
/// traffic for every other session. Eviction runs the `on_evict` callback
/// with the victim's mutex held (after marking it ended), which is where the
/// service flushes the victim's recorded rounds to the log store.
class SessionManager {
 public:
  /// Called for every evicted session with its mutex held and `ended` set.
  using EvictCallback = std::function<void(ServeSession&)>;

  SessionManager(const SessionManagerOptions& options, EvictCallback on_evict);

  /// Registers a fully initialized session under its id (ids come from the
  /// service's monotone counter, so collisions are a caller bug). Taking the
  /// session ready-made keeps the init outside any lock: a session is never
  /// visible to Acquire before its context is filled in. Runs TTL and
  /// capacity eviction first.
  void Register(std::shared_ptr<ServeSession> session);

  /// The session for `id`, refreshed as most recently used — or null when
  /// the id is unknown (never issued, ended, or evicted).
  std::shared_ptr<ServeSession> Acquire(uint64_t id);

  /// Unregisters and returns the session (null when unknown). The caller
  /// owns the final flush; counted as an explicit end, not an eviction.
  std::shared_ptr<ServeSession> Remove(uint64_t id);

  /// Evicts every session idle past the TTL; returns how many. No-op when
  /// ttl_seconds is 0.
  size_t EvictExpired();

  SessionManagerStats stats() const;
  size_t active() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    std::shared_ptr<ServeSession> session;
    std::list<uint64_t>::iterator lru_it;
    Clock::time_point last_touch;
  };

  /// Pops expired (and, when `need_room` and at capacity, LRU) entries under
  /// the manager lock, collecting victims; the caller finishes them outside.
  std::vector<std::shared_ptr<ServeSession>> CollectVictimsLocked(
      bool need_room) CBIR_REQUIRES(mu_);
  /// Marks victims ended and runs the callback (victim mutex held). Must be
  /// called with the manager lock released: the session rank sits above the
  /// manager rank, but more importantly a slow eviction flush must never
  /// stall Start/Acquire traffic (the PR 3 invariant).
  void FinishVictims(const std::vector<std::shared_ptr<ServeSession>>& victims)
      CBIR_EXCLUDES(mu_);

  SessionManagerOptions options_;
  EvictCallback on_evict_;

  mutable util::Mutex mu_{util::LockRank::kSessionManager, "session_manager"};
  std::unordered_map<uint64_t, Entry> entries_ CBIR_GUARDED_BY(mu_);
  std::list<uint64_t> lru_ CBIR_GUARDED_BY(mu_);  ///< front = most recently used
  uint64_t started_ CBIR_GUARDED_BY(mu_) = 0;
  uint64_t ended_ CBIR_GUARDED_BY(mu_) = 0;
  uint64_t evicted_capacity_ CBIR_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ttl_ CBIR_GUARDED_BY(mu_) = 0;
};

}  // namespace cbir::serve

#endif  // CBIR_SERVE_SESSION_MANAGER_H_
