#ifndef CBIR_SERVE_RETRIEVAL_SERVICE_H_
#define CBIR_SERVE_RETRIEVAL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme_factory.h"
#include "logdb/log_store.h"
#include "retrieval/image_database.h"
#include "serve/query_cache.h"
#include "serve/service_stats.h"
#include "serve/session_manager.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace cbir::serve {

/// \brief Configuration of one RetrievalService.
struct ServiceOptions {
  /// Feedback scheme ranking every session's rounds (a core::MakeScheme
  /// name: "Euclidean", "RF-SVM", "LRF-2SVMs", "LRF-CSVM").
  std::string scheme = "LRF-CSVM";
  /// LRF-CSVM knobs (ignored by the other schemes).
  core::LrfCsvmOptions csvm;
  /// Retrieval depth of the per-session ranking: how deep the first-round
  /// retrieval and every re-ranking go when the database carries an
  /// approximate index (the session can serve results and accept judgments
  /// down to this rank). 0 = full corpus ranking — exact, but every round
  /// scans everything and first-round results are not cached (corpus-length
  /// rankings would blow the entry-counted cache); pick max-results +
  /// expected rounds * judgments like FeedbackLoopOptions::candidate_depth
  /// does.
  int candidate_depth = 0;
  /// Results returned by Query/Feedback when the caller passes k = 0.
  int default_k = 20;
  /// Admission control: hard cap on concurrently executing Query/Feedback
  /// requests (0 = unbounded, the pre-fault-tolerance behavior). A request
  /// arriving with the cap already reached is rejected immediately with
  /// kUnavailable (and a retry-after hint in the message) instead of
  /// queueing — under overload the service sheds load at the door rather
  /// than growing an unbounded latency queue.
  size_t max_inflight = 0;
  /// First session id this service issues (ids count up from here, must be
  /// >= 1). A sharded deployment gives each shard a disjoint id range so a
  /// router — or an operator reading two shards' logs — can tell sessions
  /// apart without a mapping table.
  uint64_t first_session_id = 1;
  SessionManagerOptions sessions;
  QueryCacheOptions cache;
};

/// \brief One scored first-round candidate: a corpus image id plus its
/// exact feature distance to the query. Distances make per-shard candidate
/// lists mergeable by a router.
struct ScoredCandidate {
  int id = -1;
  double distance = 0.0;

  bool operator==(const ScoredCandidate& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// \brief Thread-safe many-user serving facade over one shared
/// ImageDatabase (+ optional retrieval index), feedback scheme, and log
/// store — the deployment loop the paper assumes: many users run feedback
/// sessions concurrently, and every completed session lands in the log
/// database future queries learn from.
///
/// Concurrency model: the database, log-feature matrix, and scheme are
/// immutable and shared by all sessions; per-session mutable state lives in
/// a ServeSession behind its own mutex (SessionManager, TTL + LRU bounded);
/// first-round rankings are memoized in a sharded QueryCache. Requests for
/// different sessions never contend beyond map lookups, so throughput
/// scales with cores until the corpus scans themselves saturate memory
/// bandwidth.
///
/// A single-threaded session reproduces core::RunFeedbackSession exactly:
/// same first-round ranking, same scan narrowing, same warm-started duals
/// (verified by tests/serve/retrieval_service_test.cc).
class RetrievalService {
 public:
  /// `db` (and `log_features` when given) must outlive the service and stay
  /// unmodified while it serves — swap in a new service after a rebuild.
  /// `log_store` may be null (completed sessions are then dropped instead
  /// of appended); it may be shared with other writers since LogStore
  /// synchronizes internally.
  static Result<std::unique_ptr<RetrievalService>> Create(
      const retrieval::ImageDatabase* db, const la::Matrix* log_features,
      logdb::LogStore* log_store, const core::SchemeOptions& scheme_options,
      const ServiceOptions& options);

  /// Opens a feedback session for the given corpus query image and returns
  /// its session id. May evict the least-recently-used session at capacity.
  Result<uint64_t> StartSession(int query_id);

  /// Opens a feedback session for an external query feature vector — the
  /// standard CBIR query-by-example setting where the query image is not
  /// part of the corpus (remote callers hand us raw features through
  /// api::QuerySpec). The vector must match the corpus feature
  /// dimensionality and be finite. Unlike an in-corpus session no row is
  /// excluded from the ranking: a corpus image with the identical feature
  /// ranks first instead of being dropped, so such a session reproduces the
  /// matching in-corpus session's ranking with that one image re-inserted.
  Result<uint64_t> StartSession(const la::Vec& query_feature);

  /// Top-k of the session's current ranking (k = 0 uses default_k; k is
  /// clamped to the ranking depth). The first call of a session computes —
  /// or serves from the query cache — the first-round retrieval; after
  /// Feedback() it returns the re-ranked results.
  Result<std::vector<int>> Query(uint64_t session_id, int k = 0);

  /// Applies one round of user judgments (+1 relevant / -1 irrelevant,
  /// already-judged and query-self entries are ignored), re-ranks with the
  /// scheme, records the round for the log store, and returns the new
  /// top-k.
  ///
  /// `seq` (nonzero) makes the call idempotent per session: a retry carrying
  /// the seq already applied is answered from the session's cached response
  /// without re-applying the round, so a client that resends after a lost
  /// reply never double-counts judgments. Seqs must be issued in increasing
  /// order by a serial caller; one older than the last applied is rejected
  /// as FailedPrecondition. 0 (the default) bypasses the dedup entirely.
  Result<std::vector<int>> Feedback(uint64_t session_id,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k = 0, uint32_t seq = 0);

  /// Sessionless first-round retrieval: the top-k candidates nearest
  /// `query_feature` with their exact distances, sorted by (distance, id)
  /// ascending and served through the same index/cache path as a session's
  /// first round (k = 0 uses default_k; the ranking depth still caps the
  /// answer). `exclude_id` >= 0 drops that corpus row — the in-corpus
  /// query's self-exclusion. This is the unit a shard router scatter-gathers
  /// and merges by distance.
  Result<std::vector<ScoredCandidate>> FirstRoundCandidates(
      const la::Vec& query_feature, int k, int exclude_id = -1);

  /// Closes the session and appends its recorded rounds to the log store —
  /// the paper's "deployment accumulates the feedback log" loop. Unknown
  /// (ended, evicted, never-issued) ids return NotFound.
  Status EndSession(uint64_t session_id);

  /// Sweeps TTL-expired sessions now (they are also swept lazily on every
  /// StartSession). Evicted sessions flush to the log store like ended
  /// ones. Returns how many were evicted.
  size_t EvictExpiredSessions();

  /// Drops every cached first-round ranking (epoch bump); call after the
  /// serving data (index, log matrix) has been swapped.
  void InvalidateCache();

  /// Counts one request the transport shed for an expired deadline (the
  /// dispatcher decides; the service only owns the counter).
  void RecordDeadlineShed();

  ServiceStats stats() const;
  void ResetStats();

  const ServiceOptions& options() const { return options_; }
  const retrieval::ImageDatabase& db() const { return *db_; }

 private:
  RetrievalService(const retrieval::ImageDatabase* db,
                   const la::Matrix* log_features, logdb::LogStore* log_store,
                   std::shared_ptr<const core::FeedbackScheme> scheme,
                   const ServiceOptions& options);

  /// Effective TopK depth of first-round retrievals (candidate_depth, or -1
  /// = full ranking when unset or the database has no index).
  int EffectiveDepth() const;

  /// Builds + registers a session (query_id = -1 for an external query whose
  /// feature is passed in `query_feature`); shared by both StartSession
  /// overloads.
  uint64_t RegisterSession(int query_id, la::Vec query_feature);

  /// Computes (or cache-loads) the session's first-round ranking. Caller
  /// holds the session mutex.
  void EnsureFirstRoundLocked(ServeSession& session)
      CBIR_REQUIRES(session.mu);

  /// The shared first-round retrieval: TopK at the effective depth, through
  /// the query cache when the depth is bounded. No session state touched —
  /// EnsureFirstRoundLocked and FirstRoundCandidates both build on it (the
  /// self-exclusion, which differs between them, happens in the callers).
  std::vector<int> FirstRoundRanking(const la::Vec& query_feature);

  /// Finishes an ended/evicted session under its mutex: moves its recorded
  /// rounds into the log store and releases its warm-start state (duals +
  /// kernel-cache slabs), settling the session-memory accounting.
  void FlushSessionLocked(ServeSession& session) CBIR_REQUIRES(session.mu);

  /// Looks up + locks the session and finishes shared accounting; the
  /// callback runs under the session mutex.
  Result<std::vector<int>> TopKOfRanking(const ServeSession& session,
                                         int k) const
      CBIR_REQUIRES(session.mu);

  /// RAII admission slot: construction tries to claim one of max_inflight
  /// slots; admitted() says whether it succeeded, destruction releases it.
  class AdmissionSlot {
   public:
    explicit AdmissionSlot(RetrievalService* service);
    ~AdmissionSlot();
    AdmissionSlot(const AdmissionSlot&) = delete;
    AdmissionSlot& operator=(const AdmissionSlot&) = delete;
    bool admitted() const { return admitted_; }

   private:
    RetrievalService* service_;
    bool admitted_;
  };

  /// The kUnavailable status an over-capacity request is shed with.
  Status ShedOverload();

  const retrieval::ImageDatabase* db_;
  const la::Matrix* log_features_;
  logdb::LogStore* log_store_;
  std::shared_ptr<const core::FeedbackScheme> scheme_;
  ServiceOptions options_;

  std::unique_ptr<SessionManager> sessions_;
  QueryCache cache_;
  uint64_t config_fingerprint_ = 0;

  LatencyHistogram latency_;
  Stopwatch uptime_;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> candidate_queries_{0};
  std::atomic<uint64_t> feedbacks_{0};
  std::atomic<uint64_t> log_sessions_appended_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> shed_overload_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> feedback_replays_{0};
  /// Sum over live sessions of their accounted_kernel_bytes (cross-round
  /// kernel-cache memory); updated after each feedback round and settled to
  /// zero per session on end/eviction.
  std::atomic<int64_t> session_kernel_bytes_{0};
};

}  // namespace cbir::serve

#endif  // CBIR_SERVE_RETRIEVAL_SERVICE_H_
