#include "retrieval/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace cbir::retrieval {

std::vector<int> PaperScopes() {
  return {20, 30, 40, 50, 60, 70, 80, 90, 100};
}

double PrecisionAtN(const std::vector<int>& ranked,
                    const std::vector<int>& categories, int query_category,
                    int n) {
  CBIR_CHECK_GT(n, 0);
  CBIR_CHECK_GE(ranked.size(), static_cast<size_t>(n));
  int relevant = 0;
  for (int i = 0; i < n; ++i) {
    const int id = ranked[static_cast<size_t>(i)];
    if (categories[static_cast<size_t>(id)] == query_category) ++relevant;
  }
  return static_cast<double>(relevant) / n;
}

std::vector<double> PrecisionAtScopes(const std::vector<int>& ranked,
                                      const std::vector<int>& categories,
                                      int query_category,
                                      const std::vector<int>& scopes) {
  std::vector<double> out;
  out.reserve(scopes.size());
  for (int n : scopes) {
    out.push_back(PrecisionAtN(ranked, categories, query_category, n));
  }
  return out;
}

PrecisionAccumulator::PrecisionAccumulator(std::vector<int> scopes)
    : scopes_(std::move(scopes)), sums_(scopes_.size(), 0.0) {
  CBIR_CHECK(!scopes_.empty());
}

void PrecisionAccumulator::Add(const std::vector<double>& precision) {
  CBIR_CHECK_EQ(precision.size(), sums_.size());
  for (size_t i = 0; i < sums_.size(); ++i) sums_[i] += precision[i];
  ++count_;
}

std::vector<double> PrecisionAccumulator::MeanPrecision() const {
  CBIR_CHECK_GT(count_, 0);
  std::vector<double> out(sums_.size());
  for (size_t i = 0; i < sums_.size(); ++i) {
    out[i] = sums_[i] / count_;
  }
  return out;
}

double PrecisionAccumulator::MeanAveragePrecision() const {
  const std::vector<double> mean = MeanPrecision();
  double sum = 0.0;
  for (double v : mean) sum += v;
  return sum / static_cast<double>(mean.size());
}

double RelativeImprovement(double a, double b) {
  if (b == 0.0) return 0.0;
  return (a - b) / b;
}

double RecallAtK(const std::vector<int>& approx, const std::vector<int>& exact,
                 int k) {
  CBIR_CHECK_GT(k, 0);
  CBIR_CHECK_GE(exact.size(), static_cast<size_t>(k));
  const size_t kk = static_cast<size_t>(k);
  std::unordered_set<int> truth(exact.begin(), exact.begin() + kk);
  int hits = 0;
  const size_t depth = std::min(kk, approx.size());
  for (size_t i = 0; i < depth; ++i) {
    if (truth.count(approx[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / k;
}

}  // namespace cbir::retrieval
