#include "retrieval/image_database.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <utility>

#include "index/signature_index.h"
#include "retrieval/ranker.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cbir::retrieval {

ImageDatabase::ImageDatabase(const DatabaseOptions& options)
    : options_(options),
      corpus_(std::make_shared<imaging::SyntheticCorel>(options.corpus)),
      extractor_(options.feature) {}

ImageDatabase::ImageDatabase(const ImageDatabase& other)
    : options_(other.options_),
      corpus_(other.corpus_),
      extractor_(other.extractor_),
      normalizer_(other.normalizer_),
      categories_(other.categories_),
      features_(other.features_) {}  // index_ stays null: see the header

ImageDatabase& ImageDatabase::operator=(const ImageDatabase& other) {
  if (this == &other) return *this;
  options_ = other.options_;
  corpus_ = other.corpus_;
  extractor_ = other.extractor_;
  normalizer_ = other.normalizer_;
  categories_ = other.categories_;
  features_ = other.features_;
  index_.reset();  // would reference `other`'s (or our stale) storage
  return *this;
}

ImageDatabase ImageDatabase::Build(const DatabaseOptions& options) {
  ImageDatabase db(options);
  const int n = db.corpus_->num_images();
  db.categories_.resize(static_cast<size_t>(n));
  db.features_ = la::Matrix(static_cast<size_t>(n),
                            static_cast<size_t>(db.extractor_.dims()));

  ParallelFor(
      static_cast<size_t>(n),
      [&db](size_t i) {
        const int image_id = static_cast<int>(i);
        db.categories_[i] = db.corpus_->CategoryOf(image_id);
        const imaging::Image img = db.corpus_->GenerateById(image_id);
        db.features_.SetRow(i, db.extractor_.Extract(img));
      },
      options.num_threads);

  if (options.normalize) {
    db.normalizer_ = features::Normalizer::Fit(db.features_);
    db.normalizer_.ApplyAll(&db.features_);
  }
  return db;
}

ImageDatabase ImageDatabase::FromFeatures(la::Matrix features,
                                          std::vector<int> categories,
                                          int num_categories) {
  CBIR_CHECK_EQ(features.rows(), categories.size());
  CBIR_CHECK_GT(num_categories, 0);
  DatabaseOptions options;
  options.corpus.num_categories = num_categories;
  // Ceil-divide so corpus_->num_images() >= rows and RenderImage stays
  // callable for every injected row (its pixels are unrelated regardless).
  options.corpus.images_per_category = std::max<int>(
      1, (static_cast<int>(features.rows()) + num_categories - 1) /
             num_categories);
  options.normalize = false;
  ImageDatabase db(options);
  for (int c : categories) {
    CBIR_CHECK_GE(c, 0);
    CBIR_CHECK_LT(c, num_categories);
  }
  db.categories_ = std::move(categories);
  db.features_ = std::move(features);
  return db;
}

int ImageDatabase::category(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return categories_[static_cast<size_t>(image_id)];
}

la::Vec ImageDatabase::feature(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return features_.Row(static_cast<size_t>(image_id));
}

void ImageDatabase::BuildIndex(const IndexOptions& index_options) {
  index_ = MakeIndex(index_options);
  index_->Build(features_);
}

std::vector<int> ImageDatabase::TopK(const la::Vec& query, int k) const {
  if (index_ != nullptr) return index_->Query(query, k);
  return RankByEuclidean(features_, query, k);
}

Status ImageDatabase::SaveToFile(const std::string& path) const {
  std::ofstream ofs(path, std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "cbir_db v2\n";
  const auto& c = options_.corpus;
  ofs << c.num_categories << " " << c.images_per_category << " " << c.width
      << " " << c.height << " " << c.seed << " " << c.difficulty << " "
      << c.outlier_fraction << "\n";
  ofs << features_.rows() << " " << features_.cols() << "\n";
  ofs.precision(17);
  for (size_t r = 0; r < features_.rows(); ++r) {
    ofs << categories_[r];
    const double* p = features_.RowPtr(r);
    for (size_t col = 0; col < features_.cols(); ++col) ofs << " " << p[col];
    ofs << "\n";
  }
  ofs << (normalizer_.fitted() ? 1 : 0) << "\n";
  if (normalizer_.fitted()) normalizer_.Save(ofs);

  // v2 index section. The signature block is the expensive part of a build
  // (100k+ corpora pay ~0.4s re-encoding), so it is stored verbatim (hex
  // words); hyperplanes/offsets re-derive from (seed, data) on load.
  if (const auto* sig =
          dynamic_cast<const SignatureIndex*>(index_.get());
      sig != nullptr) {
    const auto& opt = sig->options();
    ofs << "index signature " << opt.bits << " " << opt.candidate_factor
        << " " << opt.seed << "\n";
    const std::vector<uint64_t>& words = sig->signatures();
    ofs << sig->num_rows() << " " << sig->words_per_row() << "\n" << std::hex;
    for (size_t i = 0; i < words.size(); ++i) {
      ofs << words[i] << ((i + 1) % 8 == 0 ? "\n" : " ");
    }
    if (!words.empty() && words.size() % 8 != 0) ofs << "\n";
    ofs << std::dec;
  } else if (index_ != nullptr) {
    ofs << "index " << index_->name() << "\n";
  } else {
    ofs << "index none\n";
  }
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ImageDatabase> ImageDatabase::LoadFromFile(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) return Status::IoError("cannot open for reading: " + path);
  std::string magic, version;
  if (!(ifs >> magic >> version) || magic != "cbir_db" ||
      (version != "v1" && version != "v2")) {
    return Status::InvalidArgument("image database: bad header in " + path);
  }
  DatabaseOptions options;
  auto& c = options.corpus;
  if (!(ifs >> c.num_categories >> c.images_per_category >> c.width >>
        c.height >> c.seed >> c.difficulty >> c.outlier_fraction)) {
    return Status::IoError("image database: truncated corpus options");
  }
  size_t rows = 0, cols = 0;
  if (!(ifs >> rows >> cols)) {
    return Status::IoError("image database: truncated shape");
  }

  ImageDatabase db(options);
  db.categories_.resize(rows);
  db.features_ = la::Matrix(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    if (!(ifs >> db.categories_[r])) {
      return Status::IoError("image database: truncated categories");
    }
    double* p = db.features_.RowPtr(r);
    for (size_t col = 0; col < cols; ++col) {
      if (!(ifs >> p[col])) {
        return Status::IoError("image database: truncated features");
      }
    }
  }
  int has_normalizer = 0;
  if (!(ifs >> has_normalizer)) {
    return Status::IoError("image database: truncated normalizer flag");
  }
  if (has_normalizer) {
    CBIR_ASSIGN_OR_RETURN(db.normalizer_, features::Normalizer::Load(ifs));
  }
  if (version == "v1") return db;  // pre-index files carry no index section

  std::string tag, mode;
  if (!(ifs >> tag >> mode) || tag != "index") {
    return Status::IoError("image database: truncated index section");
  }
  if (mode == "none") {
    // nothing attached
  } else if (mode == "exact") {
    IndexOptions exact;
    exact.mode = IndexMode::kExact;
    db.BuildIndex(exact);  // exhaustive scan: nothing to deserialize
  } else if (mode == "signature") {
    SignatureIndexOptions sig_options;
    if (!(ifs >> sig_options.bits >> sig_options.candidate_factor >>
          sig_options.seed)) {
      return Status::IoError("image database: truncated signature options");
    }
    size_t sig_rows = 0, sig_words = 0;
    if (!(ifs >> sig_rows >> sig_words)) {
      return Status::IoError("image database: truncated signature shape");
    }
    auto sig = std::make_unique<SignatureIndex>(sig_options);
    if (sig_rows != rows || sig_words != sig->words_per_row()) {
      return Status::InvalidArgument(
          "image database: signature block shape does not match corpus");
    }
    std::vector<uint64_t> words(sig_rows * sig_words);
    ifs >> std::hex;
    for (uint64_t& w : words) {
      if (!(ifs >> w)) {
        return Status::IoError("image database: truncated signature block");
      }
    }
    ifs >> std::dec;
    sig->RestoreSignatures(db.features_, std::move(words));
    db.index_ = std::move(sig);
  } else {
    return Status::InvalidArgument("image database: unknown index mode '" +
                                   mode + "'");
  }
  return db;
}

}  // namespace cbir::retrieval
