#include "retrieval/image_database.h"

#include <fstream>

#include "retrieval/ranker.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cbir::retrieval {

ImageDatabase::ImageDatabase(const DatabaseOptions& options)
    : options_(options),
      corpus_(std::make_shared<imaging::SyntheticCorel>(options.corpus)),
      extractor_(options.feature) {}

ImageDatabase::ImageDatabase(const ImageDatabase& other)
    : options_(other.options_),
      corpus_(other.corpus_),
      extractor_(other.extractor_),
      normalizer_(other.normalizer_),
      categories_(other.categories_),
      features_(other.features_) {}  // index_ stays null: see the header

ImageDatabase& ImageDatabase::operator=(const ImageDatabase& other) {
  if (this == &other) return *this;
  options_ = other.options_;
  corpus_ = other.corpus_;
  extractor_ = other.extractor_;
  normalizer_ = other.normalizer_;
  categories_ = other.categories_;
  features_ = other.features_;
  index_.reset();  // would reference `other`'s (or our stale) storage
  return *this;
}

ImageDatabase ImageDatabase::Build(const DatabaseOptions& options) {
  ImageDatabase db(options);
  const int n = db.corpus_->num_images();
  db.categories_.resize(static_cast<size_t>(n));
  db.features_ = la::Matrix(static_cast<size_t>(n),
                            static_cast<size_t>(db.extractor_.dims()));

  ParallelFor(
      static_cast<size_t>(n),
      [&db](size_t i) {
        const int image_id = static_cast<int>(i);
        db.categories_[i] = db.corpus_->CategoryOf(image_id);
        const imaging::Image img = db.corpus_->GenerateById(image_id);
        db.features_.SetRow(i, db.extractor_.Extract(img));
      },
      options.num_threads);

  if (options.normalize) {
    db.normalizer_ = features::Normalizer::Fit(db.features_);
    db.normalizer_.ApplyAll(&db.features_);
  }
  return db;
}

int ImageDatabase::category(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return categories_[static_cast<size_t>(image_id)];
}

la::Vec ImageDatabase::feature(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return features_.Row(static_cast<size_t>(image_id));
}

void ImageDatabase::BuildIndex(const IndexOptions& index_options) {
  index_ = MakeIndex(index_options);
  index_->Build(features_);
}

std::vector<int> ImageDatabase::TopK(const la::Vec& query, int k) const {
  if (index_ != nullptr) return index_->Query(query, k);
  return RankByEuclidean(features_, query, k);
}

Status ImageDatabase::SaveToFile(const std::string& path) const {
  std::ofstream ofs(path, std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "cbir_db v1\n";
  const auto& c = options_.corpus;
  ofs << c.num_categories << " " << c.images_per_category << " " << c.width
      << " " << c.height << " " << c.seed << " " << c.difficulty << " "
      << c.outlier_fraction << "\n";
  ofs << features_.rows() << " " << features_.cols() << "\n";
  ofs.precision(17);
  for (size_t r = 0; r < features_.rows(); ++r) {
    ofs << categories_[r];
    const double* p = features_.RowPtr(r);
    for (size_t col = 0; col < features_.cols(); ++col) ofs << " " << p[col];
    ofs << "\n";
  }
  ofs << (normalizer_.fitted() ? 1 : 0) << "\n";
  if (normalizer_.fitted()) normalizer_.Save(ofs);
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ImageDatabase> ImageDatabase::LoadFromFile(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) return Status::IoError("cannot open for reading: " + path);
  std::string magic, version;
  if (!(ifs >> magic >> version) || magic != "cbir_db" || version != "v1") {
    return Status::InvalidArgument("image database: bad header in " + path);
  }
  DatabaseOptions options;
  auto& c = options.corpus;
  if (!(ifs >> c.num_categories >> c.images_per_category >> c.width >>
        c.height >> c.seed >> c.difficulty >> c.outlier_fraction)) {
    return Status::IoError("image database: truncated corpus options");
  }
  size_t rows = 0, cols = 0;
  if (!(ifs >> rows >> cols)) {
    return Status::IoError("image database: truncated shape");
  }

  ImageDatabase db(options);
  db.categories_.resize(rows);
  db.features_ = la::Matrix(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    if (!(ifs >> db.categories_[r])) {
      return Status::IoError("image database: truncated categories");
    }
    double* p = db.features_.RowPtr(r);
    for (size_t col = 0; col < cols; ++col) {
      if (!(ifs >> p[col])) {
        return Status::IoError("image database: truncated features");
      }
    }
  }
  int has_normalizer = 0;
  if (!(ifs >> has_normalizer)) {
    return Status::IoError("image database: truncated normalizer flag");
  }
  if (has_normalizer) {
    CBIR_ASSIGN_OR_RETURN(db.normalizer_, features::Normalizer::Load(ifs));
  }
  return db;
}

}  // namespace cbir::retrieval
