#ifndef CBIR_RETRIEVAL_EVALUATOR_H_
#define CBIR_RETRIEVAL_EVALUATOR_H_

#include <vector>

namespace cbir::retrieval {

/// Default evaluation scopes from the paper's tables: top 20, 30, ..., 100.
std::vector<int> PaperScopes();

/// Precision at n: fraction of the first n entries of `ranked` whose
/// category equals `query_category`. `ranked` must contain at least n ids.
double PrecisionAtN(const std::vector<int>& ranked,
                    const std::vector<int>& categories, int query_category,
                    int n);

/// Precision at each scope.
std::vector<double> PrecisionAtScopes(const std::vector<int>& ranked,
                                      const std::vector<int>& categories,
                                      int query_category,
                                      const std::vector<int>& scopes);

/// \brief Accumulates per-query precision curves and reports their mean.
///
/// The paper's "MAP" is the mean over the scope list of the average
/// precision values (i.e. the mean of the table column), not classical
/// interpolated average precision — we follow the paper.
class PrecisionAccumulator {
 public:
  explicit PrecisionAccumulator(std::vector<int> scopes);

  void Add(const std::vector<double>& precision_at_scopes);

  int num_queries() const { return count_; }
  const std::vector<int>& scopes() const { return scopes_; }

  /// Mean precision at each scope over all added queries.
  std::vector<double> MeanPrecision() const;

  /// Mean of MeanPrecision() entries — the paper's MAP row.
  double MeanAveragePrecision() const;

 private:
  std::vector<int> scopes_;
  std::vector<double> sums_;
  int count_ = 0;
};

/// Relative improvement (a - b) / b; returns 0 when b == 0.
double RelativeImprovement(double a, double b);

/// Recall-at-k overlap of an approximate ranking against the exact one:
/// |top-k(approx) ∩ top-k(exact)| / k. The index subsystem's quality metric
/// (1.0 = the approximate top-k is a permutation-free match). `exact` must
/// hold at least k entries; a shorter `approx` simply loses the missing
/// entries' overlap.
double RecallAtK(const std::vector<int>& approx, const std::vector<int>& exact,
                 int k);

}  // namespace cbir::retrieval

#endif  // CBIR_RETRIEVAL_EVALUATOR_H_
