#ifndef CBIR_RETRIEVAL_SYNTHETIC_FEATURES_H_
#define CBIR_RETRIEVAL_SYNTHETIC_FEATURES_H_

#include <cstdint>

#include "la/matrix.h"
#include "retrieval/image_database.h"

namespace cbir::retrieval {

/// \brief Clustered synthetic feature corpus shaped like category image
/// features: `clusters` well-separated Gaussian centers (spread 1.5) with
/// tight within-cluster noise (0.4), z-scored scale, row r in cluster
/// r % clusters. Euclidean neighbors are overwhelmingly same-cluster rows —
/// exactly the structure category corpora give the index and the schemes.
///
/// One generator shared by the index/serve benches, the load driver, and
/// tests, so "the 20k-row clustered corpus" means the same corpus
/// everywhere. Deterministic in `seed`.
la::Matrix ClusteredFeatures(size_t rows, size_t dims, size_t clusters,
                             uint64_t seed);

/// The same corpus wrapped in an ImageDatabase via FromFeatures (category =
/// cluster, one cluster per ~100 rows, 36 dims — the paper's feature
/// width). For serving benches and load drivers that need big corpora
/// without paying image rendering.
ImageDatabase ClusteredDatabase(int rows, uint64_t seed);

}  // namespace cbir::retrieval

#endif  // CBIR_RETRIEVAL_SYNTHETIC_FEATURES_H_
