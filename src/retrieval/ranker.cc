#include "retrieval/ranker.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace cbir::retrieval {

std::vector<double> AllSquaredDistances(const la::Matrix& features,
                                        const la::Vec& query) {
  CBIR_CHECK_EQ(features.cols(), query.size());
  std::vector<double> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* p = features.RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < query.size(); ++c) {
      const double d = p[c] - query[c];
      sum += d * d;
    }
    out[r] = sum;
  }
  return out;
}

std::vector<int> RankByEuclidean(const la::Matrix& features,
                                 const la::Vec& query, int k) {
  const std::vector<double> dist = AllSquaredDistances(features, query);
  std::vector<int> order(features.rows());
  std::iota(order.begin(), order.end(), 0);
  auto cmp = [&dist](int a, int b) {
    const double da = dist[static_cast<size_t>(a)];
    const double db = dist[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  };
  if (k > 0 && static_cast<size_t>(k) < order.size()) {
    std::partial_sort(order.begin(), order.begin() + k, order.end(), cmp);
    order.resize(static_cast<size_t>(k));
  } else {
    std::sort(order.begin(), order.end(), cmp);
  }
  return order;
}

std::vector<int> RankByScoreDesc(const std::vector<double>& scores,
                                 const std::vector<double>& tiebreak_distances,
                                 int k) {
  CBIR_CHECK(tiebreak_distances.empty() ||
             tiebreak_distances.size() == scores.size());
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const bool has_tiebreak = !tiebreak_distances.empty();
  auto cmp = [&](int a, int b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    if (has_tiebreak) {
      const double da = tiebreak_distances[static_cast<size_t>(a)];
      const double db = tiebreak_distances[static_cast<size_t>(b)];
      if (da != db) return da < db;
    }
    return a < b;
  };
  if (k > 0 && static_cast<size_t>(k) < order.size()) {
    std::partial_sort(order.begin(), order.begin() + k, order.end(), cmp);
    order.resize(static_cast<size_t>(k));
  } else {
    std::sort(order.begin(), order.end(), cmp);
  }
  return order;
}

}  // namespace cbir::retrieval
