#include "retrieval/ranker.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/parallel.h"

namespace cbir::retrieval {

namespace {

// Below this many scanned doubles a corpus scan runs serially: thread spawn
// overhead dwarfs the work.
constexpr size_t kParallelScanThreshold = 1u << 17;

// Keeps the top-k prefix: selects with nth_element (O(n)) and then orders
// only the k winners, instead of partial_sort's heap pass over all n.
template <typename Cmp>
std::vector<int> TakeTopK(std::vector<int> order, int k, const Cmp& cmp) {
  if (k > 0 && static_cast<size_t>(k) < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(), cmp);
    order.resize(static_cast<size_t>(k));
    std::sort(order.begin(), order.end(), cmp);
  } else {
    std::sort(order.begin(), order.end(), cmp);
  }
  return order;
}

}  // namespace

std::vector<double> AllSquaredDistances(const double* rows, size_t num_rows,
                                        size_t dims, const double* query) {
  std::vector<double> out(num_rows);
  if (num_rows == 0) return out;
  if (num_rows * dims < kParallelScanThreshold) {
    la::SquaredDistanceToRows(rows, num_rows, dims, query, out.data());
    return out;
  }
  // Block-parallel scan; each block writes a disjoint slice of `out`, so the
  // result is bit-identical to the serial pass.
  const size_t block = 1024;
  const size_t num_blocks = (num_rows + block - 1) / block;
  ParallelFor(num_blocks, [&](size_t b) {
    const size_t begin = b * block;
    const size_t end = std::min(num_rows, begin + block);
    la::SquaredDistanceToRows(rows + begin * dims, end - begin, dims, query,
                              out.data() + begin);
  });
  return out;
}

std::vector<double> AllSquaredDistances(const la::Matrix& features,
                                        const la::Vec& query) {
  CBIR_CHECK_EQ(features.cols(), query.size());
  if (features.rows() == 0) return {};
  return AllSquaredDistances(features.RowPtr(0), features.rows(),
                             features.cols(), query.data());
}

std::vector<int> RankByEuclidean(const double* rows, size_t num_rows,
                                 size_t dims, const double* query, int k) {
  const std::vector<double> dist =
      AllSquaredDistances(rows, num_rows, dims, query);
  std::vector<int> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  auto cmp = [&dist](int a, int b) {
    const double da = dist[static_cast<size_t>(a)];
    const double db = dist[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  };
  return TakeTopK(std::move(order), k, cmp);
}

std::vector<int> RankByEuclidean(const la::Matrix& features,
                                 const la::Vec& query, int k) {
  CBIR_CHECK_EQ(features.cols(), query.size());
  if (features.rows() == 0) return {};
  return RankByEuclidean(features.RowPtr(0), features.rows(), features.cols(),
                         query.data(), k);
}

std::vector<int> RankByScoreDesc(const std::vector<double>& scores,
                                 const std::vector<double>& tiebreak_distances,
                                 int k) {
  CBIR_CHECK(tiebreak_distances.empty() ||
             tiebreak_distances.size() == scores.size());
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const bool has_tiebreak = !tiebreak_distances.empty();
  auto cmp = [&](int a, int b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    if (has_tiebreak) {
      const double da = tiebreak_distances[static_cast<size_t>(a)];
      const double db = tiebreak_distances[static_cast<size_t>(b)];
      if (da != db) return da < db;
    }
    return a < b;
  };
  return TakeTopK(std::move(order), k, cmp);
}

}  // namespace cbir::retrieval
