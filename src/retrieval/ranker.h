#ifndef CBIR_RETRIEVAL_RANKER_H_
#define CBIR_RETRIEVAL_RANKER_H_

#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"

namespace cbir::retrieval {

/// Ranks database rows by ascending Euclidean distance to `query`.
/// Ties break on smaller index for determinism. When `k > 0`, only the top-k
/// indices are returned (partial sort).
std::vector<int> RankByEuclidean(const la::Matrix& features,
                                 const la::Vec& query, int k = -1);

/// Ranks indices by descending score. `tiebreak_distances` (optional, may be
/// empty) breaks score ties by ascending distance, then by index; schemes use
/// the query distance so degenerate constant-score models fall back to
/// Euclidean order instead of input order.
std::vector<int> RankByScoreDesc(const std::vector<double>& scores,
                                 const std::vector<double>& tiebreak_distances,
                                 int k = -1);

/// Squared Euclidean distances from every row of `features` to `query`.
std::vector<double> AllSquaredDistances(const la::Matrix& features,
                                        const la::Vec& query);

}  // namespace cbir::retrieval

#endif  // CBIR_RETRIEVAL_RANKER_H_
