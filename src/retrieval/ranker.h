#ifndef CBIR_RETRIEVAL_RANKER_H_
#define CBIR_RETRIEVAL_RANKER_H_

#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"

namespace cbir::retrieval {

/// Ranks database rows by ascending Euclidean distance to `query`.
/// Ties break on smaller index for determinism. When `k > 0`, only the top-k
/// indices are returned (partial sort).
std::vector<int> RankByEuclidean(const la::Matrix& features,
                                 const la::Vec& query, int k = -1);

/// Raw-storage variant of RankByEuclidean: `rows` is row-major contiguous
/// storage holding `num_rows` rows of `dims` doubles. Identical output to the
/// Matrix overload; this is the exhaustive scan the index subsystem wraps.
std::vector<int> RankByEuclidean(const double* rows, size_t num_rows,
                                 size_t dims, const double* query, int k = -1);

/// Ranks indices by descending score. `tiebreak_distances` (optional, may be
/// empty) breaks score ties by ascending distance, then by index; schemes use
/// the query distance so degenerate constant-score models fall back to
/// Euclidean order instead of input order.
std::vector<int> RankByScoreDesc(const std::vector<double>& scores,
                                 const std::vector<double>& tiebreak_distances,
                                 int k = -1);

/// Squared Euclidean distances from every row of `features` to `query`.
std::vector<double> AllSquaredDistances(const la::Matrix& features,
                                        const la::Vec& query);

/// Raw-storage variant of AllSquaredDistances (same layout contract as the
/// raw RankByEuclidean); goes block-parallel past the same size threshold.
std::vector<double> AllSquaredDistances(const double* rows, size_t num_rows,
                                        size_t dims, const double* query);

}  // namespace cbir::retrieval

#endif  // CBIR_RETRIEVAL_RANKER_H_
