#include "retrieval/synthetic_features.h"

#include <utility>
#include <vector>

#include "util/rng.h"

namespace cbir::retrieval {

la::Matrix ClusteredFeatures(size_t rows, size_t dims, size_t clusters,
                             uint64_t seed) {
  Rng rng(seed);
  la::Matrix centers(clusters, dims);
  for (size_t r = 0; r < clusters; ++r) {
    for (size_t c = 0; c < dims; ++c) centers.At(r, c) = rng.Gaussian() * 1.5;
  }
  la::Matrix m(rows, dims);
  for (size_t r = 0; r < rows; ++r) {
    const size_t cluster = r % clusters;
    for (size_t c = 0; c < dims; ++c) {
      m.At(r, c) = centers.At(cluster, c) + rng.Gaussian() * 0.4;
    }
  }
  return m;
}

ImageDatabase ClusteredDatabase(int rows, uint64_t seed) {
  constexpr size_t kDims = 36;  // the paper's visual feature width
  const int categories = rows < 100 ? 1 : rows / 100;
  la::Matrix features = ClusteredFeatures(
      static_cast<size_t>(rows), kDims, static_cast<size_t>(categories),
      seed);
  std::vector<int> labels(static_cast<size_t>(rows));
  for (size_t r = 0; r < labels.size(); ++r) {
    labels[r] = static_cast<int>(r % static_cast<size_t>(categories));
  }
  return ImageDatabase::FromFeatures(std::move(features), std::move(labels),
                                     categories);
}

}  // namespace cbir::retrieval
