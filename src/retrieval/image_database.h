#ifndef CBIR_RETRIEVAL_IMAGE_DATABASE_H_
#define CBIR_RETRIEVAL_IMAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "features/extractor.h"
#include "features/normalizer.h"
#include "imaging/synthetic.h"
#include "index/index_factory.h"
#include "la/matrix.h"
#include "util/result.h"

namespace cbir::retrieval {

/// \brief Options for building a feature database from the synthetic corpus.
struct DatabaseOptions {
  imaging::SyntheticCorelOptions corpus;
  features::FeatureOptions feature;
  /// Fit and apply per-dimension z-score normalization over the corpus.
  bool normalize = true;
  /// Worker threads for feature extraction (0 = hardware concurrency).
  int num_threads = 0;
};

/// \brief An indexed image corpus: ground-truth categories plus the
/// (normalized) 36-dim feature matrix, one row per image.
///
/// The database owns the corpus generator so callers can re-render any image
/// (the gallery example does). Building is deterministic in the corpus seed.
class ImageDatabase {
 public:
  /// Generates all images and extracts features (parallelized).
  static ImageDatabase Build(const DatabaseOptions& options);

  /// Wraps a precomputed feature matrix (one row per image, already
  /// normalized or not — no normalizer is fitted) in a database. For
  /// serving benches, load drivers, and tests that need big corpora without
  /// paying image rendering; RenderImage() on the result produces synthetic
  /// images unrelated to the injected features. `categories[i]` must be in
  /// [0, num_categories).
  static ImageDatabase FromFeatures(la::Matrix features,
                                    std::vector<int> categories,
                                    int num_categories);

  /// Copies drop the retrieval index: an index references the feature
  /// storage of the database it was built over, so sharing it would dangle
  /// once the original dies. Call BuildIndex on the copy if it needs one.
  /// Moves keep the index (the referenced heap buffer moves along).
  ImageDatabase(const ImageDatabase& other);
  ImageDatabase& operator=(const ImageDatabase& other);
  ImageDatabase(ImageDatabase&&) = default;
  ImageDatabase& operator=(ImageDatabase&&) = default;

  int num_images() const { return static_cast<int>(features_.rows()); }
  int num_categories() const { return options_.corpus.num_categories; }

  /// Ground-truth category of an image.
  int category(int image_id) const;
  const std::vector<int>& categories() const { return categories_; }

  /// COREL-style category label.
  std::string category_name(int category) const {
    return corpus_->CategoryName(category);
  }

  /// Normalized feature matrix (num_images x dims).
  const la::Matrix& features() const { return features_; }
  la::Vec feature(int image_id) const;

  /// Builds and attaches a retrieval index over features(), replacing any
  /// previous one. The index references this database's feature storage:
  /// rebuild after mutating features or after copying the database.
  /// Serialized by SaveToFile: a signature index round-trips its packed
  /// signature block (no re-encoding on load), an exact index is rebuilt
  /// for free.
  void BuildIndex(const IndexOptions& index_options);
  /// The attached retrieval index, or null when none was built.
  const Index* index() const { return index_.get(); }

  /// Top-k image ids by ascending Euclidean distance to `query` (ties on the
  /// smaller id; k <= 0 = full ranking). Routed through the attached index;
  /// falls back to the exhaustive scan when none is attached. Every corpus
  /// ranking in the library goes through here so one BuildIndex call
  /// accelerates all of them.
  std::vector<int> TopK(const la::Vec& query, int k = -1) const;

  const features::Normalizer& normalizer() const { return normalizer_; }
  const features::FeatureExtractor& extractor() const { return extractor_; }
  const imaging::SyntheticCorel& corpus() const { return *corpus_; }
  const DatabaseOptions& options() const { return options_; }

  /// Re-renders an image (identical to the one whose features are stored).
  imaging::Image RenderImage(int image_id) const {
    return corpus_->GenerateById(image_id);
  }

  /// Text serialization of categories + features + normalizer + attached
  /// index (images are re-renderable from the corpus options, so pixels are
  /// never stored). Signature indexes store their packed signature block so
  /// 100k+ corpora skip the ~0.4s re-encoding on load; v1 files (written
  /// before indexes were serialized) still load, just without an index.
  Status SaveToFile(const std::string& path) const;
  static Result<ImageDatabase> LoadFromFile(const std::string& path);

 private:
  ImageDatabase(const DatabaseOptions& options);

  DatabaseOptions options_;
  std::shared_ptr<const imaging::SyntheticCorel> corpus_;
  features::FeatureExtractor extractor_;
  features::Normalizer normalizer_;
  std::vector<int> categories_;
  la::Matrix features_;
  /// References features_' heap storage; dropped on copy (see the copy
  /// constructor comment above), moved along with features_ on move.
  std::unique_ptr<Index> index_;
};

}  // namespace cbir::retrieval

#endif  // CBIR_RETRIEVAL_IMAGE_DATABASE_H_
