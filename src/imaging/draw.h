#ifndef CBIR_IMAGING_DRAW_H_
#define CBIR_IMAGING_DRAW_H_

#include <vector>

#include "imaging/image.h"

namespace cbir::imaging {

/// \brief Integer point used by the drawing primitives.
struct Point {
  int x = 0;
  int y = 0;
};

/// Draws a 1px Bresenham line, clipped to the raster.
void DrawLine(Image* img, Point a, Point b, Rgb color);

/// Draws a thick line by stamping disks along the Bresenham path.
void DrawThickLine(Image* img, Point a, Point b, int thickness, Rgb color);

/// Fills a disk of radius r centred on c, clipped.
void FillCircle(Image* img, Point c, int radius, Rgb color);

/// Draws a 1px circle outline (midpoint algorithm), clipped.
void DrawCircle(Image* img, Point c, int radius, Rgb color);

/// Fills an axis-aligned rectangle [x0,x1] x [y0,y1] (inclusive), clipped.
void FillRect(Image* img, Point top_left, Point bottom_right, Rgb color);

/// Fills a convex or concave simple polygon via scanline even-odd rule.
void FillPolygon(Image* img, const std::vector<Point>& vertices, Rgb color);

/// Fills the whole image with a vertical gradient from `top` to `bottom`.
void FillVerticalGradient(Image* img, Rgb top, Rgb bottom);

/// Fills with a radial gradient from `center_color` at `center` to
/// `edge_color` at distance `radius`.
void FillRadialGradient(Image* img, Point center, int radius, Rgb center_color,
                        Rgb edge_color);

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_DRAW_H_
