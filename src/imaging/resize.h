#ifndef CBIR_IMAGING_RESIZE_H_
#define CBIR_IMAGING_RESIZE_H_

#include "imaging/image.h"

namespace cbir::imaging {

/// Bilinear resize to (new_width, new_height). Requires positive targets.
Image ResizeBilinear(const Image& src, int new_width, int new_height);

/// Pastes `src` into `dst` with its top-left corner at (x, y), clipped.
void Paste(Image* dst, const Image& src, int x, int y);

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_RESIZE_H_
