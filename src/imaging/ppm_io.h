#ifndef CBIR_IMAGING_PPM_IO_H_
#define CBIR_IMAGING_PPM_IO_H_

#include <string>

#include "imaging/image.h"
#include "util/result.h"
#include "util/status.h"

namespace cbir::imaging {

/// Writes a binary PPM (P6) file. Overwrites any existing file.
Status WritePpm(const Image& image, const std::string& path);

/// Reads a binary PPM (P6) file with maxval 255.
Result<Image> ReadPpm(const std::string& path);

/// Writes a binary PGM (P5) file from a float gray image; values are clamped
/// to [0, 1] and quantized to 8 bits.
Status WritePgm(const GrayImage& image, const std::string& path);

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_PPM_IO_H_
