#ifndef CBIR_IMAGING_COLOR_H_
#define CBIR_IMAGING_COLOR_H_

#include "imaging/image.h"

namespace cbir::imaging {

/// \brief HSV color with h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

/// Converts an RGB pixel to HSV. Gray pixels report hue 0.
Hsv RgbToHsv(Rgb rgb);

/// Converts HSV back to 8-bit RGB. Hue outside [0,360) is wrapped; s and v
/// are clamped to [0,1].
Rgb HsvToRgb(Hsv hsv);

/// Rec.601 luma in [0, 1].
double Luma(Rgb rgb);

/// Converts an RGB image to a float grayscale image using Rec.601 luma.
GrayImage ToGray(const Image& image);

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_COLOR_H_
