#ifndef CBIR_IMAGING_SYNTHETIC_H_
#define CBIR_IMAGING_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "imaging/image.h"

namespace cbir::imaging {

/// \brief Options for the synthetic COREL-style corpus generator.
struct SyntheticCorelOptions {
  /// Number of semantic categories (the paper uses 20 and 50).
  int num_categories = 20;
  /// Images per category (the paper uses exactly 100).
  int images_per_category = 100;
  /// Raster size of each generated image.
  int width = 96;
  int height = 96;
  /// Master seed; every image is a pure function of (seed, category, index).
  uint64_t seed = 42;
  /// Scales per-image appearance jitter. The default 2.5 is calibrated so
  /// that Euclidean P@20 on the 36-dim features lands at the paper's
  /// operating point (~0.40 at 20 categories, ~0.31 at 50). Smaller values
  /// shrink the semantic gap.
  double difficulty = 2.5;
  /// Fraction of images per category rendered as "hard" outliers (different
  /// background family, boosted jitter) to emulate COREL's in-category
  /// diversity. Calibrated together with `difficulty`.
  double outlier_fraction = 0.25;
};

/// \brief The deterministic per-category appearance recipe.
///
/// Themes are quantized into small vocabularies (8 hue families, 4 background
/// kinds, 5 shape kinds, ...) so distinct categories collide on some visual
/// axes — that collision is what creates the semantic gap the paper's
/// log-based feedback is designed to bridge.
struct CategoryTheme {
  double base_hue = 0.0;       ///< degrees, center of the palette
  double hue_spread = 10.0;    ///< per-image hue sigma (degrees)
  double sat_lo = 0.4, sat_hi = 0.9;
  double val_lo = 0.4, val_hi = 0.9;
  int bg_kind = 0;             ///< 0 flat, 1 v-gradient, 2 fbm, 3 radial
  int shape_kind = 0;          ///< 0 circles, 1 rects, 2 triangles,
                               ///< 4 stripes, 3 polygons(5-7 gon)
  int shape_count_lo = 2, shape_count_hi = 6;
  double shape_size_lo = 0.08, shape_size_hi = 0.22;  ///< fraction of min dim
  double accent_hue_offset = 180.0;  ///< accent palette rotation
  double noise_amp = 0.08;     ///< fBm brightness amplitude
  double noise_freq = 6.0;     ///< fBm cycles across the image
  int noise_octaves = 3;
  bool has_grating = false;
  double grating_freq = 8.0;
  double grating_angle = 0.0;  ///< radians
};

/// \brief Deterministic procedural stand-in for the COREL photo corpus.
///
/// Usage:
/// \code
///   SyntheticCorel corpus(options);
///   Image img = corpus.Generate(/*category=*/3, /*index=*/17);
/// \endcode
///
/// Images within a category share a CategoryTheme; each image draws its
/// concrete appearance (hue, layout, counts, noise phase) from a seeded RNG,
/// so the corpus is identical across runs and machines.
class SyntheticCorel {
 public:
  explicit SyntheticCorel(const SyntheticCorelOptions& options);

  const SyntheticCorelOptions& options() const { return options_; }

  int num_images() const {
    return options_.num_categories * options_.images_per_category;
  }

  /// Theme for a category; valid for 0 <= category < num_categories.
  const CategoryTheme& theme(int category) const;

  /// Renders image `index` of `category` (both 0-based).
  Image Generate(int category, int index) const;

  /// Renders the image with the flat id `category * images_per_category +
  /// index`.
  Image GenerateById(int image_id) const;

  /// Category of a flat image id.
  int CategoryOf(int image_id) const;

  /// Human-readable label for a category (COREL-style names, e.g. "antelope",
  /// "aviation"; synthesized names past the built-in list of 50).
  std::string CategoryName(int category) const;

 private:
  CategoryTheme MakeTheme(int category) const;

  SyntheticCorelOptions options_;
  std::vector<CategoryTheme> themes_;
};

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_SYNTHETIC_H_
