#ifndef CBIR_IMAGING_NOISE_H_
#define CBIR_IMAGING_NOISE_H_

#include <cstdint>

#include "imaging/image.h"

namespace cbir::imaging {

/// \brief Deterministic lattice value-noise field.
///
/// Evaluates smooth pseudo-random noise at arbitrary (x, y); the same seed
/// always yields the same field. Used for synthetic texture generation
/// (the DWT texture feature needs genuinely band-limited content).
class ValueNoise {
 public:
  explicit ValueNoise(uint64_t seed);

  /// Single octave of smoothed lattice noise in [0, 1].
  double Sample(double x, double y) const;

  /// Fractal Brownian motion: `octaves` octaves with per-octave gain 0.5 and
  /// lacunarity 2.0; result normalized to [0, 1].
  double Fbm(double x, double y, int octaves) const;

 private:
  /// Hash of lattice coordinates to [0, 1).
  double LatticeValue(int64_t ix, int64_t iy) const;

  uint64_t seed_;
};

/// Fills `img` with fBm noise mapped to gray values of mean `base` and
/// amplitude `amplitude`, at spatial frequency `freq` (cycles across width).
void AddFbmNoise(Image* img, uint64_t seed, double freq, int octaves,
                 double amplitude);

/// Overlays a sinusoidal grating of frequency `freq` (cycles across width)
/// at angle `angle_rad`, modulating pixel brightness by +-`amplitude`.
void AddGrating(Image* img, double freq, double angle_rad, double amplitude);

/// Adds independent Gaussian pixel noise with the given sigma (on a 0-255
/// scale), simulating sensor noise. Deterministic in `seed`.
void AddPixelNoise(Image* img, uint64_t seed, double sigma);

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_NOISE_H_
