#include "imaging/synthetic.h"

#include <algorithm>
#include <cmath>

#include "imaging/color.h"
#include "imaging/draw.h"
#include "imaging/noise.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cbir::imaging {

namespace {

// COREL-style semantic labels from the paper's examples, extended to 50.
constexpr const char* kCategoryNames[] = {
    "antique",   "antelope",  "aviation",  "balloon",   "botany",
    "butterfly", "car",       "cat",       "dog",       "firework",
    "horse",     "lizard",    "beach",     "building",  "bus",
    "dinosaur",  "elephant",  "flower",    "food",      "mountain",
    "waterfall", "ship",      "sunset",    "tiger",     "train",
    "bird",      "bridge",    "castle",    "desert",    "fish",
    "forest",    "fruit",     "glacier",   "harbor",    "island",
    "jewelry",   "lake",      "meadow",    "orchid",    "penguin",
    "pyramid",   "reef",      "river",     "rose",      "stadium",
    "statue",    "tulip",     "village",   "vineyard",  "wolf",
};
constexpr int kNumNames = static_cast<int>(std::size(kCategoryNames));

uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t h = seed ^ (a * 0x9E3779B97F4A7C15ull);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h ^= b * 0xC2B2AE3D27D4EB4Full;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

double WrapHue(double hue) {
  hue = std::fmod(hue, 360.0);
  if (hue < 0.0) hue += 360.0;
  return hue;
}

}  // namespace

SyntheticCorel::SyntheticCorel(const SyntheticCorelOptions& options)
    : options_(options) {
  CBIR_CHECK_GT(options_.num_categories, 0);
  CBIR_CHECK_GT(options_.images_per_category, 0);
  CBIR_CHECK_GT(options_.width, 7);
  CBIR_CHECK_GT(options_.height, 7);
  themes_.reserve(options_.num_categories);
  for (int c = 0; c < options_.num_categories; ++c) {
    themes_.push_back(MakeTheme(c));
  }
}

const CategoryTheme& SyntheticCorel::theme(int category) const {
  CBIR_CHECK_GE(category, 0);
  CBIR_CHECK_LT(category, options_.num_categories);
  return themes_[static_cast<size_t>(category)];
}

int SyntheticCorel::CategoryOf(int image_id) const {
  CBIR_CHECK_GE(image_id, 0);
  CBIR_CHECK_LT(image_id, num_images());
  return image_id / options_.images_per_category;
}

std::string SyntheticCorel::CategoryName(int category) const {
  CBIR_CHECK_GE(category, 0);
  if (category < kNumNames) return kCategoryNames[category];
  return "category-" + std::to_string(category);
}

CategoryTheme SyntheticCorel::MakeTheme(int category) const {
  Rng rng(MixSeed(options_.seed, 0x7E37, static_cast<uint64_t>(category)));
  CategoryTheme t;

  // Quantized vocabularies force cross-category collisions on individual
  // axes; only the combination of color+edge+texture separates categories,
  // and imperfectly so (the intended semantic gap).
  const int hue_family = static_cast<int>(rng.UniformInt(uint64_t{8}));
  t.base_hue = WrapHue(hue_family * 45.0 + rng.Uniform(-14.0, 14.0));
  t.hue_spread = rng.Uniform(8.0, 18.0);

  const int sat_band = static_cast<int>(rng.UniformInt(uint64_t{3}));
  t.sat_lo = 0.25 + 0.22 * sat_band;
  t.sat_hi = t.sat_lo + 0.25;
  const int val_band = static_cast<int>(rng.UniformInt(uint64_t{3}));
  t.val_lo = 0.30 + 0.20 * val_band;
  t.val_hi = t.val_lo + 0.30;

  t.bg_kind = static_cast<int>(rng.UniformInt(uint64_t{4}));
  t.shape_kind = static_cast<int>(rng.UniformInt(uint64_t{5}));
  t.shape_count_lo = 1 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  t.shape_count_hi = t.shape_count_lo + 2 +
                     static_cast<int>(rng.UniformInt(uint64_t{4}));
  t.shape_size_lo = rng.Uniform(0.06, 0.12);
  t.shape_size_hi = t.shape_size_lo + rng.Uniform(0.08, 0.18);
  t.accent_hue_offset = rng.Bernoulli(0.5) ? 180.0 : rng.Uniform(60.0, 120.0);

  t.noise_amp = rng.Uniform(0.03, 0.14);
  t.noise_freq = rng.Uniform(3.0, 14.0);
  t.noise_octaves = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));

  t.has_grating = rng.Bernoulli(0.35);
  const double grating_freqs[] = {4.0, 8.0, 16.0, 24.0};
  t.grating_freq = grating_freqs[rng.UniformInt(uint64_t{4})];
  t.grating_angle = rng.Uniform(0.0, M_PI);
  return t;
}

Image SyntheticCorel::GenerateById(int image_id) const {
  const int c = CategoryOf(image_id);
  return Generate(c, image_id - c * options_.images_per_category);
}

Image SyntheticCorel::Generate(int category, int index) const {
  CBIR_CHECK_GE(index, 0);
  CBIR_CHECK_LT(index, options_.images_per_category);
  const CategoryTheme& t = theme(category);
  Rng rng(MixSeed(options_.seed, static_cast<uint64_t>(category) + 1,
                  static_cast<uint64_t>(index) + 1));

  const double difficulty = options_.difficulty;
  const bool outlier = rng.Bernoulli(options_.outlier_fraction);
  const double jitter_scale = difficulty * (outlier ? 2.2 : 1.0);

  const int w = options_.width;
  const int h = options_.height;
  Image img(w, h);

  // --- Palette for this image ---------------------------------------------
  const double hue =
      WrapHue(t.base_hue + rng.Gaussian(0.0, t.hue_spread * jitter_scale));
  const double sat =
      std::clamp(rng.Uniform(t.sat_lo, t.sat_hi) +
                     rng.Gaussian(0.0, 0.06 * jitter_scale),
                 0.05, 1.0);
  const double val =
      std::clamp(rng.Uniform(t.val_lo, t.val_hi) +
                     rng.Gaussian(0.0, 0.06 * jitter_scale),
                 0.10, 1.0);
  const Rgb bg_color = HsvToRgb(Hsv{hue, sat, val});
  const Rgb bg_color2 = HsvToRgb(
      Hsv{WrapHue(hue + rng.Uniform(-25.0, 25.0)),
          std::clamp(sat * rng.Uniform(0.6, 1.0), 0.0, 1.0),
          std::clamp(val * rng.Uniform(0.55, 0.95), 0.0, 1.0)});

  // --- Background -----------------------------------------------------------
  int bg_kind = t.bg_kind;
  if (outlier) {
    bg_kind = static_cast<int>(rng.UniformInt(uint64_t{4}));
  }
  switch (bg_kind) {
    case 0:
      img.Fill(bg_color);
      break;
    case 1:
      FillVerticalGradient(&img, bg_color, bg_color2);
      break;
    case 2:
      img.Fill(bg_color);
      AddFbmNoise(&img, rng.Next(), t.noise_freq * 0.5, t.noise_octaves,
                  t.noise_amp * 1.5);
      break;
    default:
      FillRadialGradient(
          &img,
          Point{static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{w - 1})),
                static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{h - 1}))},
          std::max(w, h), bg_color, bg_color2);
      break;
  }

  // --- Foreground shapes ----------------------------------------------------
  const int count = static_cast<int>(
      rng.UniformInt(static_cast<int64_t>(t.shape_count_lo),
                     static_cast<int64_t>(t.shape_count_hi)));
  const int min_dim = std::min(w, h);
  for (int s = 0; s < count; ++s) {
    const double size_frac = rng.Uniform(t.shape_size_lo, t.shape_size_hi);
    const int size = std::max(2, static_cast<int>(size_frac * min_dim));
    const Point pos{
        static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{w - 1})),
        static_cast<int>(rng.UniformInt(int64_t{0}, int64_t{h - 1}))};
    const bool use_accent = rng.Bernoulli(0.45);
    const double shape_hue =
        WrapHue(hue + (use_accent ? t.accent_hue_offset : 0.0) +
                rng.Gaussian(0.0, 10.0 * jitter_scale));
    const Rgb color = HsvToRgb(
        Hsv{shape_hue, std::clamp(sat + rng.Uniform(-0.15, 0.15), 0.0, 1.0),
            std::clamp(val + rng.Uniform(-0.30, 0.30), 0.05, 1.0)});

    switch (t.shape_kind) {
      case 0:
        FillCircle(&img, pos, size / 2, color);
        break;
      case 1:
        FillRect(&img, Point{pos.x - size / 2, pos.y - size / 2},
                 Point{pos.x + size / 2, pos.y + size / 2}, color);
        break;
      case 2: {
        const int r = size / 2;
        const double phase = rng.Uniform(0.0, 2.0 * M_PI);
        std::vector<Point> tri;
        for (int k = 0; k < 3; ++k) {
          const double a = phase + k * 2.0 * M_PI / 3.0;
          tri.push_back(Point{pos.x + static_cast<int>(r * std::cos(a)),
                              pos.y + static_cast<int>(r * std::sin(a))});
        }
        FillPolygon(&img, tri, color);
        break;
      }
      case 3: {
        const int sides = 5 + static_cast<int>(rng.UniformInt(uint64_t{3}));
        const int r = size / 2;
        const double phase = rng.Uniform(0.0, 2.0 * M_PI);
        std::vector<Point> poly;
        for (int k = 0; k < sides; ++k) {
          const double a = phase + k * 2.0 * M_PI / sides;
          poly.push_back(Point{pos.x + static_cast<int>(r * std::cos(a)),
                               pos.y + static_cast<int>(r * std::sin(a))});
        }
        FillPolygon(&img, poly, color);
        break;
      }
      default: {
        // Stripes: thick line across the image through `pos`.
        const double angle = rng.Uniform(0.0, M_PI);
        const int len = min_dim;
        const Point p0{pos.x - static_cast<int>(len * std::cos(angle)),
                       pos.y - static_cast<int>(len * std::sin(angle))};
        const Point p1{pos.x + static_cast<int>(len * std::cos(angle)),
                       pos.y + static_cast<int>(len * std::sin(angle))};
        DrawThickLine(&img, p0, p1, std::max(1, size / 4), color);
        break;
      }
    }
  }

  // --- Texture layers -------------------------------------------------------
  if (t.has_grating) {
    AddGrating(&img, t.grating_freq * rng.Uniform(0.85, 1.15),
               t.grating_angle + rng.Gaussian(0.0, 0.15 * jitter_scale),
               0.10);
  }
  AddFbmNoise(&img, rng.Next(), t.noise_freq, t.noise_octaves, t.noise_amp);
  AddPixelNoise(&img, rng.Next(), 4.0);

  return img;
}

}  // namespace cbir::imaging
