#include "imaging/color.h"

#include <algorithm>
#include <cmath>

namespace cbir::imaging {

Hsv RgbToHsv(Rgb rgb) {
  const double r = rgb.r / 255.0;
  const double g = rgb.g / 255.0;
  const double b = rgb.b / 255.0;
  const double mx = std::max({r, g, b});
  const double mn = std::min({r, g, b});
  const double delta = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = (mx <= 0.0) ? 0.0 : delta / mx;
  if (delta <= 0.0) {
    out.h = 0.0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / delta, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / delta + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / delta + 4.0);
  }
  if (out.h < 0.0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(Hsv hsv) {
  double h = std::fmod(hsv.h, 360.0);
  if (h < 0.0) h += 360.0;
  const double s = std::clamp(hsv.s, 0.0, 1.0);
  const double v = std::clamp(hsv.v, 0.0, 1.0);

  const double c = v * s;
  const double hp = h / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0.0, g = 0.0, b = 0.0;
  if (hp < 1.0) {
    r = c; g = x;
  } else if (hp < 2.0) {
    r = x; g = c;
  } else if (hp < 3.0) {
    g = c; b = x;
  } else if (hp < 4.0) {
    g = x; b = c;
  } else if (hp < 5.0) {
    r = x; b = c;
  } else {
    r = c; b = x;
  }
  const double m = v - c;
  auto to8 = [](double f) {
    return static_cast<uint8_t>(std::clamp(f * 255.0 + 0.5, 0.0, 255.0));
  };
  return Rgb{to8(r + m), to8(g + m), to8(b + m)};
}

double Luma(Rgb rgb) {
  return (0.299 * rgb.r + 0.587 * rgb.g + 0.114 * rgb.b) / 255.0;
}

GrayImage ToGray(const Image& image) {
  GrayImage gray(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      gray.Set(x, y, static_cast<float>(Luma(image.At(x, y))));
    }
  }
  return gray;
}

}  // namespace cbir::imaging
