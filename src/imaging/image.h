#ifndef CBIR_IMAGING_IMAGE_H_
#define CBIR_IMAGING_IMAGE_H_

#include <cstdint>
#include <vector>

namespace cbir::imaging {

/// \brief An 8-bit sRGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  bool operator==(const Rgb& o) const {
    return r == o.r && g == o.g && b == o.b;
  }
};

/// \brief Interleaved 8-bit RGB raster image.
///
/// The synthetic-corpus generator renders into this type; the feature
/// pipeline consumes it (converting to HSV or grayscale as needed).
class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Unchecked in release; bounds-checked via CBIR_CHECK in At().
  Rgb At(int x, int y) const;
  void Set(int x, int y, Rgb color);

  /// Returns true and sets the pixel only when (x, y) is inside the raster;
  /// drawing primitives use this for implicit clipping.
  bool SetClipped(int x, int y, Rgb color);

  /// Alpha-blends `color` over the current pixel (alpha in [0,1]), clipped.
  void BlendClipped(int x, int y, Rgb color, double alpha);

  void Fill(Rgb color);

  /// Raw interleaved RGB bytes, row-major, 3 bytes per pixel.
  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& data() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> data_;
};

/// \brief Single-channel float image with values nominally in [0, 1].
///
/// Used for grayscale conversions, gradient maps and wavelet planes.
class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  float At(int x, int y) const;
  void Set(int x, int y, float value);

  /// Clamps coordinates to the border (replicate padding); used by filters.
  float AtClamped(int x, int y) const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

}  // namespace cbir::imaging

#endif  // CBIR_IMAGING_IMAGE_H_
