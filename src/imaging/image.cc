#include "imaging/image.h"

#include <algorithm>

#include "util/logging.h"

namespace cbir::imaging {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height) {
  CBIR_CHECK_GE(width, 0);
  CBIR_CHECK_GE(height, 0);
  data_.resize(static_cast<size_t>(width) * height * 3);
  Fill(fill);
}

Rgb Image::At(int x, int y) const {
  CBIR_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_)
      << "pixel (" << x << "," << y << ") outside " << width_ << "x"
      << height_;
  const size_t idx = (static_cast<size_t>(y) * width_ + x) * 3;
  return Rgb{data_[idx], data_[idx + 1], data_[idx + 2]};
}

void Image::Set(int x, int y, Rgb color) {
  CBIR_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_)
      << "pixel (" << x << "," << y << ") outside " << width_ << "x"
      << height_;
  const size_t idx = (static_cast<size_t>(y) * width_ + x) * 3;
  data_[idx] = color.r;
  data_[idx + 1] = color.g;
  data_[idx + 2] = color.b;
}

bool Image::SetClipped(int x, int y, Rgb color) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return false;
  Set(x, y, color);
  return true;
}

void Image::BlendClipped(int x, int y, Rgb color, double alpha) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  alpha = std::clamp(alpha, 0.0, 1.0);
  const Rgb base = At(x, y);
  auto mix = [alpha](uint8_t a, uint8_t b) {
    return static_cast<uint8_t>(a + alpha * (b - a) + 0.5);
  };
  Set(x, y, Rgb{mix(base.r, color.r), mix(base.g, color.g),
                mix(base.b, color.b)});
}

void Image::Fill(Rgb color) {
  for (size_t i = 0; i + 2 < data_.size(); i += 3) {
    data_[i] = color.r;
    data_[i + 1] = color.g;
    data_[i + 2] = color.b;
  }
}

GrayImage::GrayImage(int width, int height, float fill)
    : width_(width), height_(height) {
  CBIR_CHECK_GE(width, 0);
  CBIR_CHECK_GE(height, 0);
  data_.assign(static_cast<size_t>(width) * height, fill);
}

float GrayImage::At(int x, int y) const {
  CBIR_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return data_[static_cast<size_t>(y) * width_ + x];
}

void GrayImage::Set(int x, int y, float value) {
  CBIR_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  data_[static_cast<size_t>(y) * width_ + x] = value;
}

float GrayImage::AtClamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return data_[static_cast<size_t>(y) * width_ + x];
}

}  // namespace cbir::imaging
