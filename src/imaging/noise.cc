#include "imaging/noise.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace cbir::imaging {

namespace {

uint64_t HashCoords(uint64_t seed, int64_t ix, int64_t iy) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(ix) * 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h ^= static_cast<uint64_t>(iy) * 0xC2B2AE3D27D4EB4Full;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

ValueNoise::ValueNoise(uint64_t seed) : seed_(seed) {}

double ValueNoise::LatticeValue(int64_t ix, int64_t iy) const {
  return static_cast<double>(HashCoords(seed_, ix, iy) >> 11) * 0x1.0p-53;
}

double ValueNoise::Sample(double x, double y) const {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const int64_t ix = static_cast<int64_t>(fx);
  const int64_t iy = static_cast<int64_t>(fy);
  const double tx = SmoothStep(x - fx);
  const double ty = SmoothStep(y - fy);

  const double v00 = LatticeValue(ix, iy);
  const double v10 = LatticeValue(ix + 1, iy);
  const double v01 = LatticeValue(ix, iy + 1);
  const double v11 = LatticeValue(ix + 1, iy + 1);

  const double a = v00 + tx * (v10 - v00);
  const double b = v01 + tx * (v11 - v01);
  return a + ty * (b - a);
}

double ValueNoise::Fbm(double x, double y, int octaves) const {
  octaves = std::max(1, octaves);
  double sum = 0.0;
  double amp = 1.0;
  double norm = 0.0;
  double fx = x, fy = y;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * Sample(fx, fy);
    norm += amp;
    amp *= 0.5;
    fx *= 2.0;
    fy *= 2.0;
  }
  return sum / norm;
}

void AddFbmNoise(Image* img, uint64_t seed, double freq, int octaves,
                 double amplitude) {
  if (img->empty()) return;
  const ValueNoise noise(seed);
  const double sx = freq / img->width();
  const double sy = freq / img->width();  // isotropic scale
  for (int y = 0; y < img->height(); ++y) {
    for (int x = 0; x < img->width(); ++x) {
      const double n = noise.Fbm(x * sx, y * sy, octaves) - 0.5;
      const double delta = 255.0 * amplitude * 2.0 * n;
      Rgb c = img->At(x, y);
      auto adj = [delta](uint8_t v) {
        return static_cast<uint8_t>(std::clamp(v + delta, 0.0, 255.0));
      };
      img->Set(x, y, Rgb{adj(c.r), adj(c.g), adj(c.b)});
    }
  }
}

void AddGrating(Image* img, double freq, double angle_rad, double amplitude) {
  if (img->empty()) return;
  const double kx = std::cos(angle_rad) * 2.0 * M_PI * freq / img->width();
  const double ky = std::sin(angle_rad) * 2.0 * M_PI * freq / img->width();
  for (int y = 0; y < img->height(); ++y) {
    for (int x = 0; x < img->width(); ++x) {
      const double delta = 255.0 * amplitude * std::sin(kx * x + ky * y);
      Rgb c = img->At(x, y);
      auto adj = [delta](uint8_t v) {
        return static_cast<uint8_t>(std::clamp(v + delta, 0.0, 255.0));
      };
      img->Set(x, y, Rgb{adj(c.r), adj(c.g), adj(c.b)});
    }
  }
}

void AddPixelNoise(Image* img, uint64_t seed, double sigma) {
  if (sigma <= 0.0 || img->empty()) return;
  Rng rng(seed);
  for (int y = 0; y < img->height(); ++y) {
    for (int x = 0; x < img->width(); ++x) {
      Rgb c = img->At(x, y);
      auto adj = [&rng, sigma](uint8_t v) {
        return static_cast<uint8_t>(
            std::clamp(v + rng.Gaussian(0.0, sigma), 0.0, 255.0));
      };
      img->Set(x, y, Rgb{adj(c.r), adj(c.g), adj(c.b)});
    }
  }
}

}  // namespace cbir::imaging
