#include "imaging/resize.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cbir::imaging {

Image ResizeBilinear(const Image& src, int new_width, int new_height) {
  CBIR_CHECK_GT(new_width, 0);
  CBIR_CHECK_GT(new_height, 0);
  CBIR_CHECK(!src.empty());

  Image dst(new_width, new_height);
  const double sx = static_cast<double>(src.width()) / new_width;
  const double sy = static_cast<double>(src.height()) / new_height;

  for (int y = 0; y < new_height; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                              src.height() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const double ty = std::clamp(fy - y0, 0.0, 1.0);
    for (int x = 0; x < new_width; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0,
                                src.width() - 1);
      const int x1 = std::min(x0 + 1, src.width() - 1);
      const double tx = std::clamp(fx - x0, 0.0, 1.0);

      const Rgb c00 = src.At(x0, y0), c10 = src.At(x1, y0);
      const Rgb c01 = src.At(x0, y1), c11 = src.At(x1, y1);
      auto lerp2 = [tx, ty](uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
        const double top = a + tx * (b - a);
        const double bot = c + tx * (d - c);
        return static_cast<uint8_t>(
            std::clamp(top + ty * (bot - top) + 0.5, 0.0, 255.0));
      };
      dst.Set(x, y,
              Rgb{lerp2(c00.r, c10.r, c01.r, c11.r),
                  lerp2(c00.g, c10.g, c01.g, c11.g),
                  lerp2(c00.b, c10.b, c01.b, c11.b)});
    }
  }
  return dst;
}

void Paste(Image* dst, const Image& src, int x, int y) {
  for (int sy = 0; sy < src.height(); ++sy) {
    for (int sx = 0; sx < src.width(); ++sx) {
      dst->SetClipped(x + sx, y + sy, src.At(sx, sy));
    }
  }
}

}  // namespace cbir::imaging
