#include "imaging/draw.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cbir::imaging {

void DrawLine(Image* img, Point a, Point b, Rgb color) {
  int x0 = a.x, y0 = a.y, x1 = b.x, y1 = b.y;
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    img->SetClipped(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void DrawThickLine(Image* img, Point a, Point b, int thickness, Rgb color) {
  if (thickness <= 1) {
    DrawLine(img, a, b, color);
    return;
  }
  const int r = thickness / 2;
  int x0 = a.x, y0 = a.y, x1 = b.x, y1 = b.y;
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    FillCircle(img, Point{x0, y0}, r, color);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void FillCircle(Image* img, Point c, int radius, Rgb color) {
  if (radius < 0) return;
  const long r2 = static_cast<long>(radius) * radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (static_cast<long>(dx) * dx + static_cast<long>(dy) * dy <= r2) {
        img->SetClipped(c.x + dx, c.y + dy, color);
      }
    }
  }
}

void DrawCircle(Image* img, Point c, int radius, Rgb color) {
  if (radius < 0) return;
  int x = radius;
  int y = 0;
  int err = 1 - radius;
  while (x >= y) {
    img->SetClipped(c.x + x, c.y + y, color);
    img->SetClipped(c.x + y, c.y + x, color);
    img->SetClipped(c.x - y, c.y + x, color);
    img->SetClipped(c.x - x, c.y + y, color);
    img->SetClipped(c.x - x, c.y - y, color);
    img->SetClipped(c.x - y, c.y - x, color);
    img->SetClipped(c.x + y, c.y - x, color);
    img->SetClipped(c.x + x, c.y - y, color);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void FillRect(Image* img, Point top_left, Point bottom_right, Rgb color) {
  const int x0 = std::min(top_left.x, bottom_right.x);
  const int x1 = std::max(top_left.x, bottom_right.x);
  const int y0 = std::min(top_left.y, bottom_right.y);
  const int y1 = std::max(top_left.y, bottom_right.y);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      img->SetClipped(x, y, color);
    }
  }
}

void FillPolygon(Image* img, const std::vector<Point>& vertices, Rgb color) {
  if (vertices.size() < 3) return;
  int ymin = std::numeric_limits<int>::max();
  int ymax = std::numeric_limits<int>::min();
  for (const Point& p : vertices) {
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  ymin = std::max(ymin, 0);
  ymax = std::min(ymax, img->height() - 1);

  std::vector<double> xs;
  for (int y = ymin; y <= ymax; ++y) {
    xs.clear();
    const double yc = y + 0.5;  // sample at pixel centers
    for (size_t i = 0; i < vertices.size(); ++i) {
      const Point& p0 = vertices[i];
      const Point& p1 = vertices[(i + 1) % vertices.size()];
      const double y0 = p0.y, y1 = p1.y;
      if ((yc >= y0 && yc < y1) || (yc >= y1 && yc < y0)) {
        const double t = (yc - y0) / (y1 - y0);
        xs.push_back(p0.x + t * (p1.x - p0.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int x0 = static_cast<int>(std::ceil(xs[i]));
      const int x1 = static_cast<int>(std::floor(xs[i + 1]));
      for (int x = x0; x <= x1; ++x) img->SetClipped(x, y, color);
    }
  }
}

void FillVerticalGradient(Image* img, Rgb top, Rgb bottom) {
  const int h = img->height();
  for (int y = 0; y < h; ++y) {
    const double t = h <= 1 ? 0.0 : static_cast<double>(y) / (h - 1);
    auto mix = [t](uint8_t a, uint8_t b) {
      return static_cast<uint8_t>(a + t * (b - a) + 0.5);
    };
    const Rgb c{mix(top.r, bottom.r), mix(top.g, bottom.g),
                mix(top.b, bottom.b)};
    for (int x = 0; x < img->width(); ++x) img->Set(x, y, c);
  }
}

void FillRadialGradient(Image* img, Point center, int radius, Rgb center_color,
                        Rgb edge_color) {
  const double r = std::max(1, radius);
  for (int y = 0; y < img->height(); ++y) {
    for (int x = 0; x < img->width(); ++x) {
      const double d =
          std::sqrt(static_cast<double>(x - center.x) * (x - center.x) +
                    static_cast<double>(y - center.y) * (y - center.y));
      const double t = std::clamp(d / r, 0.0, 1.0);
      auto mix = [t](uint8_t a, uint8_t b) {
        return static_cast<uint8_t>(a + t * (b - a) + 0.5);
      };
      img->Set(x, y,
               Rgb{mix(center_color.r, edge_color.r),
                   mix(center_color.g, edge_color.g),
                   mix(center_color.b, edge_color.b)});
    }
  }
}

}  // namespace cbir::imaging
