#include "imaging/ppm_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace cbir::imaging {

namespace {

// Reads the next header token, skipping whitespace and '#' comments.
bool NextToken(std::istream& is, std::string* token) {
  token->clear();
  char ch;
  while (is.get(ch)) {
    if (ch == '#') {
      std::string dummy;
      std::getline(is, dummy);
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(ch))) {
      token->push_back(ch);
      while (is.get(ch) && !std::isspace(static_cast<unsigned char>(ch))) {
        token->push_back(ch);
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Status WritePpm(const Image& image, const std::string& path) {
  if (image.empty()) return Status::InvalidArgument("cannot write empty image");
  std::ofstream ofs(path, std::ios::binary | std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  ofs.write(reinterpret_cast<const char*>(image.data().data()),
            static_cast<std::streamsize>(image.data().size()));
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Image> ReadPpm(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) return Status::IoError("cannot open for reading: " + path);

  std::string token;
  if (!NextToken(ifs, &token) || token != "P6") {
    return Status::InvalidArgument("not a binary PPM (P6): " + path);
  }
  int width = 0, height = 0, maxval = 0;
  auto parse_int = [&](int* out) -> bool {
    if (!NextToken(ifs, &token)) return false;
    std::istringstream iss(token);
    return static_cast<bool>(iss >> *out);
  };
  if (!parse_int(&width) || !parse_int(&height) || !parse_int(&maxval)) {
    return Status::InvalidArgument("malformed PPM header: " + path);
  }
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("invalid PPM dimensions: " + path);
  }
  if (maxval != 255) {
    return Status::NotImplemented("only maxval 255 supported: " + path);
  }

  Image image(width, height);
  ifs.read(reinterpret_cast<char*>(image.data().data()),
           static_cast<std::streamsize>(image.data().size()));
  if (ifs.gcount() != static_cast<std::streamsize>(image.data().size())) {
    return Status::IoError("truncated PPM payload: " + path);
  }
  return image;
}

Status WritePgm(const GrayImage& image, const std::string& path) {
  if (image.empty()) return Status::InvalidArgument("cannot write empty image");
  std::ofstream ofs(path, std::ios::binary | std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  std::vector<uint8_t> row(image.width());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const float v = std::clamp(image.At(x, y), 0.0f, 1.0f);
      row[static_cast<size_t>(x)] = static_cast<uint8_t>(v * 255.0f + 0.5f);
    }
    ofs.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace cbir::imaging
