#ifndef CBIR_CORE_RF_SVM_SCHEME_H_
#define CBIR_CORE_RF_SVM_SCHEME_H_

#include "core/feedback_scheme.h"

namespace cbir::core {

/// \brief RF-SVM: the classical SVM relevance-feedback baseline.
///
/// Trains one SVM on the labeled visual features (RBF kernel, bound C_w) and
/// ranks the corpus by the decision value f_w(x_i) — the regular relevance
/// feedback the paper compares against (its Section 4 "typical" formulation).
class RfSvmScheme : public FeedbackScheme {
 public:
  explicit RfSvmScheme(const SchemeOptions& options) : options_(options) {}

  std::string name() const override { return "RF-SVM"; }

  Result<std::vector<int>> Rank(const FeedbackContext& ctx) const override;

 private:
  SchemeOptions options_;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_RF_SVM_SCHEME_H_
