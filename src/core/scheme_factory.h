#ifndef CBIR_CORE_SCHEME_FACTORY_H_
#define CBIR_CORE_SCHEME_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feedback_scheme.h"
#include "core/lrf_csvm_scheme.h"
#include "util/result.h"

namespace cbir::core {

/// Creates a scheme by its paper name: "Euclidean", "RF-SVM", "LRF-2SVMs" or
/// "LRF-CSVM" (case-sensitive). `csvm_options` only affects LRF-CSVM.
Result<std::shared_ptr<FeedbackScheme>> MakeScheme(
    const std::string& name, const SchemeOptions& scheme_options,
    const LrfCsvmOptions& csvm_options = {});

/// The four schemes of the paper's evaluation, in table column order.
std::vector<std::shared_ptr<FeedbackScheme>> MakePaperSchemes(
    const SchemeOptions& scheme_options,
    const LrfCsvmOptions& csvm_options = {});

}  // namespace cbir::core

#endif  // CBIR_CORE_SCHEME_FACTORY_H_
