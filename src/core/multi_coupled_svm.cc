#include "core/multi_coupled_svm.h"

#include <algorithm>
#include <memory>

#include "svm/trainer.h"
#include "util/logging.h"

namespace cbir::core {

double MultiCoupledModel::Decision(const std::vector<la::Vec>& samples) const {
  CBIR_CHECK_EQ(samples.size(), models.size());
  double sum = 0.0;
  for (size_t k = 0; k < models.size(); ++k) {
    sum += models[k].Decision(samples[k]);
  }
  return sum;
}

MultiCoupledSvm::MultiCoupledSvm(const MultiCsvmOptions& options)
    : options_(options) {
  CBIR_CHECK_GT(options_.rho, 0.0);
  CBIR_CHECK_GT(options_.rho_init, 0.0);
  CBIR_CHECK_LE(options_.rho_init, options_.rho);
  CBIR_CHECK_GE(options_.delta, 0.0);
  CBIR_CHECK_GT(options_.max_inner_iterations, 0);
}

Result<MultiCoupledModel> MultiCoupledSvm::Train(
    const std::vector<Modality>& modalities, const std::vector<double>& labels,
    const std::vector<double>& initial_unlabeled_labels) const {
  std::vector<ModalityView> views;
  views.reserve(modalities.size());
  for (const Modality& m : modalities) {
    views.push_back(ModalityView{&m.data, m.kernel, m.c, &m.initial_alpha,
                                 m.shared_cache});
  }
  return TrainViews(views, labels, initial_unlabeled_labels);
}

Result<MultiCoupledModel> MultiCoupledSvm::TrainViews(
    const std::vector<ModalityView>& modalities,
    const std::vector<double>& labels,
    const std::vector<double>& initial_unlabeled_labels) const {
  if (modalities.empty()) {
    return Status::InvalidArgument("multi coupled SVM: no modalities");
  }
  const size_t nl = labels.size();
  const size_t nu = initial_unlabeled_labels.size();
  const size_t n = nl + nu;
  if (nl == 0) {
    return Status::InvalidArgument("multi coupled SVM: no labeled samples");
  }
  for (size_t k = 0; k < modalities.size(); ++k) {
    if (modalities[k].data == nullptr) {
      return Status::InvalidArgument("multi coupled SVM: modality " +
                                     std::to_string(k) + " has no data");
    }
    if (modalities[k].data->rows() != n) {
      return Status::InvalidArgument(
          "multi coupled SVM: modality " + std::to_string(k) +
          " must have N_l + N' rows");
    }
    if (modalities[k].c <= 0.0) {
      return Status::InvalidArgument("multi coupled SVM: non-positive C");
    }
    const std::vector<double>* warm_start = modalities[k].initial_alpha;
    if (warm_start != nullptr && !warm_start->empty() &&
        warm_start->size() != n) {
      return Status::InvalidArgument(
          "multi coupled SVM: modality " + std::to_string(k) +
          " initial_alpha size must equal N_l + N'");
    }
  }

  std::vector<double> y(n);
  for (size_t i = 0; i < nl; ++i) y[i] = labels[i];
  for (size_t j = 0; j < nu; ++j) y[nl + j] = initial_unlabeled_labels[j];

  MultiCoupledModel model;
  CsvmDiagnostics& diag = model.diagnostics;
  const size_t num_modalities = modalities.size();
  diag.modality_cache_stats.resize(num_modalities);
  std::vector<svm::TrainOutput> outputs(num_modalities);
  // Successive solves of one modality differ only in rho_star or a few
  // flipped pseudo-labels; warm-start each from its predecessor, seeded
  // from the caller's previous round when provided.
  std::vector<std::vector<double>> warm(num_modalities);
  for (size_t k = 0; k < num_modalities; ++k) {
    if (modalities[k].initial_alpha != nullptr) {
      warm[k] = *modalities[k].initial_alpha;
    }
  }

  // One kernel cache per modality serves every QP of the chain: the kernel
  // matrix depends only on (data, kernel params), both constant here — the
  // chain's solves differ only in labels, C bounds and warm starts. Callers
  // may inject their own longer-lived cache through ModalityView;
  // reuse_chain_cache = false falls back to one fresh cache per solve.
  std::vector<std::unique_ptr<svm::KernelCache>> chain_caches(num_modalities);
  std::vector<svm::KernelCache*> caches(num_modalities, nullptr);
  for (size_t k = 0; k < num_modalities; ++k) {
    if (modalities[k].shared_cache != nullptr) {
      caches[k] = modalities[k].shared_cache;
    } else if (options_.reuse_chain_cache) {
      chain_caches[k] = std::make_unique<svm::KernelCache>(
          *modalities[k].data, modalities[k].kernel, options_.smo.cache_rows);
      caches[k] = chain_caches[k].get();
    }
  }

  auto solve_all = [&](double rho_star) -> Status {
    for (size_t k = 0; k < num_modalities; ++k) {
      std::vector<double> c_bounds(n);
      for (size_t i = 0; i < n; ++i) {
        c_bounds[i] = (i < nl ? 1.0 : rho_star) * modalities[k].c;
      }
      svm::TrainOptions train_options;
      train_options.kernel = modalities[k].kernel;
      train_options.smo = options_.smo;
      train_options.smo.initial_alpha = warm[k];
      train_options.smo.shared_cache = caches[k];
      svm::SvmTrainer trainer(train_options);
      auto out = trainer.TrainWeighted(*modalities[k].data, y, c_bounds);
      if (!out.ok()) return out.status();
      outputs[k] = std::move(out).value();
      warm[k] = outputs[k].alpha;
      diag.total_smo_iterations += outputs[k].iterations;
      diag.cache_stats.Accumulate(outputs[k].cache_stats);
      diag.modality_cache_stats[k].Accumulate(outputs[k].cache_stats);
    }
    return Status::OK();
  };

  double rho_star = nu == 0 ? options_.rho : options_.rho_init;
  while (true) {
    ++diag.outer_iterations;
    CBIR_RETURN_NOT_OK(solve_all(rho_star));

    for (int inner = 0; inner < options_.max_inner_iterations; ++inner) {
      // A pseudo-label is a flip candidate only when EVERY modality
      // penalizes it (the K-modality generalization of Fig. 1's
      // "xi' > 0 AND eta' > 0") and the total violation exceeds Delta.
      std::vector<std::pair<double, size_t>> pos_violators, neg_violators;
      for (size_t j = 0; j < nu; ++j) {
        double total = 0.0;
        bool all_positive = true;
        for (const svm::TrainOutput& out : outputs) {
          const double slack = out.slacks[nl + j];
          if (slack <= 0.0) {
            all_positive = false;
            break;
          }
          total += slack;
        }
        if (all_positive && total > options_.delta) {
          (y[nl + j] > 0 ? pos_violators : neg_violators)
              .emplace_back(total, nl + j);
        }
      }
      // A flipped sample's carried duals belong to the other class now;
      // restart them from zero so the warm start stays meaningful.
      const auto flip_sample = [&](size_t idx) {
        y[idx] = -y[idx];
        for (std::vector<double>& w : warm) w[idx] = 0.0;
      };
      int flips = 0;
      if (options_.enforce_class_balance) {
        std::sort(pos_violators.rbegin(), pos_violators.rend());
        std::sort(neg_violators.rbegin(), neg_violators.rend());
        const size_t swaps =
            std::min(pos_violators.size(), neg_violators.size());
        for (size_t s = 0; s < swaps; ++s) {
          flip_sample(pos_violators[s].second);
          flip_sample(neg_violators[s].second);
          flips += 2;
        }
      } else {
        for (const auto& [violation, idx] : pos_violators) {
          flip_sample(idx);
          ++flips;
        }
        for (const auto& [violation, idx] : neg_violators) {
          flip_sample(idx);
          ++flips;
        }
      }
      if (flips == 0) break;
      diag.total_flips += flips;
      ++diag.inner_iterations;
      if (inner + 1 >= options_.max_inner_iterations) {
        diag.inner_cap_hit = true;
      }
      CBIR_RETURN_NOT_OK(solve_all(rho_star));
    }

    if (rho_star >= options_.rho) break;
    rho_star = std::min(2.0 * rho_star, options_.rho);
  }

  model.models.reserve(num_modalities);
  model.alphas.reserve(num_modalities);
  for (svm::TrainOutput& out : outputs) {
    model.models.push_back(std::move(out.model));
    model.alphas.push_back(std::move(out.alpha));
  }
  model.unlabeled_labels.assign(y.begin() + static_cast<long>(nl), y.end());
  if (num_modalities >= 1) {
    diag.visual_objective = outputs.front().objective;
    diag.log_objective = outputs.back().objective;
  }
  return model;
}

}  // namespace cbir::core
