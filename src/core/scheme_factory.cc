#include "core/scheme_factory.h"

#include "core/euclidean_scheme.h"
#include "core/lrf_2svm_scheme.h"
#include "core/rf_svm_scheme.h"

namespace cbir::core {

Result<std::shared_ptr<FeedbackScheme>> MakeScheme(
    const std::string& name, const SchemeOptions& scheme_options,
    const LrfCsvmOptions& csvm_options) {
  if (name == "Euclidean") {
    return std::shared_ptr<FeedbackScheme>(new EuclideanScheme());
  }
  if (name == "RF-SVM") {
    return std::shared_ptr<FeedbackScheme>(new RfSvmScheme(scheme_options));
  }
  if (name == "LRF-2SVMs") {
    return std::shared_ptr<FeedbackScheme>(new Lrf2SvmScheme(scheme_options));
  }
  if (name == "LRF-CSVM") {
    return std::shared_ptr<FeedbackScheme>(
        new LrfCsvmScheme(scheme_options, csvm_options));
  }
  return Status::NotFound("unknown scheme: " + name);
}

std::vector<std::shared_ptr<FeedbackScheme>> MakePaperSchemes(
    const SchemeOptions& scheme_options, const LrfCsvmOptions& csvm_options) {
  std::vector<std::shared_ptr<FeedbackScheme>> out;
  for (const char* name :
       {"Euclidean", "RF-SVM", "LRF-2SVMs", "LRF-CSVM"}) {
    out.push_back(MakeScheme(name, scheme_options, csvm_options).value());
  }
  return out;
}

}  // namespace cbir::core
