#include "core/rf_svm_scheme.h"

#include <utility>

#include "svm/trainer.h"

namespace cbir::core {

Result<std::vector<int>> RfSvmScheme::Rank(const FeedbackContext& ctx) const {
  if (ctx.labeled_ids.empty()) {
    return Status::InvalidArgument("RF-SVM requires labeled samples");
  }

  la::Matrix train(ctx.labeled_ids.size(), ctx.db->features().cols());
  for (size_t i = 0; i < ctx.labeled_ids.size(); ++i) {
    train.SetRow(i, ctx.db->feature(ctx.labeled_ids[i]));
  }

  svm::TrainOptions train_options;
  train_options.kernel = options_.visual_kernel;
  train_options.c = options_.c_visual;
  train_options.smo = options_.smo;
  // Warm-start from the previous round of this session: carried judged
  // images keep their duals, newly judged ones enter at zero.
  SessionState* state = ctx.session_state;
  if (state != nullptr && !state->visual_alpha.empty()) {
    train_options.smo.initial_alpha.assign(ctx.labeled_ids.size(), 0.0);
    for (size_t i = 0; i < ctx.labeled_ids.size(); ++i) {
      if (auto it = state->visual_alpha.find(ctx.labeled_ids[i]);
          it != state->visual_alpha.end()) {
        train_options.smo.initial_alpha[i] = it->second;
      }
    }
  }
  // Carry kernel rows across rounds the same way the duals are carried: the
  // session state owns the training matrix + a cache keyed by image id, so
  // the judged set's stable prefix never recomputes its kernel entries.
  const la::Matrix* train_data = &train;
  if (state != nullptr && options_.cross_round_kernel_cache) {
    train_options.smo.shared_cache =
        state->visual_rows.Bind(ctx.labeled_ids, std::move(train),
                                options_.visual_kernel, options_.smo.cache_rows);
    train_data = &state->visual_rows.data();
  }
  svm::SvmTrainer trainer(train_options);
  CBIR_ASSIGN_OR_RETURN(svm::TrainOutput out,
                        trainer.Train(*train_data, ctx.labels));
  if (state != nullptr) {
    state->visual_alpha.clear();
    for (size_t i = 0; i < ctx.labeled_ids.size(); ++i) {
      state->visual_alpha[ctx.labeled_ids[i]] = out.alpha[i];
    }
  }

  const std::vector<double> scores = out.model.DecisionBatch(
      ctx.ScanFeatures());
  return FinalizeRanking(ctx, scores);
}

}  // namespace cbir::core
