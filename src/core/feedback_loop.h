#ifndef CBIR_CORE_FEEDBACK_LOOP_H_
#define CBIR_CORE_FEEDBACK_LOOP_H_

#include <vector>

#include "core/feedback_scheme.h"
#include "la/matrix.h"
#include "logdb/log_store.h"
#include "logdb/simulated_user.h"
#include "retrieval/image_database.h"
#include "util/result.h"

namespace cbir::core {

/// \brief Configuration of an iterative relevance-feedback session
/// (paper Section 2: "the relevance feedback procedures are repeated again
/// and again until the targets are found").
struct FeedbackLoopOptions {
  /// Number of feedback rounds after the initial Euclidean retrieval.
  int rounds = 4;
  /// Images judged per round (the paper's N_l per round).
  int judgments_per_round = 20;
  /// Noise applied to the in-session user judgments (0 reproduces the
  /// paper's automatic evaluation protocol).
  double judgment_noise = 0.0;
  /// Scopes at which precision is recorded after every round.
  std::vector<int> scopes = {20};
  uint64_t seed = 1;
  /// Retrieval depth requested from an approximate database index
  /// (0 = auto: max scope + rounds * judgments_per_round + 1). Ignored when
  /// the database has no index or an exhaustive one.
  int candidate_depth = 0;
};

/// \brief Result of one feedback session.
struct FeedbackLoopResult {
  /// precision[r][s] = precision at scopes[s] after round r (round 0 is the
  /// initial Euclidean retrieval, before any feedback).
  std::vector<std::vector<double>> precision;
  /// Total images judged by the simulated user across all rounds.
  int total_judgments = 0;
  /// The session recorded in log form (one LogSession per round), ready to
  /// be appended to a LogStore — this is how a deployment accumulates the
  /// long-term log the paper's schemes consume.
  std::vector<logdb::LogSession> recorded_sessions;
};

/// \brief Runs a complete multi-round relevance-feedback session for one
/// query: initial Euclidean retrieval, then `rounds` iterations of
/// (simulated) user judgment on the top unjudged results followed by
/// re-ranking with `scheme`.
///
/// The judged set accumulates across rounds, exactly like a real session.
/// Deterministic in `options.seed`.
Result<FeedbackLoopResult> RunFeedbackSession(
    const retrieval::ImageDatabase& db, const la::Matrix* log_features,
    const FeedbackScheme& scheme, int query_id,
    const FeedbackLoopOptions& options);

}  // namespace cbir::core

#endif  // CBIR_CORE_FEEDBACK_LOOP_H_
