#ifndef CBIR_CORE_MULTI_COUPLED_SVM_H_
#define CBIR_CORE_MULTI_COUPLED_SVM_H_

#include <vector>

#include "core/coupled_svm.h"
#include "la/matrix.h"
#include "svm/kernel.h"
#include "svm/model.h"
#include "util/result.h"

namespace cbir::core {

/// \brief One information modality in a multi-modal coupled problem.
struct Modality {
  /// (N_l + N') x dims sample matrix; labeled rows first, in the shared
  /// sample order used by every modality.
  la::Matrix data;
  svm::KernelParams kernel = svm::KernelParams::Rbf(1.0);
  /// Per-modality regularization C (the paper's C_w / C_u generalized).
  double c = 10.0;
  /// Optional warm start (empty or N_l + N' entries): this modality's dual
  /// variables from a previous round's model, zero for rows new this round.
  std::vector<double> initial_alpha;
  /// Optional caller-owned kernel cache for this modality, reused by every
  /// QP of the annealing/label-correction chain (and, when the caller keeps
  /// it across rounds, by future chains over overlapping data after a
  /// RebindRemapped). Must be bound to this modality's `data` matrix object
  /// with `kernel`-equal params and must outlive Train; see
  /// svm::SmoOptions::shared_cache for the aliasing/lifetime rules. Null
  /// lets the trainer build one chain-local cache per modality (see
  /// MultiCsvmOptions::reuse_chain_cache).
  svm::KernelCache* shared_cache = nullptr;
};

/// \brief Non-owning Modality: borrows the sample matrix (and warm start)
/// instead of copying them. For callers that already hold the matrices —
/// CoupledSvm hands its CsvmTrainData through this so the per-round
/// delegation copies nothing.
struct ModalityView {
  const la::Matrix* data = nullptr;          ///< required, caller-owned
  svm::KernelParams kernel = svm::KernelParams::Rbf(1.0);
  double c = 10.0;
  const std::vector<double>* initial_alpha = nullptr;  ///< null = cold start
  /// Same contract as Modality::shared_cache (bound to *data, outlives the
  /// call, not shared with concurrent solves).
  svm::KernelCache* shared_cache = nullptr;
};

/// \brief Hyper-parameters shared across modalities; semantics match
/// CsvmOptions (rho annealing, Delta-gated balanced label correction).
struct MultiCsvmOptions {
  double rho = 0.08;
  double rho_init = 1e-4;
  double delta = 2.0;  ///< threshold on the *sum* of per-modality slacks
  int max_inner_iterations = 20;
  bool enforce_class_balance = true;
  /// Share one kernel cache per modality across every QP of the
  /// annealing/label-correction chain (valid because only labels, C bounds
  /// and warm starts change between those QPs — never the kernel matrix).
  /// false restores the pre-sharing behaviour of one fresh cache per solve;
  /// results are identical either way, this is purely a perf lever kept as
  /// a before/after knob for the benchmarks. Ignored for modalities that
  /// inject their own shared_cache.
  bool reuse_chain_cache = true;
  svm::SmoOptions smo;
};

/// \brief Trained multi-modal coupled model: one SVM per modality plus the
/// final pseudo-labels. The coupled decision is the sum over modalities.
struct MultiCoupledModel {
  std::vector<svm::SvmModel> models;  ///< parallel to the input modalities
  std::vector<double> unlabeled_labels;
  /// Final dual variables of each modality's QP, in training-row order
  /// (parallel to the input modalities). Feed them back through
  /// Modality::initial_alpha to warm-start the next feedback round.
  std::vector<std::vector<double>> alphas;
  CsvmDiagnostics diagnostics;

  /// Sum of per-modality decision values; `samples[k]` is the test sample's
  /// representation in modality k.
  double Decision(const std::vector<la::Vec>& samples) const;
};

/// \brief The paper's Section 4.1 generalization: coupled SVM for learning
/// on data with K types of information.
///
/// The two-modality CoupledSvm is the K = 2 special case (verified by a
/// property test); the alternating optimization is identical:
///
/// 1. With pseudo-labels fixed, solve the K weighted SVM QPs (labeled
///    samples bounded by c_k, unlabeled by rho* c_k).
/// 2. With the models fixed, flip pseudo-labels that every modality rejects
///    (all slacks > 0) with joint violation above Delta, in class-balanced
///    pairs by default.
/// 3. Anneal rho* <- min(2 rho*, rho); repeat until rho* reaches rho.
class MultiCoupledSvm {
 public:
  explicit MultiCoupledSvm(const MultiCsvmOptions& options);

  const MultiCsvmOptions& options() const { return options_; }

  /// `labels` are the N_l user labels; `initial_unlabeled_labels` the N'
  /// starting pseudo-labels. Every modality must have N_l + N' rows.
  Result<MultiCoupledModel> Train(
      const std::vector<Modality>& modalities,
      const std::vector<double>& labels,
      const std::vector<double>& initial_unlabeled_labels) const;

  /// Same optimization over borrowed modality data (no matrix copies); the
  /// referenced matrices/vectors must stay alive for the duration of the
  /// call. (Named rather than overloaded: `Train({}, ...)` stays
  /// unambiguous.)
  Result<MultiCoupledModel> TrainViews(
      const std::vector<ModalityView>& modalities,
      const std::vector<double>& labels,
      const std::vector<double>& initial_unlabeled_labels) const;

 private:
  MultiCsvmOptions options_;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_MULTI_COUPLED_SVM_H_
