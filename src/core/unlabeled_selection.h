#ifndef CBIR_CORE_UNLABELED_SELECTION_H_
#define CBIR_CORE_UNLABELED_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cbir::core {

/// \brief Strategies for picking the N' unlabeled samples fed into the
/// coupled SVM (paper Section 5 / Fig. 1 step 1, discussed in Section 6.5).
enum class SelectionStrategy {
  /// The strategy the paper reports as successful (Section 6.5): "choose
  /// unlabeled images closest to the positive labeled images for half the
  /// samples, and those closest to the negative labeled images for the
  /// other half", measured by combined visual+log kernel similarity.
  /// Positive co-marks in the log make these pseudo-labels far more precise
  /// than decision-value extremes.
  kMostSimilar,
  /// Fig. 1's literal pseudo-code: N'/2 samples with maximal combined SVM
  /// decision (initialized +1) and N'/2 with minimal (initialized -1).
  kMaxMin,
  /// Active-learning style: samples closest to the decision boundary,
  /// initialized with the sign of the combined decision. The paper reports
  /// this "did not achieve promising improvements" — kept for the ablation.
  kBoundaryClosest,
  /// Uniformly random candidates, initialized with the distance sign.
  kRandom,
};

const char* SelectionStrategyToString(SelectionStrategy strategy);

/// \brief Per-candidate signals consumed by the selection strategies.
///
/// All vectors are parallel to `candidate_ids`. Strategies only read the
/// signals they need: kMostSimilar reads the similarity pair; the other
/// three read `combined_decisions`.
struct SelectionInputs {
  std::vector<int> candidate_ids;
  /// f_w(x_i) + f_u(r_i) from the step-1 labeled-only SVMs.
  std::vector<double> combined_decisions;
  /// Sum of combined kernel similarity to the labeled positive samples.
  std::vector<double> similarity_to_positives;
  /// Sum of combined kernel similarity to the labeled negative samples.
  std::vector<double> similarity_to_negatives;
};

/// \brief Chosen unlabeled samples plus their initial pseudo-labels Y'.
struct SelectionResult {
  std::vector<int> ids;
  std::vector<double> initial_labels;  ///< +1 / -1, parallel to ids
};

/// Selects up to `n_prime` samples (fewer when candidates run short).
/// `seed` only affects kRandom. Odd n_prime favors the positive half.
SelectionResult SelectUnlabeled(SelectionStrategy strategy,
                                const SelectionInputs& inputs, int n_prime,
                                uint64_t seed);

}  // namespace cbir::core

#endif  // CBIR_CORE_UNLABELED_SELECTION_H_
