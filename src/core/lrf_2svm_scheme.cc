#include "core/lrf_2svm_scheme.h"

#include "svm/trainer.h"

namespace cbir::core {

Result<std::vector<int>> Lrf2SvmScheme::Rank(
    const FeedbackContext& ctx) const {
  if (ctx.labeled_ids.empty()) {
    return Status::InvalidArgument("LRF-2SVMs requires labeled samples");
  }
  if (ctx.log_features == nullptr || ctx.log_features->empty()) {
    return Status::FailedPrecondition("LRF-2SVMs requires a user-feedback log");
  }

  const size_t nl = ctx.labeled_ids.size();
  la::Matrix train_visual(nl, ctx.db->features().cols());
  la::Matrix train_log(nl, ctx.log_features->cols());
  for (size_t i = 0; i < nl; ++i) {
    const size_t id = static_cast<size_t>(ctx.labeled_ids[i]);
    train_visual.SetRow(i, ctx.db->features().Row(id));
    train_log.SetRow(i, ctx.log_features->Row(id));
  }

  svm::TrainOptions visual_options;
  visual_options.kernel = options_.visual_kernel;
  visual_options.c = options_.c_visual;
  visual_options.smo = options_.smo;
  svm::SvmTrainer visual_trainer(visual_options);
  CBIR_ASSIGN_OR_RETURN(svm::TrainOutput visual,
                        visual_trainer.Train(train_visual, ctx.labels));

  svm::TrainOptions log_options;
  log_options.kernel = options_.log_kernel;
  log_options.c = options_.c_log;
  log_options.smo = options_.smo;
  svm::SvmTrainer log_trainer(log_options);
  CBIR_ASSIGN_OR_RETURN(svm::TrainOutput logm,
                        log_trainer.Train(train_log, ctx.labels));

  std::vector<double> scores = visual.model.DecisionBatch(ctx.ScanFeatures());
  const std::vector<double> log_scores =
      logm.model.DecisionBatch(*ctx.ScanLogFeatures());
  for (size_t i = 0; i < scores.size(); ++i) scores[i] += log_scores[i];
  return FinalizeRanking(ctx, scores);
}

}  // namespace cbir::core
