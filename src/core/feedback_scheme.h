#ifndef CBIR_CORE_FEEDBACK_SCHEME_H_
#define CBIR_CORE_FEEDBACK_SCHEME_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/session_cache.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "retrieval/image_database.h"
#include "svm/kernel.h"
#include "svm/smo_solver.h"
#include "util/result.h"

namespace cbir::core {

/// \brief Mutable cross-round state owned by one feedback session.
///
/// Successive rounds of a session retrain SVMs on nearly identical problems
/// (the labeled set only grows); schemes that solve QPs stash two kinds of
/// carry-over here, both keyed by image id, and reuse them next round:
///  - their final dual variables, to warm-start the next round's solver;
///  - per-modality kernel rows (SessionKernelCache), so the stable part of
///    the training set never recomputes its kernel entries.
/// Purely an accelerator: rankings are identical (within solver tolerance)
/// with or without a state attached. Move-only (the kernel caches own
/// slabs).
struct SessionState {
  std::unordered_map<int, double> visual_alpha;
  std::unordered_map<int, double> log_alpha;
  /// Cross-round kernel rows per modality. RF-SVM uses visual_rows only;
  /// LRF-CSVM uses both (rows = labeled + selected unlabeled samples).
  SessionKernelCache visual_rows;
  SessionKernelCache log_rows;

  void Clear() {
    visual_alpha.clear();
    log_alpha.clear();
    visual_rows.Clear();
    log_rows.Clear();
  }

  /// Bytes held by the kernel caches (slabs + gathered matrices); the
  /// serving layer charges this against its session-memory accounting.
  size_t AllocatedKernelBytes() const {
    return visual_rows.AllocatedBytes() + log_rows.AllocatedBytes();
  }
};

/// \brief Everything a relevance-feedback scheme sees for one query round.
///
/// `labeled_ids` / `labels` are the user's judgments on the initially
/// returned images (the paper's S_l with N_l = 20); `log_features` is the
/// dense N x M matrix of per-image log vectors r_i (null when no log store
/// is attached — the visual-only schemes ignore it).
struct FeedbackContext {
  const retrieval::ImageDatabase* db = nullptr;
  const la::Matrix* log_features = nullptr;
  /// Corpus id of the query image, or -1 for an external
  /// query-by-example: the caller then fills `query_feature` with the raw
  /// feature vector before Prepare() (the standard CBIR setting where the
  /// query is not part of the corpus). With an external query no corpus row
  /// is excluded from the ranking — an identical-feature corpus image ranks
  /// first instead of being dropped.
  int query_id = -1;
  std::vector<int> labeled_ids;
  std::vector<double> labels;  ///< +1 / -1, parallel to labeled_ids
  /// Optional per-session warm-start state (null = cold start every round).
  /// The owner (e.g. RunFeedbackSession) keeps it alive across rounds; a
  /// scheme may read and update it from Rank() despite constness because the
  /// state belongs to the session, not the scheme.
  SessionState* session_state = nullptr;
  /// Retrieval depth this session actually consumes (max evaluation scope
  /// plus the judgments it will request). When the database carries an
  /// approximate index, Prepare() narrows every corpus scan to the index's
  /// candidate set for this depth; 0 (or an exhaustive/absent index) keeps
  /// the scans corpus-wide.
  int candidate_depth = 0;

  // Derived values, filled by Prepare(). `query_feature` is an *input* when
  // query_id < 0 (external query); for in-corpus queries Prepare overwrites
  // it with the corpus row.
  la::Vec query_feature;
  /// Ids of the rows the schemes score, ascending (empty = every image).
  std::vector<int> scan_ids;
  /// Squared query distance per scanned row, parallel to the scan space.
  std::vector<double> query_distances;

  /// Computes the derived members; must be called once before Rank().
  /// Malformed input (null db, out-of-range query id, empty or
  /// wrong-dimension external query feature, labeled/labels arity mismatch)
  /// returns InvalidArgument instead of aborting — a bad request must never
  /// kill a serving process.
  Status Prepare();

  // --- Scan space: the rows corpus-wide scoring loops iterate over. -------
  /// Number of scanned rows (the whole corpus unless narrowed).
  size_t scan_size() const;
  /// Image id of scan position `pos`.
  int ScanId(size_t pos) const;
  /// Visual feature rows of the scan space; the full corpus matrix when the
  /// scan is exhaustive, otherwise a gathered candidate matrix.
  const la::Matrix& ScanFeatures() const;
  /// Log-vector rows of the scan space (null when no log is attached).
  const la::Matrix* ScanLogFeatures() const;

 private:
  la::Matrix scan_features_;      ///< gathered rows when scan_ids is set
  la::Matrix scan_log_features_;  ///< gathered log rows when scan_ids is set
};

/// \brief Shared hyper-parameters for the SVM-based schemes.
struct SchemeOptions {
  double c_visual = 10.0;  ///< C_w
  double c_log = 10.0;     ///< C_u
  svm::KernelParams visual_kernel = svm::KernelParams::Rbf(1.0);
  svm::KernelParams log_kernel = svm::KernelParams::Rbf(1.0);
  /// Carry kernel rows across feedback rounds through the session's
  /// SessionState (RF-SVM and LRF-CSVM). Only effective when a session
  /// state is attached to the context; false recomputes every kernel row
  /// each round. Rankings are identical within solver tolerance either way.
  bool cross_round_kernel_cache = true;
  svm::SmoOptions smo;
};

/// Fills kernel gammas with LIBSVM-style defaults computed from the data
/// (1 / (dims * variance)); log kernel falls back to visual defaults when no
/// log matrix is given.
SchemeOptions MakeDefaultSchemeOptions(const retrieval::ImageDatabase& db,
                                       const la::Matrix* log_features);

/// \brief Interface implemented by all four compared schemes.
///
/// Rank() returns every image id except the query itself, ordered from most
/// to least relevant. Implementations must be const-thread-safe: the
/// experiment harness calls Rank concurrently for different queries.
class FeedbackScheme {
 public:
  virtual ~FeedbackScheme() = default;

  virtual std::string name() const = 0;

  virtual Result<std::vector<int>> Rank(const FeedbackContext& ctx) const = 0;

 protected:
  /// Ranks by descending `scores` with Euclidean-distance tie-breaking,
  /// excluding the query id. `scores` is parallel to the context's scan
  /// space (ctx.ScanId maps positions to image ids). Shared by every
  /// learning scheme.
  static std::vector<int> FinalizeRanking(const FeedbackContext& ctx,
                                          const std::vector<double>& scores);
};

}  // namespace cbir::core

#endif  // CBIR_CORE_FEEDBACK_SCHEME_H_
