#ifndef CBIR_CORE_EXPERIMENT_H_
#define CBIR_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feedback_scheme.h"
#include "la/matrix.h"
#include "retrieval/evaluator.h"
#include "retrieval/image_database.h"

namespace cbir::core {

/// \brief Configuration of the paper's evaluation protocol (Section 6.4).
struct ExperimentOptions {
  int num_queries = 200;  ///< paper: 200 random queries
  int num_labeled = 20;   ///< paper: top-20 initial results judged
  uint64_t seed = 123;
  std::vector<int> scopes = retrieval::PaperScopes();
  int num_threads = 0;    ///< 0 = hardware concurrency
  /// Retrieval depth requested from an approximate database index
  /// (0 = auto: max scope + num_labeled + 1). Ignored when the database has
  /// no index or an exhaustive one.
  int candidate_depth = 0;
};

/// \brief One scheme's row block in a results table.
struct SchemeResult {
  std::string name;
  std::vector<double> precision;  ///< mean precision per scope
  double map = 0.0;               ///< mean over scopes (the paper's MAP row)
};

/// \brief Full experiment output.
struct ExperimentResult {
  std::vector<int> scopes;
  std::vector<SchemeResult> schemes;
  int num_queries = 0;
};

/// \brief Runs the Section 6.4 protocol:
///
/// For each of `num_queries` randomly drawn query images: rank the corpus by
/// Euclidean distance, auto-judge the top `num_labeled` results against
/// category ground truth (the paper simulates noise-free user judgments for
/// evaluation), hand the labeled set to every scheme, and accumulate
/// precision at each scope over the schemes' re-rankings. The query image is
/// excluded from returned rankings.
///
/// Deterministic in `options.seed`; queries run in parallel.
ExperimentResult RunExperiment(
    const retrieval::ImageDatabase& db, const la::Matrix* log_features,
    const std::vector<std::shared_ptr<FeedbackScheme>>& schemes,
    const ExperimentOptions& options);

/// Renders the result in the paper's table layout (one row per scope, one
/// column per scheme, improvement percentages versus `baseline_column`
/// appended to later columns, and a final MAP row).
std::string FormatPaperTable(const ExperimentResult& result,
                             int baseline_column = 1);

}  // namespace cbir::core

#endif  // CBIR_CORE_EXPERIMENT_H_
