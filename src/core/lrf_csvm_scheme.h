#ifndef CBIR_CORE_LRF_CSVM_SCHEME_H_
#define CBIR_CORE_LRF_CSVM_SCHEME_H_

#include "core/coupled_svm.h"
#include "core/feedback_scheme.h"
#include "core/unlabeled_selection.h"
#include "util/sync.h"

namespace cbir::core {

/// \brief Options for the full LRF-CSVM algorithm (paper Fig. 1).
struct LrfCsvmOptions {
  /// Number of unlabeled samples N' engaged in the coupled training.
  int n_prime = 20;
  /// Default: the Section 6.5 "closest to the labeled samples" strategy;
  /// kMaxMin is Fig. 1's literal pseudo-code (see the ablation bench).
  SelectionStrategy selection = SelectionStrategy::kMostSimilar;
  /// Weight of the log-side kernel similarity when scoring closeness to
  /// labeled samples for kMostSimilar. Values > 1 prioritize log-confirmed
  /// (co-marked) candidates, whose pseudo-labels are the most precise
  /// information the feedback log offers.
  double selection_log_weight = 2.0;
  CsvmOptions csvm;
  /// Seed for stochastic selection strategies (kRandom).
  uint64_t selection_seed = 1;
};

/// \brief LRF-CSVM — the paper's contribution (Algorithm in Fig. 1).
///
/// 1. Train plain SVMs on the labeled visual features and labeled log
///    vectors; compute the combined distance f_w(x_i) + f_u(r_i) for every
///    unlabeled image.
/// 2. Select N'/2 samples with maximal and N'/2 with minimal combined
///    distance, pseudo-labeled +1 / -1.
/// 3. Train the coupled SVM with rho annealing and Delta-gated label
///    correction.
/// 4. Rank all images by CSVM_Dist(x_i, r_i) = f_w(x_i) + f_u(r_i).
class LrfCsvmScheme : public FeedbackScheme {
 public:
  LrfCsvmScheme(const SchemeOptions& scheme_options,
                const LrfCsvmOptions& options);

  std::string name() const override { return "LRF-CSVM"; }

  Result<std::vector<int>> Rank(const FeedbackContext& ctx) const override;

  /// Exposes the trained coupled model for the given context (used by tests
  /// and the feedback_session example to inspect diagnostics).
  Result<CoupledModel> TrainForContext(const FeedbackContext& ctx) const;

  /// Diagnostics summed over every coupled training this scheme instance
  /// ran (all queries, all rounds) — counters sum, cache stats aggregate
  /// per modality. Thread-safe; the experiment driver prints this next to
  /// the index stats.
  CsvmDiagnostics AggregatedDiagnostics() const;

 private:
  LrfCsvmOptions options_;
  bool cross_round_kernel_cache_ = true;

  mutable util::Mutex diagnostics_mu_{util::LockRank::kScheme,
                                      "lrf_csvm_diagnostics"};
  mutable CsvmDiagnostics aggregated_diagnostics_
      CBIR_GUARDED_BY(diagnostics_mu_);
};

}  // namespace cbir::core

#endif  // CBIR_CORE_LRF_CSVM_SCHEME_H_
