#ifndef CBIR_CORE_COUPLED_SVM_H_
#define CBIR_CORE_COUPLED_SVM_H_

#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"
#include "svm/model.h"
#include "svm/smo_solver.h"
#include "util/result.h"

namespace cbir::core {

/// \brief Hyper-parameters of the coupled SVM (paper Eq. 1 and Fig. 1).
struct CsvmOptions {
  double c_visual = 10.0;  ///< C_w
  double c_log = 10.0;     ///< C_u
  /// Final regularization weight for unlabeled samples (their box bound is
  /// rho * C). The annealing starts at rho_init = 1e-4 (per Fig. 1) and
  /// doubles per outer iteration, mirroring transductive SVM scheduling.
  /// The paper leaves the final value open ("whether existing an optimal
  /// parameter ... is still an open question", Section 6.5); 0.08 is the
  /// value selected by the rho ablation bench across both dataset sizes —
  /// pseudo-labels are only ~2/3 accurate, so they get a fraction of a real
  /// label's authority.
  double rho = 0.08;
  double rho_init = 1e-4;
  /// Slack-sum threshold Delta: an unlabeled pseudo-label flips only when
  /// both modalities penalize it (xi' > 0 and eta' > 0) and the joint
  /// violation exceeds Delta. Controls "the degree of error" (Fig. 1).
  ///
  /// Default 2.0: for slacks in (0, 2), flipping changes the sample's joint
  /// hinge loss from xi + eta to (2 - xi) + (2 - eta), so a flip reduces the
  /// Section 4.2 objective exactly when xi + eta > 2. Delta = 2 therefore
  /// makes Fig. 1's rule coincide with the exact integer-program label
  /// update; smaller values admit loss-increasing flips that oscillate.
  double delta = 2.0;
  /// Cap on label-correction retraining rounds per outer iteration; Fig. 1's
  /// inner WHILE has no termination proof (the paper lists convergence as an
  /// open problem), so we bound it.
  int max_inner_iterations = 20;
  /// Keep the pseudo-label class ratio fixed during label correction by
  /// flipping violators in +/- pairs (strongest violations first), exactly
  /// as transductive SVM does (Joachims ICML'99 — the paper's reference
  /// [18], which Section 4.2 says the annealing imitates). Without this
  /// guard, a nearly-single-class labeled set lets the correction step
  /// relabel the entire pseudo-negative half positive and the decision
  /// function collapses. false = the literal Fig. 1 rule.
  bool enforce_class_balance = true;
  /// Share one kernel cache per modality across the whole annealing /
  /// label-correction chain (identical results; see
  /// MultiCsvmOptions::reuse_chain_cache). false = one cache per QP solve,
  /// the pre-sharing baseline kept for the benchmarks.
  bool reuse_chain_cache = true;

  svm::KernelParams visual_kernel = svm::KernelParams::Rbf(1.0);
  svm::KernelParams log_kernel = svm::KernelParams::Rbf(1.0);
  svm::SmoOptions smo;
};

/// \brief Convergence/behaviour report from one coupled training run.
struct CsvmDiagnostics {
  int outer_iterations = 0;     ///< rho-annealing steps
  int inner_iterations = 0;     ///< label-correction retraining rounds
  int total_flips = 0;          ///< pseudo-label flips across all rounds
  bool inner_cap_hit = false;   ///< true if any inner loop hit the cap
  double visual_objective = 0.0;
  double log_objective = 0.0;
  /// SMO iterations summed across every QP solve of the alternating
  /// optimization (both modalities); the cost driver warm-starting attacks.
  long total_smo_iterations = 0;
  /// Kernel-cache counters aggregated across all solves.
  svm::CacheStats cache_stats;
  /// The same counters split per modality (CoupledSvm: [0] = visual,
  /// [1] = log), so shared-cache reuse is observable per kernel.
  std::vector<svm::CacheStats> modality_cache_stats;

  /// Folds another run's diagnostics in (counters sum, objectives keep the
  /// other run's values); used to aggregate across many queries/rounds.
  void Accumulate(const CsvmDiagnostics& other) {
    outer_iterations += other.outer_iterations;
    inner_iterations += other.inner_iterations;
    total_flips += other.total_flips;
    inner_cap_hit = inner_cap_hit || other.inner_cap_hit;
    visual_objective = other.visual_objective;
    log_objective = other.log_objective;
    total_smo_iterations += other.total_smo_iterations;
    cache_stats.Accumulate(other.cache_stats);
    if (modality_cache_stats.size() < other.modality_cache_stats.size()) {
      modality_cache_stats.resize(other.modality_cache_stats.size());
    }
    for (size_t k = 0; k < other.modality_cache_stats.size(); ++k) {
      modality_cache_stats[k].Accumulate(other.modality_cache_stats[k]);
    }
  }
};

/// \brief The trained pair of consistent models.
struct CoupledModel {
  svm::SvmModel visual;
  svm::SvmModel log;
  /// Final pseudo-labels of the unlabeled samples (post label correction).
  std::vector<double> unlabeled_labels;
  /// Final dual variables of both QPs, in training-row order. Feed them back
  /// through CsvmTrainData::initial_*_alpha (aligned by image, zero for new
  /// rows) to warm-start the next feedback round.
  std::vector<double> visual_alpha;
  std::vector<double> log_alpha;
  CsvmDiagnostics diagnostics;

  /// The paper's CSVM_Dist: f_w(x) + f_u(r).
  double Decision(const la::Vec& x, const la::Vec& r) const {
    return visual.Decision(x) + log.Decision(r);
  }
};

/// \brief Training data for one coupled solve. Rows 0..num_labeled-1 of both
/// matrices are the labeled samples; the rest are the selected unlabeled
/// samples, in the same order as `initial_unlabeled_labels`.
struct CsvmTrainData {
  la::Matrix visual;            ///< (N_l + N') x d
  la::Matrix log;               ///< (N_l + N') x M
  std::vector<double> labels;   ///< N_l user labels, +1/-1
  std::vector<double> initial_unlabeled_labels;  ///< N' pseudo-labels
  /// Optional warm start (empty or N_l + N' entries): dual variables carried
  /// over from the previous round's CoupledModel for rows whose image carries
  /// over, zero for rows that are new this round.
  std::vector<double> initial_visual_alpha;
  std::vector<double> initial_log_alpha;
};

/// \brief Non-owning CsvmTrainData: borrows the matrices/vectors (which must
/// outlive the Train call) and optionally injects caller-owned per-modality
/// kernel caches. This is how a feedback session trains on matrices that
/// persist in its core::SessionState, so the caches bound to them can carry
/// kernel rows across rounds.
struct CsvmTrainView {
  const la::Matrix* visual = nullptr;  ///< required, (N_l + N') x d
  const la::Matrix* log = nullptr;     ///< required, (N_l + N') x M
  const std::vector<double>* labels = nullptr;  ///< required, N_l entries
  const std::vector<double>* initial_unlabeled_labels = nullptr;  ///< N'
  /// Null or empty = cold start (otherwise N_l + N' entries).
  const std::vector<double>* initial_visual_alpha = nullptr;
  const std::vector<double>* initial_log_alpha = nullptr;
  /// Optional caches bound to *visual / *log with the scheme's kernels;
  /// contract as in svm::SmoOptions::shared_cache. Null = chain-local
  /// caches per CsvmOptions::reuse_chain_cache.
  svm::KernelCache* visual_cache = nullptr;
  svm::KernelCache* log_cache = nullptr;
};

/// \brief Trainer implementing the alternating optimization of Section 4.2:
///
/// 1. With pseudo-labels Y' fixed, solve the two weighted SVM QPs (visual
///    and log) with per-sample bounds C (labeled) and rho* C (unlabeled).
/// 2. With the models fixed, update Y' by the integer program — implemented
///    as Fig. 1's flip rule: flip y'_i when xi'_i > 0, eta'_i > 0 and
///    xi'_i + eta'_i > Delta.
/// 3. Anneal rho* <- min(2 rho*, rho); repeat until rho* reaches rho.
///
/// Deviation from Fig. 1 (documented in DESIGN.md): we run the final
/// train/correct round at rho* == rho inclusive, matching transductive-SVM
/// practice; the literal pseudo-code exits before ever training at rho.
///
/// Implemented as the K = 2 instantiation of MultiCoupledSvm (the paper's
/// Section 4.1 generalization), so the annealing / label-correction chain
/// exists exactly once.
class CoupledSvm {
 public:
  explicit CoupledSvm(const CsvmOptions& options);

  const CsvmOptions& options() const { return options_; }

  Result<CoupledModel> Train(const CsvmTrainData& data) const;

  /// Same optimization over borrowed data (no matrix copies), with optional
  /// injected per-modality kernel caches. Train(data) is a thin wrapper over
  /// this.
  Result<CoupledModel> TrainView(const CsvmTrainView& data) const;

 private:
  CsvmOptions options_;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_COUPLED_SVM_H_
