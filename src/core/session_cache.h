#ifndef CBIR_CORE_SESSION_CACHE_H_
#define CBIR_CORE_SESSION_CACHE_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "svm/kernel.h"
#include "svm/kernel_cache.h"

namespace cbir::core {

/// \brief Per-modality kernel rows carried across the rounds of one
/// relevance-feedback session, keyed by image id (exactly like the
/// warm-start alphas in SessionState).
///
/// Round t+1 of a session retrains on a training set that overlaps round
/// t's heavily: the judged set only grows and the unlabeled selection
/// shifts slowly. The kernel entry for an image pair depends only on the
/// two images (and the kernel params), so every surviving pair's entry can
/// be carried over. This class owns the gathered training matrix (so the
/// svm::KernelCache bound to it never dangles between rounds) plus the
/// image id of each row, and remaps resident rows onto each new round's
/// training set via KernelCache::RebindRemapped.
///
/// Purely an accelerator: rankings are identical within solver tolerance
/// with or without it. Not thread-safe; the owning session serializes
/// rounds (e.g. behind ServeSession::mu).
class SessionKernelCache {
 public:
  /// Binds the cache to this round's training set: `ids[i]` is the image id
  /// of row i of `rows` (ids must be unique). Takes ownership of both.
  /// Returns the cache, bound to the stored matrix — train on data() (the
  /// exact object), with svm::SmoOptions::shared_cache set to the returned
  /// pointer. Rows surviving from the previous bind keep their cached
  /// kernel entries; pairs involving new images are computed. A change of
  /// `params` invalidates everything (kernel values would differ).
  svm::KernelCache* Bind(std::vector<int> ids, la::Matrix rows,
                         const svm::KernelParams& params, size_t max_rows);

  /// The training matrix of the current bind; valid until the next Bind().
  const la::Matrix& data() const { return data_; }
  const std::vector<int>& ids() const { return ids_; }
  bool empty() const { return cache_ == nullptr; }
  const svm::KernelCache* cache() const { return cache_.get(); }

  /// Bytes held by the cache slab + the owned training matrix; feeds the
  /// serving layer's per-session memory accounting.
  size_t AllocatedBytes() const;

  /// Drops the cache, matrix and ids (used when a session ends or is
  /// evicted).
  void Clear();

 private:
  la::Matrix data_;       ///< gathered training rows, owned across rounds
  std::vector<int> ids_;  ///< image id per row of data_
  std::unique_ptr<svm::KernelCache> cache_;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_SESSION_CACHE_H_
