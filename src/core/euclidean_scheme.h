#ifndef CBIR_CORE_EUCLIDEAN_SCHEME_H_
#define CBIR_CORE_EUCLIDEAN_SCHEME_H_

#include "core/feedback_scheme.h"

namespace cbir::core {

/// \brief The paper's reference curve: rank by Euclidean distance on
/// low-level visual features, ignoring all feedback.
class EuclideanScheme : public FeedbackScheme {
 public:
  std::string name() const override { return "Euclidean"; }

  Result<std::vector<int>> Rank(const FeedbackContext& ctx) const override;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_EUCLIDEAN_SCHEME_H_
