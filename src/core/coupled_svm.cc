#include "core/coupled_svm.h"

#include <utility>

#include "core/multi_coupled_svm.h"
#include "util/logging.h"

namespace cbir::core {

CoupledSvm::CoupledSvm(const CsvmOptions& options) : options_(options) {
  CBIR_CHECK_GT(options_.c_visual, 0.0);
  CBIR_CHECK_GT(options_.c_log, 0.0);
  CBIR_CHECK_GT(options_.rho, 0.0);
  CBIR_CHECK_GT(options_.rho_init, 0.0);
  CBIR_CHECK_LE(options_.rho_init, options_.rho);
  CBIR_CHECK_GE(options_.delta, 0.0);
  CBIR_CHECK_GT(options_.max_inner_iterations, 0);
}

Result<CoupledModel> CoupledSvm::Train(const CsvmTrainData& data) const {
  CsvmTrainView view;
  view.visual = &data.visual;
  view.log = &data.log;
  view.labels = &data.labels;
  view.initial_unlabeled_labels = &data.initial_unlabeled_labels;
  view.initial_visual_alpha = &data.initial_visual_alpha;
  view.initial_log_alpha = &data.initial_log_alpha;
  return TrainView(view);
}

// The two-modality coupled SVM is exactly the K = 2 instantiation of the
// Section 4.1 generalization, so TrainView delegates to MultiCoupledSvm (one
// shared implementation of the rho-annealing / label-correction chain)
// and repackages the pair of models under the paper's visual/log names.
Result<CoupledModel> CoupledSvm::TrainView(const CsvmTrainView& data) const {
  if (data.visual == nullptr || data.log == nullptr ||
      data.labels == nullptr || data.initial_unlabeled_labels == nullptr) {
    return Status::InvalidArgument("coupled SVM: null train-view field");
  }
  const size_t nl = data.labels->size();
  const size_t nu = data.initial_unlabeled_labels->size();
  const size_t n = nl + nu;
  if (nl == 0) {
    return Status::InvalidArgument("coupled SVM: no labeled samples");
  }
  if (data.visual->rows() != n || data.log->rows() != n) {
    return Status::InvalidArgument(
        "coupled SVM: matrix rows must equal N_l + N'");
  }
  if (data.initial_visual_alpha != nullptr &&
      !data.initial_visual_alpha->empty() &&
      data.initial_visual_alpha->size() != n) {
    return Status::InvalidArgument(
        "coupled SVM: initial_visual_alpha size must equal N_l + N'");
  }
  if (data.initial_log_alpha != nullptr && !data.initial_log_alpha->empty() &&
      data.initial_log_alpha->size() != n) {
    return Status::InvalidArgument(
        "coupled SVM: initial_log_alpha size must equal N_l + N'");
  }

  MultiCsvmOptions multi_options;
  multi_options.rho = options_.rho;
  multi_options.rho_init = options_.rho_init;
  multi_options.delta = options_.delta;
  multi_options.max_inner_iterations = options_.max_inner_iterations;
  multi_options.enforce_class_balance = options_.enforce_class_balance;
  multi_options.reuse_chain_cache = options_.reuse_chain_cache;
  multi_options.smo = options_.smo;

  // Views: the per-round delegation borrows the caller's matrices.
  std::vector<ModalityView> modalities(2);
  modalities[0].data = data.visual;
  modalities[0].kernel = options_.visual_kernel;
  modalities[0].c = options_.c_visual;
  modalities[0].initial_alpha = data.initial_visual_alpha;
  modalities[0].shared_cache = data.visual_cache;
  modalities[1].data = data.log;
  modalities[1].kernel = options_.log_kernel;
  modalities[1].c = options_.c_log;
  modalities[1].initial_alpha = data.initial_log_alpha;
  modalities[1].shared_cache = data.log_cache;

  CBIR_ASSIGN_OR_RETURN(
      MultiCoupledModel multi,
      MultiCoupledSvm(multi_options)
          .TrainViews(modalities, *data.labels,
                      *data.initial_unlabeled_labels));

  CoupledModel model;
  model.visual = std::move(multi.models[0]);
  model.log = std::move(multi.models[1]);
  model.visual_alpha = std::move(multi.alphas[0]);
  model.log_alpha = std::move(multi.alphas[1]);
  model.unlabeled_labels = std::move(multi.unlabeled_labels);
  model.diagnostics = multi.diagnostics;
  return model;
}

}  // namespace cbir::core
