#include "core/coupled_svm.h"

#include <algorithm>

#include "svm/trainer.h"
#include "util/logging.h"

namespace cbir::core {

CoupledSvm::CoupledSvm(const CsvmOptions& options) : options_(options) {
  CBIR_CHECK_GT(options_.c_visual, 0.0);
  CBIR_CHECK_GT(options_.c_log, 0.0);
  CBIR_CHECK_GT(options_.rho, 0.0);
  CBIR_CHECK_GT(options_.rho_init, 0.0);
  CBIR_CHECK_LE(options_.rho_init, options_.rho);
  CBIR_CHECK_GE(options_.delta, 0.0);
  CBIR_CHECK_GT(options_.max_inner_iterations, 0);
}

Result<CoupledModel> CoupledSvm::Train(const CsvmTrainData& data) const {
  const size_t nl = data.labels.size();
  const size_t nu = data.initial_unlabeled_labels.size();
  const size_t n = nl + nu;
  if (nl == 0) {
    return Status::InvalidArgument("coupled SVM: no labeled samples");
  }
  if (data.visual.rows() != n || data.log.rows() != n) {
    return Status::InvalidArgument(
        "coupled SVM: matrix rows must equal N_l + N'");
  }

  // Working label vector: user labels followed by mutable pseudo-labels.
  std::vector<double> y(n);
  for (size_t i = 0; i < nl; ++i) y[i] = data.labels[i];
  for (size_t j = 0; j < nu; ++j) y[nl + j] = data.initial_unlabeled_labels[j];

  if (!data.initial_visual_alpha.empty() &&
      data.initial_visual_alpha.size() != n) {
    return Status::InvalidArgument(
        "coupled SVM: initial_visual_alpha size must equal N_l + N'");
  }
  if (!data.initial_log_alpha.empty() && data.initial_log_alpha.size() != n) {
    return Status::InvalidArgument(
        "coupled SVM: initial_log_alpha size must equal N_l + N'");
  }

  CoupledModel model;
  CsvmDiagnostics& diag = model.diagnostics;

  svm::TrainOptions visual_options;
  visual_options.kernel = options_.visual_kernel;
  visual_options.smo = options_.smo;
  svm::TrainOptions log_options;
  log_options.kernel = options_.log_kernel;
  log_options.smo = options_.smo;

  // Every QP after the first solves a problem differing only in rho_star or
  // a few flipped pseudo-labels; its predecessor's alphas are a near-optimal
  // starting point. Seeded from the caller's previous round when provided.
  std::vector<double> warm_visual = data.initial_visual_alpha;
  std::vector<double> warm_log = data.initial_log_alpha;

  auto solve_both = [&](double rho_star, svm::TrainOutput* visual_out,
                        svm::TrainOutput* log_out) -> Status {
    std::vector<double> c_visual(n), c_log(n);
    for (size_t i = 0; i < n; ++i) {
      const double scale = i < nl ? 1.0 : rho_star;
      c_visual[i] = scale * options_.c_visual;
      c_log[i] = scale * options_.c_log;
    }
    visual_options.smo.initial_alpha = warm_visual;
    log_options.smo.initial_alpha = warm_log;
    svm::SvmTrainer visual_trainer(visual_options);
    svm::SvmTrainer log_trainer(log_options);
    auto v = visual_trainer.TrainWeighted(data.visual, y, c_visual);
    if (!v.ok()) return v.status();
    auto l = log_trainer.TrainWeighted(data.log, y, c_log);
    if (!l.ok()) return l.status();
    *visual_out = std::move(v).value();
    *log_out = std::move(l).value();
    warm_visual = visual_out->alpha;
    warm_log = log_out->alpha;
    diag.total_smo_iterations +=
        visual_out->iterations + log_out->iterations;
    diag.cache_stats.Accumulate(visual_out->cache_stats);
    diag.cache_stats.Accumulate(log_out->cache_stats);
    return Status::OK();
  };

  svm::TrainOutput visual_out, log_out;
  double rho_star = nu == 0 ? options_.rho : options_.rho_init;

  while (true) {
    ++diag.outer_iterations;
    CBIR_RETURN_NOT_OK(solve_both(rho_star, &visual_out, &log_out));

    // Label-correction loop (Fig. 1 inner WHILE): flip pseudo-labels that
    // both modalities jointly reject beyond Delta, then re-solve. With the
    // class-balance guard, violators flip in +/- pairs (strongest joint
    // violation first) so the pseudo-label ratio is preserved, as in
    // transductive SVM.
    for (int inner = 0; inner < options_.max_inner_iterations; ++inner) {
      std::vector<std::pair<double, size_t>> pos_violators, neg_violators;
      for (size_t j = 0; j < nu; ++j) {
        const double xi = visual_out.slacks[nl + j];
        const double eta = log_out.slacks[nl + j];
        if (xi > 0.0 && eta > 0.0 && xi + eta > options_.delta) {
          (y[nl + j] > 0 ? pos_violators : neg_violators)
              .emplace_back(xi + eta, nl + j);
        }
      }
      // A flipped sample's carried alpha belongs to the other class now;
      // restart it from zero so the warm start stays meaningful.
      const auto flip_sample = [&](size_t idx) {
        y[idx] = -y[idx];
        warm_visual[idx] = 0.0;
        warm_log[idx] = 0.0;
      };
      int flips = 0;
      if (options_.enforce_class_balance) {
        std::sort(pos_violators.rbegin(), pos_violators.rend());
        std::sort(neg_violators.rbegin(), neg_violators.rend());
        const size_t swaps =
            std::min(pos_violators.size(), neg_violators.size());
        for (size_t s = 0; s < swaps; ++s) {
          flip_sample(pos_violators[s].second);
          flip_sample(neg_violators[s].second);
          flips += 2;
        }
      } else {
        for (const auto& [violation, idx] : pos_violators) {
          flip_sample(idx);
          ++flips;
        }
        for (const auto& [violation, idx] : neg_violators) {
          flip_sample(idx);
          ++flips;
        }
      }
      if (flips == 0) break;
      diag.total_flips += flips;
      ++diag.inner_iterations;
      if (inner + 1 >= options_.max_inner_iterations) {
        diag.inner_cap_hit = true;
      }
      CBIR_RETURN_NOT_OK(solve_both(rho_star, &visual_out, &log_out));
    }

    if (rho_star >= options_.rho) break;
    rho_star = std::min(2.0 * rho_star, options_.rho);
  }

  model.visual = std::move(visual_out.model);
  model.log = std::move(log_out.model);
  model.visual_alpha = std::move(visual_out.alpha);
  model.log_alpha = std::move(log_out.alpha);
  model.unlabeled_labels.assign(y.begin() + static_cast<long>(nl), y.end());
  diag.visual_objective = visual_out.objective;
  diag.log_objective = log_out.objective;
  return model;
}

}  // namespace cbir::core
