#include "core/experiment.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace cbir::core {

ExperimentResult RunExperiment(
    const retrieval::ImageDatabase& db, const la::Matrix* log_features,
    const std::vector<std::shared_ptr<FeedbackScheme>>& schemes,
    const ExperimentOptions& options) {
  CBIR_CHECK(!schemes.empty());
  CBIR_CHECK_GT(options.num_queries, 0);
  CBIR_CHECK_GT(options.num_labeled, 0);
  CBIR_CHECK(!options.scopes.empty());
  const int n = db.num_images();
  CBIR_CHECK_GT(n, options.num_labeled + 1);
  for (int scope : options.scopes) {
    CBIR_CHECK_LT(scope, n)
        << "scope " << scope << " exceeds the " << n - 1
        << " images a ranking can return (corpus of " << n << ")";
  }

  // Draw distinct query images (falls back to the full corpus when more
  // queries than images are requested).
  Rng rng(options.seed);
  std::vector<size_t> query_pool = rng.SampleWithoutReplacement(
      static_cast<size_t>(n),
      static_cast<size_t>(std::min(options.num_queries, n)));
  const size_t num_queries = query_pool.size();

  // Depth an approximate index must serve: the deepest scope consumers read
  // plus the judged prefix and the query itself.
  int max_scope = 0;
  for (int scope : options.scopes) max_scope = std::max(max_scope, scope);
  const int candidate_depth = options.candidate_depth > 0
                                  ? options.candidate_depth
                                  : max_scope + options.num_labeled + 1;

  // precision[s][q] = precision vector of scheme s on query q.
  std::vector<std::vector<std::vector<double>>> precision(
      schemes.size(),
      std::vector<std::vector<double>>(num_queries));

  ParallelFor(
      num_queries,
      [&](size_t q) {
        FeedbackContext ctx;
        ctx.db = &db;
        ctx.log_features = log_features;
        ctx.query_id = static_cast<int>(query_pool[q]);
        ctx.candidate_depth = candidate_depth;
        // Queries come from the validated pool, so a failure here is a
        // programming error, not user input.
        CBIR_CHECK_OK(ctx.Prepare());

        // Initial retrieval: top-N_l Euclidean results (query excluded),
        // auto-judged against ground-truth categories (noise-free, per the
        // paper's automatic evaluation protocol). Routed through the
        // database index when one is attached.
        const std::vector<int> initial =
            db.TopK(ctx.query_feature, options.num_labeled + 1);
        const int query_category = db.category(ctx.query_id);
        for (int id : initial) {
          if (id == ctx.query_id) continue;
          if (static_cast<int>(ctx.labeled_ids.size()) >=
              options.num_labeled) {
            break;
          }
          ctx.labeled_ids.push_back(id);
          ctx.labels.push_back(db.category(id) == query_category ? 1.0 : -1.0);
        }

        for (size_t s = 0; s < schemes.size(); ++s) {
          Result<std::vector<int>> ranked = schemes[s]->Rank(ctx);
          CBIR_CHECK(ranked.ok())
              << schemes[s]->name() << ": " << ranked.status().ToString();
          precision[s][q] = retrieval::PrecisionAtScopes(
              ranked.value(), db.categories(), query_category, options.scopes);
        }
      },
      options.num_threads);

  ExperimentResult result;
  result.scopes = options.scopes;
  result.num_queries = static_cast<int>(num_queries);
  for (size_t s = 0; s < schemes.size(); ++s) {
    retrieval::PrecisionAccumulator acc(options.scopes);
    for (size_t q = 0; q < num_queries; ++q) acc.Add(precision[s][q]);
    SchemeResult sr;
    sr.name = schemes[s]->name();
    sr.precision = acc.MeanPrecision();
    sr.map = acc.MeanAveragePrecision();
    result.schemes.push_back(std::move(sr));
  }
  return result;
}

std::string FormatPaperTable(const ExperimentResult& result,
                             int baseline_column) {
  CBIR_CHECK_GE(baseline_column, 0);
  CBIR_CHECK_LT(static_cast<size_t>(baseline_column), result.schemes.size());

  std::vector<std::string> header{"#TOP"};
  for (const SchemeResult& s : result.schemes) header.push_back(s.name);
  TablePrinter table(header);

  const SchemeResult& base = result.schemes[
      static_cast<size_t>(baseline_column)];
  auto format_cell = [&](size_t col, double value, double base_value) {
    std::string cell = FormatDouble(value, 3);
    if (static_cast<int>(col) > baseline_column) {
      cell += " (" +
              FormatPercent(retrieval::RelativeImprovement(value, base_value)) +
              ")";
    }
    return cell;
  };

  for (size_t i = 0; i < result.scopes.size(); ++i) {
    std::vector<std::string> row{std::to_string(result.scopes[i])};
    for (size_t s = 0; s < result.schemes.size(); ++s) {
      row.push_back(format_cell(s, result.schemes[s].precision[i],
                                base.precision[i]));
    }
    table.AddRow(std::move(row));
  }
  table.AddSeparator();
  std::vector<std::string> map_row{"MAP"};
  for (size_t s = 0; s < result.schemes.size(); ++s) {
    map_row.push_back(format_cell(s, result.schemes[s].map, base.map));
  }
  table.AddRow(std::move(map_row));

  std::ostringstream oss;
  oss << "queries=" << result.num_queries << "\n";
  table.Print(oss);
  return oss.str();
}

}  // namespace cbir::core
