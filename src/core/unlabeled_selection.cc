#include "core/unlabeled_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace cbir::core {

const char* SelectionStrategyToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kMostSimilar:
      return "most-similar";
    case SelectionStrategy::kMaxMin:
      return "max-min";
    case SelectionStrategy::kBoundaryClosest:
      return "boundary-closest";
    case SelectionStrategy::kRandom:
      return "random";
  }
  return "?";
}

namespace {

// Sorts candidate positions by `keys` descending, ties by candidate id.
std::vector<size_t> OrderByDesc(const std::vector<double>& keys,
                                const std::vector<int>& ids) {
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return ids[a] < ids[b];
  });
  return order;
}

}  // namespace

SelectionResult SelectUnlabeled(SelectionStrategy strategy,
                                const SelectionInputs& inputs, int n_prime,
                                uint64_t seed) {
  CBIR_CHECK_GE(n_prime, 0);
  const std::vector<int>& ids = inputs.candidate_ids;
  const size_t available = ids.size();

  SelectionResult out;
  const size_t want = std::min<size_t>(static_cast<size_t>(n_prime),
                                       available);
  if (want == 0) return out;

  switch (strategy) {
    case SelectionStrategy::kMostSimilar: {
      CBIR_CHECK_EQ(inputs.similarity_to_positives.size(), available);
      CBIR_CHECK_EQ(inputs.similarity_to_negatives.size(), available);
      const size_t top = want / 2 + (want % 2);
      const auto by_pos = OrderByDesc(inputs.similarity_to_positives, ids);
      const auto by_neg = OrderByDesc(inputs.similarity_to_negatives, ids);
      std::unordered_set<int> taken;
      for (size_t i = 0; i < available && out.ids.size() < top; ++i) {
        const int id = ids[by_pos[i]];
        if (!taken.insert(id).second) continue;
        out.ids.push_back(id);
        out.initial_labels.push_back(1.0);
      }
      for (size_t i = 0; i < available && out.ids.size() < want; ++i) {
        const int id = ids[by_neg[i]];
        if (!taken.insert(id).second) continue;
        out.ids.push_back(id);
        out.initial_labels.push_back(-1.0);
      }
      break;
    }
    case SelectionStrategy::kMaxMin: {
      CBIR_CHECK_EQ(inputs.combined_decisions.size(), available);
      const auto order = OrderByDesc(inputs.combined_decisions, ids);
      const size_t top = want / 2 + (want % 2);  // odd N' favors positives
      const size_t bottom = want - top;
      for (size_t i = 0; i < top; ++i) {
        out.ids.push_back(ids[order[i]]);
        out.initial_labels.push_back(1.0);
      }
      for (size_t i = 0; i < bottom; ++i) {
        out.ids.push_back(ids[order[available - 1 - i]]);
        out.initial_labels.push_back(-1.0);
      }
      break;
    }
    case SelectionStrategy::kBoundaryClosest: {
      CBIR_CHECK_EQ(inputs.combined_decisions.size(), available);
      std::vector<double> neg_abs(available);
      for (size_t i = 0; i < available; ++i) {
        neg_abs[i] = -std::fabs(inputs.combined_decisions[i]);
      }
      const auto order = OrderByDesc(neg_abs, ids);
      for (size_t i = 0; i < want; ++i) {
        const size_t pos = order[i];
        out.ids.push_back(ids[pos]);
        out.initial_labels.push_back(
            inputs.combined_decisions[pos] >= 0.0 ? 1.0 : -1.0);
      }
      break;
    }
    case SelectionStrategy::kRandom: {
      CBIR_CHECK_EQ(inputs.combined_decisions.size(), available);
      std::vector<size_t> order(available);
      std::iota(order.begin(), order.end(), size_t{0});
      Rng rng(seed);
      rng.Shuffle(&order);
      for (size_t i = 0; i < want; ++i) {
        const size_t pos = order[i];
        out.ids.push_back(ids[pos]);
        out.initial_labels.push_back(
            inputs.combined_decisions[pos] >= 0.0 ? 1.0 : -1.0);
      }
      break;
    }
  }
  return out;
}

}  // namespace cbir::core
