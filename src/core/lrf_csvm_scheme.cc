#include "core/lrf_csvm_scheme.h"

#include <unordered_set>

#include "svm/trainer.h"
#include "util/logging.h"

namespace cbir::core {

LrfCsvmScheme::LrfCsvmScheme(const SchemeOptions& scheme_options,
                             const LrfCsvmOptions& options)
    : options_(options),
      cross_round_kernel_cache_(scheme_options.cross_round_kernel_cache) {
  // The shared scheme options carry the data-derived kernels and C values;
  // fold them into the coupled-SVM configuration.
  options_.csvm.c_visual = scheme_options.c_visual;
  options_.csvm.c_log = scheme_options.c_log;
  options_.csvm.visual_kernel = scheme_options.visual_kernel;
  options_.csvm.log_kernel = scheme_options.log_kernel;
  options_.csvm.smo = scheme_options.smo;
  CBIR_CHECK_GE(options_.n_prime, 0);
}

CsvmDiagnostics LrfCsvmScheme::AggregatedDiagnostics() const {
  util::MutexLock lock(diagnostics_mu_);
  return aggregated_diagnostics_;
}

Result<CoupledModel> LrfCsvmScheme::TrainForContext(
    const FeedbackContext& ctx) const {
  if (ctx.labeled_ids.empty()) {
    return Status::InvalidArgument("LRF-CSVM requires labeled samples");
  }
  if (ctx.log_features == nullptr || ctx.log_features->empty()) {
    return Status::FailedPrecondition("LRF-CSVM requires a user-feedback log");
  }

  const la::Matrix& visual_all = ctx.db->features();
  const la::Matrix& log_all = *ctx.log_features;
  const size_t nl = ctx.labeled_ids.size();

  la::Matrix train_visual(nl, visual_all.cols());
  la::Matrix train_log(nl, log_all.cols());
  for (size_t i = 0; i < nl; ++i) {
    const size_t id = static_cast<size_t>(ctx.labeled_ids[i]);
    train_visual.SetRow(i, visual_all.Row(id));
    train_log.SetRow(i, log_all.Row(id));
  }

  // --- Fig. 1 step 1: select the N' unlabeled samples ----------------------
  std::unordered_set<int> excluded(ctx.labeled_ids.begin(),
                                   ctx.labeled_ids.end());
  excluded.insert(ctx.query_id);

  SelectionInputs inputs;
  inputs.candidate_ids.reserve(ctx.scan_size());
  for (size_t pos = 0; pos < ctx.scan_size(); ++pos) {
    const int id = ctx.ScanId(pos);
    if (excluded.count(id) == 0) inputs.candidate_ids.push_back(id);
  }

  if (options_.selection == SelectionStrategy::kMostSimilar) {
    // Section 6.5: closeness to the labeled positives/negatives, measured
    // by combined kernel similarity (no SVM training needed).
    inputs.similarity_to_positives.reserve(inputs.candidate_ids.size());
    inputs.similarity_to_negatives.reserve(inputs.candidate_ids.size());
    for (int id : inputs.candidate_ids) {
      const la::Vec x = visual_all.Row(static_cast<size_t>(id));
      const la::Vec r = log_all.Row(static_cast<size_t>(id));
      double sim_pos = 0.0, sim_neg = 0.0;
      for (size_t j = 0; j < nl; ++j) {
        const double sim =
            svm::EvalKernelRow(options_.csvm.visual_kernel, train_visual, j,
                               x) +
            options_.selection_log_weight *
                svm::EvalKernelRow(options_.csvm.log_kernel, train_log, j, r);
        (ctx.labels[j] > 0 ? sim_pos : sim_neg) += sim;
      }
      inputs.similarity_to_positives.push_back(sim_pos);
      inputs.similarity_to_negatives.push_back(sim_neg);
    }
  } else {
    // Fig. 1 literal: combined decision values of the two labeled-only SVMs.
    svm::TrainOptions visual_options;
    visual_options.kernel = options_.csvm.visual_kernel;
    visual_options.c = options_.csvm.c_visual;
    visual_options.smo = options_.csvm.smo;
    svm::SvmTrainer visual_trainer(visual_options);
    CBIR_ASSIGN_OR_RETURN(svm::TrainOutput visual0,
                          visual_trainer.Train(train_visual, ctx.labels));

    svm::TrainOptions log_options;
    log_options.kernel = options_.csvm.log_kernel;
    log_options.c = options_.csvm.c_log;
    log_options.smo = options_.csvm.smo;
    svm::SvmTrainer log_trainer(log_options);
    CBIR_ASSIGN_OR_RETURN(svm::TrainOutput log0,
                          log_trainer.Train(train_log, ctx.labels));

    inputs.combined_decisions.reserve(inputs.candidate_ids.size());
    for (int id : inputs.candidate_ids) {
      const size_t i = static_cast<size_t>(id);
      inputs.combined_decisions.push_back(
          visual0.model.Decision(visual_all.Row(i)) +
          log0.model.Decision(log_all.Row(i)));
    }
  }

  const SelectionResult selection = SelectUnlabeled(
      options_.selection, inputs, options_.n_prime, options_.selection_seed);

  // --- Fig. 1 step 2: coupled training --------------------------------------
  const size_t nu = selection.ids.size();
  std::vector<int> row_ids;
  row_ids.reserve(nl + nu);
  row_ids.insert(row_ids.end(), ctx.labeled_ids.begin(),
                 ctx.labeled_ids.end());
  row_ids.insert(row_ids.end(), selection.ids.begin(), selection.ids.end());
  la::Matrix train_visual_all(nl + nu, visual_all.cols());
  la::Matrix train_log_all(nl + nu, log_all.cols());
  for (size_t i = 0; i < nl + nu; ++i) {
    const size_t id = static_cast<size_t>(row_ids[i]);
    train_visual_all.SetRow(i, visual_all.Row(id));
    train_log_all.SetRow(i, log_all.Row(id));
  }

  // Warm start from the previous round of this session: rows whose image was
  // already in last round's training set inherit its dual variables, fresh
  // rows start at zero (exactly the carried/new split the solver projects
  // back to feasibility).
  SessionState* state = ctx.session_state;
  std::vector<double> initial_visual_alpha, initial_log_alpha;
  if (state != nullptr && !state->visual_alpha.empty()) {
    initial_visual_alpha.assign(nl + nu, 0.0);
    initial_log_alpha.assign(nl + nu, 0.0);
    for (size_t i = 0; i < nl + nu; ++i) {
      if (auto it = state->visual_alpha.find(row_ids[i]);
          it != state->visual_alpha.end()) {
        initial_visual_alpha[i] = it->second;
      }
      if (auto it = state->log_alpha.find(row_ids[i]);
          it != state->log_alpha.end()) {
        initial_log_alpha[i] = it->second;
      }
    }
  }

  CsvmTrainView view;
  view.labels = &ctx.labels;
  view.initial_unlabeled_labels = &selection.initial_labels;
  view.initial_visual_alpha = &initial_visual_alpha;
  view.initial_log_alpha = &initial_log_alpha;
  if (state != nullptr && cross_round_kernel_cache_) {
    // Cross-round path: the session state takes ownership of the gathered
    // matrices so the per-modality kernel caches bound to them survive
    // between rounds. Rows of carried-over images keep their cached kernel
    // entries (remapped by image id); only pairs involving new images cost
    // kernel evaluations.
    view.visual_cache =
        state->visual_rows.Bind(row_ids, std::move(train_visual_all),
                                options_.csvm.visual_kernel,
                                options_.csvm.smo.cache_rows);
    view.log_cache = state->log_rows.Bind(std::move(row_ids),
                                          std::move(train_log_all),
                                          options_.csvm.log_kernel,
                                          options_.csvm.smo.cache_rows);
    view.visual = &state->visual_rows.data();
    view.log = &state->log_rows.data();
  } else {
    view.visual = &train_visual_all;
    view.log = &train_log_all;
  }

  CoupledSvm csvm(options_.csvm);
  auto model = csvm.TrainView(view);

  if (model.ok()) {
    util::MutexLock lock(diagnostics_mu_);
    aggregated_diagnostics_.Accumulate(model->diagnostics);
  }

  if (model.ok() && state != nullptr) {
    // Only the duals are rebuilt; the kernel caches carry on to next round.
    state->visual_alpha.clear();
    state->log_alpha.clear();
    for (size_t i = 0; i < nl + nu; ++i) {
      const int id = i < nl ? ctx.labeled_ids[i]
                            : selection.ids[i - nl];
      state->visual_alpha[id] = model->visual_alpha[i];
      state->log_alpha[id] = model->log_alpha[i];
    }
  }
  return model;
}

Result<std::vector<int>> LrfCsvmScheme::Rank(const FeedbackContext& ctx) const {
  CBIR_ASSIGN_OR_RETURN(CoupledModel model, TrainForContext(ctx));

  // --- Fig. 1 step 3: rank by CSVM_Dist -------------------------------------
  std::vector<double> scores = model.visual.DecisionBatch(ctx.ScanFeatures());
  const std::vector<double> log_scores =
      model.log.DecisionBatch(*ctx.ScanLogFeatures());
  for (size_t i = 0; i < scores.size(); ++i) scores[i] += log_scores[i];
  return FinalizeRanking(ctx, scores);
}

}  // namespace cbir::core
