#include "core/session_cache.h"

#include <cstdint>
#include <unordered_map>

#include "util/logging.h"

namespace cbir::core {

svm::KernelCache* SessionKernelCache::Bind(std::vector<int> ids,
                                           la::Matrix rows,
                                           const svm::KernelParams& params,
                                           size_t max_rows) {
  CBIR_CHECK_EQ(ids.size(), rows.rows());
  if (cache_ == nullptr) {
    data_ = std::move(rows);
    ids_ = std::move(ids);
    cache_ = std::make_unique<svm::KernelCache>(data_, params, max_rows);
    return cache_.get();
  }

  // Map this round's rows onto the previous round's by image id; rows whose
  // image carried over keep their cached kernel entries.
  std::unordered_map<int, int32_t> prev_index;
  prev_index.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    prev_index.emplace(ids_[i], static_cast<int32_t>(i));
  }
  std::vector<int32_t> new_to_old(ids.size(), -1);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (auto it = prev_index.find(ids[i]); it != prev_index.end()) {
      new_to_old[i] = it->second;
    }
  }

  // Replacing data_'s contents is safe: the cache references data_ by
  // address (the same object across rounds), and RebindRemapped reads
  // carried entries from its old slab, never from the old matrix.
  data_ = std::move(rows);
  ids_ = std::move(ids);
  cache_->RebindRemapped(data_, params, new_to_old, max_rows);
  return cache_.get();
}

size_t SessionKernelCache::AllocatedBytes() const {
  if (cache_ == nullptr) return 0;
  return cache_->AllocatedBytes() + data_.data().capacity() * sizeof(double);
}

void SessionKernelCache::Clear() {
  cache_.reset();
  data_ = la::Matrix();
  ids_.clear();
  ids_.shrink_to_fit();
}

}  // namespace cbir::core
