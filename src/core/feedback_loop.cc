#include "core/feedback_loop.h"

#include <algorithm>
#include <unordered_set>

#include "retrieval/evaluator.h"
#include "retrieval/ranker.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cbir::core {

Result<FeedbackLoopResult> RunFeedbackSession(
    const retrieval::ImageDatabase& db, const la::Matrix* log_features,
    const FeedbackScheme& scheme, int query_id,
    const FeedbackLoopOptions& options) {
  if (query_id < 0 || query_id >= db.num_images()) {
    return Status::InvalidArgument("query id out of range");
  }
  if (options.rounds < 0 || options.judgments_per_round <= 0) {
    return Status::InvalidArgument("invalid feedback loop configuration");
  }
  if (options.scopes.empty()) {
    return Status::InvalidArgument("at least one evaluation scope required");
  }

  FeedbackContext ctx;
  ctx.db = &db;
  ctx.log_features = log_features;
  ctx.query_id = query_id;
  // Round t+1's QPs differ from round t's only by the newly judged images;
  // the session state lets SVM-based schemes warm-start from round t's duals.
  SessionState session_state;
  ctx.session_state = &session_state;
  // Depth the session consumes from an approximate index: the deepest scope
  // read each round plus every judgment the session will request.
  int max_scope = 0;
  for (int scope : options.scopes) max_scope = std::max(max_scope, scope);
  ctx.candidate_depth =
      options.candidate_depth > 0
          ? options.candidate_depth
          : max_scope + options.rounds * options.judgments_per_round + 1;
  CBIR_RETURN_NOT_OK(ctx.Prepare());

  const int query_category = db.category(query_id);
  logdb::SimulatedUser user(db.categories(),
                            logdb::UserModel{options.judgment_noise});
  Rng rng(options.seed);

  FeedbackLoopResult result;

  // Round 0: plain Euclidean retrieval. When Prepare() narrowed the scan
  // space, the candidate scan already ran for this exact (query, depth) —
  // rank the gathered distances instead of paying a second index scan
  // (scan_ids is ascending, so position ties break on the smaller id just
  // like RankByEuclidean). Otherwise the exhaustive path is unchanged.
  std::vector<int> current;
  if (!ctx.scan_ids.empty()) {
    std::vector<double> scores(ctx.query_distances.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      scores[i] = -ctx.query_distances[i];
    }
    for (int pos : retrieval::RankByScoreDesc(scores, {},
                                              ctx.candidate_depth)) {
      current.push_back(ctx.ScanId(static_cast<size_t>(pos)));
    }
  } else {
    current = db.TopK(ctx.query_feature,
                      db.index() == nullptr ? -1 : ctx.candidate_depth);
  }
  current.erase(std::remove(current.begin(), current.end(), query_id),
                current.end());
  result.precision.push_back(retrieval::PrecisionAtScopes(
      current, db.categories(), query_category, options.scopes));

  std::unordered_set<int> judged{query_id};
  for (int round = 1; round <= options.rounds; ++round) {
    // The user judges the top unjudged results of the current ranking.
    logdb::LogSession session;
    session.query_image_id = query_id;
    for (int id : current) {
      if (static_cast<int>(session.entries.size()) >=
          options.judgments_per_round) {
        break;
      }
      if (!judged.insert(id).second) continue;
      const int8_t judgment = user.Judge(id, query_category, &rng);
      session.entries.push_back(logdb::LogEntry{id, judgment});
      ctx.labeled_ids.push_back(id);
      ctx.labels.push_back(judgment);
    }
    result.total_judgments += static_cast<int>(session.entries.size());
    result.recorded_sessions.push_back(std::move(session));

    CBIR_ASSIGN_OR_RETURN(current, scheme.Rank(ctx));
    result.precision.push_back(retrieval::PrecisionAtScopes(
        current, db.categories(), query_category, options.scopes));
  }
  return result;
}

}  // namespace cbir::core
