#include "core/feedback_scheme.h"

#include "retrieval/ranker.h"
#include "util/logging.h"

namespace cbir::core {

Status FeedbackContext::Prepare() {
  if (db == nullptr) {
    return Status::InvalidArgument("feedback context: null database");
  }
  if (labeled_ids.size() != labels.size()) {
    return Status::InvalidArgument(
        "feedback context: labeled_ids/labels size mismatch");
  }
  if (query_id >= 0) {
    if (query_id >= db->num_images()) {
      return Status::InvalidArgument("feedback context: query id " +
                                     std::to_string(query_id) +
                                     " out of range [0, " +
                                     std::to_string(db->num_images()) + ")");
    }
    query_feature = db->feature(query_id);
  } else {
    // External query-by-example: the caller supplied the raw feature vector.
    if (query_feature.empty()) {
      return Status::InvalidArgument(
          "feedback context: external query (query_id < 0) requires a "
          "query_feature");
    }
    if (query_feature.size() != db->features().cols()) {
      return Status::InvalidArgument(
          "feedback context: query feature has " +
          std::to_string(query_feature.size()) + " dims, corpus has " +
          std::to_string(db->features().cols()));
    }
  }

  scan_ids.clear();
  scan_features_ = la::Matrix();
  scan_log_features_ = la::Matrix();
  if (db->index() != nullptr && candidate_depth > 0) {
    // Exhaustive indexes return the "every row" sentinel (empty), keeping
    // the corpus-wide path below — and its bit-identical rankings.
    scan_ids = db->index()->Candidates(query_feature, candidate_depth);
  }
  if (scan_ids.empty()) {
    query_distances =
        retrieval::AllSquaredDistances(db->features(), query_feature);
    return Status::OK();
  }

  // Narrowed scan space: gather the candidate rows once so every scheme's
  // scoring loop (SVM decision batches, similarity sums, distance ranks)
  // touches only |scan_ids| rows instead of the whole corpus.
  const la::Matrix& all = db->features();
  scan_features_ = la::Matrix(scan_ids.size(), all.cols());
  for (size_t pos = 0; pos < scan_ids.size(); ++pos) {
    scan_features_.SetRow(pos, all.Row(static_cast<size_t>(scan_ids[pos])));
  }
  query_distances =
      retrieval::AllSquaredDistances(scan_features_, query_feature);
  if (log_features != nullptr && !log_features->empty()) {
    scan_log_features_ = la::Matrix(scan_ids.size(), log_features->cols());
    for (size_t pos = 0; pos < scan_ids.size(); ++pos) {
      scan_log_features_.SetRow(
          pos, log_features->Row(static_cast<size_t>(scan_ids[pos])));
    }
  }
  return Status::OK();
}

size_t FeedbackContext::scan_size() const {
  if (!scan_ids.empty()) return scan_ids.size();
  return db == nullptr ? 0 : static_cast<size_t>(db->num_images());
}

int FeedbackContext::ScanId(size_t pos) const {
  return scan_ids.empty() ? static_cast<int>(pos)
                          : scan_ids[pos];
}

const la::Matrix& FeedbackContext::ScanFeatures() const {
  return scan_ids.empty() ? db->features() : scan_features_;
}

const la::Matrix* FeedbackContext::ScanLogFeatures() const {
  if (log_features == nullptr || log_features->empty()) return nullptr;
  return scan_ids.empty() ? log_features : &scan_log_features_;
}

SchemeOptions MakeDefaultSchemeOptions(const retrieval::ImageDatabase& db,
                                       const la::Matrix* log_features) {
  SchemeOptions options;
  options.visual_kernel = svm::KernelParams::Rbf(
      svm::DefaultGamma(db.features()));
  // The log side defaults to a linear kernel: the paper's Section 4
  // formulation is literally linear in the log matrix (u'R assigns one
  // weight per session), and the inner product of two log vectors is the
  // signed co-marking count — the semantically meaningful similarity for
  // sparse ternary session data. (The paper's experiments used RBF
  // everywhere; see DESIGN.md for this documented deviation and the
  // log-representation ablation bench for the comparison.)
  options.log_kernel = svm::KernelParams::Linear();
  options.c_log = 1.0;
  if (log_features != nullptr && !log_features->empty()) {
    // Keep a data-derived gamma on hand so callers flipping the log kernel
    // type to RBF (e.g. the log-representation ablation) get the LIBSVM
    // default instead of a stale placeholder.
    options.log_kernel.gamma = svm::DefaultGamma(*log_features);
  }
  return options;
}

std::vector<int> FeedbackScheme::FinalizeRanking(
    const FeedbackContext& ctx, const std::vector<double>& scores) {
  CBIR_CHECK_EQ(scores.size(), ctx.scan_size());
  std::vector<int> ranked = retrieval::RankByScoreDesc(
      scores, ctx.query_distances);
  // Map scan positions back to image ids and drop the query itself; every
  // scheme ranks the remaining scanned images.
  std::vector<int> out;
  out.reserve(ranked.size());
  for (int pos : ranked) {
    const int id = ctx.ScanId(static_cast<size_t>(pos));
    if (id != ctx.query_id) out.push_back(id);
  }
  return out;
}

}  // namespace cbir::core
