#include "core/feedback_scheme.h"

#include "retrieval/ranker.h"
#include "util/logging.h"

namespace cbir::core {

void FeedbackContext::Prepare() {
  CBIR_CHECK(db != nullptr);
  CBIR_CHECK_GE(query_id, 0);
  CBIR_CHECK_LT(query_id, db->num_images());
  CBIR_CHECK_EQ(labeled_ids.size(), labels.size());
  query_feature = db->feature(query_id);
  query_distances =
      retrieval::AllSquaredDistances(db->features(), query_feature);
}

SchemeOptions MakeDefaultSchemeOptions(const retrieval::ImageDatabase& db,
                                       const la::Matrix* log_features) {
  SchemeOptions options;
  options.visual_kernel = svm::KernelParams::Rbf(
      svm::DefaultGamma(db.features()));
  // The log side defaults to a linear kernel: the paper's Section 4
  // formulation is literally linear in the log matrix (u'R assigns one
  // weight per session), and the inner product of two log vectors is the
  // signed co-marking count — the semantically meaningful similarity for
  // sparse ternary session data. (The paper's experiments used RBF
  // everywhere; see DESIGN.md for this documented deviation and the
  // log-representation ablation bench for the comparison.)
  options.log_kernel = svm::KernelParams::Linear();
  options.c_log = 1.0;
  if (log_features != nullptr && !log_features->empty()) {
    // Keep a data-derived gamma on hand so callers flipping the log kernel
    // type to RBF (e.g. the log-representation ablation) get the LIBSVM
    // default instead of a stale placeholder.
    options.log_kernel.gamma = svm::DefaultGamma(*log_features);
  }
  return options;
}

std::vector<int> FeedbackScheme::FinalizeRanking(
    const FeedbackContext& ctx, const std::vector<double>& scores) {
  std::vector<int> ranked = retrieval::RankByScoreDesc(
      scores, ctx.query_distances);
  // Drop the query itself; every scheme ranks the remaining N-1 images.
  std::vector<int> out;
  out.reserve(ranked.size() - 1);
  for (int id : ranked) {
    if (id != ctx.query_id) out.push_back(id);
  }
  return out;
}

}  // namespace cbir::core
