#include "core/euclidean_scheme.h"

namespace cbir::core {

Result<std::vector<int>> EuclideanScheme::Rank(
    const FeedbackContext& ctx) const {
  // Negative squared distance as the score gives ascending-distance order.
  std::vector<double> scores(ctx.query_distances.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = -ctx.query_distances[i];
  }
  return FinalizeRanking(ctx, scores);
}

}  // namespace cbir::core
