#ifndef CBIR_CORE_LRF_2SVM_SCHEME_H_
#define CBIR_CORE_LRF_2SVM_SCHEME_H_

#include "core/feedback_scheme.h"

namespace cbir::core {

/// \brief LRF-2SVMs: the paper's "straightforward" log-based baseline.
///
/// Trains two independent SVMs — one on visual features, one on user-log
/// vectors — over the labeled set and ranks by the *sum* of the two decision
/// values. No unlabeled data, no coupling; the gap between this scheme and
/// LRF-CSVM is the paper's headline comparison.
class Lrf2SvmScheme : public FeedbackScheme {
 public:
  explicit Lrf2SvmScheme(const SchemeOptions& options) : options_(options) {}

  std::string name() const override { return "LRF-2SVMs"; }

  Result<std::vector<int>> Rank(const FeedbackContext& ctx) const override;

 private:
  SchemeOptions options_;
};

}  // namespace cbir::core

#endif  // CBIR_CORE_LRF_2SVM_SCHEME_H_
