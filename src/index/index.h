#ifndef CBIR_INDEX_INDEX_H_
#define CBIR_INDEX_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"

namespace cbir::retrieval {

/// \brief Snapshot of an index's lifetime work counters.
///
/// All counters accumulate across Query/QueryBatch/Candidates calls (which
/// may run concurrently); ResetStats() zeroes them. `recall_proxy` is a
/// cheap online quality signal for approximate indexes: the mean fraction of
/// returned results lying strictly inside the Hamming candidate cutoff.
/// Results sitting exactly at the cutoff could have been displaced by an
/// excluded row with the same signature distance, so a proxy near 1.0 means
/// the candidate set was comfortably wide. Exhaustive indexes report 1.0.
/// It is a proxy only — use retrieval::RecallAtK against an exact ranking
/// for a ground-truth measurement.
struct IndexStats {
  uint64_t queries = 0;
  /// Rows fully scanned by exhaustive Euclidean passes.
  uint64_t rows_scanned = 0;
  /// Packed signatures Hamming-compared by approximate candidate scans.
  uint64_t signatures_scanned = 0;
  /// Candidate rows exactly re-ranked by Euclidean distance.
  uint64_t candidates_reranked = 0;
  double recall_proxy = 1.0;
};

/// \brief Sub-linear (or exhaustive) top-k Euclidean retrieval over a corpus
/// feature matrix.
///
/// The contract every implementation honors:
///  - Query(q, k) returns row ids ordered by ascending exact Euclidean
///    distance to `q`, ties broken on the smaller id — the same order
///    RankByEuclidean produces, restricted to the index's candidate set.
///    Exhaustive indexes reproduce RankByEuclidean bit-for-bit.
///  - Build() must be called once before any query; it does NOT copy the
///    feature matrix. The caller keeps the matrix's storage alive and
///    unmodified for the index's lifetime (moving the owning object is fine —
///    the index holds the heap buffer, not the Matrix object).
///  - All query entry points are const-thread-safe.
class Index {
 public:
  virtual ~Index() = default;

  virtual std::string name() const = 0;

  /// Indexes `features` (one row per image). Replaces any previous build.
  virtual void Build(const la::Matrix& features) = 0;

  /// Number of indexed rows (0 before Build).
  virtual size_t num_rows() const = 0;

  /// Top-k row ids by ascending Euclidean distance (see class contract).
  /// `k <= 0` requests the full ranking, which always takes the exhaustive
  /// path — an approximate ranking of everything approximates nothing.
  virtual std::vector<int> Query(const la::Vec& query, int k) const = 0;

  /// One ranking per row of `queries`; element i equals Query(row i, k).
  /// The default implementation loops; SignatureIndex fans out across
  /// threads.
  virtual std::vector<std::vector<int>> QueryBatch(const la::Matrix& queries,
                                                   int k) const;

  /// The row ids whose exact scores a downstream ranker (SVM decision
  /// values, selection heuristics, ...) should compute for a depth-k
  /// retrieval, in ascending id order. An empty return means "every row" —
  /// exhaustive indexes narrow nothing. Approximate indexes return an
  /// oversampled superset of Query(query, k)'s results.
  virtual std::vector<int> Candidates(const la::Vec& query, int k) const = 0;

  virtual IndexStats stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace cbir::retrieval

#endif  // CBIR_INDEX_INDEX_H_
