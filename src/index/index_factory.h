#ifndef CBIR_INDEX_INDEX_FACTORY_H_
#define CBIR_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "index/index.h"
#include "index/signature_index.h"
#include "util/flags.h"
#include "util/result.h"

namespace cbir::retrieval {

enum class IndexMode {
  kExact,      ///< exhaustive scan behind the Index interface
  kSignature,  ///< random-hyperplane signatures + exact rerank
};

const char* IndexModeToString(IndexMode mode);

/// Parses "exact" / "signature" (the --index flag spellings).
Result<IndexMode> ParseIndexMode(const std::string& name);

/// \brief Full index configuration, as exposed by the driver flags.
struct IndexOptions {
  IndexMode mode = IndexMode::kExact;
  SignatureIndexOptions signature;
};

/// Creates an unbuilt index; call Build() with the corpus features before
/// querying (ImageDatabase::BuildIndex does both).
std::unique_ptr<Index> MakeIndex(const IndexOptions& options);

/// The `--index` flag family every example exposes, parsed in one place:
/// --index=exact|signature, --signature_bits, --candidate_factor (dashed
/// spellings also accepted), --index-seed. Errors on an unknown mode.
/// Callers still list these names in their RequireKnown set.
Result<IndexOptions> IndexOptionsFromFlags(const Flags& flags);

/// The flag names IndexOptionsFromFlags reads, for RequireKnown lists.
std::vector<std::string> IndexFlagNames();

}  // namespace cbir::retrieval

#endif  // CBIR_INDEX_INDEX_FACTORY_H_
