#include "index/exact_index.h"

#include "retrieval/ranker.h"
#include "util/logging.h"

namespace cbir::retrieval {

void ExactIndex::Build(const la::Matrix& features) {
  rows_ = features.rows();
  dims_ = features.cols();
  data_ = features.empty() ? nullptr : features.RowPtr(0);
  ResetStats();
}

std::vector<int> ExactIndex::Query(const la::Vec& query, int k) const {
  CBIR_CHECK_EQ(query.size(), dims_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  rows_scanned_.fetch_add(rows_, std::memory_order_relaxed);
  return RankByEuclidean(data_, rows_, dims_, query.data(), k);
}

std::vector<int> ExactIndex::Candidates(const la::Vec& query, int k) const {
  CBIR_CHECK_EQ(query.size(), dims_);
  // Counted as a query (matching SignatureIndex) so IndexStats.queries
  // means the same thing in both modes.
  queries_.fetch_add(1, std::memory_order_relaxed);
  (void)k;
  return {};  // every row is a candidate
}

IndexStats ExactIndex::stats() const {
  IndexStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.rows_scanned = rows_scanned_.load(std::memory_order_relaxed);
  return s;
}

void ExactIndex::ResetStats() {
  queries_.store(0, std::memory_order_relaxed);
  rows_scanned_.store(0, std::memory_order_relaxed);
}

}  // namespace cbir::retrieval
