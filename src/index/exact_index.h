#ifndef CBIR_INDEX_EXACT_INDEX_H_
#define CBIR_INDEX_EXACT_INDEX_H_

#include <atomic>
#include <string>
#include <vector>

#include "index/index.h"

namespace cbir::retrieval {

/// \brief The brute-force corpus scan behind the Index interface.
///
/// Query() is exactly RankByEuclidean over the indexed rows — bit-for-bit,
/// including tie-breaks — so attaching an ExactIndex never changes results,
/// it only adds the stats counters. Candidates() narrows nothing (returns
/// the "every row" sentinel).
class ExactIndex final : public Index {
 public:
  std::string name() const override { return "exact"; }

  void Build(const la::Matrix& features) override;

  size_t num_rows() const override { return rows_; }

  std::vector<int> Query(const la::Vec& query, int k) const override;

  std::vector<int> Candidates(const la::Vec& query, int k) const override;

  IndexStats stats() const override;
  void ResetStats() override;

 private:
  const double* data_ = nullptr;  ///< caller-owned row-major feature storage
  size_t rows_ = 0;
  size_t dims_ = 0;

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rows_scanned_{0};
};

}  // namespace cbir::retrieval

#endif  // CBIR_INDEX_EXACT_INDEX_H_
