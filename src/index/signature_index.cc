#include "index/signature_index.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "retrieval/ranker.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace cbir::retrieval {

namespace {

// Hamming scan with a compile-time word count so the XOR+popcount loop fully
// unrolls; the per-row histogram update feeds the O(n) candidate cutoff.
template <size_t W>
void HammingScanFixed(const uint64_t* sigs, size_t rows, const uint64_t* q,
                      uint16_t* dist, uint32_t* histogram) {
  for (size_t r = 0; r < rows; ++r, sigs += W) {
    uint32_t d = 0;
    for (size_t w = 0; w < W; ++w) {
      d += static_cast<uint32_t>(std::popcount(sigs[w] ^ q[w]));
    }
    dist[r] = static_cast<uint16_t>(d);
    ++histogram[d];
  }
}

void HammingScan(const uint64_t* sigs, size_t rows, size_t words,
                 const uint64_t* q, uint16_t* dist, uint32_t* histogram) {
  switch (words) {
    case 1:
      return HammingScanFixed<1>(sigs, rows, q, dist, histogram);
    case 2:
      return HammingScanFixed<2>(sigs, rows, q, dist, histogram);
    case 3:
      return HammingScanFixed<3>(sigs, rows, q, dist, histogram);
    case 4:
      return HammingScanFixed<4>(sigs, rows, q, dist, histogram);
    case 8:
      return HammingScanFixed<8>(sigs, rows, q, dist, histogram);
    default:
      for (size_t r = 0; r < rows; ++r, sigs += words) {
        uint32_t d = 0;
        for (size_t w = 0; w < words; ++w) {
          d += static_cast<uint32_t>(std::popcount(sigs[w] ^ q[w]));
        }
        dist[r] = static_cast<uint16_t>(d);
        ++histogram[d];
      }
  }
}

}  // namespace

SignatureIndex::SignatureIndex(const SignatureIndexOptions& options)
    : options_(options) {
  CBIR_CHECK_GT(options_.bits, 0);
  CBIR_CHECK_LE(options_.bits, 65535);  // Hamming distances live in uint16_t
  CBIR_CHECK_GT(options_.candidate_factor, 0);
  words_ = (static_cast<size_t>(options_.bits) + 63) / 64;
}

void SignatureIndex::BuildPlanes(const la::Matrix& features) {
  rows_ = features.rows();
  dims_ = features.cols();
  data_ = features.empty() ? nullptr : features.RowPtr(0);
  const size_t bits = static_cast<size_t>(options_.bits);

  // Centroid of the corpus: hyperplanes pass through it so signature bits
  // split the data roughly in half instead of all agreeing on the far side
  // of the origin.
  std::vector<double> centroid(dims_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_ + r * dims_;
    for (size_t c = 0; c < dims_; ++c) centroid[c] += row[c];
  }
  if (rows_ > 0) {
    for (size_t c = 0; c < dims_; ++c) centroid[c] /= static_cast<double>(rows_);
  }

  // Gaussian hyperplane directions, drawn serially from the seed so the
  // signature family never depends on the thread count.
  Rng rng(options_.seed);
  hyperplanes_.assign(bits * dims_, 0.0);
  for (double& h : hyperplanes_) h = rng.Gaussian();
  plane_offsets_.assign(bits, 0.0);
  for (size_t b = 0; b < bits; ++b) {
    plane_offsets_[b] = la::DotN(hyperplanes_.data() + b * dims_,
                                 centroid.data(), dims_);
  }
}

void SignatureIndex::Build(const la::Matrix& features) {
  BuildPlanes(features);
  const size_t bits = static_cast<size_t>(options_.bits);
  signatures_.assign(rows_ * words_, 0);
  ParallelFor(
      rows_,
      [&](size_t r) {
        const double* row = data_ + r * dims_;
        uint64_t* sig = signatures_.data() + r * words_;
        for (size_t b = 0; b < bits; ++b) {
          const double proj =
              la::DotN(row, hyperplanes_.data() + b * dims_, dims_);
          if (proj >= plane_offsets_[b]) sig[b / 64] |= uint64_t{1} << (b % 64);
        }
      },
      options_.num_threads);
  ResetStats();
}

void SignatureIndex::RestoreSignatures(const la::Matrix& features,
                                       std::vector<uint64_t> signatures) {
  BuildPlanes(features);
  CBIR_CHECK_EQ(signatures.size(), rows_ * words_)
      << "RestoreSignatures: packed block does not match rows x words";
  signatures_ = std::move(signatures);
  ResetStats();
}

std::vector<uint64_t> SignatureIndex::Encode(const la::Vec& v) const {
  CBIR_CHECK_EQ(v.size(), dims_);
  std::vector<uint64_t> sig(words_, 0);
  for (size_t b = 0; b < static_cast<size_t>(options_.bits); ++b) {
    const double proj = la::DotN(v.data(), hyperplanes_.data() + b * dims_,
                                 dims_);
    if (proj >= plane_offsets_[b]) sig[b / 64] |= uint64_t{1} << (b % 64);
  }
  return sig;
}

std::vector<int> SignatureIndex::SelectCandidates(
    const la::Vec& query, int k, std::vector<uint32_t>* hamming,
    uint32_t* cutoff, bool* truncated) const {
  CBIR_CHECK(data_ != nullptr) << "SignatureIndex: Build() before querying";
  CBIR_CHECK_GT(k, 0);
  const std::vector<uint64_t> qsig = Encode(query);

  // Popcount Hamming scan over the packed signature block, accumulating the
  // distance histogram on the fly. Hamming distances are bounded by `bits`,
  // so the top-C selection below is two O(n) passes (histogram cutoff)
  // instead of a comparison sort — the scan stays the only hot loop.
  std::vector<uint16_t> dist(rows_);
  std::vector<uint32_t> histogram(static_cast<size_t>(options_.bits) + 1, 0);
  HammingScan(signatures_.data(), rows_, words_, qsig.data(), dist.data(),
              histogram.data());
  signatures_scanned_.fetch_add(rows_, std::memory_order_relaxed);

  const size_t want = std::min(
      rows_, static_cast<size_t>(k) *
                 static_cast<size_t>(options_.candidate_factor));

  // Smallest h with |{d <= h}| >= want: rows below the cutoff are all taken,
  // rows at the cutoff fill the remaining quota in ascending-id order — the
  // same set a full (hamming, id) sort would keep.
  uint32_t h_star = static_cast<uint32_t>(options_.bits);
  size_t below_cutoff = 0;
  for (size_t h = 0, cum = 0; h < histogram.size(); ++h) {
    if (cum + histogram[h] >= want) {
      h_star = static_cast<uint32_t>(h);
      below_cutoff = cum;
      break;
    }
    cum += histogram[h];
  }
  size_t cutoff_quota = want - below_cutoff;

  std::vector<int> ids;
  ids.reserve(want);
  for (size_t r = 0; r < rows_ && ids.size() < want; ++r) {
    const uint32_t d = dist[r];
    if (d < h_star) {
      ids.push_back(static_cast<int>(r));
    } else if (d == h_star && cutoff_quota > 0) {
      ids.push_back(static_cast<int>(r));
      --cutoff_quota;
    }
  }

  if (cutoff != nullptr) *cutoff = h_star;
  if (truncated != nullptr) *truncated = want < rows_;
  if (hamming != nullptr) {
    hamming->resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      (*hamming)[i] = dist[static_cast<size_t>(ids[i])];
    }
  }
  return ids;
}

std::vector<int> SignatureIndex::ExhaustiveQuery(const la::Vec& query,
                                                 int k) const {
  rows_scanned_.fetch_add(rows_, std::memory_order_relaxed);
  return RankByEuclidean(data_, rows_, dims_, query.data(), k);
}

std::vector<int> SignatureIndex::Query(const la::Vec& query, int k) const {
  CBIR_CHECK_EQ(query.size(), dims_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (rows_ == 0) return {};
  if (k <= 0) return ExhaustiveQuery(query, k);

  std::vector<uint32_t> hamming;
  uint32_t cutoff = 0;
  bool truncated = false;
  const std::vector<int> cand =
      SelectCandidates(query, k, &hamming, &cutoff, &truncated);

  // Exact Euclidean rerank of the candidate set; ties break on the smaller
  // id exactly like RankByEuclidean.
  std::vector<double> exact(cand.size());
  for (size_t i = 0; i < cand.size(); ++i) {
    exact[i] = la::SquaredDistanceN(
        data_ + static_cast<size_t>(cand[i]) * dims_, query.data(), dims_);
  }
  candidates_reranked_.fetch_add(cand.size(), std::memory_order_relaxed);

  std::vector<size_t> order(cand.size());
  std::iota(order.begin(), order.end(), size_t{0});
  auto cmp = [&](size_t a, size_t b) {
    if (exact[a] != exact[b]) return exact[a] < exact[b];
    return cand[a] < cand[b];  // cand is ascending, but be explicit
  };
  const size_t keep = std::min(cand.size(), static_cast<size_t>(k));
  if (keep < order.size()) {
    std::nth_element(order.begin(), order.begin() + keep, order.end(), cmp);
    order.resize(keep);
  }
  std::sort(order.begin(), order.end(), cmp);

  std::vector<int> out;
  out.reserve(order.size());
  uint64_t at_cutoff = 0;
  for (size_t pos : order) {
    out.push_back(cand[pos]);
    if (truncated && hamming[pos] == cutoff) ++at_cutoff;
  }
  results_returned_.fetch_add(out.size(), std::memory_order_relaxed);
  results_at_cutoff_.fetch_add(at_cutoff, std::memory_order_relaxed);
  return out;
}

std::vector<std::vector<int>> SignatureIndex::QueryBatch(
    const la::Matrix& queries, int k) const {
  std::vector<std::vector<int>> out(queries.rows());
  ParallelFor(queries.rows(), [&](size_t q) { out[q] = Query(queries.Row(q), k); });
  return out;
}

std::vector<int> SignatureIndex::Candidates(const la::Vec& query,
                                            int k) const {
  CBIR_CHECK_EQ(query.size(), dims_);
  if (rows_ == 0) return {};
  if (k <= 0) return {};  // full-depth request: every row is a candidate
  queries_.fetch_add(1, std::memory_order_relaxed);
  return SelectCandidates(query, k, nullptr, nullptr, nullptr);
}

IndexStats SignatureIndex::stats() const {
  IndexStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.rows_scanned = rows_scanned_.load(std::memory_order_relaxed);
  s.signatures_scanned = signatures_scanned_.load(std::memory_order_relaxed);
  s.candidates_reranked = candidates_reranked_.load(std::memory_order_relaxed);
  const uint64_t returned = results_returned_.load(std::memory_order_relaxed);
  const uint64_t risky = results_at_cutoff_.load(std::memory_order_relaxed);
  s.recall_proxy =
      returned == 0
          ? 1.0
          : 1.0 - static_cast<double>(risky) / static_cast<double>(returned);
  return s;
}

void SignatureIndex::ResetStats() {
  queries_.store(0, std::memory_order_relaxed);
  rows_scanned_.store(0, std::memory_order_relaxed);
  signatures_scanned_.store(0, std::memory_order_relaxed);
  candidates_reranked_.store(0, std::memory_order_relaxed);
  results_returned_.store(0, std::memory_order_relaxed);
  results_at_cutoff_.store(0, std::memory_order_relaxed);
}

}  // namespace cbir::retrieval
