#include "index/index.h"

#include "util/logging.h"

namespace cbir::retrieval {

std::vector<std::vector<int>> Index::QueryBatch(const la::Matrix& queries,
                                                int k) const {
  std::vector<std::vector<int>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Query(queries.Row(q), k);
  }
  return out;
}

}  // namespace cbir::retrieval
