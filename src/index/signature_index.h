#ifndef CBIR_INDEX_SIGNATURE_INDEX_H_
#define CBIR_INDEX_SIGNATURE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "index/index.h"

namespace cbir::retrieval {

/// \brief Knobs for the random-hyperplane signature index.
struct SignatureIndexOptions {
  /// Signature width B in bits. More bits sharpen the Hamming ordering at
  /// the cost of build time and scan bandwidth; 256 (4 words) keeps the
  /// whole 20k-corpus signature block inside L2.
  int bits = 256;
  /// Oversampling: a depth-k retrieval Hamming-scans for k * candidate_factor
  /// candidates before the exact rerank. Raising it trades speed for recall.
  int candidate_factor = 8;
  /// Seed for the hyperplane draw. Same seed + same data = bit-identical
  /// signatures across rebuilds, machines, and thread counts.
  uint64_t seed = 0x51673;
  /// Worker threads for Build (0 = hardware concurrency).
  int num_threads = 0;
};

/// \brief Approximate top-k Euclidean retrieval via packed binary signatures
/// (TopSig-style random hyperplane LSH).
///
/// Build() draws B Gaussian hyperplanes through the corpus centroid and
/// encodes every row into a B-bit signature (bit b = which side of
/// hyperplane b the centered row falls on), packed into uint64_t words.
/// A query Hamming-scans all signatures with popcount, keeps the
/// k * candidate_factor rows with the smallest signature distance (ties on
/// smaller id), and exactly re-ranks only those by Euclidean distance — the
/// returned prefix therefore orders exactly like RankByEuclidean restricted
/// to the candidate set. Centering on the corpus mean makes the angular
/// signature distance track Euclidean proximity on z-scored features.
///
/// `k <= 0` (full-ranking requests) falls back to the exhaustive scan and
/// reproduces RankByEuclidean bit-for-bit.
class SignatureIndex final : public Index {
 public:
  explicit SignatureIndex(const SignatureIndexOptions& options);

  std::string name() const override { return "signature"; }

  void Build(const la::Matrix& features) override;

  /// Rebuilds the cheap derived state (hyperplanes, offsets) from the seed
  /// and `features`, then installs previously computed `signatures` instead
  /// of re-encoding every row — the expensive part of Build. `signatures`
  /// must be the packed block of a Build over the same options and data
  /// (ImageDatabase persistence uses this to skip the rebuild after load).
  void RestoreSignatures(const la::Matrix& features,
                         std::vector<uint64_t> signatures);

  size_t num_rows() const override { return rows_; }

  std::vector<int> Query(const la::Vec& query, int k) const override;

  /// Parallelizes across queries (one thread per block of queries; the
  /// per-query scan stays serial so threads never nest).
  std::vector<std::vector<int>> QueryBatch(const la::Matrix& queries,
                                           int k) const override;

  std::vector<int> Candidates(const la::Vec& query, int k) const override;

  IndexStats stats() const override;
  void ResetStats() override;

  // Introspection (tests and benches).
  int bits() const { return options_.bits; }
  size_t words_per_row() const { return words_; }
  const SignatureIndexOptions& options() const { return options_; }
  /// Packed signatures, row-major `num_rows() x words_per_row()`.
  const std::vector<uint64_t>& signatures() const { return signatures_; }
  /// Encodes an arbitrary vector with the index's hyperplanes.
  std::vector<uint64_t> Encode(const la::Vec& v) const;

 private:
  /// Hamming-selects up to k * candidate_factor candidate ids (ascending).
  /// `cutoff` gets the largest included Hamming distance and `truncated`
  /// whether any row was excluded; `hamming` (optional) gets the per-
  /// candidate distances, parallel to the returned ids.
  std::vector<int> SelectCandidates(const la::Vec& query, int k,
                                    std::vector<uint32_t>* hamming,
                                    uint32_t* cutoff, bool* truncated) const;

  std::vector<int> ExhaustiveQuery(const la::Vec& query, int k) const;

  /// Shared prefix of Build/RestoreSignatures: binds `features` and derives
  /// the hyperplane family (everything except the per-row encoding).
  void BuildPlanes(const la::Matrix& features);

  SignatureIndexOptions options_;
  const double* data_ = nullptr;  ///< caller-owned row-major feature storage
  size_t rows_ = 0;
  size_t dims_ = 0;
  size_t words_ = 0;

  std::vector<double> hyperplanes_;  ///< bits x dims, row-major
  std::vector<double> plane_offsets_;  ///< <centroid, hyperplane b> per bit
  std::vector<uint64_t> signatures_;   ///< rows x words, row-major

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rows_scanned_{0};
  mutable std::atomic<uint64_t> signatures_scanned_{0};
  mutable std::atomic<uint64_t> candidates_reranked_{0};
  // recall_proxy bookkeeping: results returned vs. results sitting exactly
  // at the Hamming candidate cutoff (displaceable by excluded rows).
  mutable std::atomic<uint64_t> results_returned_{0};
  mutable std::atomic<uint64_t> results_at_cutoff_{0};
};

}  // namespace cbir::retrieval

#endif  // CBIR_INDEX_SIGNATURE_INDEX_H_
