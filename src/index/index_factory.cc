#include "index/index_factory.h"

#include "index/exact_index.h"

namespace cbir::retrieval {

const char* IndexModeToString(IndexMode mode) {
  switch (mode) {
    case IndexMode::kExact:
      return "exact";
    case IndexMode::kSignature:
      return "signature";
  }
  return "?";
}

Result<IndexMode> ParseIndexMode(const std::string& name) {
  if (name == "exact") return IndexMode::kExact;
  if (name == "signature") return IndexMode::kSignature;
  return Status::InvalidArgument("unknown index mode: '" + name +
                                 "' (expected exact|signature)");
}

std::unique_ptr<Index> MakeIndex(const IndexOptions& options) {
  switch (options.mode) {
    case IndexMode::kExact:
      return std::make_unique<ExactIndex>();
    case IndexMode::kSignature:
      return std::make_unique<SignatureIndex>(options.signature);
  }
  return nullptr;
}

Result<IndexOptions> IndexOptionsFromFlags(const Flags& flags) {
  IndexOptions options;
  CBIR_ASSIGN_OR_RETURN(options.mode,
                        ParseIndexMode(flags.GetString("index", "exact")));
  options.signature.bits =
      flags.GetInt("signature_bits", flags.GetInt("signature-bits", 256));
  options.signature.candidate_factor =
      flags.GetInt("candidate_factor", flags.GetInt("candidate-factor", 8));
  options.signature.seed = static_cast<uint64_t>(
      flags.GetInt("index-seed", static_cast<int>(options.signature.seed)));
  return options;
}

std::vector<std::string> IndexFlagNames() {
  return {"index",            "signature_bits",   "signature-bits",
          "candidate_factor", "candidate-factor", "index-seed"};
}

}  // namespace cbir::retrieval
