#include "router/merge.h"

#include <algorithm>
#include <unordered_map>

namespace cbir::router {

std::vector<api::Candidate> MergeCandidates(
    const std::vector<std::vector<api::Candidate>>& shard_results, int k) {
  std::unordered_map<int32_t, double> best;
  size_t total = 0;
  for (const auto& shard : shard_results) total += shard.size();
  best.reserve(total);
  for (const auto& shard : shard_results) {
    for (const api::Candidate& c : shard) {
      auto [it, inserted] = best.emplace(c.id, c.distance);
      if (!inserted && c.distance < it->second) it->second = c.distance;
    }
  }
  std::vector<api::Candidate> merged;
  merged.reserve(best.size());
  for (const auto& [id, distance] : best) {
    api::Candidate c;
    c.id = id;
    c.distance = distance;
    merged.push_back(c);
  }
  std::sort(merged.begin(), merged.end(),
            [](const api::Candidate& a, const api::Candidate& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
  if (k > 0 && merged.size() > static_cast<size_t>(k)) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

}  // namespace cbir::router
