#include "router/backend_pool.h"

#include <chrono>
#include <utility>

namespace cbir::router {

Result<std::vector<BackendEndpoint>> ParseBackendList(
    const std::string& spec) {
  std::vector<BackendEndpoint> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return Status::InvalidArgument(
          "backend list: '" + item + "' is not host:port");
    }
    BackendEndpoint endpoint;
    endpoint.host = item.substr(0, colon);
    try {
      endpoint.port = std::stoi(item.substr(colon + 1));
    } catch (...) {
      return Status::InvalidArgument("backend list: bad port in '" + item +
                                     "'");
    }
    if (endpoint.port <= 0 || endpoint.port > 65535) {
      return Status::InvalidArgument("backend list: port out of range in '" +
                                     item + "'");
    }
    out.push_back(std::move(endpoint));
  }
  if (out.empty()) {
    return Status::InvalidArgument("backend list: no backends given");
  }
  return out;
}

BackendPool::BackendPool(std::vector<BackendEndpoint> backends,
                         BackendPoolOptions options)
    : backends_(std::move(backends)), options_(std::move(options)) {
  util::MutexLock lock(mu_);
  states_.resize(backends_.size());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.SetHelp("cbir_router_backend_healthy",
                   "1 when the router considers the backend admitted, 0 "
                   "while it is ejected.");
  for (size_t i = 0; i < backends_.size(); ++i) {
    states_[i].healthy_gauge = registry.GetGauge(
        "cbir_router_backend_healthy", "backend", backends_[i].Label());
    states_[i].healthy_gauge->Set(0);
  }
}

BackendPool::~BackendPool() { Stop(); }

std::unique_ptr<net::RetryingClient> BackendPool::NewClient(
    int backend, bool scatter) const {
  net::RetryOptions retry = options_.session_retry;
  if (scatter) {
    // A scatter leg gets exactly one shot inside the shard deadline: a slow
    // shard is dropped from the merge, never retried into the caller's
    // latency budget.
    retry.max_attempts = 1;
    retry.rpc_timeout_ms = options_.shard_deadline_ms;
    retry.connect_timeout_ms = options_.shard_deadline_ms;
  }
  net::FaultInjector* injector =
      static_cast<size_t>(backend) < options_.injectors.size()
          ? options_.injectors[static_cast<size_t>(backend)]
          : nullptr;
  const BackendEndpoint& endpoint = backends_[static_cast<size_t>(backend)];
  return std::make_unique<net::RetryingClient>(endpoint.host, endpoint.port,
                                               retry, injector);
}

std::unique_ptr<net::RetryingClient> BackendPool::NewProbeClient(
    int backend) const {
  net::RetryOptions retry = options_.session_retry;
  retry.max_attempts = 1;  // the prober loop IS the retry loop
  retry.rpc_timeout_ms = options_.probe_timeout_ms;
  retry.connect_timeout_ms = options_.probe_timeout_ms;
  net::FaultInjector* injector =
      static_cast<size_t>(backend) < options_.injectors.size()
          ? options_.injectors[static_cast<size_t>(backend)]
          : nullptr;
  const BackendEndpoint& endpoint = backends_[static_cast<size_t>(backend)];
  return std::make_unique<net::RetryingClient>(endpoint.host, endpoint.port,
                                               retry, injector);
}

std::string BackendPool::CompatibilityError(
    const api::DescribeResponse& described) const {
  if (described.corpus_size != reference_.corpus_size) {
    return "corpus size " + std::to_string(described.corpus_size) +
           " != " + std::to_string(reference_.corpus_size);
  }
  if (described.dims != reference_.dims) {
    return "feature dims " + std::to_string(described.dims) +
           " != " + std::to_string(reference_.dims);
  }
  if (described.scheme != reference_.scheme) {
    return "scheme '" + described.scheme + "' != '" + reference_.scheme + "'";
  }
  return "";
}

void BackendPool::LogTransition(const char* event, int backend,
                                const char* reason) {
  if (options_.log == nullptr) return;
  options_.log->LogAlways(
      event, {{"backend", backends_[static_cast<size_t>(backend)].Label()},
              {"reason", reason}});
}

Status BackendPool::Start() {
  if (started_) {
    return Status::FailedPrecondition("backend pool: already started");
  }
  // Connect-time handshake: describe every backend with a one-shot probe
  // client. The first reachable backend defines the reference corpus; every
  // other reachable backend must agree. Backends that are down right now
  // start ejected and join later through the prober (which re-runs the same
  // validation).
  std::vector<std::unique_ptr<api::DescribeResponse>> described(
      backends_.size());
  bool have_reference = false;
  for (size_t i = 0; i < backends_.size(); ++i) {
    std::unique_ptr<net::RetryingClient> probe =
        NewProbeClient(static_cast<int>(i));
    Result<api::DescribeResponse> response = probe->Describe();
    if (!response.ok()) continue;
    if (!have_reference) {
      reference_ = response.value();
      have_reference = true;
    }
    described[i] =
        std::make_unique<api::DescribeResponse>(std::move(response.value()));
  }
  if (!have_reference) {
    return Status::Unavailable(
        "backend pool: no backend reachable at startup");
  }
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (described[i] == nullptr) continue;
    const std::string error = CompatibilityError(*described[i]);
    if (!error.empty()) {
      return Status::FailedPrecondition("backend pool: shard " +
                                        backends_[i].Label() +
                                        " is incompatible: " + error);
    }
  }
  {
    util::MutexLock lock(mu_);
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (described[i] == nullptr) continue;
      states_[i].healthy = true;
      states_[i].validated = true;
      states_[i].healthy_gauge->Set(1);
    }
  }
  {
    util::MutexLock lock(prober_mu_);
    stop_requested_ = false;
  }
  prober_ = std::thread([this] { ProbeLoop(); });
  started_ = true;
  return Status::OK();
}

void BackendPool::Stop() {
  if (!started_) return;
  {
    util::MutexLock lock(prober_mu_);
    stop_requested_ = true;
  }
  prober_cv_.NotifyAll();
  if (prober_.joinable()) prober_.join();
  started_ = false;
}

void BackendPool::ProbeLoop() {
  // One dedicated client per backend, owned by this thread alone — probes
  // never contend with forwarded traffic for a pooled connection.
  std::vector<std::unique_ptr<net::RetryingClient>> probes;
  probes.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    probes.push_back(NewProbeClient(static_cast<int>(i)));
  }
  for (;;) {
    {
      util::MutexLock lock(prober_mu_);
      if (prober_cv_.WaitFor(
              prober_mu_,
              std::chrono::milliseconds(options_.probe_interval_ms),
              [this]() CBIR_REQUIRES(prober_mu_) { return stop_requested_; })) {
        return;
      }
    }
    for (size_t i = 0; i < backends_.size(); ++i) {
      // Network strictly outside the pool lock.
      Result<api::DescribeResponse> response = probes[i]->Describe();
      std::string incompatible;
      if (response.ok()) {
        util::MutexLock lock(mu_);
        ++stats_.probes;
        BackendState& state = states_[i];
        if (!state.validated) {
          const std::string error = CompatibilityError(response.value());
          if (!error.empty()) {
            // Never admitted: an incompatible shard would silently merge
            // candidates from a different corpus.
            state.consecutive_probe_successes = 0;
            incompatible = error;
          } else {
            state.validated = true;
          }
        }
        if (incompatible.empty()) {
          state.consecutive_failures = 0;
          if (!state.healthy) {
            ++state.consecutive_probe_successes;
            if (state.consecutive_probe_successes >=
                options_.readmit_after_successes) {
              state.healthy = true;
              state.consecutive_probe_successes = 0;
              state.healthy_gauge->Set(1);
              ++stats_.readmissions;
              LogTransition("backend_up", static_cast<int>(i),
                            "probe_recovery");
            }
          }
        }
      } else {
        util::MutexLock lock(mu_);
        ++stats_.probes;
        ++stats_.probe_failures;
        states_[i].consecutive_probe_successes = 0;
        RecordFailure(static_cast<int>(i), "probe");
      }
      if (!incompatible.empty()) {
        LogTransition("backend_incompatible", static_cast<int>(i),
                      incompatible.c_str());
      }
    }
  }
}

void BackendPool::RecordFailure(int backend, const char* source) {
  BackendState& state = states_[static_cast<size_t>(backend)];
  ++state.consecutive_failures;
  if (state.healthy &&
      state.consecutive_failures >= options_.eject_after_failures) {
    state.healthy = false;
    state.consecutive_probe_successes = 0;
    state.healthy_gauge->Set(0);
    ++stats_.ejections;
    // Pooled clients may hold connections to the dead backend; drop them so
    // re-admitted traffic starts on fresh connections.
    state.session_free.clear();
    state.scatter_free.clear();
    LogTransition("backend_down", backend, source);
  }
}

void BackendPool::ReportOutcome(int backend, const Status& status) {
  util::MutexLock lock(mu_);
  switch (status.code()) {
    case StatusCode::kOk:
      states_[static_cast<size_t>(backend)].consecutive_failures = 0;
      break;
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
      RecordFailure(backend, "rpc");
      break;
    default:
      // An application-level answer (NotFound, InvalidArgument, ...) means
      // the backend is alive and talking.
      states_[static_cast<size_t>(backend)].consecutive_failures = 0;
      break;
  }
}

Result<BackendPool::Lease> BackendPool::LeaseSession(int backend) {
  if (backend < 0 || backend >= num_backends()) {
    return Status::InvalidArgument("backend pool: backend index " +
                                   std::to_string(backend) + " out of range");
  }
  std::unique_ptr<net::RetryingClient> client;
  {
    util::MutexLock lock(mu_);
    BackendState& state = states_[static_cast<size_t>(backend)];
    if (!state.healthy) {
      return Status::Unavailable(
          "backend pool: backend " +
          backends_[static_cast<size_t>(backend)].Label() +
          " is ejected (failing health checks)");
    }
    if (!state.session_free.empty()) {
      client = std::move(state.session_free.back());
      state.session_free.pop_back();
    }
  }
  if (client == nullptr) client = NewClient(backend, /*scatter=*/false);
  return Lease(this, backend, /*scatter=*/false, std::move(client));
}

Result<BackendPool::Lease> BackendPool::LeaseScatter(int backend) {
  if (backend < 0 || backend >= num_backends()) {
    return Status::InvalidArgument("backend pool: backend index " +
                                   std::to_string(backend) + " out of range");
  }
  std::unique_ptr<net::RetryingClient> client;
  {
    util::MutexLock lock(mu_);
    BackendState& state = states_[static_cast<size_t>(backend)];
    if (!state.healthy) {
      return Status::Unavailable(
          "backend pool: backend " +
          backends_[static_cast<size_t>(backend)].Label() +
          " is ejected (failing health checks)");
    }
    if (!state.scatter_free.empty()) {
      client = std::move(state.scatter_free.back());
      state.scatter_free.pop_back();
    }
  }
  if (client == nullptr) client = NewClient(backend, /*scatter=*/true);
  return Lease(this, backend, /*scatter=*/true, std::move(client));
}

void BackendPool::ReturnClient(int backend, bool scatter,
                               std::unique_ptr<net::RetryingClient> client) {
  util::MutexLock lock(mu_);
  BackendState& state = states_[static_cast<size_t>(backend)];
  // A client returned to an ejected backend is discarded — its connection
  // points at a server we no longer trust.
  if (!state.healthy) return;
  if (scatter) {
    state.scatter_free.push_back(std::move(client));
  } else {
    state.session_free.push_back(std::move(client));
  }
}

BackendPool::Lease& BackendPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    backend_ = other.backend_;
    scatter_ = other.scatter_;
    client_ = std::move(other.client_);
    other.pool_ = nullptr;
    other.client_ = nullptr;
  }
  return *this;
}

void BackendPool::Lease::Release() {
  if (pool_ != nullptr && client_ != nullptr) {
    pool_->ReturnClient(backend_, scatter_, std::move(client_));
  }
  pool_ = nullptr;
  client_ = nullptr;
}

bool BackendPool::healthy(int backend) const {
  if (backend < 0 || backend >= num_backends()) return false;
  util::MutexLock lock(mu_);
  return states_[static_cast<size_t>(backend)].healthy;
}

std::vector<int> BackendPool::HealthyBackends() const {
  std::vector<int> out;
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].healthy) out.push_back(static_cast<int>(i));
  }
  return out;
}

int BackendPool::num_healthy() const {
  util::MutexLock lock(mu_);
  int n = 0;
  for (const BackendState& state : states_) {
    if (state.healthy) ++n;
  }
  return n;
}

BackendPoolStats BackendPool::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace cbir::router
