#ifndef CBIR_ROUTER_BACKEND_POOL_H_
#define CBIR_ROUTER_BACKEND_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/messages.h"
#include "net/fault_injector.h"
#include "net/retrying_client.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "util/result.h"
#include "util/sync.h"

namespace cbir::router {

/// \brief One backend shard's address.
struct BackendEndpoint {
  std::string host;
  int port = 0;

  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// Parses "h1:p1,h2:p2,..." (the --backends flag) into endpoints.
Result<std::vector<BackendEndpoint>> ParseBackendList(const std::string& spec);

/// \brief BackendPool knobs.
struct BackendPoolOptions {
  /// Active prober cadence. Every backend — healthy or ejected — gets one
  /// lightweight Describe probe per interval, so detection latency and
  /// re-admission latency are both bounded by it.
  int probe_interval_ms = 250;
  /// Consecutive failures (probe or forwarded-RPC) that eject a backend.
  int eject_after_failures = 2;
  /// Consecutive successful probes that re-admit an ejected backend (the
  /// half-open ramp: real traffic only returns after the backend has proven
  /// itself this many probes in a row).
  int readmit_after_successes = 2;
  /// Probe RPC budget (connect + describe). Kept short: a probe that hangs
  /// for seconds would stall detection of every other backend.
  int probe_timeout_ms = 500;
  /// Budget for one scatter-gather leg (LeaseScatter clients): a shard that
  /// cannot answer inside this is dropped from the merge and the response
  /// goes out degraded.
  int shard_deadline_ms = 1000;
  /// Retry policy for pinned-session forwarding (LeaseSession clients).
  net::RetryOptions session_retry;
  /// Per-backend chaos injectors (tests): index i applies to backend i on
  /// every client the pool creates for it. Missing/short vector = none.
  std::vector<net::FaultInjector*> injectors;
  /// Structured event log for backend_down / backend_up / incompatible
  /// transitions. Null = off. Must outlive the pool.
  obs::StructuredLog* log = nullptr;
};

/// \brief Lifetime counters of a BackendPool.
struct BackendPoolStats {
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t ejections = 0;    ///< healthy -> ejected transitions
  uint64_t readmissions = 0; ///< ejected -> healthy transitions
};

/// \brief Health-checked client pool over the router's backend shards.
///
/// Owns, per backend: a liveness state machine, a free-list of
/// RetryingClients for pinned-session forwarding (full retry policy), and a
/// second free-list for scatter legs (single attempt, short deadline — a
/// scatter leg that fails is dropped from the merge, not retried into the
/// caller's latency budget).
///
/// Liveness is a consecutive-failure circuit breaker fed from two sides:
/// passively by ReportOutcome() on every forwarded RPC, and actively by the
/// prober thread, which Describes every backend each interval. A backend
/// that fails `eject_after_failures` times in a row is ejected — leases
/// against it fail fast with kUnavailable and its gauge
/// (`cbir_router_backend_healthy{backend=...}`) drops to 0 — and an ejected
/// backend is re-admitted only after `readmit_after_successes` consecutive
/// probe successes (half-open: probes carry the risk, not user traffic).
///
/// Start() performs the connect-time compatibility handshake: the first
/// reachable backend's DescribeResponse becomes the pool's reference corpus
/// description, and every other backend must match it (corpus size, dims,
/// scheme) — at Start for backends that are up, or at their first successful
/// probe for backends that join later. An incompatible backend is never
/// admitted.
///
/// Thread-safe. The pool's mutex is never held across a network call:
/// clients are leased out under the lock, used outside it, and returned
/// under it.
class BackendPool {
 public:
  BackendPool(std::vector<BackendEndpoint> backends,
              BackendPoolOptions options);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Runs the initial describe/compatibility pass and starts the prober.
  /// Fails when no backend is reachable or two reachable backends disagree
  /// on the corpus; backends merely unreachable at start begin ejected and
  /// are admitted by the prober once they come up and validate.
  Status Start();

  /// Stops the prober and joins it. Idempotent.
  void Stop();

  /// \brief RAII client lease: returns the client to its free-list on
  /// destruction. Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    net::RetryingClient* operator->() { return client_.get(); }
    net::RetryingClient& operator*() { return *client_; }
    bool valid() const { return client_ != nullptr; }
    int backend() const { return backend_; }

   private:
    friend class BackendPool;
    Lease(BackendPool* pool, int backend, bool scatter,
          std::unique_ptr<net::RetryingClient> client)
        : pool_(pool),
          backend_(backend),
          scatter_(scatter),
          client_(std::move(client)) {}
    void Release();

    BackendPool* pool_ = nullptr;
    int backend_ = -1;
    bool scatter_ = false;
    std::unique_ptr<net::RetryingClient> client_;
  };

  /// A client for pinned-session traffic to `backend` (full retry policy).
  /// Fails fast with kUnavailable when the backend is ejected — no network
  /// touched, which is what makes pinned sessions on a dead shard cheap to
  /// reject.
  Result<Lease> LeaseSession(int backend);

  /// A client for one scatter leg (single attempt, shard_deadline_ms).
  Result<Lease> LeaseScatter(int backend);

  /// Feeds a forwarded RPC's outcome into the circuit breaker. Transport
  /// and shedding failures (kUnavailable, kDeadlineExceeded, kIoError,
  /// kDataLoss) count against the backend; application errors (NotFound,
  /// InvalidArgument, ...) are the backend answering fine and reset the
  /// streak.
  void ReportOutcome(int backend, const Status& status);

  bool healthy(int backend) const;
  std::vector<int> HealthyBackends() const;
  int num_healthy() const;
  int num_backends() const { return static_cast<int>(backends_.size()); }
  const BackendEndpoint& endpoint(int backend) const {
    return backends_[static_cast<size_t>(backend)];
  }

  /// The reference corpus description (valid after a successful Start).
  const api::DescribeResponse& describe() const { return reference_; }

  BackendPoolStats stats() const;
  const BackendPoolOptions& options() const { return options_; }

 private:
  struct BackendState {
    bool healthy = false;
    bool validated = false;  ///< passed the compatibility handshake
    int consecutive_failures = 0;
    int consecutive_probe_successes = 0;
    std::vector<std::unique_ptr<net::RetryingClient>> session_free;
    std::vector<std::unique_ptr<net::RetryingClient>> scatter_free;
    obs::Gauge* healthy_gauge = nullptr;  ///< registry-owned
  };

  std::unique_ptr<net::RetryingClient> NewClient(int backend,
                                                 bool scatter) const;
  std::unique_ptr<net::RetryingClient> NewProbeClient(int backend) const;
  void ReturnClient(int backend, bool scatter,
                    std::unique_ptr<net::RetryingClient> client);
  void ProbeLoop();
  /// One failure against `backend`; ejects at the threshold.
  void RecordFailure(int backend, const char* source) CBIR_REQUIRES(mu_);
  /// Matches `described` against the reference; "" on match, else why not.
  std::string CompatibilityError(const api::DescribeResponse& described) const;
  void LogTransition(const char* event, int backend, const char* reason);

  std::vector<BackendEndpoint> backends_;
  BackendPoolOptions options_;

  mutable util::Mutex mu_{util::LockRank::kRouterBackend, "router_backends"};
  std::vector<BackendState> states_ CBIR_GUARDED_BY(mu_);
  BackendPoolStats stats_ CBIR_GUARDED_BY(mu_);

  api::DescribeResponse reference_;  ///< written once in Start()

  util::Mutex prober_mu_{util::LockRank::kRouterHealth, "router_prober"};
  util::CondVar prober_cv_;
  bool stop_requested_ CBIR_GUARDED_BY(prober_mu_) = false;
  std::thread prober_;
  bool started_ = false;
};

}  // namespace cbir::router

#endif  // CBIR_ROUTER_BACKEND_POOL_H_
