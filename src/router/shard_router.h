#ifndef CBIR_ROUTER_SHARD_ROUTER_H_
#define CBIR_ROUTER_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "api/handler.h"
#include "api/messages.h"
#include "obs/metrics.h"
#include "router/backend_pool.h"
#include "router/hash_ring.h"
#include "util/result.h"
#include "util/sync.h"

namespace cbir::router {

/// \brief ShardRouter knobs.
struct RouterOptions {
  /// Vnodes per backend on the placement ring.
  int vnodes_per_backend = 64;
};

/// \brief Lifetime counters of a ShardRouter.
struct RouterStats {
  uint64_t sessions_started = 0;
  uint64_t sessions_ended = 0;
  uint64_t active_sessions = 0;
  uint64_t scatter_queries = 0;      ///< first-round fan-outs attempted
  uint64_t degraded_responses = 0;   ///< merges missing >= 1 shard
  uint64_t feedbacks_forwarded = 0;  ///< pinned forwards that went out
  uint64_t failfast_unavailable = 0; ///< pinned requests rejected, no network
};

/// \brief Session-affine front tier over N backend shards, speaking the same
/// wire API as a single cbir_server — clients cannot tell the difference
/// except for the new degraded bit.
///
/// Placement: a new session's router-assigned id is consistent-hashed onto
/// the backend ring (healthy backends only) and the session is *pinned*
/// there — relevance feedback trains an SVM whose state lives in that one
/// shard's session table, so every post-feedback request must land on the
/// same backend. The router keeps the pin (router session id -> backend +
/// backend session id) and translates ids in both directions.
///
/// First-round requests (Query before any Feedback, and stateless
/// CandidateRequests) carry no per-session state, so they scatter to every
/// healthy shard in parallel and merge by distance. A shard that cannot
/// answer inside the per-shard deadline is dropped from the merge and the
/// response goes out with the degraded flag (frame flag 0x20) — partial
/// results over no results.
///
/// Failure contract: a pinned session whose backend is ejected fails fast
/// with typed kUnavailable (no network touched). The SVM state is gone with
/// the shard; the client restarts the session, which the ring places on a
/// surviving backend. When the shard returns, the health checker re-admits
/// it and new sessions flow there again automatically.
///
/// Thread-safe (the transport calls from one thread per connection). The
/// session-table lock is never held across a network call.
class ShardRouter : public api::RequestHandler {
 public:
  /// `pool` must be started and must outlive the router.
  ShardRouter(BackendPool* pool, RouterOptions options);

  api::Response HandleRequest(const api::Request& request,
                              const api::RequestEnvelope& envelope,
                              int64_t elapsed_ms,
                              api::ResponseContext* context) override;

  RouterStats stats() const;

  /// The backend index a live router session is pinned to (tests).
  Result<int> SessionBackend(uint64_t router_session_id) const;

  const BackendPool& pool() const { return *pool_; }

 private:
  /// One pinned session. `fed_back` flips on the first successful Feedback:
  /// before it the session's Query answers are the stateless first round
  /// (scattered); after it they are SVM rankings only the pinned shard can
  /// produce.
  struct PinnedSession {
    int backend = -1;
    uint64_t backend_session_id = 0;
    api::QuerySpec query;
    bool fed_back = false;
    /// Next idempotency seq for forwarded Feedback. Per-session, so the
    /// (session, seq) dedup key stays unique even though successive rounds
    /// may ride different pooled client connections.
    uint32_t next_seq = 1;
  };

  api::Response Handle(const api::StartSessionRequest& request);
  api::Response Handle(const api::QueryRequest& request,
                       api::ResponseContext* context);
  api::Response Handle(const api::FeedbackRequest& request,
                       const api::RequestEnvelope& envelope);
  api::Response Handle(const api::EndSessionRequest& request);
  api::Response Handle(const api::CandidateRequest& request,
                       api::ResponseContext* context);
  api::StatsResponse BuildStats() const;

  /// Scatters `query` to every healthy backend, merges to the global top-k.
  /// Sets *degraded when any configured shard is missing from the merge;
  /// fails kUnavailable when no shard contributed.
  Result<std::vector<api::Candidate>> ScatterCandidates(
      const api::QuerySpec& query, int k, bool* degraded);

  BackendPool* pool_;
  RouterOptions options_;
  HashRing ring_;

  std::atomic<uint64_t> next_session_id_{1};

  mutable util::Mutex sessions_mu_{util::LockRank::kRouterSessions,
                                   "router_sessions"};
  std::unordered_map<uint64_t, PinnedSession> sessions_
      CBIR_GUARDED_BY(sessions_mu_);

  std::atomic<uint64_t> sessions_started_{0};
  std::atomic<uint64_t> sessions_ended_{0};
  std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> degraded_responses_{0};
  std::atomic<uint64_t> feedbacks_forwarded_{0};
  std::atomic<uint64_t> failfast_unavailable_{0};

  obs::Counter* scatter_counter_;
  obs::Counter* degraded_counter_;
  obs::Counter* failfast_counter_;
  obs::Gauge* active_sessions_gauge_;
};

}  // namespace cbir::router

#endif  // CBIR_ROUTER_SHARD_ROUTER_H_
