#include "router/hash_ring.h"

#include <algorithm>

namespace cbir::router {

uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

HashRing::HashRing(int num_backends, int vnodes_per_backend)
    : num_backends_(num_backends < 0 ? 0 : num_backends) {
  if (vnodes_per_backend < 1) vnodes_per_backend = 1;
  ring_.reserve(static_cast<size_t>(num_backends_) *
                static_cast<size_t>(vnodes_per_backend));
  for (int b = 0; b < num_backends_; ++b) {
    for (int v = 0; v < vnodes_per_backend; ++v) {
      Point p;
      // Double-mixed so ring points live in a different domain than keys:
      // keys are hashed once, and small keys (session ids count up from 1)
      // would otherwise coincide exactly with backend 0's single-mixed
      // vnode inputs (0 << 32 | v) and all land on backend 0.
      p.hash = MixHash(MixHash((static_cast<uint64_t>(b) << 32) |
                               static_cast<uint64_t>(v)));
      p.backend = b;
      ring_.push_back(p);
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.backend < b.backend);
  });
}

int HashRing::Pick(uint64_t key,
                   const std::function<bool(int)>& healthy) const {
  if (ring_.empty()) return -1;
  const uint64_t h = MixHash(key);
  size_t start = std::lower_bound(ring_.begin(), ring_.end(), h,
                                  [](const Point& p, uint64_t value) {
                                    return p.hash < value;
                                  }) -
                 ring_.begin();
  // Walk at most one full revolution; vnodes of a rejected backend repeat,
  // so cap the walk by distinct backends seen rather than ring size alone.
  std::vector<bool> rejected(static_cast<size_t>(num_backends_), false);
  int rejected_count = 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[(start + i) % ring_.size()];
    if (rejected[static_cast<size_t>(p.backend)]) continue;
    if (healthy == nullptr || healthy(p.backend)) return p.backend;
    rejected[static_cast<size_t>(p.backend)] = true;
    if (++rejected_count == num_backends_) return -1;
  }
  return -1;
}

int HashRing::Pick(uint64_t key) const { return Pick(key, nullptr); }

}  // namespace cbir::router
