#ifndef CBIR_ROUTER_MERGE_H_
#define CBIR_ROUTER_MERGE_H_

#include <vector>

#include "api/messages.h"

namespace cbir::router {

/// \brief Merges per-shard first-round candidate lists into one global
/// top-k.
///
/// Each shard returns its local top-k as (id, distance) pairs; the global
/// answer is the distance-ascending union, deduplicated by id (replicated
/// shards all score the same image identically, so the minimum distance per
/// id is kept), truncated to `k` (k <= 0 keeps everything). Ties break on
/// ascending id so the merged ranking is deterministic regardless of which
/// shard answered first — a degraded (partial) merge is a strict subset of
/// the full one, never a reordering.
std::vector<api::Candidate> MergeCandidates(
    const std::vector<std::vector<api::Candidate>>& shard_results, int k);

}  // namespace cbir::router

#endif  // CBIR_ROUTER_MERGE_H_
