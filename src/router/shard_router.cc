#include "router/shard_router.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <variant>

#include "router/merge.h"

namespace cbir::router {

namespace {

/// The fail-fast error a pinned session gets when its shard is ejected. The
/// message tells the client what to do: the SVM state died with the shard,
/// so restart the session (the ring will place it on a healthy backend).
Status PinnedUnavailable(const std::string& backend_label) {
  return Status::Unavailable(
      "router: session is pinned to backend " + backend_label +
      ", which is ejected — restart the session to continue");
}

}  // namespace

ShardRouter::ShardRouter(BackendPool* pool, RouterOptions options)
    : pool_(pool),
      options_(options),
      ring_(pool->num_backends(), options.vnodes_per_backend) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  scatter_counter_ = registry.GetCounter("cbir_router_scatter_total");
  degraded_counter_ = registry.GetCounter("cbir_router_degraded_total");
  failfast_counter_ = registry.GetCounter("cbir_router_failfast_total");
  active_sessions_gauge_ = registry.GetGauge("cbir_router_active_sessions");
  registry.SetHelp("cbir_router_degraded_total",
                   "Responses merged from fewer shards than configured.");
}

api::Response ShardRouter::HandleRequest(const api::Request& request,
                                         const api::RequestEnvelope& envelope,
                                         int64_t elapsed_ms,
                                         api::ResponseContext* context) {
  if (envelope.has_deadline &&
      elapsed_ms >= static_cast<int64_t>(envelope.deadline_ms)) {
    return api::StatusOnlyResponse(
        request,
        Status::DeadlineExceeded(
            "request deadline of " + std::to_string(envelope.deadline_ms) +
            "ms expired before dispatch (" + std::to_string(elapsed_ms) +
            "ms elapsed)"));
  }
  return std::visit(
      [&](const auto& typed) -> api::Response {
        using Req = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<Req, api::StartSessionRequest>) {
          return Handle(typed);
        } else if constexpr (std::is_same_v<Req, api::QueryRequest>) {
          return Handle(typed, context);
        } else if constexpr (std::is_same_v<Req, api::FeedbackRequest>) {
          return Handle(typed, envelope);
        } else if constexpr (std::is_same_v<Req, api::EndSessionRequest>) {
          return Handle(typed);
        } else if constexpr (std::is_same_v<Req, api::CandidateRequest>) {
          return Handle(typed, context);
        } else if constexpr (std::is_same_v<Req, api::StatsRequest>) {
          return BuildStats();
        } else if constexpr (std::is_same_v<Req, api::MetricsRequest>) {
          return api::MetricsSnapshotResponse();
        } else {
          // DescribeRequest: the router answers from the pool's validated
          // reference description — drivers learn the corpus without ever
          // talking to a shard directly.
          api::DescribeResponse response = pool_->describe();
          response.status = api::WireStatus{};
          return response;
        }
      },
      request);
}

api::Response ShardRouter::Handle(const api::StartSessionRequest& request) {
  api::StartSessionResponse response;
  const uint64_t router_sid =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  const int backend = ring_.Pick(
      router_sid, [this](int b) { return pool_->healthy(b); });
  if (backend < 0) {
    failfast_unavailable_.fetch_add(1, std::memory_order_relaxed);
    failfast_counter_->Increment();
    response.status = api::ToWireStatus(
        Status::Unavailable("router: no healthy backends"));
    return response;
  }
  Result<BackendPool::Lease> lease = pool_->LeaseSession(backend);
  if (!lease.ok()) {
    response.status = api::ToWireStatus(lease.status());
    return response;
  }
  Result<uint64_t> backend_sid = lease.value()->StartSession(request.query);
  pool_->ReportOutcome(backend, backend_sid.status());
  if (!backend_sid.ok()) {
    response.status = api::ToWireStatus(backend_sid.status());
    return response;
  }
  {
    util::MutexLock lock(sessions_mu_);
    PinnedSession pin;
    pin.backend = backend;
    pin.backend_session_id = backend_sid.value();
    pin.query = request.query;
    sessions_.emplace(router_sid, std::move(pin));
    active_sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  sessions_started_.fetch_add(1, std::memory_order_relaxed);
  response.session_id = router_sid;
  return response;
}

Result<std::vector<api::Candidate>> ShardRouter::ScatterCandidates(
    const api::QuerySpec& query, int k, bool* degraded) {
  scatter_queries_.fetch_add(1, std::memory_order_relaxed);
  scatter_counter_->Increment();
  const std::vector<int> healthy = pool_->HealthyBackends();
  const int total = pool_->num_backends();
  if (healthy.empty()) {
    *degraded = true;
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
    degraded_counter_->Increment();
    return Status::Unavailable("router: no healthy backends to scatter to");
  }
  const int want = k > 0 ? k : pool_->describe().default_k;
  struct Leg {
    bool contributed = false;
    std::vector<api::Candidate> candidates;
  };
  std::vector<Leg> legs(healthy.size());
  std::vector<std::thread> threads;
  threads.reserve(healthy.size());
  for (size_t i = 0; i < healthy.size(); ++i) {
    threads.emplace_back([this, &legs, &healthy, &query, want, i] {
      const int backend = healthy[i];
      Result<BackendPool::Lease> lease = pool_->LeaseScatter(backend);
      if (!lease.ok()) return;  // ejected since the healthy snapshot
      Result<std::vector<api::Candidate>> result =
          lease.value()->Candidates(query, want);
      pool_->ReportOutcome(backend, result.status());
      if (result.ok()) {
        legs[i].contributed = true;
        legs[i].candidates = std::move(result.value());
      }
    });
  }
  // Bounded join: every leg's client is capped by shard_deadline_ms, so a
  // dead shard costs one deadline, never a hang.
  for (std::thread& t : threads) t.join();
  std::vector<std::vector<api::Candidate>> contributions;
  contributions.reserve(legs.size());
  for (Leg& leg : legs) {
    if (leg.contributed) contributions.push_back(std::move(leg.candidates));
  }
  *degraded = static_cast<int>(contributions.size()) < total;
  if (*degraded) {
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
    degraded_counter_->Increment();
  }
  if (contributions.empty()) {
    return Status::Unavailable(
        "router: every shard failed the first-round scatter");
  }
  return MergeCandidates(contributions, want);
}

api::Response ShardRouter::Handle(const api::QueryRequest& request,
                                  api::ResponseContext* context) {
  api::QueryResponse response;
  PinnedSession pin;
  {
    util::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end()) {
      response.status = api::ToWireStatus(Status::NotFound(
          "router: unknown session id " +
          std::to_string(request.session_id)));
      return response;
    }
    pin = it->second;
  }
  if (!pin.fed_back) {
    // Pre-feedback, the answer is the stateless first round: scatter it so
    // the merge survives the pinned shard being slow or gone.
    bool degraded = false;
    Result<std::vector<api::Candidate>> merged = ScatterCandidates(
        pin.query, static_cast<int>(request.k), &degraded);
    if (degraded && context != nullptr) context->degraded = true;
    if (!merged.ok()) {
      response.status = api::ToWireStatus(merged.status());
      return response;
    }
    response.ranking.reserve(merged.value().size());
    for (const api::Candidate& c : merged.value()) {
      response.ranking.push_back(c.id);
    }
    return response;
  }
  // Post-feedback, only the pinned shard holds the SVM ranking.
  if (!pool_->healthy(pin.backend)) {
    failfast_unavailable_.fetch_add(1, std::memory_order_relaxed);
    failfast_counter_->Increment();
    response.status = api::ToWireStatus(
        PinnedUnavailable(pool_->endpoint(pin.backend).Label()));
    return response;
  }
  Result<BackendPool::Lease> lease = pool_->LeaseSession(pin.backend);
  if (!lease.ok()) {
    response.status = api::ToWireStatus(lease.status());
    return response;
  }
  Result<std::vector<int>> ranking = lease.value()->Query(
      pin.backend_session_id, static_cast<int>(request.k));
  pool_->ReportOutcome(pin.backend, ranking.status());
  if (!ranking.ok()) {
    response.status = api::ToWireStatus(ranking.status());
    return response;
  }
  response.ranking.assign(ranking.value().begin(), ranking.value().end());
  return response;
}

api::Response ShardRouter::Handle(const api::FeedbackRequest& request,
                                  const api::RequestEnvelope& envelope) {
  api::FeedbackResponse response;
  PinnedSession pin;
  uint32_t seq = 0;
  {
    util::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end()) {
      response.status = api::ToWireStatus(Status::NotFound(
          "router: unknown session id " +
          std::to_string(request.session_id)));
      return response;
    }
    // The forwarded idempotency seq: the client's own when it sent one
    // (its retries must keep deduplicating), else the session's counter.
    // Either way the counter moves past it so later rounds stay unique.
    seq = envelope.has_seq ? envelope.seq : it->second.next_seq;
    it->second.next_seq = std::max(it->second.next_seq, seq) + 1;
    if (it->second.next_seq == 0) it->second.next_seq = 1;
    pin = it->second;
  }
  if (!pool_->healthy(pin.backend)) {
    failfast_unavailable_.fetch_add(1, std::memory_order_relaxed);
    failfast_counter_->Increment();
    response.status = api::ToWireStatus(
        PinnedUnavailable(pool_->endpoint(pin.backend).Label()));
    return response;
  }
  Result<BackendPool::Lease> lease = pool_->LeaseSession(pin.backend);
  if (!lease.ok()) {
    response.status = api::ToWireStatus(lease.status());
    return response;
  }
  Result<std::vector<int>> ranking =
      lease.value()->Feedback(pin.backend_session_id, request.round,
                              static_cast<int>(request.k), seq);
  pool_->ReportOutcome(pin.backend, ranking.status());
  if (!ranking.ok()) {
    response.status = api::ToWireStatus(ranking.status());
    return response;
  }
  feedbacks_forwarded_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(request.session_id);
    if (it != sessions_.end()) it->second.fed_back = true;
  }
  response.ranking.assign(ranking.value().begin(), ranking.value().end());
  return response;
}

api::Response ShardRouter::Handle(const api::EndSessionRequest& request) {
  api::EndSessionResponse response;
  PinnedSession pin;
  {
    util::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end()) {
      response.status = api::ToWireStatus(Status::NotFound(
          "router: unknown session id " +
          std::to_string(request.session_id)));
      return response;
    }
    pin = it->second;
    sessions_.erase(it);
    active_sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  sessions_ended_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort backend cleanup: if the shard is gone, its session table
  // TTL-evicts the orphan on its own — the router's contract (the pin is
  // released) is already satisfied.
  if (pool_->healthy(pin.backend)) {
    Result<BackendPool::Lease> lease = pool_->LeaseSession(pin.backend);
    if (lease.ok()) {
      const Status forwarded =
          lease.value()->EndSession(pin.backend_session_id);
      pool_->ReportOutcome(pin.backend, forwarded);
    }
  }
  return response;
}

api::Response ShardRouter::Handle(const api::CandidateRequest& request,
                                  api::ResponseContext* context) {
  api::CandidateResponse response;
  bool degraded = false;
  Result<std::vector<api::Candidate>> merged = ScatterCandidates(
      request.query, static_cast<int>(request.k), &degraded);
  if (degraded && context != nullptr) context->degraded = true;
  if (!merged.ok()) {
    response.status = api::ToWireStatus(merged.status());
    return response;
  }
  response.candidates = std::move(merged.value());
  return response;
}

api::StatsResponse ShardRouter::BuildStats() const {
  const RouterStats s = stats();
  api::StatsResponse response;
  response.queries = s.scatter_queries;
  response.feedbacks = s.feedbacks_forwarded;
  response.requests = s.scatter_queries + s.feedbacks_forwarded;
  response.sessions_started = s.sessions_started;
  response.sessions_ended = s.sessions_ended;
  response.active_sessions = s.active_sessions;
  return response;
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.sessions_started = sessions_started_.load(std::memory_order_relaxed);
  s.sessions_ended = sessions_ended_.load(std::memory_order_relaxed);
  s.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  s.degraded_responses = degraded_responses_.load(std::memory_order_relaxed);
  s.feedbacks_forwarded =
      feedbacks_forwarded_.load(std::memory_order_relaxed);
  s.failfast_unavailable =
      failfast_unavailable_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(sessions_mu_);
    s.active_sessions = sessions_.size();
  }
  return s;
}

Result<int> ShardRouter::SessionBackend(uint64_t router_session_id) const {
  util::MutexLock lock(sessions_mu_);
  auto it = sessions_.find(router_session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("router: unknown session id " +
                            std::to_string(router_session_id));
  }
  return it->second.backend;
}

}  // namespace cbir::router
