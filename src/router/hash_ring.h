#ifndef CBIR_ROUTER_HASH_RING_H_
#define CBIR_ROUTER_HASH_RING_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace cbir::router {

/// \brief Immutable consistent-hash ring over backend indices.
///
/// Each backend owns `vnodes_per_backend` points on a 64-bit ring (the
/// splitmix64 mix of (backend, vnode), so placement is deterministic across
/// router restarts — a session id that mapped to backend 2 yesterday maps to
/// backend 2 today). Pick() walks clockwise from the key's hash to the first
/// point whose backend passes the caller's predicate, which is how ejection
/// composes with placement: an unhealthy backend's keys spill to the next
/// point on the ring instead of reshuffling everyone (the consistent-hash
/// property the vnodes exist to smooth).
///
/// The ring itself is immutable after construction and therefore freely
/// shared across threads; liveness is the predicate's problem.
class HashRing {
 public:
  explicit HashRing(int num_backends, int vnodes_per_backend = 64);

  /// The backend owning `key`, skipping backends rejected by `healthy`.
  /// Returns -1 when every backend is rejected.
  int Pick(uint64_t key, const std::function<bool(int)>& healthy) const;

  /// Pick with no liveness filter (never -1 for a non-empty ring).
  int Pick(uint64_t key) const;

  int num_backends() const { return num_backends_; }

 private:
  struct Point {
    uint64_t hash;
    int backend;
  };

  int num_backends_;
  std::vector<Point> ring_;  ///< sorted by hash
};

/// The splitmix64 finalizer — the hash both the ring points and callers'
/// keys go through (exposed so tests and the router hash identically).
uint64_t MixHash(uint64_t x);

}  // namespace cbir::router

#endif  // CBIR_ROUTER_HASH_RING_H_
