#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace cbir {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", fraction * 100.0);
  return buf;
}

namespace {

// strerror_r comes in two flavors: the GNU one returns the message pointer
// (not necessarily buf), the POSIX one returns an int and fills buf. The
// overloads read whichever the libc provides.
[[maybe_unused]] const char* StrerrorResult(const char* returned,
                                            const char* /*buf*/) {
  return returned;
}
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : nullptr;
}

}  // namespace

std::string ErrnoString(int errno_value) {
  char buf[256];
  buf[0] = '\0';
  const char* msg =
      StrerrorResult(strerror_r(errno_value, buf, sizeof(buf)), buf);
  if (msg == nullptr || msg[0] == '\0') {
    std::snprintf(buf, sizeof(buf), "errno %d", errno_value);
    msg = buf;
  }
  return msg;
}

}  // namespace cbir
