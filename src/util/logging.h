#ifndef CBIR_UTIL_LOGGING_H_
#define CBIR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cbir {

/// \brief Severity levels for the library logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Process-wide log configuration.
///
/// The default threshold is kWarning so library internals stay quiet in tests
/// and benchmarks; examples raise it to kInfo explicitly.
class LogConfig {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
};

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed operands when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define CBIR_LOG_INTERNAL(level) \
  ::cbir::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define CBIR_LOG(severity) CBIR_LOG_INTERNAL(::cbir::LogLevel::k##severity)

/// Fatal assertion; always enabled (including release builds).
#define CBIR_CHECK(condition)                                  \
  (condition) ? static_cast<void>(0)                           \
              : ::cbir::internal::LogFatalVoidify() &          \
                    CBIR_LOG_INTERNAL(::cbir::LogLevel::kFatal) \
                        << "Check failed: " #condition " "

#define CBIR_CHECK_OK(expr)                                      \
  do {                                                           \
    ::cbir::Status _s = (expr);                                  \
    CBIR_CHECK(_s.ok()) << _s.ToString();                        \
  } while (false)

#define CBIR_CHECK_EQ(a, b) CBIR_CHECK((a) == (b))
#define CBIR_CHECK_NE(a, b) CBIR_CHECK((a) != (b))
#define CBIR_CHECK_LT(a, b) CBIR_CHECK((a) < (b))
#define CBIR_CHECK_LE(a, b) CBIR_CHECK((a) <= (b))
#define CBIR_CHECK_GT(a, b) CBIR_CHECK((a) > (b))
#define CBIR_CHECK_GE(a, b) CBIR_CHECK((a) >= (b))

namespace internal {

/// Helper so CBIR_CHECK can be used as a statement with streaming.
struct LogFatalVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

}  // namespace cbir

#endif  // CBIR_UTIL_LOGGING_H_
