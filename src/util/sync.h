#ifndef CBIR_UTIL_SYNC_H_
#define CBIR_UTIL_SYNC_H_

/// \file
/// Capability-annotated mutex wrappers plus a debug-build runtime lock-rank
/// checker.
///
/// Every mutex in the serving stack is a util::Mutex (or util::SharedMutex)
/// constructed with a LockRank from the central hierarchy documented in
/// docs/CONCURRENCY.md. Two machines check the locking discipline:
///
///  1. **Clang thread-safety analysis** (compile time). The CBIR_* macros
///     below expand to Clang's capability attributes, so `-Wthread-safety`
///     proves that every CBIR_GUARDED_BY field is only touched with its
///     mutex held and that CBIR_REQUIRES contracts hold at every call site.
///     On non-Clang compilers they expand to nothing.
///
///  2. **The runtime lock-rank checker** (debug builds / CBIR_RANK_CHECKS).
///     Each thread keeps a stack of the util locks it holds. Acquiring a
///     lock whose rank is not strictly greater than the most recently
///     acquired held rank — or re-acquiring a lock already held — aborts
///     immediately with both lock names and the full held stack. Deadlock
///     becomes a deterministic, single-thread-reproducible CI failure
///     instead of a timeout.
///
/// The checker compiles out entirely when CBIR_SYNC_RANK_CHECKS is 0 (the
/// default for NDEBUG builds): util::Mutex is then layout-identical to a
/// bare std::mutex and every check is an empty inline.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CBIR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CBIR_THREAD_ANNOTATION
#define CBIR_THREAD_ANNOTATION(x)
#endif

#define CBIR_CAPABILITY(x) CBIR_THREAD_ANNOTATION(capability(x))
#define CBIR_SCOPED_CAPABILITY CBIR_THREAD_ANNOTATION(scoped_lockable)
#define CBIR_GUARDED_BY(x) CBIR_THREAD_ANNOTATION(guarded_by(x))
#define CBIR_PT_GUARDED_BY(x) CBIR_THREAD_ANNOTATION(pt_guarded_by(x))
#define CBIR_REQUIRES(...) \
  CBIR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CBIR_REQUIRES_SHARED(...) \
  CBIR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CBIR_ACQUIRE(...) CBIR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CBIR_ACQUIRE_SHARED(...) \
  CBIR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CBIR_RELEASE(...) CBIR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CBIR_RELEASE_SHARED(...) \
  CBIR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CBIR_TRY_ACQUIRE(...) \
  CBIR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CBIR_EXCLUDES(...) CBIR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CBIR_ASSERT_CAPABILITY(x) CBIR_THREAD_ANNOTATION(assert_capability(x))
#define CBIR_RETURN_CAPABILITY(x) CBIR_THREAD_ANNOTATION(lock_returned(x))
#define CBIR_NO_THREAD_SAFETY_ANALYSIS \
  CBIR_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Rank-checker gate. On by default in !NDEBUG builds; force with the CMake
// option CBIR_RANK_CHECKS=ON (which defines CBIR_SYNC_RANK_CHECKS=1 for the
// whole build tree so all TUs agree on the Mutex layout).
// ---------------------------------------------------------------------------

#ifndef CBIR_SYNC_RANK_CHECKS
#ifdef NDEBUG
#define CBIR_SYNC_RANK_CHECKS 0
#else
#define CBIR_SYNC_RANK_CHECKS 1
#endif
#endif

namespace cbir::util {

/// The global lock-rank hierarchy. A thread may only acquire a lock whose
/// rank is **strictly greater** than every rank it already holds (equal
/// ranks are allowed only through TwoMutexLock, which orders by address).
/// Keep this in sync with docs/CONCURRENCY.md — the docs explain *why* each
/// edge exists.
enum class LockRank : int {
  kService = 10,          ///< reserved: future whole-service state
  kTcpConnections = 20,   ///< net::TcpServer connection registry
  kRouterSessions = 22,   ///< router::ShardRouter session-pin table
  kRouterBackend = 24,    ///< router::BackendPool per-backend state + leases
  kRouterHealth = 26,     ///< router::BackendPool prober wakeup latch
  kSessionManager = 30,   ///< serve::SessionManager table + LRU
  kSession = 40,          ///< serve::ServeSession per-session state
  kQueryCache = 50,       ///< serve::QueryCache shard
  kScheme = 60,           ///< core::LrfCsvmScheme aggregated diagnostics
  kLogStore = 70,         ///< logdb::LogStore sessions + WAL
  kSlo = 80,              ///< obs::SloTracker ring + state
  kLifecycle = 85,        ///< start/stop latches (e.g. SloTracker stop)
  kFlightRecorder = 90,   ///< obs::FlightRecorder per-slot record
  kSlowLog = 95,          ///< obs::SlowRequestLog ring
  kFaultInjector = 98,    ///< net::FaultInjector rng + stats
  kMetrics = 100,         ///< obs::MetricsRegistry instrument tables
  kStructuredLog = 110,   ///< obs::StructuredLog event ring (leaf)
};

/// True when the runtime lock-rank checker is compiled in. Tests use this to
/// decide between EXPECT_DEATH on violations and GTEST_SKIP.
inline constexpr bool kLockRankChecksEnabled = CBIR_SYNC_RANK_CHECKS != 0;

namespace internal {
#if CBIR_SYNC_RANK_CHECKS
/// Validates and records an acquisition of `mutex` on this thread's held
/// stack. Aborts (with names and the held stack) on recursive acquisition or
/// when `rank` is not strictly greater than the top-of-stack rank
/// (`allow_equal` relaxes that to >=, for TwoMutexLock's second lock).
void RankAcquire(const void* mutex, int rank, const char* name,
                 bool allow_equal);
/// Pops `mutex` from this thread's held stack (out-of-LIFO release is fine).
/// Aborts if it is not held.
void RankRelease(const void* mutex);
/// True iff this thread's held stack contains `mutex`.
bool RankHeldByThisThread(const void* mutex);
/// Aborts unless this thread's held stack contains `mutex`.
void RankAssertHeld(const void* mutex, const char* name);
/// Aborts if this thread holds any lock of exactly rank `rank`.
void RankAssertNotHeld(int rank, const char* what);
/// Aborts if this thread holds any lock of rank >= `rank`.
void RankAssertNoneAtOrAbove(int rank, const char* what);
#endif
}  // namespace internal

/// Debug assertion helpers for lock-ordering invariants that span call
/// boundaries (e.g. "the session-manager lock is never held while appending
/// to the log store"). No-ops when the checker is compiled out.
inline void AssertRankNotHeld(LockRank rank, const char* what) {
#if CBIR_SYNC_RANK_CHECKS
  internal::RankAssertNotHeld(static_cast<int>(rank), what);
#else
  (void)rank;
  (void)what;
#endif
}

inline void AssertNoRankHeldAtOrAbove(LockRank rank, const char* what) {
#if CBIR_SYNC_RANK_CHECKS
  internal::RankAssertNoneAtOrAbove(static_cast<int>(rank), what);
#else
  (void)rank;
  (void)what;
#endif
}

class TwoMutexLock;

/// A std::mutex carrying a lock rank, a name for diagnostics, and Clang
/// capability annotations. Meets *BasicLockable* / *Lockable* so it works
/// with std::condition_variable_any (see CondVar below).
class CBIR_CAPABILITY("mutex") Mutex {
 public:
#if CBIR_SYNC_RANK_CHECKS
  explicit Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
#else
  explicit Mutex(LockRank, const char*) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CBIR_ACQUIRE() {
#if CBIR_SYNC_RANK_CHECKS
    // Check *before* blocking: a rank violation means this lock() could be
    // one arm of a real deadlock, so it must abort rather than hang.
    internal::RankAcquire(this, static_cast<int>(rank_), name_,
                          /*allow_equal=*/false);
#endif
    mu_.lock();
  }

  bool try_lock() CBIR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if CBIR_SYNC_RANK_CHECKS
    // A successful try_lock cannot deadlock, but it still participates in
    // the ordering discipline: code paths must not depend on try_lock to
    // dodge the hierarchy.
    internal::RankAcquire(this, static_cast<int>(rank_), name_,
                          /*allow_equal=*/false);
#endif
    return true;
  }

  void unlock() CBIR_RELEASE() {
    mu_.unlock();
#if CBIR_SYNC_RANK_CHECKS
    internal::RankRelease(this);
#endif
  }

  /// Debug-asserts the calling thread holds this mutex, and tells the
  /// static analysis to assume so. Used to re-establish the capability
  /// across type-erased boundaries (e.g. the SessionManager eviction
  /// callback, which receives a session whose lock the manager holds).
  void AssertHeld() const CBIR_ASSERT_CAPABILITY(this) {
#if CBIR_SYNC_RANK_CHECKS
    internal::RankAssertHeld(this, name_);
#endif
  }

#if CBIR_SYNC_RANK_CHECKS
  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }
#endif

 private:
  friend class TwoMutexLock;

  // TwoMutexLock's second acquisition: same-rank is allowed because the
  // pair is ordered by address.
  void LockAllowSameRank() CBIR_ACQUIRE() {
#if CBIR_SYNC_RANK_CHECKS
    internal::RankAcquire(this, static_cast<int>(rank_), name_,
                          /*allow_equal=*/true);
#endif
    mu_.lock();
  }

  std::mutex mu_;
#if CBIR_SYNC_RANK_CHECKS
  const LockRank rank_;
  const char* const name_;
#endif
};

/// A std::shared_mutex carrying a lock rank and capability annotations.
/// Shared (reader) acquisitions obey the same rank discipline as exclusive
/// ones — the hierarchy is about ordering, not about exclusivity.
class CBIR_CAPABILITY("shared_mutex") SharedMutex {
 public:
#if CBIR_SYNC_RANK_CHECKS
  explicit SharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
#else
  explicit SharedMutex(LockRank, const char*) {}
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CBIR_ACQUIRE() {
#if CBIR_SYNC_RANK_CHECKS
    internal::RankAcquire(this, static_cast<int>(rank_), name_,
                          /*allow_equal=*/false);
#endif
    mu_.lock();
  }

  void unlock() CBIR_RELEASE() {
    mu_.unlock();
#if CBIR_SYNC_RANK_CHECKS
    internal::RankRelease(this);
#endif
  }

  void lock_shared() CBIR_ACQUIRE_SHARED() {
#if CBIR_SYNC_RANK_CHECKS
    internal::RankAcquire(this, static_cast<int>(rank_), name_,
                          /*allow_equal=*/false);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() CBIR_RELEASE_SHARED() {
    mu_.unlock_shared();
#if CBIR_SYNC_RANK_CHECKS
    internal::RankRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;
#if CBIR_SYNC_RANK_CHECKS
  const LockRank rank_;
  const char* const name_;
#endif
};

/// RAII exclusive lock over util::Mutex, in the style of absl::MutexLock.
class CBIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CBIR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CBIR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over util::SharedMutex.
class CBIR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CBIR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() CBIR_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over util::SharedMutex.
class CBIR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) CBIR_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() CBIR_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Locks two same-rank mutexes in address order — the one sanctioned way to
/// hold two locks of equal rank (e.g. LogStore::operator= locking this and
/// other). The pair must be distinct objects.
class CBIR_SCOPED_CAPABILITY TwoMutexLock {
 public:
  TwoMutexLock(Mutex& a, Mutex& b) CBIR_ACQUIRE(a, b)
      : first_(&a < &b ? a : b), second_(&a < &b ? b : a) {
    first_.lock();
    second_.LockAllowSameRank();
  }
  ~TwoMutexLock() CBIR_RELEASE() {
    second_.unlock();
    first_.unlock();
  }

  TwoMutexLock(const TwoMutexLock&) = delete;
  TwoMutexLock& operator=(const TwoMutexLock&) = delete;

 private:
  Mutex& first_;
  Mutex& second_;
};

/// Condition variable usable with util::Mutex (condition_variable_any over
/// the Lockable interface). The wait bodies unlock/relock through the
/// wrapper, so the rank checker naturally pops and re-pushes the rank across
/// the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) CBIR_REQUIRES(mu)
      CBIR_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  /// Returns the predicate's value on wake (false on timeout).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Predicate pred) CBIR_REQUIRES(mu)
      CBIR_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cbir::util

#endif  // CBIR_UTIL_SYNC_H_
