#include "util/status.h"

namespace cbir {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

uint32_t StatusCodeToWireCode(StatusCode code) {
  return static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromWireCode(uint32_t wire_code) {
  for (StatusCode code : kAllStatusCodes) {
    if (static_cast<uint32_t>(code) == wire_code) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace cbir
