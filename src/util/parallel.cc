#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace cbir {

namespace {
// Set inside ParallelFor workers so nested ParallelFor calls (e.g. a
// per-query experiment loop whose schemes call the parallel corpus scans)
// degrade to serial execution instead of oversubscribing the machine with
// workers^2 threads.
thread_local bool in_parallel_worker = false;
}  // namespace

int EffectiveThreadCount(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 int num_threads) {
  if (n == 0) return;
  int workers = std::min<int>(EffectiveThreadCount(num_threads),
                              static_cast<int>(n));
  if (workers <= 1 || in_parallel_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Dynamic chunking keeps load balanced when per-item cost varies (e.g. the
  // coupled-SVM query loop where AO iteration counts differ per query).
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, n / (8 * workers));
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      in_parallel_worker = true;
      while (true) {
        size_t begin = next.fetch_add(chunk);
        if (begin >= n) break;
        size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace cbir
