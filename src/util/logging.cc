#include "util/logging.h"

#include <atomic>

namespace cbir {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel LogConfig::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void LogConfig::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= LogConfig::threshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace cbir
