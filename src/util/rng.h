#ifndef CBIR_UTIL_RNG_H_
#define CBIR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cbir {

/// \brief Deterministic pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64.
///
/// Every stochastic component of the library takes an explicit seed so that
/// experiments are exactly reproducible run-to-run and machine-to-machine
/// (no dependence on libstdc++ distribution implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in random order.
  /// If k >= n, returns a permutation of all n indices.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each parallel task
  /// its own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cbir

#endif  // CBIR_UTIL_RNG_H_
