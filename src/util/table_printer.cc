#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace cbir {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CBIR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CBIR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  auto print_separator = [&] {
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  };

  print_line(header_);
  print_separator();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_separator();
    } else {
      print_line(row.cells);
    }
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace cbir
