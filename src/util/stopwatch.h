#ifndef CBIR_UTIL_STOPWATCH_H_
#define CBIR_UTIL_STOPWATCH_H_

#include <chrono>

namespace cbir {

/// \brief Monotonic wall-clock stopwatch used by benches and diagnostics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cbir

#endif  // CBIR_UTIL_STOPWATCH_H_
