#ifndef CBIR_UTIL_CSV_WRITER_H_
#define CBIR_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace cbir {

/// \brief Writes simple CSV files (figure series for external plotting).
///
/// Values containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 6 significant digits.
  void AddNumericRow(const std::vector<double>& row);

  /// Serializes the accumulated rows.
  std::string ToString() const;

  /// Writes to `path`, overwriting any existing file.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbir

#endif  // CBIR_UTIL_CSV_WRITER_H_
