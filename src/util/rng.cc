#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace cbir {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CBIR_CHECK_GT(n, 0u);
  // Rejection sampling for an unbiased result.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CBIR_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  const double z1 = mag * std::sin(2.0 * M_PI * u2);
  cached_gaussian_ = z1;
  has_cached_gaussian_ = true;
  return z0;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  Shuffle(&all);
  if (k < n) all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA3C59AC2F1EB4D5Full); }

}  // namespace cbir
