#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace cbir {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (key.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      flags.values_[key] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token exists and is not itself a flag;
    // otherwise a bare boolean flag.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

Status Flags::RequireKnown(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + key;
  }
  if (unknown.empty()) return Status::OK();
  return Status::InvalidArgument("unknown flag(s): " + unknown);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& key, int fallback) const {
  if (!Has(key)) return fallback;
  auto r = GetIntStrict(key);
  CBIR_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  if (!Has(key)) return fallback;
  auto r = GetDoubleStrict(key);
  CBIR_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

Result<int> Flags::GetIntStrict(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("flag --" + key);
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " is not an integer: " +
                                   it->second);
  }
  return static_cast<int>(v);
}

Result<double> Flags::GetDoubleStrict(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("flag --" + key);
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + " is not a number: " +
                                   it->second);
  }
  return v;
}

std::vector<std::string> Flags::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace cbir
