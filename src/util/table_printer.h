#ifndef CBIR_UTIL_TABLE_PRINTER_H_
#define CBIR_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cbir {

/// \brief Renders column-aligned ASCII tables, used by the paper-table
/// benchmark harnesses to print Table 1 / Table 2 style output.
///
/// \code
///   TablePrinter t({"#TOP", "Euclidean", "RF-SVM"});
///   t.AddRow({"20", "0.398", "0.491"});
///   t.Print(std::cout);
/// \endcode
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; the row must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with 2-space column gutters.
  void Print(std::ostream& os) const;

  /// Renders to a string (used in tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace cbir

#endif  // CBIR_UTIL_TABLE_PRINTER_H_
