#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace cbir {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string EscapeField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CBIR_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  CBIR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  AddRow(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeField(row[i]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream ofs(path, std::ios::trunc);
  if (!ofs) return Status::IoError("cannot open for writing: " + path);
  ofs << ToString();
  if (!ofs) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace cbir
