#ifndef CBIR_UTIL_RESULT_H_
#define CBIR_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace cbir {

/// \brief Holds either a value of type T or an error Status.
///
/// The library convention for fallible value-producing functions:
///
/// \code
///   Result<SvmModel> model = trainer.Train(dataset);
///   if (!model.ok()) return model.status();
///   Use(model.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_value;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::IoError(...);`.
  /// Storing an OK status in a Result is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    CBIR_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors; it is a checked fatal error to call on a failed Result.
  const T& value() const& {
    CBIR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    CBIR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CBIR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define CBIR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define CBIR_ASSIGN_OR_RETURN(lhs, rexpr) \
  CBIR_ASSIGN_OR_RETURN_IMPL(             \
      CBIR_CONCAT_NAME(_result_tmp_, __LINE__), lhs, rexpr)

#define CBIR_CONCAT_NAME_INNER(x, y) x##y
#define CBIR_CONCAT_NAME(x, y) CBIR_CONCAT_NAME_INNER(x, y)

}  // namespace cbir

#endif  // CBIR_UTIL_RESULT_H_
