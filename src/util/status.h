#ifndef CBIR_UTIL_STATUS_H_
#define CBIR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cbir {

/// \brief Canonical error categories used across the library.
///
/// Mirrors the Arrow/RocksDB convention: library functions that can fail
/// return a Status (or Result<T>) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kFailedPrecondition = 7,
  kInternal = 8,
  /// A bounded operation (socket connect/read/write, an RPC with an attached
  /// deadline) ran out of time. Retrying may succeed; the work may or may
  /// not have happened on the other side.
  kDeadlineExceeded = 9,
  /// The server shed the request under overload (admission control, session
  /// capacity). Transient by definition: back off and retry.
  kUnavailable = 10,
  /// Data failed an integrity check (a wire frame whose CRC32 trailer does
  /// not match, a corrupted log record). The bytes were delivered but cannot
  /// be trusted; retrying over a fresh transfer may succeed.
  kDataLoss = 11,
};

/// Every StatusCode enumerator, for exhaustive iteration in tests and
/// wire-mapping code. Keep in sync with the enum above.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,            StatusCode::kInvalidArgument,
    StatusCode::kOutOfRange,    StatusCode::kNotFound,
    StatusCode::kAlreadyExists, StatusCode::kIoError,
    StatusCode::kNotImplemented, StatusCode::kFailedPrecondition,
    StatusCode::kInternal,      StatusCode::kDeadlineExceeded,
    StatusCode::kUnavailable,   StatusCode::kDataLoss,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Stable uint32 wire encoding of a status code (the enum's numeric
/// value). Used by the api wire error responses; values never change once
/// shipped.
uint32_t StatusCodeToWireCode(StatusCode code);

/// \brief Inverse of StatusCodeToWireCode. Wire values that do not name a
/// known enumerator (a newer peer, a corrupted frame) map to kInternal so a
/// malformed code can never masquerade as kOk.
StatusCode StatusCodeFromWireCode(uint32_t wire_code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Typical usage:
///
/// \code
///   Status s = DoWork();
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define CBIR_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::cbir::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace cbir

#endif  // CBIR_UTIL_STATUS_H_
