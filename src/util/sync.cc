#include "util/sync.h"

#if CBIR_SYNC_RANK_CHECKS

#include <cstdio>
#include <cstdlib>

namespace cbir::util::internal {
namespace {

// Per-thread stack of held util locks, in acquisition order. Ranks on the
// stack are nondecreasing by construction (strictly increasing except for
// TwoMutexLock's sanctioned same-rank pair), so the top entry always carries
// the maximum held rank.
constexpr int kMaxHeldLocks = 64;

struct HeldLock {
  const void* mutex;
  int rank;
  const char* name;
};

thread_local HeldLock t_held[kMaxHeldLocks];
thread_local int t_depth = 0;

void DumpHeldStack() {
  std::fprintf(stderr, "  held locks (oldest first):\n");
  if (t_depth == 0) std::fprintf(stderr, "    (none)\n");
  for (int i = 0; i < t_depth; ++i) {
    std::fprintf(stderr, "    \"%s\" (rank %d)\n", t_held[i].name,
                 t_held[i].rank);
  }
}

[[noreturn]] void Die() {
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void RankAcquire(const void* mutex, int rank, const char* name,
                 bool allow_equal) {
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].mutex == mutex) {
      std::fprintf(stderr,
                   "cbir lock-rank violation: recursive acquisition of "
                   "\"%s\" (rank %d)\n",
                   name, rank);
      DumpHeldStack();
      Die();
    }
  }
  if (t_depth > 0) {
    const HeldLock& top = t_held[t_depth - 1];
    const bool ok = allow_equal ? rank >= top.rank : rank > top.rank;
    if (!ok) {
      std::fprintf(stderr,
                   "cbir lock-rank violation: acquiring \"%s\" (rank %d) "
                   "while holding \"%s\" (rank %d) inverts the lock "
                   "hierarchy\n",
                   name, rank, top.name, top.rank);
      DumpHeldStack();
      Die();
    }
  }
  if (t_depth == kMaxHeldLocks) {
    std::fprintf(stderr,
                 "cbir lock-rank violation: more than %d locks held while "
                 "acquiring \"%s\" (rank %d)\n",
                 kMaxHeldLocks, name, rank);
    DumpHeldStack();
    Die();
  }
  t_held[t_depth++] = HeldLock{mutex, rank, name};
}

void RankRelease(const void* mutex) {
  // Out-of-LIFO release is legal (std::scoped_lock-style pairs unlock in
  // construction order), so search from the top and close the gap.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  std::fprintf(stderr,
               "cbir lock-rank violation: releasing a lock this thread does "
               "not hold\n");
  DumpHeldStack();
  Die();
}

bool RankHeldByThisThread(const void* mutex) {
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].mutex == mutex) return true;
  }
  return false;
}

void RankAssertHeld(const void* mutex, const char* name) {
  if (RankHeldByThisThread(mutex)) return;
  std::fprintf(stderr,
               "cbir lock-rank violation: AssertHeld(\"%s\") failed — lock "
               "not held by this thread\n",
               name);
  DumpHeldStack();
  Die();
}

void RankAssertNotHeld(int rank, const char* what) {
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].rank != rank) continue;
    std::fprintf(stderr,
                 "cbir lock-rank violation: %s requires that no rank-%d "
                 "lock is held, but \"%s\" is\n",
                 what, rank, t_held[i].name);
    DumpHeldStack();
    Die();
  }
}

void RankAssertNoneAtOrAbove(int rank, const char* what) {
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].rank < rank) continue;
    std::fprintf(stderr,
                 "cbir lock-rank violation: %s requires that no lock of "
                 "rank >= %d is held, but \"%s\" (rank %d) is\n",
                 what, rank, t_held[i].name, t_held[i].rank);
    DumpHeldStack();
    Die();
  }
}

}  // namespace cbir::util::internal

#else  // !CBIR_SYNC_RANK_CHECKS

// Keep the TU non-empty so the library builds identically either way.
namespace cbir::util::internal {
void SyncRankChecksCompiledOut() {}
}  // namespace cbir::util::internal

#endif  // CBIR_SYNC_RANK_CHECKS
