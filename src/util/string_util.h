#ifndef CBIR_UTIL_STRING_UTIL_H_
#define CBIR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cbir {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view input);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Fixed-precision float formatting (e.g. FormatDouble(0.4237, 3) == "0.424").
std::string FormatDouble(double value, int precision);

/// Renders a signed percentage with one decimal, e.g. "+42.4%".
std::string FormatPercent(double fraction);

/// Thread-safe strerror: the message for `errno_value` without the shared
/// static buffer strerror(3) may hand back (concurrency-mt-unsafe).
std::string ErrnoString(int errno_value);

}  // namespace cbir

#endif  // CBIR_UTIL_STRING_UTIL_H_
