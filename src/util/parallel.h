#ifndef CBIR_UTIL_PARALLEL_H_
#define CBIR_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace cbir {

/// \brief Runs `fn(i)` for every i in [0, n) across up to `num_threads`
/// worker threads (0 = hardware concurrency).
///
/// Iterations are distributed in contiguous blocks; `fn` must be safe to call
/// concurrently for distinct indices. Determinism is the caller's job: seed
/// any per-iteration RNG from the index, never from shared mutable state.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 int num_threads = 0);

/// \brief Returns the effective worker count ParallelFor would use.
int EffectiveThreadCount(int requested);

}  // namespace cbir

#endif  // CBIR_UTIL_PARALLEL_H_
