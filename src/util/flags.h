#ifndef CBIR_UTIL_FLAGS_H_
#define CBIR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cbir {

/// \brief Minimal `--key=value` command-line parser for the examples and
/// the experiment driver tool.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--flag`
/// (stored as "true"). Anything not starting with `--` is a positional
/// argument.
class Flags {
 public:
  /// Parses argv (excluding argv[0]). Fails on malformed arguments like
  /// a trailing `--key` with no value when `=` is absent and it is the
  /// last token... (bare flags are allowed; the ambiguity resolves in
  /// favor of the bare-flag reading).
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Errors (InvalidArgument listing the offenders) when any parsed flag is
  /// not in `known`. Drivers call this right after Parse so a typo'd flag
  /// aborts the run instead of silently running the default config.
  Status RequireKnown(const std::vector<std::string>& known) const;

  /// Typed getters with defaults. The fallback is used only when the flag is
  /// ABSENT: a flag that is present but not parseable as the requested type
  /// is fatal (message + nonzero exit) — running the wrong config beats no
  /// diagnostics only when the value was never given. The Get*Strict
  /// variants return errors instead.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  Result<int> GetIntStrict(const std::string& key) const;
  Result<double> GetDoubleStrict(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed keys (for --help style listings and unknown-flag checks).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cbir

#endif  // CBIR_UTIL_FLAGS_H_
