#ifndef CBIR_LA_MATRIX_H_
#define CBIR_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace cbir::la {

/// \brief Row-major dense matrix of doubles.
///
/// Used for feature matrices (one row per image) and kernel Gram matrices.
/// Deliberately minimal: the library needs storage, row views and a few
/// products, not a full BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;

  /// Pointer to the start of row r (contiguous `cols()` doubles).
  double* RowPtr(size_t r);
  const double* RowPtr(size_t r) const;

  /// Copies row r into a Vec.
  Vec Row(size_t r) const;

  /// Overwrites row r. Requires v.size() == cols().
  void SetRow(size_t r, const Vec& v);

  /// Matrix-vector product (rows x cols) * (cols) -> (rows).
  Vec Multiply(const Vec& v) const;

  /// Transposed product: (cols) <- A^T * v where v has `rows()` entries.
  Vec MultiplyTransposed(const Vec& v) const;

  /// Raw storage access (row-major), used by serialization.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cbir::la

#endif  // CBIR_LA_MATRIX_H_
