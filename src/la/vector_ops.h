#ifndef CBIR_LA_VECTOR_OPS_H_
#define CBIR_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace cbir::la {

/// Dense vector type used throughout the library for feature vectors and
/// log vectors. Double precision: the SMO solver's convergence tolerance is
/// far below float epsilon at realistic condition numbers.
using Vec = std::vector<double>;

/// Inner product <a, b>. Requires equal sizes.
double Dot(const Vec& a, const Vec& b);

/// Squared Euclidean distance ||a - b||^2. Requires equal sizes.
double SquaredDistance(const Vec& a, const Vec& b);

/// Euclidean distance ||a - b||.
double Distance(const Vec& a, const Vec& b);

/// L2 norm ||a||.
double Norm(const Vec& a);

/// In-place y += alpha * x. Requires equal sizes.
void Axpy(double alpha, const Vec& x, Vec* y);

/// In-place x *= alpha.
void Scale(double alpha, Vec* x);

/// Element-wise sum a + b.
Vec Add(const Vec& a, const Vec& b);

/// Element-wise difference a - b.
Vec Subtract(const Vec& a, const Vec& b);

/// Normalizes to unit L2 norm; leaves the zero vector untouched.
void NormalizeL2(Vec* x);

/// Unrolled inner product over raw storage; `a` and `b` hold `n` doubles.
double DotN(const double* a, const double* b, size_t n);

/// Unrolled squared distance over raw storage; `a` and `b` hold `n` doubles.
double SquaredDistanceN(const double* a, const double* b, size_t n);

/// Batch primitive: out[r] = ||rows[r] - query||^2 for r in [0, num_rows),
/// where `rows` is row-major contiguous storage with `dims` doubles per row.
/// One pass over the block; the hot loop of Euclidean corpus scans and RBF
/// kernel-row evaluation.
void SquaredDistanceToRows(const double* rows, size_t num_rows, size_t dims,
                           const double* query, double* out);

/// Batch primitive: out[r] = <rows[r], query>, same layout contract as
/// SquaredDistanceToRows. Hot loop of linear/polynomial kernel rows.
void DotToRows(const double* rows, size_t num_rows, size_t dims,
               const double* query, double* out);

}  // namespace cbir::la

#endif  // CBIR_LA_VECTOR_OPS_H_
