#include "la/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cbir::la {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double mu = Mean(v);
  double sum = 0.0;
  for (double x : v) {
    const double d = x - mu;
    sum += d * d;
  }
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double SkewnessCubeRoot(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double mu = Mean(v);
  double sum = 0.0;
  for (double x : v) {
    const double d = x - mu;
    sum += d * d * d;
  }
  const double m3 = sum / static_cast<double>(v.size());
  return std::cbrt(m3);
}

double Entropy(const std::vector<double>& histogram) {
  double total = 0.0;
  for (double x : histogram) {
    if (x > 0.0) total += x;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double x : histogram) {
    if (x <= 0.0) continue;
    const double p = x / total;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<double> Histogram(const std::vector<double>& v, size_t bins,
                              double lo, double hi) {
  CBIR_CHECK_GT(bins, 0u);
  CBIR_CHECK_LT(lo, hi);
  std::vector<double> hist(bins, 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double x : v) {
    long b = static_cast<long>((x - lo) * scale);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    hist[static_cast<size_t>(b)] += 1.0;
  }
  return hist;
}

}  // namespace cbir::la
