#include "la/matrix.h"

#include "util/logging.h"

namespace cbir::la {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::At(size_t r, size_t c) {
  CBIR_CHECK_LT(r, rows_);
  CBIR_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  CBIR_CHECK_LT(r, rows_);
  CBIR_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double* Matrix::RowPtr(size_t r) {
  CBIR_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::RowPtr(size_t r) const {
  CBIR_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

Vec Matrix::Row(size_t r) const {
  const double* p = RowPtr(r);
  return Vec(p, p + cols_);
}

void Matrix::SetRow(size_t r, const Vec& v) {
  CBIR_CHECK_EQ(v.size(), cols_);
  double* p = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) p[c] = v[c];
}

Vec Matrix::Multiply(const Vec& v) const {
  CBIR_CHECK_EQ(v.size(), cols_);
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* p = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += p[c] * v[c];
    out[r] = sum;
  }
  return out;
}

Vec Matrix::MultiplyTransposed(const Vec& v) const {
  CBIR_CHECK_EQ(v.size(), rows_);
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* p = RowPtr(r);
    const double vr = v[r];
    for (size_t c = 0; c < cols_; ++c) out[c] += vr * p[c];
  }
  return out;
}

}  // namespace cbir::la
