#include "la/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace cbir::la {

double Dot(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistance(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const Vec& x, Vec* y) {
  CBIR_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

Vec Add(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Subtract(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void NormalizeL2(Vec* x) {
  const double n = Norm(*x);
  if (n > 0.0) Scale(1.0 / n, x);
}

}  // namespace cbir::la
