#include "la/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace cbir::la {

double DotN(const double* a, const double* b, size_t n) {
  // Four independent accumulators break the serial dependency chain so the
  // compiler can keep multiple FMAs in flight (and auto-vectorize).
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

double SquaredDistanceN(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

void SquaredDistanceToRows(const double* rows, size_t num_rows, size_t dims,
                           const double* query, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = SquaredDistanceN(rows + r * dims, query, dims);
  }
}

void DotToRows(const double* rows, size_t num_rows, size_t dims,
               const double* query, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = DotN(rows + r * dims, query, dims);
  }
}

double Dot(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  return DotN(a.data(), b.data(), a.size());
}

double SquaredDistance(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  return SquaredDistanceN(a.data(), b.data(), a.size());
}

double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const Vec& x, Vec* y) {
  CBIR_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

Vec Add(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Subtract(const Vec& a, const Vec& b) {
  CBIR_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void NormalizeL2(Vec* x) {
  const double n = Norm(*x);
  if (n > 0.0) Scale(1.0 / n, x);
}

}  // namespace cbir::la
