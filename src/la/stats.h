#ifndef CBIR_LA_STATS_H_
#define CBIR_LA_STATS_H_

#include <cstddef>
#include <vector>

namespace cbir::la {

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& v);

/// Population variance (divide by n); 0 for fewer than 1 element.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Signed cube root of the third central moment (Stricker-Orengo "skewness"
/// used by color-moment features; shares the unit of the input).
double SkewnessCubeRoot(const std::vector<double>& v);

/// Shannon entropy (base 2) of a discrete distribution. The input is
/// normalized internally; non-positive entries are ignored.
double Entropy(const std::vector<double>& histogram);

/// Builds a `bins`-bucket histogram of `v` over [lo, hi); values outside the
/// range are clamped into the boundary bins.
std::vector<double> Histogram(const std::vector<double>& v, size_t bins,
                              double lo, double hi);

}  // namespace cbir::la

#endif  // CBIR_LA_STATS_H_
