/// \file
/// libFuzzer harness for the wire codec — the one parser in the system that
/// eats attacker-controlled bytes straight off a socket. Every decode entry
/// point must return a typed error (or a valid message) for ANY input: no
/// crash, no sanitizer report, no unbounded allocation.
///
/// Build modes (see CMakeLists' CBIR_FUZZ option):
///  - Clang: linked against libFuzzer + ASan. Set CBIR_FUZZ_SEEDS=<dir> to
///    have the built-in seed corpus written into <dir> before fuzzing:
///      CBIR_FUZZ_SEEDS=corpus ./fuzz_codec corpus -max_total_time=60
///  - Other compilers (-DCBIR_FUZZ_STANDALONE): a self-driving main() that
///    replays file arguments, or — with no arguments — the built-in corpus
///    plus every truncation and every single-bit flip of each seed (the
///    hostile corpus from tests/api/codec_test.cc, mechanized).
///      ./fuzz_codec                       # built-in corpus sweep
///      ./fuzz_codec crash-1234 crash-99   # replay libFuzzer artifacts
///      ./fuzz_codec --write_seeds=DIR     # emit the seeds and exit

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "api/codec.h"
#include "logdb/log_session.h"

namespace {

using namespace cbir::api;  // NOLINT(google-build-using-namespace)

/// Valid frames of every shape the protocol knows (v1, v2 envelope
/// combinations, profiled responses) plus a few canonical hostile headers.
/// Mirrors the hand-built corpus in tests/api/codec_test.cc; the fuzzer
/// mutates outward from here.
std::vector<std::vector<uint8_t>> BuildSeedCorpus() {
  std::vector<std::vector<uint8_t>> seeds;

  StartSessionRequest start;
  start.query = QuerySpec::ById(12345);
  seeds.push_back(EncodeRequest(Request(start)));
  start.query = QuerySpec::ByFeature({0.0, -1.5, 3.25, 1e300, -0.0});
  seeds.push_back(EncodeRequest(Request(start)));

  QueryRequest query;
  query.session_id = 7;
  query.k = 10;
  seeds.push_back(EncodeRequest(Request(query)));

  FeedbackRequest feedback;
  feedback.session_id = 7;
  feedback.k = 10;
  feedback.round = {cbir::logdb::LogEntry{1, 1},
                    cbir::logdb::LogEntry{2, -1}};
  seeds.push_back(EncodeRequest(Request(feedback)));

  EndSessionRequest end;
  end.session_id = 7;
  seeds.push_back(EncodeRequest(Request(end)));
  seeds.push_back(EncodeRequest(Request(StatsRequest{})));
  seeds.push_back(EncodeRequest(Request(MetricsRequest{})));

  // v2 envelopes: every flag, then all of them at once.
  seeds.push_back(
      EncodeRequest(Request(query), RequestEnvelope::WithDeadline(250)));
  seeds.push_back(
      EncodeRequest(Request(query), RequestEnvelope::WithTraceId(0x1234)));
  seeds.push_back(
      EncodeRequest(Request(query), RequestEnvelope::WithProfile()));
  RequestEnvelope everything;
  everything.has_deadline = true;
  everything.deadline_ms = 1000;
  everything.has_seq = true;
  everything.seq = 3;
  everything.has_trace_id = true;
  everything.trace_id = 0xFEEDFACE;
  everything.has_profile = true;
  seeds.push_back(EncodeRequest(Request(feedback), everything));

  // Responses, plain and profiled.
  QueryResponse response;
  response.ranking = {3, 1, 4, 1, 5};
  seeds.push_back(EncodeResponse(Response(response)));
  ResponseProfile profile;
  profile.trace_id = 0xABCD;
  profile.total_us = 4321;
  profile.spans.push_back(ProfileSpan{});
  profile.counters.push_back(ProfileCounter{"smo_iterations", 142});
  seeds.push_back(EncodeResponse(Response(response), &profile));

  // Canonical hostility: bad magic, absurd length prefix, unknown type.
  seeds.push_back({0xDE, 0xAD, 0xBE, 0xEF, 0, 1, 3, 0, 0, 0, 0, 0});
  seeds.push_back({0x43, 0x42, 0x49, 0x52, 0, 1, 3, 0, 0xFF, 0xFF, 0xFF,
                   0xFF});
  seeds.push_back({0x43, 0x42, 0x49, 0x52, 0, 1, 0x7F, 0, 0, 0, 0, 0});
  return seeds;
}

void DecodeEverything(const uint8_t* data, size_t size) {
  (void)DecodeFrameHeader(data, size);
  RequestEnvelope envelope;
  (void)DecodeRequest(data, size, &envelope);
  ResponseProfile profile;
  (void)DecodeResponse(data, size, &profile);
  // The split header/body path the TCP server actually runs: only reached
  // when the header validates and the body length matches, same as a socket
  // read loop would guarantee.
  if (size >= kFrameHeaderBytes) {
    cbir::Result<FrameHeader> header =
        DecodeFrameHeader(data, kFrameHeaderBytes);
    if (header.ok() &&
        header.value().body_size == size - kFrameHeaderBytes) {
      const uint8_t* body = data + kFrameHeaderBytes;
      const size_t body_size = size - kFrameHeaderBytes;
      (void)DecodeRequestBody(header.value(), body, body_size, &envelope);
      (void)DecodeResponseBody(header.value(), body, body_size, &profile);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DecodeEverything(data, size);
  return 0;
}

// ---------------------------------------------------------------------------
// Seed-corpus writing + a standalone driver for non-Clang builds.
// ---------------------------------------------------------------------------

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

int WriteSeeds(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::vector<std::vector<uint8_t>> seeds = BuildSeedCorpus();
  int written = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    const std::string path = dir + "/seed_" + std::to_string(i) + ".bin";
    std::ofstream ofs(path, std::ios::binary | std::ios::trunc);
    if (!ofs) {
      std::fprintf(stderr, "fuzz_codec: cannot write %s\n", path.c_str());
      return -1;
    }
    ofs.write(reinterpret_cast<const char*>(seeds[i].data()),
              static_cast<std::streamsize>(seeds[i].size()));
    ++written;
  }
  std::fprintf(stderr, "fuzz_codec: wrote %d seeds to %s\n", written,
               dir.c_str());
  return written;
}

}  // namespace

#if !defined(CBIR_FUZZ_STANDALONE)

/// libFuzzer calls this before fuzzing; CBIR_FUZZ_SEEDS=<dir> materializes
/// the built-in corpus there so the run starts from valid frames instead of
/// discovering the magic bytes from scratch.
extern "C" int LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/) {
  if (const char* dir = std::getenv("CBIR_FUZZ_SEEDS"); dir != nullptr) {
    WriteSeeds(dir);
  }
  return 0;
}

#else  // CBIR_FUZZ_STANDALONE

namespace {

uint64_t RunCase(const std::vector<uint8_t>& bytes) {
  DecodeEverything(bytes.data(), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strncmp(argv[1], "--write_seeds=", 14) == 0) {
    return WriteSeeds(argv[1] + 14) < 0 ? 1 : 0;
  }
  uint64_t cases = 0;
  if (argc > 1) {
    // Replay mode: each argument is a corpus file / crash artifact.
    for (int i = 1; i < argc; ++i) {
      std::ifstream ifs(argv[i], std::ios::binary);
      if (!ifs) {
        std::fprintf(stderr, "fuzz_codec: cannot read %s\n", argv[i]);
        return 1;
      }
      std::vector<uint8_t> bytes(
          (std::istreambuf_iterator<char>(ifs)),
          std::istreambuf_iterator<char>());
      cases += RunCase(bytes);
    }
  } else {
    // Built-in sweep: every seed, every truncation of it, every single-bit
    // flip of it — the codec tests' hostile corpus, mechanized over every
    // frame shape at once.
    for (const std::vector<uint8_t>& seed : BuildSeedCorpus()) {
      cases += RunCase(seed);
      for (size_t len = 0; len < seed.size(); ++len) {
        cases += RunCase(std::vector<uint8_t>(seed.begin(),
                                              seed.begin() +
                                                  static_cast<long>(len)));
      }
      for (size_t byte = 0; byte < seed.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
          std::vector<uint8_t> corrupt = seed;
          corrupt[byte] = static_cast<uint8_t>(corrupt[byte] ^ (1u << bit));
          cases += RunCase(corrupt);
        }
      }
    }
  }
  std::fprintf(stderr, "fuzz_codec: %llu cases, no crashes\n",
               static_cast<unsigned long long>(cases));
  return 0;
}

#endif  // CBIR_FUZZ_STANDALONE
