#include "index/signature_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "retrieval/evaluator.h"
#include "retrieval/ranker.h"
#include "retrieval/synthetic_features.h"
#include "util/rng.h"

namespace cbir::retrieval {
namespace {

// Clustered synthetic corpus (see retrieval::ClusteredFeatures): Euclidean
// neighbors are overwhelmingly same-cluster rows, exactly the structure
// category corpora give the index.
la::Matrix ClusteredCorpus(size_t n, size_t dims, size_t clusters,
                           uint64_t seed) {
  return ClusteredFeatures(n, dims, clusters, seed);
}

TEST(SignatureIndexTest, DeterministicSignaturesAcrossRebuilds) {
  const la::Matrix corpus = ClusteredCorpus(500, 36, 20, 11);
  SignatureIndexOptions options;
  SignatureIndex a(options);
  a.Build(corpus);
  SignatureIndex b(options);
  b.Build(corpus);
  ASSERT_EQ(a.signatures().size(), b.signatures().size());
  EXPECT_EQ(a.signatures(), b.signatures());

  // Thread count must not change the signature family.
  SignatureIndexOptions serial = options;
  serial.num_threads = 1;
  SignatureIndex c(serial);
  c.Build(corpus);
  EXPECT_EQ(a.signatures(), c.signatures());

  // A different seed draws different hyperplanes.
  SignatureIndexOptions reseeded = options;
  reseeded.seed = options.seed + 1;
  SignatureIndex d(reseeded);
  d.Build(corpus);
  EXPECT_NE(a.signatures(), d.signatures());
}

TEST(SignatureIndexTest, EncodeMatchesStoredSignatures) {
  const la::Matrix corpus = ClusteredCorpus(100, 12, 5, 12);
  SignatureIndexOptions options;
  options.bits = 100;  // not a multiple of 64: top word is partial
  SignatureIndex index(options);
  index.Build(corpus);
  EXPECT_EQ(index.words_per_row(), 2u);
  for (size_t r = 0; r < corpus.rows(); r += 17) {
    const std::vector<uint64_t> sig = index.Encode(corpus.Row(r));
    ASSERT_EQ(sig.size(), index.words_per_row());
    for (size_t w = 0; w < sig.size(); ++w) {
      EXPECT_EQ(sig[w], index.signatures()[r * index.words_per_row() + w]);
    }
  }
}

TEST(SignatureIndexTest, MatchesExactWhenCandidatesCoverEverything) {
  // k * candidate_factor >= rows: the Hamming scan excludes nothing, so the
  // exact rerank must reproduce RankByEuclidean bit-for-bit — including
  // index tie-breaks (the corpus has duplicated rows).
  la::Matrix corpus = ClusteredCorpus(200, 8, 10, 13);
  for (size_t r = 100; r < 120; ++r) corpus.SetRow(r, corpus.Row(r - 100));
  SignatureIndexOptions options;
  options.candidate_factor = 50;
  SignatureIndex index(options);
  index.Build(corpus);
  const la::Vec query = corpus.Row(100);  // duplicated row: distance ties
  for (int k : {5, 50, 200}) {
    EXPECT_EQ(index.Query(query, k), RankByEuclidean(corpus, query, k))
        << "k=" << k;
  }
}

TEST(SignatureIndexTest, FullRankingRequestFallsBackToExhaustive) {
  const la::Matrix corpus = ClusteredCorpus(300, 10, 10, 14);
  SignatureIndex index(SignatureIndexOptions{});
  index.Build(corpus);
  const la::Vec query = corpus.Row(4);
  EXPECT_EQ(index.Query(query, -1), RankByEuclidean(corpus, query, -1));
  EXPECT_EQ(index.Query(query, 0), RankByEuclidean(corpus, query, 0));
  EXPECT_GE(index.stats().rows_scanned, 600u);
}

TEST(SignatureIndexTest, RecallAt50AtLeastPoint9OnSyntheticCorpus) {
  // 4000 rows, 36 dims (the paper's feature width), default knobs: the
  // Hamming scan keeps 400 of 4000 rows (10%) yet must preserve >= 90% of
  // the exact top-50 on average.
  const la::Matrix corpus = ClusteredCorpus(4000, 36, 40, 15);
  SignatureIndex index(SignatureIndexOptions{});
  index.Build(corpus);
  double recall_sum = 0.0;
  const int num_queries = 20;
  for (int q = 0; q < num_queries; ++q) {
    const la::Vec query = corpus.Row(static_cast<size_t>(q) * 97);
    const auto approx = index.Query(query, 50);
    const auto exact = RankByEuclidean(corpus, query, 50);
    recall_sum += RecallAtK(approx, exact, 50);
  }
  const double mean_recall = recall_sum / num_queries;
  EXPECT_GE(mean_recall, 0.9) << "mean recall@50 = " << mean_recall;
  // The online proxy should roughly agree that quality is high.
  EXPECT_GE(index.stats().recall_proxy, 0.8);
}

TEST(SignatureIndexTest, QueryBatchEqualsLoopedQuery) {
  const la::Matrix corpus = ClusteredCorpus(1000, 16, 20, 16);
  SignatureIndex index(SignatureIndexOptions{});
  index.Build(corpus);
  la::Matrix queries(8, 16);
  for (size_t q = 0; q < 8; ++q) queries.SetRow(q, corpus.Row(q * 111));
  const auto batch = index.QueryBatch(queries, 25);
  ASSERT_EQ(batch.size(), 8u);
  for (size_t q = 0; q < 8; ++q) {
    EXPECT_EQ(batch[q], index.Query(queries.Row(q), 25)) << "q=" << q;
  }
}

TEST(SignatureIndexTest, CandidatesAreAscendingOversampledSuperset) {
  const la::Matrix corpus = ClusteredCorpus(600, 12, 12, 17);
  SignatureIndexOptions options;
  options.candidate_factor = 4;
  SignatureIndex index(options);
  index.Build(corpus);
  const la::Vec query = corpus.Row(33);
  const auto candidates = index.Candidates(query, 10);
  EXPECT_EQ(candidates.size(), 40u);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  for (int id : index.Query(query, 10)) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), id) !=
                candidates.end())
        << "result " << id << " missing from candidate superset";
  }
  // Full-depth requests keep the "every row" sentinel.
  EXPECT_TRUE(index.Candidates(query, 0).empty());
}

TEST(SignatureIndexTest, StatsCountScansAndReranks) {
  const la::Matrix corpus = ClusteredCorpus(400, 10, 8, 18);
  SignatureIndexOptions options;
  options.candidate_factor = 3;
  SignatureIndex index(options);
  index.Build(corpus);
  (void)index.Query(corpus.Row(0), 20);  // 60 candidates
  (void)index.Query(corpus.Row(1), 20);
  const IndexStats s = index.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.signatures_scanned, 800u);
  EXPECT_EQ(s.candidates_reranked, 120u);
  EXPECT_EQ(s.rows_scanned, 0u);
  EXPECT_GE(s.recall_proxy, 0.0);
  EXPECT_LE(s.recall_proxy, 1.0);
  index.ResetStats();
  EXPECT_EQ(index.stats().signatures_scanned, 0u);
}

TEST(SignatureIndexTest, RestoreSignaturesMatchesFreshBuild) {
  const la::Matrix corpus = ClusteredCorpus(600, 16, 12, 19);
  SignatureIndexOptions options;
  options.bits = 128;
  SignatureIndex built(options);
  built.Build(corpus);

  // Restoring a saved signature block must reproduce the built index
  // exactly: same packed words, same query answers, same candidate sets.
  SignatureIndex restored(options);
  restored.RestoreSignatures(corpus, built.signatures());
  EXPECT_EQ(restored.signatures(), built.signatures());
  EXPECT_EQ(restored.num_rows(), built.num_rows());
  for (int q = 0; q < 10; ++q) {
    const la::Vec query = corpus.Row(static_cast<size_t>(q * 37));
    EXPECT_EQ(restored.Query(query, 25), built.Query(query, 25)) << q;
    EXPECT_EQ(restored.Candidates(query, 25), built.Candidates(query, 25));
    EXPECT_EQ(restored.Encode(query), built.Encode(query));
  }
}

TEST(SignatureIndexDeathTest, RestoreRejectsWrongShape) {
  const la::Matrix corpus = ClusteredCorpus(100, 8, 5, 20);
  SignatureIndexOptions options;
  options.bits = 64;
  SignatureIndex index(options);
  EXPECT_DEATH(
      index.RestoreSignatures(corpus, std::vector<uint64_t>(3, 0)),
      "RestoreSignatures");
}

}  // namespace
}  // namespace cbir::retrieval
