#include "index/index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/euclidean_scheme.h"
#include "core/rf_svm_scheme.h"
#include "index/exact_index.h"
#include "index/index_factory.h"
#include "index/signature_index.h"
#include "retrieval/image_database.h"
#include "retrieval/ranker.h"
#include "util/rng.h"

namespace cbir::retrieval {
namespace {

la::Matrix RandomCorpus(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(n, dims);
  for (size_t r = 0; r < n; ++r) {
    // Quantized values create plenty of exact distance ties.
    for (size_t c = 0; c < dims; ++c) {
      m.At(r, c) = std::round(rng.Gaussian() * 2.0) / 2.0;
    }
  }
  return m;
}

TEST(ExactIndexTest, MatchesRankByEuclideanIncludingTieBreaks) {
  const la::Matrix corpus = RandomCorpus(300, 6, 1);
  ExactIndex index;
  index.Build(corpus);
  EXPECT_EQ(index.num_rows(), 300u);
  const la::Vec query = corpus.Row(7);
  for (int k : {1, 10, 50, 299, 300, 500, -1}) {
    EXPECT_EQ(index.Query(query, k), RankByEuclidean(corpus, query, k))
        << "k=" << k;
  }
}

TEST(ExactIndexTest, CandidatesIsEveryRowSentinel) {
  const la::Matrix corpus = RandomCorpus(50, 4, 2);
  ExactIndex index;
  index.Build(corpus);
  EXPECT_TRUE(index.Candidates(corpus.Row(0), 10).empty());
}

TEST(ExactIndexTest, StatsCountQueriesAndRows) {
  const la::Matrix corpus = RandomCorpus(40, 4, 3);
  ExactIndex index;
  index.Build(corpus);
  (void)index.Query(corpus.Row(0), 5);
  (void)index.Query(corpus.Row(1), 5);
  IndexStats s = index.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.rows_scanned, 80u);
  EXPECT_EQ(s.signatures_scanned, 0u);
  EXPECT_DOUBLE_EQ(s.recall_proxy, 1.0);
  index.ResetStats();
  EXPECT_EQ(index.stats().queries, 0u);
}

TEST(IndexTest, QueryBatchDefaultEqualsLoopedQuery) {
  const la::Matrix corpus = RandomCorpus(120, 5, 4);
  ExactIndex index;
  index.Build(corpus);
  la::Matrix queries(3, 5);
  for (size_t q = 0; q < 3; ++q) queries.SetRow(q, corpus.Row(10 * q));
  const auto batch = index.QueryBatch(queries, 7);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(batch[q], index.Query(queries.Row(q), 7));
  }
}

TEST(IndexFactoryTest, OptionsFromFlags) {
  const char* argv[] = {"--index=signature", "--signature_bits=64",
                        "--candidate-factor=3", "--index-seed=9"};
  const Flags flags = Flags::Parse(4, argv).value();
  ASSERT_TRUE(flags.RequireKnown(IndexFlagNames()).ok());
  auto options = IndexOptionsFromFlags(flags);
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->mode, IndexMode::kSignature);
  EXPECT_EQ(options->signature.bits, 64);
  EXPECT_EQ(options->signature.candidate_factor, 3);
  EXPECT_EQ(options->signature.seed, 9u);

  const char* bad[] = {"--index=faiss"};
  EXPECT_FALSE(IndexOptionsFromFlags(Flags::Parse(1, bad).value()).ok());

  // No flags: the defaults (exact mode).
  auto defaults = IndexOptionsFromFlags(Flags::Parse(0, nullptr).value());
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->mode, IndexMode::kExact);
  EXPECT_EQ(defaults->signature.bits, 256);
}

TEST(IndexFactoryTest, ParseAndMake) {
  ASSERT_TRUE(ParseIndexMode("exact").ok());
  EXPECT_EQ(ParseIndexMode("exact").value(), IndexMode::kExact);
  ASSERT_TRUE(ParseIndexMode("signature").ok());
  EXPECT_EQ(ParseIndexMode("signature").value(), IndexMode::kSignature);
  EXPECT_FALSE(ParseIndexMode("annoy").ok());

  IndexOptions options;
  EXPECT_EQ(MakeIndex(options)->name(), "exact");
  options.mode = IndexMode::kSignature;
  EXPECT_EQ(MakeIndex(options)->name(), "signature");
  EXPECT_STREQ(IndexModeToString(IndexMode::kSignature), "signature");
}

class IndexDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions options;
    options.corpus.num_categories = 4;
    options.corpus.images_per_category = 25;
    options.corpus.width = 48;
    options.corpus.height = 48;
    options.corpus.seed = 5;
    db_ = new ImageDatabase(ImageDatabase::Build(options));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static ImageDatabase* db_;
};

ImageDatabase* IndexDatabaseTest::db_ = nullptr;

TEST_F(IndexDatabaseTest, TopKWithoutIndexIsExhaustive) {
  const la::Vec query = db_->feature(3);
  EXPECT_EQ(db_->index(), nullptr);
  EXPECT_EQ(db_->TopK(query, 10),
            RankByEuclidean(db_->features(), query, 10));
}

TEST_F(IndexDatabaseTest, CopyingDropsTheIndex) {
  // An index references the feature storage of the database it was built
  // over; a copy must not share it (dangling once the original dies).
  ImageDatabase original = *db_;
  original.BuildIndex(IndexOptions{});
  ASSERT_NE(original.index(), nullptr);
  const ImageDatabase copy = original;
  EXPECT_EQ(copy.index(), nullptr);
  ImageDatabase assigned = *db_;
  assigned.BuildIndex(IndexOptions{});
  assigned = original;
  EXPECT_EQ(assigned.index(), nullptr);
}

TEST_F(IndexDatabaseTest, ExactIndexKeepsTopKBitIdentical) {
  ImageDatabase db = *db_;
  const la::Vec query = db.feature(3);
  const auto before = db.TopK(query, -1);
  db.BuildIndex(IndexOptions{});
  ASSERT_NE(db.index(), nullptr);
  EXPECT_EQ(db.TopK(query, -1), before);
  EXPECT_EQ(db.index()->stats().queries, 1u);
}

TEST_F(IndexDatabaseTest, SignatureIndexTopKIsRerankedSubset) {
  ImageDatabase db = *db_;
  IndexOptions options;
  options.mode = IndexMode::kSignature;
  options.signature.candidate_factor = 2;
  db.BuildIndex(options);
  const la::Vec query = db.feature(3);
  const auto approx = db.TopK(query, 10);
  ASSERT_EQ(approx.size(), 10u);
  // The returned prefix must be ordered exactly like the exact ranking
  // restricted to the returned ids.
  const auto exact = RankByEuclidean(db.features(), query, -1);
  std::vector<int> restricted;
  for (int id : exact) {
    for (int a : approx) {
      if (a == id) restricted.push_back(id);
    }
  }
  EXPECT_EQ(approx, restricted);
}

TEST_F(IndexDatabaseTest, ExactIndexLeavesSchemeRankingsUnchanged) {
  ImageDatabase db = *db_;
  core::FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 3;
  ctx.candidate_depth = 20;
  ASSERT_TRUE(ctx.Prepare().ok());
  const auto initial = db.TopK(ctx.query_feature, 11);
  const int query_category = db.category(ctx.query_id);
  for (int id : initial) {
    if (id == ctx.query_id) continue;
    ctx.labeled_ids.push_back(id);
    ctx.labels.push_back(db.category(id) == query_category ? 1.0 : -1.0);
  }
  const core::SchemeOptions scheme_options =
      core::MakeDefaultSchemeOptions(db, nullptr);

  const core::EuclideanScheme euclidean;
  const core::RfSvmScheme rf_svm(scheme_options);
  auto euclidean_before = euclidean.Rank(ctx);
  auto rf_before = rf_svm.Rank(ctx);
  ASSERT_TRUE(euclidean_before.ok());
  ASSERT_TRUE(rf_before.ok());
  EXPECT_EQ(ctx.scan_size(), static_cast<size_t>(db.num_images()));

  db.BuildIndex(IndexOptions{});  // exact: the sentinel keeps scans full
  ASSERT_TRUE(ctx.Prepare().ok());
  auto euclidean_after = euclidean.Rank(ctx);
  auto rf_after = rf_svm.Rank(ctx);
  ASSERT_TRUE(euclidean_after.ok());
  ASSERT_TRUE(rf_after.ok());
  EXPECT_EQ(euclidean_after.value(), euclidean_before.value());
  EXPECT_EQ(rf_after.value(), rf_before.value());
}

TEST_F(IndexDatabaseTest, SignatureIndexNarrowsSchemeScans) {
  ImageDatabase db = *db_;
  IndexOptions options;
  options.mode = IndexMode::kSignature;
  options.signature.candidate_factor = 2;
  db.BuildIndex(options);

  core::FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 3;
  ctx.candidate_depth = 15;  // 30 candidates of 100 rows
  ASSERT_TRUE(ctx.Prepare().ok());
  ASSERT_FALSE(ctx.scan_ids.empty());
  EXPECT_EQ(ctx.scan_ids.size(), 30u);
  EXPECT_EQ(ctx.scan_size(), 30u);
  EXPECT_EQ(ctx.ScanFeatures().rows(), 30u);
  EXPECT_TRUE(std::is_sorted(ctx.scan_ids.begin(), ctx.scan_ids.end()));

  const auto initial = db.TopK(ctx.query_feature, 11);
  const int query_category = db.category(ctx.query_id);
  for (int id : initial) {
    if (id == ctx.query_id) continue;
    ctx.labeled_ids.push_back(id);
    ctx.labels.push_back(db.category(id) == query_category ? 1.0 : -1.0);
  }

  const core::EuclideanScheme euclidean;
  auto ranked = euclidean.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  // The Euclidean scheme over the narrowed scan equals the exact ranking
  // restricted to the candidate set (minus the query).
  std::vector<int> expected;
  for (int id : RankByEuclidean(db.features(), ctx.query_feature, -1)) {
    if (id == ctx.query_id) continue;
    if (std::find(ctx.scan_ids.begin(), ctx.scan_ids.end(), id) !=
        ctx.scan_ids.end()) {
      expected.push_back(id);
    }
  }
  EXPECT_EQ(ranked.value(), expected);

  const core::RfSvmScheme rf_svm(core::MakeDefaultSchemeOptions(db, nullptr));
  auto rf_ranked = rf_svm.Rank(ctx);
  ASSERT_TRUE(rf_ranked.ok());
  // SVM scoring ranks exactly the scanned candidates (query excluded).
  EXPECT_EQ(rf_ranked.value().size(), expected.size());
  for (int id : rf_ranked.value()) {
    EXPECT_TRUE(std::find(ctx.scan_ids.begin(), ctx.scan_ids.end(), id) !=
                ctx.scan_ids.end());
  }
}

}  // namespace
}  // namespace cbir::retrieval
