// Unit coverage of the router's pure pieces: the consistent-hash ring
// (determinism, balance, spill-on-ejection), the scatter-gather candidate
// merge (dedup, tie-breaks, truncation, degraded-subset property), and the
// --backends list parser.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "router/backend_pool.h"
#include "router/hash_ring.h"
#include "router/merge.h"

namespace cbir::router {
namespace {

// ------------------------------------------------------------- hash ring --

TEST(HashRingTest, PickIsDeterministic) {
  const HashRing a(4), b(4);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(a.Pick(key), b.Pick(key)) << "key " << key;
  }
}

TEST(HashRingTest, CoversEveryBackendReasonablyEvenly) {
  const int kBackends = 4;
  const HashRing ring(kBackends);
  std::vector<int> hits(kBackends, 0);
  const int kKeys = 10000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const int b = ring.Pick(key);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, kBackends);
    ++hits[static_cast<size_t>(b)];
  }
  // 64 vnodes per backend keeps the spread loose but bounded: no backend
  // owns less than half or more than double its fair share.
  for (int b = 0; b < kBackends; ++b) {
    EXPECT_GT(hits[static_cast<size_t>(b)], kKeys / kBackends / 2) << b;
    EXPECT_LT(hits[static_cast<size_t>(b)], kKeys / kBackends * 2) << b;
  }
}

TEST(HashRingTest, EjectionSpillsOnlyTheEjectedBackendsKeys) {
  // The consistent-hash property: rejecting backend 2 moves ONLY the keys
  // that mapped to backend 2 — everyone else keeps their placement.
  const HashRing ring(3);
  const auto not2 = [](int b) { return b != 2; };
  for (uint64_t key = 0; key < 2000; ++key) {
    const int full = ring.Pick(key);
    const int filtered = ring.Pick(key, not2);
    ASSERT_GE(filtered, 0);
    EXPECT_NE(filtered, 2);
    if (full != 2) {
      EXPECT_EQ(filtered, full) << "key " << key << " moved needlessly";
    }
  }
}

TEST(HashRingTest, AllRejectedReturnsMinusOne) {
  const HashRing ring(3);
  EXPECT_EQ(ring.Pick(123, [](int) { return false; }), -1);
}

TEST(HashRingTest, SingleBackendOwnsEverything) {
  const HashRing ring(1);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.Pick(key), 0);
  }
}

TEST(HashRingTest, MixHashMatchesSplitmix64) {
  // The ring and its callers must hash identically across builds and
  // router restarts (placement stability is a protocol property): pin the
  // well-known splitmix64 outputs for seeds 0 and 1.
  EXPECT_EQ(MixHash(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(MixHash(1), 0x910A2DEC89025CC1ull);
  EXPECT_NE(MixHash(1), MixHash(2));
}

TEST(HashRingTest, SmallSequentialKeysSpreadAcrossTwoBackends) {
  // Session ids count up from 1; the regression this pins: ring points
  // hashed in the same domain as keys made every small key collide with a
  // backend-0 vnode and the 2-backend ring routed 100% to backend 0.
  const HashRing ring(2);
  int hits[2] = {0, 0};
  for (uint64_t key = 1; key <= 200; ++key) ++hits[ring.Pick(key)];
  EXPECT_GT(hits[0], 40);
  EXPECT_GT(hits[1], 40);
}

// ----------------------------------------------------------------- merge --

std::vector<int> Ids(const std::vector<api::Candidate>& candidates) {
  std::vector<int> ids;
  ids.reserve(candidates.size());
  for (const api::Candidate& c : candidates) ids.push_back(c.id);
  return ids;
}

TEST(MergeTest, MergesByAscendingDistance) {
  const std::vector<std::vector<api::Candidate>> shards = {
      {{1, 0.5}, {2, 2.0}},
      {{3, 1.0}, {4, 3.0}},
  };
  EXPECT_EQ(Ids(MergeCandidates(shards, 0)), (std::vector<int>{1, 3, 2, 4}));
}

TEST(MergeTest, DeduplicatesKeepingMinimumDistance) {
  // Replicated shards return the same ids; a shard mid-rebuild might score
  // one worse. The merge keeps each id once, at its best distance.
  const std::vector<std::vector<api::Candidate>> shards = {
      {{7, 1.0}, {8, 2.0}},
      {{7, 1.5}, {9, 0.5}},
  };
  const std::vector<api::Candidate> merged = MergeCandidates(shards, 0);
  EXPECT_EQ(Ids(merged), (std::vector<int>{9, 7, 8}));
  EXPECT_DOUBLE_EQ(merged[1].distance, 1.0);
}

TEST(MergeTest, TiesBreakOnAscendingId) {
  const std::vector<std::vector<api::Candidate>> shards = {
      {{5, 1.0}, {1, 1.0}},
      {{3, 1.0}},
  };
  EXPECT_EQ(Ids(MergeCandidates(shards, 0)), (std::vector<int>{1, 3, 5}));
}

TEST(MergeTest, TruncatesToK) {
  const std::vector<std::vector<api::Candidate>> shards = {
      {{1, 1.0}, {2, 2.0}, {3, 3.0}},
      {{4, 1.5}, {5, 2.5}},
  };
  EXPECT_EQ(Ids(MergeCandidates(shards, 3)), (std::vector<int>{1, 4, 2}));
}

TEST(MergeTest, DegradedMergeIsSubsetPrefixConsistent) {
  // Dropping a shard must only remove that shard's exclusive ids — the
  // survivors keep their relative order (the degradation contract).
  const std::vector<std::vector<api::Candidate>> all = {
      {{1, 0.1}, {2, 0.4}, {3, 0.9}},
      {{10, 0.2}, {11, 0.5}},
  };
  const std::vector<std::vector<api::Candidate>> partial = {all[0]};
  const std::vector<int> full_ids = Ids(MergeCandidates(all, 0));
  const std::vector<int> partial_ids = Ids(MergeCandidates(partial, 0));
  // Subset...
  const std::set<int> full_set(full_ids.begin(), full_ids.end());
  for (int id : partial_ids) EXPECT_TRUE(full_set.count(id)) << id;
  // ...in the same relative order.
  std::vector<int> full_filtered;
  const std::set<int> partial_set(partial_ids.begin(), partial_ids.end());
  for (int id : full_ids) {
    if (partial_set.count(id)) full_filtered.push_back(id);
  }
  EXPECT_EQ(full_filtered, partial_ids);
}

TEST(MergeTest, EmptyInputsMergeEmpty) {
  EXPECT_TRUE(MergeCandidates({}, 10).empty());
  EXPECT_TRUE(MergeCandidates({{}, {}}, 10).empty());
}

// ---------------------------------------------------------- backend list --

TEST(ParseBackendListTest, ParsesHostPortPairs) {
  auto parsed = ParseBackendList("127.0.0.1:7401,localhost:7402");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].host, "127.0.0.1");
  EXPECT_EQ((*parsed)[0].port, 7401);
  EXPECT_EQ((*parsed)[1].host, "localhost");
  EXPECT_EQ((*parsed)[1].port, 7402);
  EXPECT_EQ((*parsed)[1].Label(), "localhost:7402");
}

TEST(ParseBackendListTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "127.0.0.1", "host:", ":7401", "host:notaport",
                          "host:-1", "host:65536", ","}) {
    EXPECT_FALSE(ParseBackendList(bad).ok()) << "accepted: " << bad;
  }
}

TEST(ParseBackendListTest, ToleratesEmptyItems) {
  // Trailing and doubled commas are shell-quoting noise, not errors.
  auto parsed = ParseBackendList("a:1,,b:2,");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);
}

}  // namespace
}  // namespace cbir::router
