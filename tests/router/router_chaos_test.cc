// Chaos coverage of the shard router: two real cbir serving stacks behind
// real TcpServers, a BackendPool + ShardRouter front tier on its own
// TcpServer, and worker threads hammering it while a backend dies
// mid-burst. Asserts the degradation contract end to end: partial (flagged)
// first-round results while a shard is down, typed kUnavailable for
// sessions pinned to the dead shard, automatic re-admission after restart,
// and zero router crashes throughout. Runs under TSan in CI.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dispatcher.h"
#include "core/feedback_scheme.h"
#include "logdb/log_store.h"
#include "logdb/simulated_user.h"
#include "net/fault_injector.h"
#include "net/retrying_client.h"
#include "net/tcp_server.h"
#include "retrieval/synthetic_features.h"
#include "router/backend_pool.h"
#include "router/shard_router.h"
#include "serve/retrieval_service.h"

namespace cbir::router {
namespace {

constexpr int kCorpusRows = 300;
constexpr int kCorpusSeed = 11;
constexpr int kDepth = 40;

/// One complete in-process shard: corpus + service + dispatcher + TcpServer.
/// Kill() stops the transport (the network-visible part of kill -9);
/// Restart() brings it back on the same port.
struct Shard {
  std::unique_ptr<retrieval::ImageDatabase> db;
  logdb::LogStore store;
  la::Matrix log_features;
  std::unique_ptr<serve::RetrievalService> service;
  std::unique_ptr<api::Dispatcher> dispatcher;
  std::unique_ptr<net::TcpServer> server;
  int port = 0;

  void Kill() { server->Stop(); }

  void Restart() {
    net::TcpServerOptions options;
    options.port = port;
    server = std::make_unique<net::TcpServer>(dispatcher.get(), options);
    ASSERT_TRUE(server->Start().ok());
  }
};

std::unique_ptr<Shard> MakeShard(uint64_t first_session_id,
                                 int corpus_rows = kCorpusRows) {
  auto shard = std::make_unique<Shard>();
  shard->db = std::make_unique<retrieval::ImageDatabase>(
      retrieval::ClusteredDatabase(corpus_rows, kCorpusSeed));
  retrieval::IndexOptions index_options;
  index_options.mode = retrieval::IndexMode::kSignature;
  shard->db->BuildIndex(index_options);

  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = 30;
  log_options.session_size = 12;
  log_options.seed = 13;
  shard->store = logdb::CollectLogs(shard->db->features(),
                                    shard->db->categories(), log_options);
  shard->log_features =
      shard->store.BuildMatrix(shard->db->num_images()).ToDenseMatrix();

  serve::ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = kDepth;
  options.first_session_id = first_session_id;
  auto service = serve::RetrievalService::Create(
      shard->db.get(), &shard->log_features, &shard->store,
      core::MakeDefaultSchemeOptions(*shard->db, &shard->log_features),
      options);
  EXPECT_TRUE(service.ok()) << service.status();
  if (!service.ok()) return nullptr;
  shard->service = std::move(service).value();
  shard->dispatcher = std::make_unique<api::Dispatcher>(shard->service.get());
  shard->server = std::make_unique<net::TcpServer>(shard->dispatcher.get(),
                                                   net::TcpServerOptions{});
  EXPECT_TRUE(shard->server->Start().ok());
  shard->port = shard->server->port();
  return shard;
}

BackendPoolOptions FastPoolOptions() {
  BackendPoolOptions options;
  options.probe_interval_ms = 50;
  options.eject_after_failures = 2;
  options.readmit_after_successes = 2;
  options.probe_timeout_ms = 500;
  options.shard_deadline_ms = 2000;
  options.session_retry.max_attempts = 2;
  options.session_retry.initial_backoff_ms = 5;
  options.session_retry.max_backoff_ms = 20;
  options.session_retry.connect_timeout_ms = 1000;
  options.session_retry.rpc_timeout_ms = 2000;
  return options;
}

/// Spins until `predicate` holds or ~5s pass (probe intervals are 50ms, so
/// ejection/re-admission land within a few iterations).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

net::RetryOptions ClientRetryOptions(uint64_t seed) {
  net::RetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff_ms = 5;
  options.max_backoff_ms = 20;
  options.connect_timeout_ms = 2000;
  options.rpc_timeout_ms = 5000;
  options.seed = seed;
  return options;
}

/// Two shards + pool + router + front server, torn down in reverse order.
class RouterChaosTest : public ::testing::Test {
 protected:
  void StartCluster() {
    shard0_ = MakeShard(1);
    shard1_ = MakeShard(1000001);
    ASSERT_NE(shard0_, nullptr);
    ASSERT_NE(shard1_, nullptr);
    StartFrontTier();
  }

  void StartFrontTier(BackendPoolOptions options = FastPoolOptions()) {
    pool_ = std::make_unique<BackendPool>(
        std::vector<BackendEndpoint>{{"127.0.0.1", shard0_->port},
                                     {"127.0.0.1", shard1_->port}},
        std::move(options));
    ASSERT_TRUE(pool_->Start().ok());
    router_ = std::make_unique<ShardRouter>(pool_.get(), RouterOptions{});
    front_ = std::make_unique<net::TcpServer>(router_.get(),
                                              net::TcpServerOptions{});
    ASSERT_TRUE(front_->Start().ok());
  }

  void TearDown() override {
    if (front_ != nullptr) front_->Stop();
    if (pool_ != nullptr) pool_->Stop();
    if (shard0_ != nullptr && shard0_->server != nullptr) {
      shard0_->server->Stop();
    }
    if (shard1_ != nullptr && shard1_->server != nullptr) {
      shard1_->server->Stop();
    }
  }

  net::RetryingClient Connect(uint64_t seed = 1) {
    return net::RetryingClient("127.0.0.1", front_->port(),
                               ClientRetryOptions(seed));
  }

  std::unique_ptr<Shard> shard0_;
  std::unique_ptr<Shard> shard1_;
  std::unique_ptr<BackendPool> pool_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<net::TcpServer> front_;
};

TEST_F(RouterChaosTest, HealthyClusterServesFullMerges) {
  StartCluster();
  net::RetryingClient client = Connect();

  Result<api::DescribeResponse> described = client.Describe();
  ASSERT_TRUE(described.ok()) << described.status();
  EXPECT_EQ(described->corpus_size, static_cast<uint64_t>(kCorpusRows));

  Result<uint64_t> sid = client.StartSession(api::QuerySpec::ById(7));
  ASSERT_TRUE(sid.ok()) << sid.status();
  Result<std::vector<int>> first = client.Query(sid.value(), 20);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->size(), 20u);
  EXPECT_FALSE(client.last_degraded());

  // Feedback pins the SVM state; the re-ranking comes from one shard.
  std::vector<logdb::LogEntry> round = {{(*first)[0], 1}, {(*first)[1], -1}};
  Result<std::vector<int>> reranked =
      client.Feedback(sid.value(), round, 20);
  ASSERT_TRUE(reranked.ok()) << reranked.status();
  EXPECT_EQ(reranked->size(), 20u);
  EXPECT_TRUE(client.EndSession(sid.value()).ok());

  const RouterStats stats = router_->stats();
  EXPECT_EQ(stats.sessions_started, 1u);
  EXPECT_EQ(stats.scatter_queries, 1u);
  EXPECT_EQ(stats.degraded_responses, 0u);
  EXPECT_EQ(stats.feedbacks_forwarded, 1u);
}

TEST_F(RouterChaosTest, KillMidBurstDegradesButServes) {
  StartCluster();

  constexpr int kWorkers = 4;
  constexpr int kSessionsPerWorker = 80;
  std::atomic<int> completed{0};
  std::atomic<int> degraded{0};
  std::atomic<int> casualties{0};   // transient statuses during the outage
  std::atomic<int> unexpected{0};   // anything else = a router bug
  std::atomic<int> post_kill_success{0};
  std::atomic<bool> killed{false};

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      net::RetryingClient client = Connect(100 + static_cast<uint64_t>(w));
      for (int s = 0; s < kSessionsPerWorker; ++s) {
        // A failure anywhere in the session counts once, by its status.
        const auto classify = [&](const Status& status) {
          if (status.code() == StatusCode::kUnavailable ||
              status.code() == StatusCode::kDeadlineExceeded ||
              status.code() == StatusCode::kIoError) {
            casualties.fetch_add(1);
          } else {
            ADD_FAILURE() << "unexpected status: " << status;
            unexpected.fetch_add(1);
          }
        };
        Result<uint64_t> sid =
            client.StartSession(api::QuerySpec::ById((w * 31 + s) % 200));
        if (!sid.ok()) {
          classify(sid.status());
          continue;
        }
        Result<std::vector<int>> ranking = client.Query(sid.value(), 15);
        if (!ranking.ok()) {
          classify(ranking.status());
          continue;
        }
        if (client.last_degraded()) degraded.fetch_add(1);
        std::vector<logdb::LogEntry> round = {{(*ranking)[0], 1},
                                              {(*ranking)[1], -1}};
        Result<std::vector<int>> reranked =
            client.Feedback(sid.value(), round, 15);
        if (!reranked.ok()) {
          classify(reranked.status());
          continue;
        }
        client.EndSession(sid.value());  // best-effort during the outage
        completed.fetch_add(1);
        if (killed.load(std::memory_order_acquire)) {
          post_kill_success.fetch_add(1);
        }
      }
    });
  }

  // Kill shard 1 once the burst is demonstrably in flight but nowhere near
  // done, so plenty of sessions run against the degraded cluster.
  ASSERT_TRUE(WaitFor([&] { return completed.load() >= 10; }));
  shard1_->Kill();
  killed.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(completed.load(), 0);
  // The outage must not take the router down: sessions that started after
  // the kill (hashed to the surviving shard) keep completing...
  EXPECT_GT(post_kill_success.load(), 0);
  // ...and their first rounds are partial merges, flagged as such.
  EXPECT_GT(degraded.load(), 0);
  // The breaker must have ejected the dead shard by the time the burst
  // drains (consecutive RPC failures alone are enough — no probe needed).
  EXPECT_TRUE(WaitFor([&] { return !pool_->healthy(1); }));
  EXPECT_GE(pool_->stats().ejections, 1u);
}

TEST_F(RouterChaosTest, PinnedSessionsFailFastTypedAndRecoverAfterRestart) {
  StartCluster();
  net::RetryingClient client = Connect();

  // Collect one session pinned to each backend (the ring spreads ids, so a
  // handful of starts covers both).
  uint64_t pinned_to[2] = {0, 0};
  for (int i = 0; i < 32 && (pinned_to[0] == 0 || pinned_to[1] == 0); ++i) {
    Result<uint64_t> sid = client.StartSession(api::QuerySpec::ById(i % 200));
    ASSERT_TRUE(sid.ok()) << sid.status();
    Result<int> backend = router_->SessionBackend(sid.value());
    ASSERT_TRUE(backend.ok()) << backend.status();
    uint64_t& slot = pinned_to[backend.value()];
    if (slot == 0) slot = sid.value();
  }
  ASSERT_NE(pinned_to[0], 0u);
  ASSERT_NE(pinned_to[1], 0u);

  shard1_->Kill();
  ASSERT_TRUE(WaitFor([&] { return !pool_->healthy(1); }));

  // The dead shard's pinned session fails fast with a *typed* kUnavailable
  // — the router rejects it without touching the network.
  std::vector<logdb::LogEntry> round = {{1, 1}, {2, -1}};
  Result<std::vector<int>> dead =
      client.Feedback(pinned_to[1], round, 10);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
  const uint64_t failfast_before = router_->stats().failfast_unavailable;
  EXPECT_GE(failfast_before, 1u);

  // The surviving shard's pinned session still works end to end.
  Result<std::vector<int>> alive =
      client.Feedback(pinned_to[0], round, 10);
  ASSERT_TRUE(alive.ok()) << alive.status();

  // First-round scatters keep answering, degraded.
  Result<uint64_t> during = client.StartSession(api::QuerySpec::ById(3));
  ASSERT_TRUE(during.ok()) << during.status();
  Result<std::vector<int>> partial = client.Query(during.value(), 10);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_FALSE(partial->empty());
  EXPECT_TRUE(client.last_degraded());

  // Restart the shard on its old port: the prober must re-admit it and
  // full (non-degraded) merges must resume.
  shard1_->Restart();
  ASSERT_TRUE(WaitFor([&] { return pool_->healthy(1); }));
  EXPECT_GE(pool_->stats().readmissions, 1u);
  ASSERT_TRUE(WaitFor([&] {
    Result<uint64_t> sid = client.StartSession(api::QuerySpec::ById(5));
    if (!sid.ok()) return false;
    Result<std::vector<int>> full = client.Query(sid.value(), 10);
    client.EndSession(sid.value());
    return full.ok() && !client.last_degraded();
  }));
}

TEST_F(RouterChaosTest, AllBackendsDownIsTypedUnavailable) {
  StartCluster();
  shard0_->Kill();
  shard1_->Kill();
  ASSERT_TRUE(
      WaitFor([&] { return !pool_->healthy(0) && !pool_->healthy(1); }));
  EXPECT_EQ(pool_->num_healthy(), 0);

  net::RetryingClient client = Connect();
  Result<uint64_t> sid = client.StartSession(api::QuerySpec::ById(1));
  ASSERT_FALSE(sid.ok());
  EXPECT_EQ(sid.status().code(), StatusCode::kUnavailable);
}

TEST_F(RouterChaosTest, BlackholedBackendIsNeverAdmitted) {
  // The FaultInjector variant of a dead backend: connects succeed but every
  // frame is silently dropped, so probes time out instead of erroring fast.
  shard0_ = MakeShard(1);
  shard1_ = MakeShard(1000001);
  ASSERT_NE(shard0_, nullptr);
  ASSERT_NE(shard1_, nullptr);

  net::FaultInjectorOptions blackhole_options;
  blackhole_options.drop_probability = 1.0;
  net::FaultInjector blackhole(blackhole_options);

  BackendPoolOptions options = FastPoolOptions();
  options.probe_timeout_ms = 100;  // keep the timing-out probes cheap
  options.injectors = {nullptr, &blackhole};
  StartFrontTier(std::move(options));

  // Start() saw only shard 0; the blackholed backend begins ejected.
  EXPECT_TRUE(pool_->healthy(0));
  EXPECT_FALSE(pool_->healthy(1));

  // Scatters answer degraded from the one live shard.
  net::RetryingClient client = Connect();
  Result<uint64_t> sid = client.StartSession(api::QuerySpec::ById(2));
  ASSERT_TRUE(sid.ok()) << sid.status();
  Result<std::vector<int>> ranking = client.Query(sid.value(), 10);
  ASSERT_TRUE(ranking.ok()) << ranking.status();
  EXPECT_FALSE(ranking->empty());
  EXPECT_TRUE(client.last_degraded());

  // Give the prober several intervals: timing-out probes must never count
  // as successes, so the blackholed backend stays out.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(pool_->healthy(1));
  EXPECT_GE(pool_->stats().probe_failures, 1u);
}

TEST_F(RouterChaosTest, MismatchedCorpusRefusedAtStart) {
  shard0_ = MakeShard(1);
  shard1_ = MakeShard(1000001, kCorpusRows * 2);  // different corpus
  ASSERT_NE(shard0_, nullptr);
  ASSERT_NE(shard1_, nullptr);

  pool_ = std::make_unique<BackendPool>(
      std::vector<BackendEndpoint>{{"127.0.0.1", shard0_->port},
                                   {"127.0.0.1", shard1_->port}},
      FastPoolOptions());
  const Status started = pool_->Start();
  EXPECT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cbir::router
