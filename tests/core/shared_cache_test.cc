// Equivalence gates for kernel-cache sharing across the coupled-SVM solve
// chain and across feedback rounds: shared-cache training must reproduce
// per-solve-cache models and rankings (within solver tolerance) for
// CoupledSvm, MultiCoupledSvm and RunFeedbackSession — including after label
// flips, labeled-set growth across rounds, and under eviction pressure.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/coupled_svm.h"
#include "core/feedback_loop.h"
#include "core/lrf_csvm_scheme.h"
#include "core/multi_coupled_svm.h"
#include "core/rf_svm_scheme.h"
#include "core/session_cache.h"
#include "logdb/log_store.h"
#include "logdb/simulated_user.h"
#include "util/rng.h"

namespace cbir::core {
namespace {

// Two-modality problem with class overlap so chains iterate and labels flip.
CsvmTrainData TwoModalityProblem(size_t nl_per_class, size_t nu,
                                 double visual_gap, double log_gap,
                                 uint64_t seed) {
  Rng rng(seed);
  const size_t nl = 2 * nl_per_class;
  CsvmTrainData data;
  data.visual = la::Matrix(nl + nu, 2);
  data.log = la::Matrix(nl + nu, 1);
  for (size_t i = 0; i < nl; ++i) {
    const double y = (i < nl_per_class) ? 1.0 : -1.0;
    data.labels.push_back(y);
    data.visual.At(i, 0) = rng.Gaussian() + visual_gap * y;
    data.visual.At(i, 1) = rng.Gaussian();
    data.log.At(i, 0) = rng.Gaussian() * 0.3 + log_gap * y;
  }
  for (size_t j = 0; j < nu; ++j) {
    const double y = (j % 2 == 0) ? 1.0 : -1.0;
    data.visual.At(nl + j, 0) = rng.Gaussian() + visual_gap * y;
    data.visual.At(nl + j, 1) = rng.Gaussian();
    data.log.At(nl + j, 0) = rng.Gaussian() * 0.3 + log_gap * y;
    data.initial_unlabeled_labels.push_back(y);
  }
  return data;
}

CsvmOptions TestOptions() {
  CsvmOptions options;
  options.c_visual = 10.0;
  options.c_log = 10.0;
  options.rho = 0.5;
  options.visual_kernel = svm::KernelParams::Rbf(0.5);
  options.log_kernel = svm::KernelParams::Rbf(0.5);
  return options;
}

TEST(CsvmSharedCacheTest, ChainSharingReproducesPerSolveCaches) {
  // Overlapping classes (gap 1.0) force label-correction flips, so the chain
  // re-solves with changed labels over the shared rows.
  const CsvmTrainData data = TwoModalityProblem(8, 10, 1.0, 0.8, 31);

  CsvmOptions per_solve = TestOptions();
  per_solve.reuse_chain_cache = false;
  auto cold = CoupledSvm(per_solve).Train(data);
  ASSERT_TRUE(cold.ok()) << cold.status();

  CsvmOptions shared = TestOptions();
  shared.reuse_chain_cache = true;
  auto hot = CoupledSvm(shared).Train(data);
  ASSERT_TRUE(hot.ok());

  // Kernel entries are identical whichever fill path produced them, so the
  // chains solve literally the same QPs: labels, duals and decisions match.
  EXPECT_EQ(hot->unlabeled_labels, cold->unlabeled_labels);
  EXPECT_EQ(hot->visual_alpha, cold->visual_alpha);
  EXPECT_EQ(hot->log_alpha, cold->log_alpha);
  for (size_t i = 0; i < data.visual.rows(); ++i) {
    EXPECT_NEAR(hot->Decision(data.visual.Row(i), data.log.Row(i)),
                cold->Decision(data.visual.Row(i), data.log.Row(i)), 1e-9);
  }
  // The whole point: one cache per modality turns the chain's repeated row
  // computations into hits.
  EXPECT_GT(hot->diagnostics.cache_stats.hit_rate(),
            cold->diagnostics.cache_stats.hit_rate());
  EXPECT_LT(hot->diagnostics.cache_stats.misses,
            cold->diagnostics.cache_stats.misses);
  // Per-modality split is populated ([0] visual, [1] log) and sums to the
  // aggregate.
  ASSERT_EQ(hot->diagnostics.modality_cache_stats.size(), 2u);
  EXPECT_EQ(hot->diagnostics.modality_cache_stats[0].hits +
                hot->diagnostics.modality_cache_stats[1].hits,
            hot->diagnostics.cache_stats.hits);
}

TEST(CsvmSharedCacheTest, TinyCacheBudgetStaysCorrect) {
  const CsvmTrainData data = TwoModalityProblem(8, 8, 1.0, 0.8, 33);
  CsvmOptions roomy = TestOptions();
  auto reference = CoupledSvm(roomy).Train(data);
  ASSERT_TRUE(reference.ok());

  CsvmOptions squeezed = TestOptions();
  squeezed.smo.cache_rows = 2;  // minimum budget: constant eviction churn
  auto model = CoupledSvm(squeezed).Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->diagnostics.cache_stats.evictions, 0u);
  EXPECT_EQ(model->unlabeled_labels, reference->unlabeled_labels);
  for (size_t i = 0; i < data.visual.rows(); ++i) {
    EXPECT_NEAR(model->Decision(data.visual.Row(i), data.log.Row(i)),
                reference->Decision(data.visual.Row(i), data.log.Row(i)),
                1e-9);
  }
}

TEST(MultiCsvmSharedCacheTest, ThreeModalitySharingMatchesPerSolve) {
  // K = 3: the same matrix serves as a third "shape" modality.
  const CsvmTrainData base = TwoModalityProblem(6, 8, 1.2, 0.8, 35);
  std::vector<Modality> modalities(3);
  modalities[0].data = base.visual;
  modalities[0].kernel = svm::KernelParams::Rbf(0.5);
  modalities[1].data = base.log;
  modalities[1].kernel = svm::KernelParams::Rbf(0.5);
  modalities[2].data = base.visual;
  modalities[2].kernel = svm::KernelParams::Rbf(0.25);

  MultiCsvmOptions per_solve;
  per_solve.rho = 0.5;
  per_solve.reuse_chain_cache = false;
  auto cold = MultiCoupledSvm(per_solve).Train(modalities, base.labels,
                                               base.initial_unlabeled_labels);
  ASSERT_TRUE(cold.ok()) << cold.status();

  MultiCsvmOptions shared = per_solve;
  shared.reuse_chain_cache = true;
  auto hot = MultiCoupledSvm(shared).Train(modalities, base.labels,
                                           base.initial_unlabeled_labels);
  ASSERT_TRUE(hot.ok());

  EXPECT_EQ(hot->unlabeled_labels, cold->unlabeled_labels);
  ASSERT_EQ(hot->alphas.size(), 3u);
  EXPECT_EQ(hot->alphas, cold->alphas);
  ASSERT_EQ(hot->diagnostics.modality_cache_stats.size(), 3u);
  EXPECT_LT(hot->diagnostics.cache_stats.misses,
            cold->diagnostics.cache_stats.misses);
}

TEST(CsvmSharedCacheTest, InjectedSessionCachesAcrossGrowingRounds) {
  // The cross-round serving pattern, driven directly: round 2 grows the
  // labeled set; the session caches remap by id and the trained model must
  // match a cache-free training of the same round-2 problem.
  const CsvmTrainData full = TwoModalityProblem(10, 8, 1.0, 0.8, 37);
  const size_t nl_full = 20;
  const size_t nu = 8;
  const CsvmOptions options = TestOptions();
  const CoupledSvm csvm(options);

  SessionKernelCache visual_rows, log_rows;
  // Interleave the classes so the round-1 prefix is balanced: labeled slot t
  // maps to image t/2 of the positive (even t) or negative (odd t) class.
  const auto labeled_id = [&](size_t t) {
    return static_cast<int>(t % 2 == 0 ? t / 2 : nl_full / 2 + t / 2);
  };
  auto run_round = [&](size_t nl) -> Result<CoupledModel> {
    std::vector<int> ids;
    la::Matrix visual(nl + nu, full.visual.cols());
    la::Matrix log(nl + nu, full.log.cols());
    std::vector<double> labels;
    for (size_t i = 0; i < nl; ++i) {
      const size_t id = static_cast<size_t>(labeled_id(i));
      ids.push_back(static_cast<int>(id));
      visual.SetRow(i, full.visual.Row(id));
      log.SetRow(i, full.log.Row(id));
      labels.push_back(full.labels[id]);
    }
    for (size_t j = 0; j < nu; ++j) {
      ids.push_back(static_cast<int>(nl_full + j));
      visual.SetRow(nl + j, full.visual.Row(nl_full + j));
      log.SetRow(nl + j, full.log.Row(nl_full + j));
    }
    CsvmTrainView view;
    view.labels = &labels;
    view.initial_unlabeled_labels = &full.initial_unlabeled_labels;
    view.visual_cache = visual_rows.Bind(ids, std::move(visual),
                                         options.visual_kernel, 0);
    view.log_cache =
        log_rows.Bind(std::move(ids), std::move(log), options.log_kernel, 0);
    view.visual = &visual_rows.data();
    view.log = &log_rows.data();
    return csvm.TrainView(view);
  };

  ASSERT_TRUE(run_round(10).ok());
  auto carried = run_round(nl_full);
  ASSERT_TRUE(carried.ok());

  // Reference: the identical round-2 problem (same interleaved row order),
  // trained without any carried caches.
  CsvmTrainData round2;
  round2.visual = la::Matrix(nl_full + nu, full.visual.cols());
  round2.log = la::Matrix(nl_full + nu, full.log.cols());
  round2.initial_unlabeled_labels = full.initial_unlabeled_labels;
  for (size_t i = 0; i < nl_full; ++i) {
    const size_t id = static_cast<size_t>(labeled_id(i));
    round2.visual.SetRow(i, full.visual.Row(id));
    round2.log.SetRow(i, full.log.Row(id));
    round2.labels.push_back(full.labels[id]);
  }
  for (size_t j = 0; j < nu; ++j) {
    round2.visual.SetRow(nl_full + j, full.visual.Row(nl_full + j));
    round2.log.SetRow(nl_full + j, full.log.Row(nl_full + j));
  }
  auto reference = csvm.Train(round2);
  ASSERT_TRUE(reference.ok());

  EXPECT_EQ(carried->unlabeled_labels, reference->unlabeled_labels);
  EXPECT_EQ(carried->visual_alpha, reference->visual_alpha);
  EXPECT_EQ(carried->log_alpha, reference->log_alpha);
  // Round 2 recomputed kernel rows only against the 10 new labeled images:
  // strictly fewer misses than the cache-free training.
  EXPECT_LT(carried->diagnostics.cache_stats.misses,
            reference->diagnostics.cache_stats.misses);
}

// ---- Feedback-loop level: full sessions with and without the caches. ------

class SessionCacheFeedbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    retrieval::DatabaseOptions options;
    options.corpus.num_categories = 4;
    options.corpus.images_per_category = 20;
    options.corpus.width = 48;
    options.corpus.height = 48;
    options.corpus.seed = 19;
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(options));
    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 30;
    log_options.session_size = 10;
    log_options.seed = 3;
    logdb::LogStore store =
        logdb::CollectLogs(db_->features(), db_->categories(), log_options);
    log_features_ =
        new la::Matrix(store.BuildMatrix(db_->num_images()).ToDenseMatrix());
  }
  static void TearDownTestSuite() {
    delete log_features_;
    log_features_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static SchemeOptions SchemeOpts() {
    return MakeDefaultSchemeOptions(*db_, log_features_);
  }

  static retrieval::ImageDatabase* db_;
  static la::Matrix* log_features_;
};

retrieval::ImageDatabase* SessionCacheFeedbackTest::db_ = nullptr;
la::Matrix* SessionCacheFeedbackTest::log_features_ = nullptr;

TEST_F(SessionCacheFeedbackTest, LrfCsvmSessionMatchesWithoutCaches) {
  FeedbackLoopOptions loop;
  loop.rounds = 3;
  loop.judgments_per_round = 10;
  loop.scopes = {10, 20};

  SchemeOptions with = SchemeOpts();
  with.cross_round_kernel_cache = true;
  SchemeOptions without = SchemeOpts();
  without.cross_round_kernel_cache = false;
  LrfCsvmOptions csvm;
  csvm.n_prime = 10;

  for (int query : {4, 31, 57}) {
    LrfCsvmScheme cached(with, csvm);
    LrfCsvmScheme uncached(without, csvm);
    auto a = RunFeedbackSession(*db_, log_features_, cached, query, loop);
    auto b = RunFeedbackSession(*db_, log_features_, uncached, query, loop);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->precision, b->precision) << "query " << query;
  }
}

TEST_F(SessionCacheFeedbackTest, LrfCsvmSessionUnderEvictionPressure) {
  FeedbackLoopOptions loop;
  loop.rounds = 2;
  loop.judgments_per_round = 10;
  loop.scopes = {10};

  SchemeOptions base = SchemeOpts();
  LrfCsvmOptions csvm;
  csvm.n_prime = 10;
  LrfCsvmScheme reference(base, csvm);

  SchemeOptions tiny = base;
  tiny.smo.cache_rows = 2;  // eviction churn in every solve, every round
  LrfCsvmScheme squeezed(tiny, csvm);

  auto a = RunFeedbackSession(*db_, log_features_, reference, 11, loop);
  auto b = RunFeedbackSession(*db_, log_features_, squeezed, 11, loop);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->precision, b->precision);
}

TEST_F(SessionCacheFeedbackTest, RfSvmSessionMatchesWithoutCaches) {
  FeedbackLoopOptions loop;
  loop.rounds = 3;
  loop.judgments_per_round = 12;
  loop.scopes = {10, 20};

  SchemeOptions with = SchemeOpts();
  with.cross_round_kernel_cache = true;
  SchemeOptions without = SchemeOpts();
  without.cross_round_kernel_cache = false;

  for (int query : {2, 43}) {
    RfSvmScheme cached(with);
    RfSvmScheme uncached(without);
    auto a = RunFeedbackSession(*db_, nullptr, cached, query, loop);
    auto b = RunFeedbackSession(*db_, nullptr, uncached, query, loop);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->precision, b->precision) << "query " << query;
  }
}

TEST_F(SessionCacheFeedbackTest, AggregatedDiagnosticsAccumulate) {
  FeedbackLoopOptions loop;
  loop.rounds = 2;
  loop.judgments_per_round = 10;
  loop.scopes = {10};
  LrfCsvmOptions csvm;
  csvm.n_prime = 10;
  LrfCsvmScheme scheme(SchemeOpts(), csvm);
  EXPECT_EQ(scheme.AggregatedDiagnostics().total_smo_iterations, 0);

  ASSERT_TRUE(
      RunFeedbackSession(*db_, log_features_, scheme, 7, loop).ok());
  const CsvmDiagnostics diag = scheme.AggregatedDiagnostics();
  EXPECT_GT(diag.total_smo_iterations, 0);
  EXPECT_GT(diag.cache_stats.hits + diag.cache_stats.misses, 0u);
  ASSERT_EQ(diag.modality_cache_stats.size(), 2u);
  EXPECT_EQ(diag.modality_cache_stats[0].hits +
                diag.modality_cache_stats[1].hits,
            diag.cache_stats.hits);
}

}  // namespace
}  // namespace cbir::core
