#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"

namespace cbir::core {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    retrieval::DatabaseOptions options;
    options.corpus.num_categories = 3;
    options.corpus.images_per_category = 15;
    options.corpus.width = 64;
    options.corpus.height = 64;
    options.corpus.seed = 101;
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(options));

    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 25;
    log_options.session_size = 10;
    log_options.seed = 6;
    const logdb::LogStore store =
        logdb::CollectLogs(db_->features(), db_->categories(), log_options);
    log_features_ = new la::Matrix(
        store.BuildMatrix(db_->num_images()).ToDenseMatrix());
  }

  static void TearDownTestSuite() {
    delete log_features_;
    delete db_;
  }

  static retrieval::ImageDatabase* db_;
  static la::Matrix* log_features_;
};

retrieval::ImageDatabase* ExperimentTest::db_ = nullptr;
la::Matrix* ExperimentTest::log_features_ = nullptr;

ExperimentOptions SmallExperiment() {
  ExperimentOptions options;
  options.num_queries = 6;
  options.num_labeled = 8;
  options.scopes = {10, 20};
  options.seed = 9;
  return options;
}

TEST_F(ExperimentTest, ShapeOfResults) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  const auto schemes = MakePaperSchemes(scheme_options);
  const ExperimentResult result =
      RunExperiment(*db_, log_features_, schemes, SmallExperiment());

  EXPECT_EQ(result.num_queries, 6);
  ASSERT_EQ(result.schemes.size(), 4u);
  for (const SchemeResult& s : result.schemes) {
    ASSERT_EQ(s.precision.size(), 2u);
    for (double p : s.precision) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    EXPECT_GE(s.map, 0.0);
    EXPECT_LE(s.map, 1.0);
  }
}

TEST_F(ExperimentTest, DeterministicAcrossRunsAndThreadCounts) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  const auto schemes = MakePaperSchemes(scheme_options);

  ExperimentOptions serial = SmallExperiment();
  serial.num_threads = 1;
  ExperimentOptions parallel = SmallExperiment();
  parallel.num_threads = 4;

  const ExperimentResult a =
      RunExperiment(*db_, log_features_, schemes, serial);
  const ExperimentResult b =
      RunExperiment(*db_, log_features_, schemes, parallel);
  for (size_t s = 0; s < a.schemes.size(); ++s) {
    EXPECT_EQ(a.schemes[s].precision, b.schemes[s].precision)
        << a.schemes[s].name;
  }
}

TEST_F(ExperimentTest, SeedChangesQuerySample) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  std::vector<std::shared_ptr<FeedbackScheme>> schemes{
      MakeScheme("Euclidean", scheme_options).value()};
  ExperimentOptions o1 = SmallExperiment();
  ExperimentOptions o2 = SmallExperiment();
  o2.seed = 1234;
  const ExperimentResult a = RunExperiment(*db_, log_features_, schemes, o1);
  const ExperimentResult b = RunExperiment(*db_, log_features_, schemes, o2);
  EXPECT_NE(a.schemes[0].precision, b.schemes[0].precision);
}

TEST_F(ExperimentTest, MapIsMeanOfPrecisionRow) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  std::vector<std::shared_ptr<FeedbackScheme>> schemes{
      MakeScheme("Euclidean", scheme_options).value()};
  const ExperimentResult result =
      RunExperiment(*db_, log_features_, schemes, SmallExperiment());
  const auto& s = result.schemes[0];
  double mean = 0.0;
  for (double p : s.precision) mean += p;
  mean /= static_cast<double>(s.precision.size());
  EXPECT_NEAR(s.map, mean, 1e-12);
}

TEST_F(ExperimentTest, FormatPaperTableLayout) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  const auto schemes = MakePaperSchemes(scheme_options);
  const ExperimentResult result =
      RunExperiment(*db_, log_features_, schemes, SmallExperiment());
  const std::string table = FormatPaperTable(result);
  EXPECT_NE(table.find("#TOP"), std::string::npos);
  EXPECT_NE(table.find("Euclidean"), std::string::npos);
  EXPECT_NE(table.find("RF-SVM"), std::string::npos);
  EXPECT_NE(table.find("LRF-2SVMs"), std::string::npos);
  EXPECT_NE(table.find("LRF-CSVM"), std::string::npos);
  EXPECT_NE(table.find("MAP"), std::string::npos);
  // Improvement percentages relative to the RF-SVM baseline column appear.
  EXPECT_NE(table.find("%"), std::string::npos);
  EXPECT_NE(table.find("queries=6"), std::string::npos);
}

TEST_F(ExperimentTest, RejectsScopesBeyondCorpus) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  std::vector<std::shared_ptr<FeedbackScheme>> schemes{
      MakeScheme("Euclidean", scheme_options).value()};
  ExperimentOptions options = SmallExperiment();
  options.scopes = {10, 4500};  // corpus has 45 images
  EXPECT_DEATH(
      (void)RunExperiment(*db_, log_features_, schemes, options),
      "exceeds");
}

TEST_F(ExperimentTest, QueriesClampToCorpusSize) {
  const SchemeOptions scheme_options =
      MakeDefaultSchemeOptions(*db_, log_features_);
  std::vector<std::shared_ptr<FeedbackScheme>> schemes{
      MakeScheme("Euclidean", scheme_options).value()};
  ExperimentOptions options = SmallExperiment();
  options.num_queries = 10000;
  const ExperimentResult result =
      RunExperiment(*db_, log_features_, schemes, options);
  EXPECT_EQ(result.num_queries, db_->num_images());
}

}  // namespace
}  // namespace cbir::core
