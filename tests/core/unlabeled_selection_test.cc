#include "core/unlabeled_selection.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cbir::core {
namespace {

SelectionInputs DecisionInputs() {
  SelectionInputs in;
  in.candidate_ids = {10, 11, 12, 13, 14, 15};
  in.combined_decisions = {3.0, -2.0, 0.5, -0.1, 2.0, -3.0};
  return in;
}

SelectionInputs SimilarityInputs() {
  SelectionInputs in;
  in.candidate_ids = {20, 21, 22, 23, 24, 25};
  in.similarity_to_positives = {0.9, 0.1, 0.8, 0.2, 0.5, 0.3};
  in.similarity_to_negatives = {0.1, 0.9, 0.2, 0.8, 0.6, 0.3};
  return in;
}

TEST(SelectionTest, MostSimilarPicksClosestToEachClass) {
  const SelectionResult r = SelectUnlabeled(SelectionStrategy::kMostSimilar,
                                            SimilarityInputs(), 4, 1);
  ASSERT_EQ(r.ids.size(), 4u);
  // Positive half: ids 20 (0.9) and 22 (0.8).
  EXPECT_EQ(r.ids[0], 20);
  EXPECT_EQ(r.ids[1], 22);
  EXPECT_DOUBLE_EQ(r.initial_labels[0], 1.0);
  EXPECT_DOUBLE_EQ(r.initial_labels[1], 1.0);
  // Negative half: ids 21 (0.9) and 23 (0.8).
  EXPECT_EQ(r.ids[2], 21);
  EXPECT_EQ(r.ids[3], 23);
  EXPECT_DOUBLE_EQ(r.initial_labels[2], -1.0);
  EXPECT_DOUBLE_EQ(r.initial_labels[3], -1.0);
}

TEST(SelectionTest, MostSimilarAvoidsDoubleSelection) {
  SelectionInputs in;
  in.candidate_ids = {1, 2, 3};
  // Candidate 1 tops BOTH lists; it must appear once (as positive).
  in.similarity_to_positives = {0.9, 0.5, 0.1};
  in.similarity_to_negatives = {0.9, 0.2, 0.6};
  const SelectionResult r =
      SelectUnlabeled(SelectionStrategy::kMostSimilar, in, 2, 1);
  ASSERT_EQ(r.ids.size(), 2u);
  EXPECT_EQ(r.ids[0], 1);
  EXPECT_DOUBLE_EQ(r.initial_labels[0], 1.0);
  EXPECT_EQ(r.ids[1], 3);  // next best negative after 1 was consumed
  EXPECT_DOUBLE_EQ(r.initial_labels[1], -1.0);
}

TEST(SelectionTest, MaxMinPicksExtremes) {
  const SelectionResult r = SelectUnlabeled(SelectionStrategy::kMaxMin,
                                            DecisionInputs(), 4, 1);
  ASSERT_EQ(r.ids.size(), 4u);
  // Top-2 by decision: ids 10 (3.0) and 14 (2.0) -> +1.
  EXPECT_EQ(r.ids[0], 10);
  EXPECT_EQ(r.ids[1], 14);
  EXPECT_DOUBLE_EQ(r.initial_labels[0], 1.0);
  EXPECT_DOUBLE_EQ(r.initial_labels[1], 1.0);
  // Bottom-2: ids 15 (-3.0) and 11 (-2.0) -> -1.
  EXPECT_EQ(r.ids[2], 15);
  EXPECT_EQ(r.ids[3], 11);
  EXPECT_DOUBLE_EQ(r.initial_labels[2], -1.0);
  EXPECT_DOUBLE_EQ(r.initial_labels[3], -1.0);
}

TEST(SelectionTest, MaxMinOddCountFavorsPositives) {
  const SelectionResult r =
      SelectUnlabeled(SelectionStrategy::kMaxMin, DecisionInputs(), 3, 1);
  ASSERT_EQ(r.ids.size(), 3u);
  int positives = 0;
  for (double l : r.initial_labels) {
    if (l > 0) ++positives;
  }
  EXPECT_EQ(positives, 2);
}

TEST(SelectionTest, BoundaryClosestPicksSmallestMagnitude) {
  const SelectionResult r = SelectUnlabeled(
      SelectionStrategy::kBoundaryClosest, DecisionInputs(), 2, 1);
  ASSERT_EQ(r.ids.size(), 2u);
  // |-0.1| and |0.5| are the smallest.
  EXPECT_EQ(r.ids[0], 13);
  EXPECT_EQ(r.ids[1], 12);
  EXPECT_DOUBLE_EQ(r.initial_labels[0], -1.0);  // sign of -0.1
  EXPECT_DOUBLE_EQ(r.initial_labels[1], 1.0);   // sign of 0.5
}

TEST(SelectionTest, RandomIsDeterministicInSeed) {
  const SelectionInputs in = DecisionInputs();
  const SelectionResult a =
      SelectUnlabeled(SelectionStrategy::kRandom, in, 3, 42);
  const SelectionResult b =
      SelectUnlabeled(SelectionStrategy::kRandom, in, 3, 42);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.initial_labels, b.initial_labels);
  // Labels follow the decision sign.
  for (size_t i = 0; i < a.ids.size(); ++i) {
    const auto pos = std::find(in.candidate_ids.begin(),
                               in.candidate_ids.end(), a.ids[i]);
    const double d = in.combined_decisions[static_cast<size_t>(
        pos - in.candidate_ids.begin())];
    EXPECT_DOUBLE_EQ(a.initial_labels[i], d >= 0 ? 1.0 : -1.0);
  }
}

TEST(SelectionTest, WantMoreThanAvailableClamps) {
  for (SelectionStrategy strategy :
       {SelectionStrategy::kMostSimilar, SelectionStrategy::kMaxMin,
        SelectionStrategy::kBoundaryClosest, SelectionStrategy::kRandom}) {
    const SelectionInputs in = strategy == SelectionStrategy::kMostSimilar
                                   ? SimilarityInputs()
                                   : DecisionInputs();
    const SelectionResult r = SelectUnlabeled(strategy, in, 100, 1);
    EXPECT_EQ(r.ids.size(), in.candidate_ids.size())
        << SelectionStrategyToString(strategy);
    const std::set<int> unique(r.ids.begin(), r.ids.end());
    EXPECT_EQ(unique.size(), r.ids.size()) << "duplicates from "
                                           << SelectionStrategyToString(
                                                  strategy);
  }
}

TEST(SelectionTest, ZeroRequestedReturnsEmpty) {
  const SelectionResult r =
      SelectUnlabeled(SelectionStrategy::kMaxMin, DecisionInputs(), 0, 1);
  EXPECT_TRUE(r.ids.empty());
  EXPECT_TRUE(r.initial_labels.empty());
}

TEST(SelectionTest, EmptyCandidates) {
  const SelectionResult r =
      SelectUnlabeled(SelectionStrategy::kMostSimilar, SelectionInputs{}, 10,
                      1);
  EXPECT_TRUE(r.ids.empty());
}

TEST(SelectionTest, StrategyNames) {
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kMostSimilar),
               "most-similar");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kMaxMin),
               "max-min");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kBoundaryClosest),
               "boundary-closest");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kRandom),
               "random");
}

TEST(SelectionDeathTest, MissingSignals) {
  SelectionInputs in;
  in.candidate_ids = {1, 2};
  // kMaxMin needs combined_decisions; kMostSimilar needs similarities.
  EXPECT_DEATH(
      (void)SelectUnlabeled(SelectionStrategy::kMaxMin, in, 2, 1),
      "Check failed");
  EXPECT_DEATH(
      (void)SelectUnlabeled(SelectionStrategy::kMostSimilar, in, 2, 1),
      "Check failed");
}

}  // namespace
}  // namespace cbir::core
