#include "core/multi_coupled_svm.h"

#include <gtest/gtest.h>

#include "core/coupled_svm.h"
#include "util/rng.h"

namespace cbir::core {
namespace {

// K Gaussian modalities, each carrying the class signal with its own gap.
struct MultiProblem {
  std::vector<Modality> modalities;
  std::vector<double> labels;
  std::vector<double> initial_unlabeled;
};

MultiProblem MakeProblem(size_t num_modalities, size_t nl_per_class,
                         size_t nu, uint64_t seed) {
  Rng rng(seed);
  const size_t nl = 2 * nl_per_class;
  const size_t n = nl + nu;
  MultiProblem p;
  std::vector<double> truth(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  for (size_t k = 0; k < num_modalities; ++k) {
    Modality m;
    m.data = la::Matrix(n, 2 + k);
    m.kernel = svm::KernelParams::Rbf(0.5);
    m.c = 10.0;
    const double gap = 2.0 + 0.5 * static_cast<double>(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t d = 0; d < m.data.cols(); ++d) {
        m.data.At(i, d) = rng.Gaussian() + (d == 0 ? gap * truth[i] : 0.0);
      }
    }
    p.modalities.push_back(std::move(m));
  }
  p.labels.assign(truth.begin(), truth.begin() + static_cast<long>(nl));
  p.initial_unlabeled.assign(truth.begin() + static_cast<long>(nl),
                             truth.end());
  return p;
}

MultiCsvmOptions TestOptions() {
  MultiCsvmOptions options;
  options.rho = 0.5;
  return options;
}

TEST(MultiCoupledSvmTest, TrainsOnThreeModalities) {
  const MultiProblem p = MakeProblem(3, 8, 6, 1);
  MultiCoupledSvm csvm(TestOptions());
  auto model = csvm.Train(p.modalities, p.labels, p.initial_unlabeled);
  ASSERT_TRUE(model.ok()) << model.status();
  ASSERT_EQ(model->models.size(), 3u);
  // All labeled samples classified correctly by the summed decision.
  for (size_t i = 0; i < p.labels.size(); ++i) {
    std::vector<la::Vec> sample;
    for (const Modality& m : p.modalities) sample.push_back(m.data.Row(i));
    EXPECT_GT(p.labels[i] * model->Decision(sample), 0.0) << "sample " << i;
  }
}

TEST(MultiCoupledSvmTest, TwoModalityCaseMatchesCoupledSvm) {
  // The K = 2 instantiation must reproduce CoupledSvm exactly (same QPs,
  // same correction rule, same schedule).
  const MultiProblem p = MakeProblem(2, 8, 6, 3);

  MultiCsvmOptions multi_options = TestOptions();
  MultiCoupledSvm multi(multi_options);
  auto m = multi.Train(p.modalities, p.labels, p.initial_unlabeled);
  ASSERT_TRUE(m.ok());

  CsvmOptions pair_options;
  pair_options.rho = multi_options.rho;
  pair_options.c_visual = p.modalities[0].c;
  pair_options.c_log = p.modalities[1].c;
  pair_options.visual_kernel = p.modalities[0].kernel;
  pair_options.log_kernel = p.modalities[1].kernel;
  CsvmTrainData data;
  data.visual = p.modalities[0].data;
  data.log = p.modalities[1].data;
  data.labels = p.labels;
  data.initial_unlabeled_labels = p.initial_unlabeled;
  CoupledSvm pair(pair_options);
  auto c = pair.Train(data);
  ASSERT_TRUE(c.ok());

  EXPECT_EQ(m->unlabeled_labels, c->unlabeled_labels);
  EXPECT_EQ(m->diagnostics.outer_iterations, c->diagnostics.outer_iterations);
  EXPECT_EQ(m->diagnostics.total_flips, c->diagnostics.total_flips);
  // Decision functions agree everywhere (spot-check on training rows).
  for (size_t i = 0; i < p.modalities[0].data.rows(); ++i) {
    const la::Vec x = p.modalities[0].data.Row(i);
    const la::Vec r = p.modalities[1].data.Row(i);
    EXPECT_NEAR(m->Decision({x, r}), c->Decision(x, r), 1e-9) << i;
  }
}

TEST(MultiCoupledSvmTest, SingleModalityDegeneratesToWeightedSvm) {
  const MultiProblem p = MakeProblem(1, 10, 4, 5);
  MultiCoupledSvm csvm(TestOptions());
  auto model = csvm.Train(p.modalities, p.labels, p.initial_unlabeled);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->models.size(), 1u);
  EXPECT_EQ(model->unlabeled_labels.size(), 4u);
}

TEST(MultiCoupledSvmTest, FlipRequiresUnanimousRejection) {
  // The unlabeled sample is wrong in modality 0 but comfortably correct in
  // modality 1: the all-modalities gate must block the flip.
  MultiProblem p = MakeProblem(2, 8, 0, 7);
  const size_t n = p.labels.size() + 1;
  for (size_t k = 0; k < 2; ++k) {
    la::Matrix extended(n, p.modalities[k].data.cols());
    for (size_t i = 0; i + 1 < n; ++i) {
      extended.SetRow(i, p.modalities[k].data.Row(i));
    }
    p.modalities[k].data = std::move(extended);
  }
  // Pseudo-label -1. Modality 0 places it deep positive (rejects the
  // label); modality 1 places it deep negative (confirms the label).
  {
    la::Vec row0(p.modalities[0].data.cols(), 0.0);
    row0[0] = 3.0;
    p.modalities[0].data.SetRow(n - 1, row0);
    la::Vec row1(p.modalities[1].data.cols(), 0.0);
    row1[0] = -3.0;
    p.modalities[1].data.SetRow(n - 1, row1);
  }
  p.initial_unlabeled = {-1.0};

  MultiCsvmOptions options = TestOptions();
  options.enforce_class_balance = false;  // isolate the unanimity gate
  MultiCoupledSvm csvm(options);
  auto model = csvm.Train(p.modalities, p.labels, p.initial_unlabeled);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->unlabeled_labels[0], -1.0);
  EXPECT_EQ(model->diagnostics.total_flips, 0);
}

TEST(MultiCoupledSvmTest, RejectsBadInput) {
  MultiCoupledSvm csvm(TestOptions());
  EXPECT_FALSE(csvm.Train({}, {1.0}, {}).ok());

  MultiProblem p = MakeProblem(2, 4, 2, 9);
  EXPECT_FALSE(csvm.Train(p.modalities, {}, p.initial_unlabeled).ok());

  p.modalities[1].data = la::Matrix(3, 2);  // row mismatch
  EXPECT_FALSE(
      csvm.Train(p.modalities, p.labels, p.initial_unlabeled).ok());
}

TEST(MultiCoupledSvmDeathTest, DecisionArityChecked) {
  const MultiProblem p = MakeProblem(2, 4, 0, 11);
  MultiCoupledSvm csvm(TestOptions());
  auto model = csvm.Train(p.modalities, p.labels, {}).value();
  EXPECT_DEATH((void)model.Decision({p.modalities[0].data.Row(0)}),
               "Check failed");
}

}  // namespace
}  // namespace cbir::core
