#include "core/feedback_loop.h"

#include <gtest/gtest.h>

#include "core/euclidean_scheme.h"
#include "core/rf_svm_scheme.h"
#include "logdb/log_store.h"

namespace cbir::core {
namespace {

class FeedbackLoopTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    retrieval::DatabaseOptions options;
    options.corpus.num_categories = 4;
    options.corpus.images_per_category = 20;
    options.corpus.width = 48;
    options.corpus.height = 48;
    options.corpus.seed = 9;
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(options));
    scheme_options_ = new SchemeOptions(
        MakeDefaultSchemeOptions(*db_, nullptr));
  }
  static void TearDownTestSuite() {
    delete scheme_options_;
    delete db_;
  }

  static retrieval::ImageDatabase* db_;
  static SchemeOptions* scheme_options_;
};

retrieval::ImageDatabase* FeedbackLoopTest::db_ = nullptr;
SchemeOptions* FeedbackLoopTest::scheme_options_ = nullptr;

TEST_F(FeedbackLoopTest, ResultShape) {
  RfSvmScheme scheme(*scheme_options_);
  FeedbackLoopOptions options;
  options.rounds = 3;
  options.judgments_per_round = 10;
  options.scopes = {10, 20};
  auto result = RunFeedbackSession(*db_, nullptr, scheme, 5, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->precision.size(), 4u);  // round 0 + 3 feedback rounds
  for (const auto& row : result->precision) {
    ASSERT_EQ(row.size(), 2u);
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  EXPECT_EQ(result->total_judgments, 30);
  EXPECT_EQ(result->recorded_sessions.size(), 3u);
}

TEST_F(FeedbackLoopTest, JudgmentsNeverRepeatAcrossRounds) {
  RfSvmScheme scheme(*scheme_options_);
  FeedbackLoopOptions options;
  options.rounds = 4;
  options.judgments_per_round = 8;
  auto result = RunFeedbackSession(*db_, nullptr, scheme, 12, options);
  ASSERT_TRUE(result.ok());
  std::set<int> seen;
  for (const auto& session : result->recorded_sessions) {
    EXPECT_EQ(session.query_image_id, 12);
    for (const auto& entry : session.entries) {
      EXPECT_NE(entry.image_id, 12);  // the query is never judged
      EXPECT_TRUE(seen.insert(entry.image_id).second)
          << "image " << entry.image_id << " judged twice";
    }
  }
}

TEST_F(FeedbackLoopTest, FeedbackImprovesOverInitialRetrieval) {
  RfSvmScheme scheme(*scheme_options_);
  FeedbackLoopOptions options;
  options.rounds = 3;
  options.judgments_per_round = 15;
  // Average over several queries: feedback must beat round 0 on average.
  double initial_sum = 0.0, final_sum = 0.0;
  int count = 0;
  for (int query = 0; query < 79; query += 13) {
    auto result = RunFeedbackSession(*db_, nullptr, scheme, query, options);
    ASSERT_TRUE(result.ok());
    initial_sum += result->precision.front()[0];
    final_sum += result->precision.back()[0];
    ++count;
  }
  EXPECT_GT(final_sum / count, initial_sum / count);
}

TEST_F(FeedbackLoopTest, RecordedSessionsFeedTheLogStore) {
  // A session's recorded judgments are exactly the long-term log unit the
  // paper's schemes consume: appending them must build a valid matrix.
  RfSvmScheme scheme(*scheme_options_);
  FeedbackLoopOptions options;
  options.rounds = 2;
  options.judgments_per_round = 10;
  auto result = RunFeedbackSession(*db_, nullptr, scheme, 30, options);
  ASSERT_TRUE(result.ok());

  logdb::LogStore store;
  for (const auto& session : result->recorded_sessions) {
    store.Append(session);
  }
  EXPECT_EQ(store.num_sessions(), 2);
  const logdb::RelevanceMatrix matrix = store.BuildMatrix(db_->num_images());
  EXPECT_EQ(matrix.PositiveCount() + matrix.NegativeCount(),
            result->total_judgments);
}

TEST_F(FeedbackLoopTest, DeterministicInSeed) {
  RfSvmScheme scheme(*scheme_options_);
  FeedbackLoopOptions options;
  options.rounds = 2;
  options.judgment_noise = 0.3;  // exercises the RNG path
  auto a = RunFeedbackSession(*db_, nullptr, scheme, 7, options);
  auto b = RunFeedbackSession(*db_, nullptr, scheme, 7, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->precision, b->precision);
}

TEST_F(FeedbackLoopTest, ZeroRoundsIsInitialRetrievalOnly) {
  EuclideanScheme scheme;
  FeedbackLoopOptions options;
  options.rounds = 0;
  auto result = RunFeedbackSession(*db_, nullptr, scheme, 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->precision.size(), 1u);
  EXPECT_EQ(result->total_judgments, 0);
}

TEST_F(FeedbackLoopTest, InputValidation) {
  EuclideanScheme scheme;
  FeedbackLoopOptions options;
  EXPECT_FALSE(RunFeedbackSession(*db_, nullptr, scheme, -1, options).ok());
  EXPECT_FALSE(
      RunFeedbackSession(*db_, nullptr, scheme, 9999, options).ok());
  options.judgments_per_round = 0;
  EXPECT_FALSE(RunFeedbackSession(*db_, nullptr, scheme, 0, options).ok());
  options.judgments_per_round = 10;
  options.scopes.clear();
  EXPECT_FALSE(RunFeedbackSession(*db_, nullptr, scheme, 0, options).ok());
}

}  // namespace
}  // namespace cbir::core
