#include "core/feedback_scheme.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/euclidean_scheme.h"
#include "retrieval/ranker.h"

namespace cbir::core {
namespace {

retrieval::ImageDatabase SmallDb() {
  retrieval::DatabaseOptions options;
  options.corpus.num_categories = 2;
  options.corpus.images_per_category = 6;
  options.corpus.width = 32;
  options.corpus.height = 32;
  options.corpus.seed = 5;
  return retrieval::ImageDatabase::Build(options);
}

TEST(FeedbackContextTest, PrepareFillsDerivedFields) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 3;
  ASSERT_TRUE(ctx.Prepare().ok());
  EXPECT_EQ(ctx.query_feature, db.feature(3));
  ASSERT_EQ(ctx.query_distances.size(), static_cast<size_t>(db.num_images()));
  EXPECT_DOUBLE_EQ(ctx.query_distances[3], 0.0);  // self-distance
  for (double d : ctx.query_distances) EXPECT_GE(d, 0.0);
}

// Regression (issue 4, satellite 1): malformed input used to CBIR_CHECK-
// abort the process; it must surface as InvalidArgument so a bad request
// can never kill a serving process.
TEST(FeedbackContextTest, PrepareReturnsTypedErrorsInsteadOfAborting) {
  const retrieval::ImageDatabase db = SmallDb();
  {
    FeedbackContext ctx;  // no db
    ctx.query_id = 0;
    EXPECT_EQ(ctx.Prepare().code(), StatusCode::kInvalidArgument);
  }
  {
    FeedbackContext ctx;
    ctx.db = &db;
    ctx.query_id = 99;  // out of range
    const Status s = ctx.Prepare();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("out of range"), std::string::npos);
  }
  {
    FeedbackContext ctx;
    ctx.db = &db;
    ctx.query_id = 0;
    ctx.labeled_ids = {1, 2};
    ctx.labels = {1.0};  // arity mismatch
    EXPECT_EQ(ctx.Prepare().code(), StatusCode::kInvalidArgument);
  }
  {
    FeedbackContext ctx;  // external query without a feature
    ctx.db = &db;
    ctx.query_id = -1;
    EXPECT_EQ(ctx.Prepare().code(), StatusCode::kInvalidArgument);
  }
  {
    FeedbackContext ctx;  // external query with wrong dimensionality
    ctx.db = &db;
    ctx.query_id = -1;
    ctx.query_feature = {1.0, 2.0};
    EXPECT_EQ(ctx.Prepare().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FeedbackContextTest, ExternalQueryFeaturePreparesLikeInCorpusQuery) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext by_id;
  by_id.db = &db;
  by_id.query_id = 4;
  ASSERT_TRUE(by_id.Prepare().ok());

  FeedbackContext external;
  external.db = &db;
  external.query_id = -1;
  external.query_feature = db.feature(4);
  ASSERT_TRUE(external.Prepare().ok());

  EXPECT_EQ(external.query_feature, by_id.query_feature);
  EXPECT_EQ(external.query_distances, by_id.query_distances);
  EXPECT_EQ(external.scan_size(), by_id.scan_size());

  // The external session never excludes a corpus row: the identical-feature
  // image stays in the ranking (by-id drops it).
  EuclideanScheme scheme;
  auto external_ranked = scheme.Rank(external);
  auto by_id_ranked = scheme.Rank(by_id);
  ASSERT_TRUE(external_ranked.ok());
  ASSERT_TRUE(by_id_ranked.ok());
  ASSERT_EQ(external_ranked->size(), by_id_ranked->size() + 1);
  EXPECT_EQ(external_ranked->front(), 4);  // distance zero ranks first
  std::vector<int> stripped = external_ranked.value();
  stripped.erase(std::remove(stripped.begin(), stripped.end(), 4),
                 stripped.end());
  EXPECT_EQ(stripped, by_id_ranked.value());
}

TEST(FinalizeRankingTest, ExcludesQueryAndKeepsEveryoneElse) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 7;
  ASSERT_TRUE(ctx.Prepare().ok());
  EuclideanScheme scheme;
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), static_cast<size_t>(db.num_images() - 1));
  for (int id : ranked.value()) EXPECT_NE(id, 7);
}

TEST(FinalizeRankingTest, EuclideanRanksNearestFirst) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 0;
  ASSERT_TRUE(ctx.Prepare().ok());
  EuclideanScheme scheme;
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  // Distances along the returned order must be non-decreasing.
  for (size_t i = 0; i + 1 < ranked->size(); ++i) {
    EXPECT_LE(ctx.query_distances[static_cast<size_t>((*ranked)[i])],
              ctx.query_distances[static_cast<size_t>((*ranked)[i + 1])] +
                  1e-12);
  }
}

}  // namespace
}  // namespace cbir::core
