#include "core/feedback_scheme.h"

#include <gtest/gtest.h>

#include "core/euclidean_scheme.h"
#include "retrieval/ranker.h"

namespace cbir::core {
namespace {

retrieval::ImageDatabase SmallDb() {
  retrieval::DatabaseOptions options;
  options.corpus.num_categories = 2;
  options.corpus.images_per_category = 6;
  options.corpus.width = 32;
  options.corpus.height = 32;
  options.corpus.seed = 5;
  return retrieval::ImageDatabase::Build(options);
}

TEST(FeedbackContextTest, PrepareFillsDerivedFields) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 3;
  ctx.Prepare();
  EXPECT_EQ(ctx.query_feature, db.feature(3));
  ASSERT_EQ(ctx.query_distances.size(), static_cast<size_t>(db.num_images()));
  EXPECT_DOUBLE_EQ(ctx.query_distances[3], 0.0);  // self-distance
  for (double d : ctx.query_distances) EXPECT_GE(d, 0.0);
}

TEST(FeedbackContextDeathTest, PrepareValidates) {
  const retrieval::ImageDatabase db = SmallDb();
  {
    FeedbackContext ctx;  // no db
    ctx.query_id = 0;
    EXPECT_DEATH(ctx.Prepare(), "Check failed");
  }
  {
    FeedbackContext ctx;
    ctx.db = &db;
    ctx.query_id = 99;  // out of range
    EXPECT_DEATH(ctx.Prepare(), "Check failed");
  }
  {
    FeedbackContext ctx;
    ctx.db = &db;
    ctx.query_id = 0;
    ctx.labeled_ids = {1, 2};
    ctx.labels = {1.0};  // arity mismatch
    EXPECT_DEATH(ctx.Prepare(), "Check failed");
  }
}

TEST(FinalizeRankingTest, ExcludesQueryAndKeepsEveryoneElse) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 7;
  ctx.Prepare();
  EuclideanScheme scheme;
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), static_cast<size_t>(db.num_images() - 1));
  for (int id : ranked.value()) EXPECT_NE(id, 7);
}

TEST(FinalizeRankingTest, EuclideanRanksNearestFirst) {
  const retrieval::ImageDatabase db = SmallDb();
  FeedbackContext ctx;
  ctx.db = &db;
  ctx.query_id = 0;
  ctx.Prepare();
  EuclideanScheme scheme;
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  // Distances along the returned order must be non-decreasing.
  for (size_t i = 0; i + 1 < ranked->size(); ++i) {
    EXPECT_LE(ctx.query_distances[static_cast<size_t>((*ranked)[i])],
              ctx.query_distances[static_cast<size_t>((*ranked)[i + 1])] +
                  1e-12);
  }
}

}  // namespace
}  // namespace cbir::core
