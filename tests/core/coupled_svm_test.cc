#include "core/coupled_svm.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::core {
namespace {

// Builds a two-modality problem where both views carry the class signal:
// visual = 2-D Gaussians at +-visual_gap, log = 1-D at +-log_gap.
CsvmTrainData TwoModalityProblem(size_t nl_per_class, size_t nu,
                                 double visual_gap, double log_gap,
                                 uint64_t seed) {
  Rng rng(seed);
  const size_t nl = 2 * nl_per_class;
  CsvmTrainData data;
  data.visual = la::Matrix(nl + nu, 2);
  data.log = la::Matrix(nl + nu, 1);
  for (size_t i = 0; i < nl; ++i) {
    const double y = (i < nl_per_class) ? 1.0 : -1.0;
    data.labels.push_back(y);
    data.visual.At(i, 0) = rng.Gaussian() + visual_gap * y;
    data.visual.At(i, 1) = rng.Gaussian();
    data.log.At(i, 0) = rng.Gaussian() * 0.3 + log_gap * y;
  }
  for (size_t j = 0; j < nu; ++j) {
    const double y = (j % 2 == 0) ? 1.0 : -1.0;
    data.visual.At(nl + j, 0) = rng.Gaussian() + visual_gap * y;
    data.visual.At(nl + j, 1) = rng.Gaussian();
    data.log.At(nl + j, 0) = rng.Gaussian() * 0.3 + log_gap * y;
    data.initial_unlabeled_labels.push_back(y);
  }
  return data;
}

CsvmOptions TestOptions() {
  CsvmOptions options;
  options.c_visual = 10.0;
  options.c_log = 10.0;
  options.rho = 0.5;
  options.visual_kernel = svm::KernelParams::Rbf(0.5);
  options.log_kernel = svm::KernelParams::Rbf(0.5);
  return options;
}

TEST(CoupledSvmTest, TrainsOnCleanTwoModalityData) {
  const CsvmTrainData data = TwoModalityProblem(8, 6, 3.0, 2.0, 1);
  CoupledSvm csvm(TestOptions());
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT(model->diagnostics.outer_iterations, 1);
  // Labeled points classified correctly by the coupled decision.
  for (size_t i = 0; i < data.labels.size(); ++i) {
    const double f =
        model->Decision(data.visual.Row(i), data.log.Row(i));
    EXPECT_GT(data.labels[i] * f, 0.0) << "labeled sample " << i;
  }
}

TEST(CoupledSvmTest, DecisionIsSumOfModalities) {
  const CsvmTrainData data = TwoModalityProblem(6, 4, 2.0, 2.0, 3);
  CoupledSvm csvm(TestOptions());
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  const la::Vec x = data.visual.Row(0);
  const la::Vec r = data.log.Row(0);
  EXPECT_NEAR(model->Decision(x, r),
              model->visual.Decision(x) + model->log.Decision(r), 1e-12);
}

TEST(CoupledSvmTest, CorrectsMislabeledUnlabeledSample) {
  // The unlabeled sample sits deep in positive territory in BOTH modalities
  // but is pseudo-labeled -1: the Delta-gated flip must correct it.
  CsvmTrainData data = TwoModalityProblem(8, 0, 3.0, 2.0, 5);
  data.visual = la::Matrix(17, 2);
  data.log = la::Matrix(17, 1);
  {
    const CsvmTrainData base = TwoModalityProblem(8, 0, 3.0, 2.0, 5);
    for (size_t i = 0; i < 16; ++i) {
      data.visual.SetRow(i, base.visual.Row(i));
      data.log.SetRow(i, base.log.Row(i));
    }
    data.labels = base.labels;
  }
  data.visual.SetRow(16, {3.0, 0.0});  // clearly positive visually
  data.log.SetRow(16, {2.0});          // clearly positive in the log view
  data.initial_unlabeled_labels = {-1.0};

  // A lone violator has no opposite-class partner, so this exercises the
  // literal Fig. 1 rule (balance guard off).
  CsvmOptions options = TestOptions();
  options.enforce_class_balance = false;
  CoupledSvm csvm(options);
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok()) << model.status();
  ASSERT_EQ(model->unlabeled_labels.size(), 1u);
  EXPECT_DOUBLE_EQ(model->unlabeled_labels[0], 1.0);
  EXPECT_GE(model->diagnostics.total_flips, 1);
}

TEST(CoupledSvmTest, HugeDeltaPreventsFlips) {
  CsvmTrainData data = TwoModalityProblem(8, 0, 3.0, 2.0, 5);
  // Same mislabeled construction as above.
  CsvmTrainData extended;
  extended.visual = la::Matrix(17, 2);
  extended.log = la::Matrix(17, 1);
  for (size_t i = 0; i < 16; ++i) {
    extended.visual.SetRow(i, data.visual.Row(i));
    extended.log.SetRow(i, data.log.Row(i));
  }
  extended.labels = data.labels;
  extended.visual.SetRow(16, {3.0, 0.0});
  extended.log.SetRow(16, {2.0});
  extended.initial_unlabeled_labels = {-1.0};

  CsvmOptions options = TestOptions();
  options.enforce_class_balance = false;
  options.delta = 1e6;  // flips disabled
  CoupledSvm csvm(options);
  auto model = csvm.Train(extended);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->unlabeled_labels[0], -1.0);
  EXPECT_EQ(model->diagnostics.total_flips, 0);
}

TEST(CoupledSvmTest, BalancedCorrectionSwapsOpposedViolators) {
  // Two unlabeled samples with SWAPPED pseudo-labels: one deep positive
  // labeled -1, one deep negative labeled +1. The balance-preserving
  // correction must swap both in one round.
  const CsvmTrainData base = TwoModalityProblem(8, 0, 3.0, 2.0, 21);
  CsvmTrainData data;
  data.visual = la::Matrix(18, 2);
  data.log = la::Matrix(18, 1);
  for (size_t i = 0; i < 16; ++i) {
    data.visual.SetRow(i, base.visual.Row(i));
    data.log.SetRow(i, base.log.Row(i));
  }
  data.labels = base.labels;
  data.visual.SetRow(16, {3.0, 0.0});   // positive region
  data.log.SetRow(16, {2.0});
  data.visual.SetRow(17, {-3.0, 0.0});  // negative region
  data.log.SetRow(17, {-2.0});
  data.initial_unlabeled_labels = {-1.0, 1.0};  // both wrong

  CoupledSvm csvm(TestOptions());  // balance guard on by default
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_DOUBLE_EQ(model->unlabeled_labels[0], 1.0);
  EXPECT_DOUBLE_EQ(model->unlabeled_labels[1], -1.0);
}

TEST(CoupledSvmTest, BalanceGuardBlocksOneSidedCollapse) {
  // All unlabeled pseudo-negatives sit in positive territory. The literal
  // Fig. 1 rule would flip them all (losing every pseudo-negative); the
  // balanced correction must keep the ratio intact.
  const CsvmTrainData base = TwoModalityProblem(8, 0, 3.0, 2.0, 23);
  CsvmTrainData data;
  data.visual = la::Matrix(20, 2);
  data.log = la::Matrix(20, 1);
  for (size_t i = 0; i < 16; ++i) {
    data.visual.SetRow(i, base.visual.Row(i));
    data.log.SetRow(i, base.log.Row(i));
  }
  data.labels = base.labels;
  for (size_t j = 0; j < 4; ++j) {
    data.visual.SetRow(16 + j, {3.0 + 0.1 * j, 0.0});
    data.log.SetRow(16 + j, {2.0});
    data.initial_unlabeled_labels.push_back(-1.0);
  }

  CoupledSvm csvm(TestOptions());
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  int negatives = 0;
  for (double yj : model->unlabeled_labels) {
    if (yj < 0) ++negatives;
  }
  EXPECT_EQ(negatives, 4);  // ratio preserved
  EXPECT_EQ(model->diagnostics.total_flips, 0);
}

TEST(CoupledSvmTest, NoUnlabeledReducesToSupervised) {
  const CsvmTrainData data = TwoModalityProblem(10, 0, 3.0, 2.0, 7);
  CoupledSvm csvm(TestOptions());
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->unlabeled_labels.empty());
  // With no unlabeled data the rho annealing collapses to a single solve.
  EXPECT_EQ(model->diagnostics.outer_iterations, 1);
  EXPECT_EQ(model->diagnostics.total_flips, 0);
}

TEST(CoupledSvmTest, RhoInitEqualToRhoRunsOneOuterIteration) {
  CsvmOptions options = TestOptions();
  options.rho_init = options.rho;
  const CsvmTrainData data = TwoModalityProblem(6, 4, 3.0, 2.0, 9);
  CoupledSvm csvm(options);
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->diagnostics.outer_iterations, 1);
}

TEST(CoupledSvmTest, AnnealingStepsAreLogarithmicInRhoRatio) {
  CsvmOptions options = TestOptions();
  options.rho_init = 1e-4;
  options.rho = 0.5;
  const CsvmTrainData data = TwoModalityProblem(6, 4, 3.0, 2.0, 11);
  CoupledSvm csvm(options);
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  // ceil(log2(0.5 / 1e-4)) = 13 doublings + the initial solve.
  EXPECT_EQ(model->diagnostics.outer_iterations, 14);
}

TEST(CoupledSvmTest, RejectsBadInput) {
  CoupledSvm csvm(TestOptions());
  CsvmTrainData empty;
  EXPECT_FALSE(csvm.Train(empty).ok());

  CsvmTrainData mismatched = TwoModalityProblem(4, 2, 2.0, 2.0, 13);
  mismatched.initial_unlabeled_labels.push_back(1.0);  // rows now disagree
  EXPECT_FALSE(csvm.Train(mismatched).ok());
}

TEST(CoupledSvmTest, DiagnosticsObjectivesPopulated) {
  const CsvmTrainData data = TwoModalityProblem(8, 4, 3.0, 2.0, 15);
  CoupledSvm csvm(TestOptions());
  auto model = csvm.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->diagnostics.visual_objective, 1e-9);
  EXPECT_LE(model->diagnostics.log_objective, 1e-9);
}

TEST(CoupledSvmTest, WarmStartAcrossRoundsMatchesColdTraining) {
  // Round t+1 warm-started from round t's duals must produce the same model
  // as a cold solve (warm starting is an accelerator, not an approximation).
  const CsvmTrainData data = TwoModalityProblem(8, 6, 2.0, 1.5, 21);
  CoupledSvm csvm(TestOptions());
  auto cold = csvm.Train(data);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->visual_alpha.size(), data.visual.rows());
  ASSERT_EQ(cold->log_alpha.size(), data.log.rows());

  CsvmTrainData warm_data = data;
  warm_data.initial_visual_alpha = cold->visual_alpha;
  warm_data.initial_log_alpha = cold->log_alpha;
  auto warm = csvm.Train(warm_data);
  ASSERT_TRUE(warm.ok());

  EXPECT_EQ(warm->unlabeled_labels, cold->unlabeled_labels);
  for (size_t i = 0; i < data.visual.rows(); ++i) {
    EXPECT_NEAR(warm->Decision(data.visual.Row(i), data.log.Row(i)),
                cold->Decision(data.visual.Row(i), data.log.Row(i)), 5e-3)
        << i;
  }
  // Both runs warm-start internally across the annealing chain, so the
  // cross-round carry only shaves the first solve; totals must stay in the
  // same ballpark (the strict single-solve speedup is asserted in
  // SmoSolverTest.WarmStartMatchesColdStartAfterGrowth).
  EXPECT_LE(warm->diagnostics.total_smo_iterations,
            cold->diagnostics.total_smo_iterations * 6 / 5);
}

TEST(CoupledSvmTest, RejectsMismatchedWarmStart) {
  CsvmTrainData data = TwoModalityProblem(4, 2, 2.0, 2.0, 23);
  data.initial_visual_alpha = {0.1};  // wrong size
  CoupledSvm csvm(TestOptions());
  EXPECT_FALSE(csvm.Train(data).ok());
}

TEST(CoupledSvmDeathTest, InvalidOptions) {
  CsvmOptions bad = TestOptions();
  bad.rho_init = 2.0;  // > rho
  EXPECT_DEATH(CoupledSvm{bad}, "Check failed");
  CsvmOptions bad2 = TestOptions();
  bad2.c_visual = 0.0;
  EXPECT_DEATH(CoupledSvm{bad2}, "Check failed");
}

}  // namespace
}  // namespace cbir::core
