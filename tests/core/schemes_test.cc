#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/euclidean_scheme.h"
#include "core/lrf_2svm_scheme.h"
#include "core/lrf_csvm_scheme.h"
#include "core/rf_svm_scheme.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "retrieval/ranker.h"

namespace cbir::core {
namespace {

// Shared tiny corpus fixture: built once because feature extraction over a
// corpus is the expensive part of these tests.
class SchemesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    retrieval::DatabaseOptions options;
    options.corpus.num_categories = 3;
    options.corpus.images_per_category = 12;
    options.corpus.width = 64;
    options.corpus.height = 64;
    options.corpus.seed = 77;
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(options));

    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 30;
    log_options.session_size = 10;
    log_options.user.noise_rate = 0.05;
    log_options.seed = 5;
    const logdb::LogStore store =
        logdb::CollectLogs(db_->features(), db_->categories(), log_options);
    log_features_ = new la::Matrix(
        store.BuildMatrix(db_->num_images()).ToDenseMatrix());

    scheme_options_ = new SchemeOptions(
        MakeDefaultSchemeOptions(*db_, log_features_));
  }

  static void TearDownTestSuite() {
    delete scheme_options_;
    delete log_features_;
    delete db_;
  }

  FeedbackContext MakeContext(int query_id, bool with_log = true) const {
    FeedbackContext ctx;
    ctx.db = db_;
    ctx.log_features = with_log ? log_features_ : nullptr;
    ctx.query_id = query_id;
    EXPECT_TRUE(ctx.Prepare().ok());  // non-void helper: EXPECT, not ASSERT
    const auto initial = retrieval::RankByEuclidean(
        db_->features(), ctx.query_feature, 11);
    const int qcat = db_->category(query_id);
    for (int id : initial) {
      if (id == query_id) continue;
      if (ctx.labeled_ids.size() >= 10) break;
      ctx.labeled_ids.push_back(id);
      ctx.labels.push_back(db_->category(id) == qcat ? 1.0 : -1.0);
    }
    return ctx;
  }

  void ExpectValidRanking(const std::vector<int>& ranked, int query_id) {
    EXPECT_EQ(ranked.size(), static_cast<size_t>(db_->num_images() - 1));
    const std::set<int> unique(ranked.begin(), ranked.end());
    EXPECT_EQ(unique.size(), ranked.size()) << "duplicate ids in ranking";
    EXPECT_EQ(unique.count(query_id), 0u) << "query id leaked into ranking";
  }

  static retrieval::ImageDatabase* db_;
  static la::Matrix* log_features_;
  static SchemeOptions* scheme_options_;
};

retrieval::ImageDatabase* SchemesTest::db_ = nullptr;
la::Matrix* SchemesTest::log_features_ = nullptr;
SchemeOptions* SchemesTest::scheme_options_ = nullptr;

TEST_F(SchemesTest, EuclideanMatchesRanker) {
  EuclideanScheme scheme;
  const FeedbackContext ctx = MakeContext(4);
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok());
  ExpectValidRanking(ranked.value(), 4);

  auto expected = retrieval::RankByEuclidean(db_->features(),
                                             ctx.query_feature);
  expected.erase(std::remove(expected.begin(), expected.end(), 4),
                 expected.end());
  EXPECT_EQ(ranked.value(), expected);
}

TEST_F(SchemesTest, RfSvmRanksLabeledPositivesHighly) {
  RfSvmScheme scheme(*scheme_options_);
  const FeedbackContext ctx = MakeContext(2);
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ExpectValidRanking(ranked.value(), 2);

  // Labeled positives should appear in the top half of the ranking.
  const size_t half = ranked->size() / 2;
  for (size_t i = 0; i < ctx.labeled_ids.size(); ++i) {
    if (ctx.labels[i] < 0) continue;
    const auto pos = std::find(ranked->begin(), ranked->end(),
                               ctx.labeled_ids[i]);
    ASSERT_NE(pos, ranked->end());
    EXPECT_LT(static_cast<size_t>(pos - ranked->begin()), half)
        << "positive labeled id " << ctx.labeled_ids[i] << " ranked too low";
  }
}

TEST_F(SchemesTest, RfSvmRequiresLabels) {
  RfSvmScheme scheme(*scheme_options_);
  FeedbackContext ctx;
  ctx.db = db_;
  ctx.query_id = 0;
  ASSERT_TRUE(ctx.Prepare().ok());
  EXPECT_FALSE(scheme.Rank(ctx).ok());
}

TEST_F(SchemesTest, Lrf2SvmProducesValidRanking) {
  Lrf2SvmScheme scheme(*scheme_options_);
  const FeedbackContext ctx = MakeContext(13);
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ExpectValidRanking(ranked.value(), 13);
}

TEST_F(SchemesTest, Lrf2SvmRequiresLog) {
  Lrf2SvmScheme scheme(*scheme_options_);
  const FeedbackContext ctx = MakeContext(13, /*with_log=*/false);
  auto ranked = scheme.Rank(ctx);
  ASSERT_FALSE(ranked.ok());
  EXPECT_EQ(ranked.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SchemesTest, LrfCsvmProducesValidRanking) {
  LrfCsvmOptions csvm_options;
  csvm_options.n_prime = 10;
  LrfCsvmScheme scheme(*scheme_options_, csvm_options);
  const FeedbackContext ctx = MakeContext(25);
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ExpectValidRanking(ranked.value(), 25);
}

TEST_F(SchemesTest, LrfCsvmTrainExposesDiagnostics) {
  LrfCsvmOptions csvm_options;
  csvm_options.n_prime = 8;
  LrfCsvmScheme scheme(*scheme_options_, csvm_options);
  const FeedbackContext ctx = MakeContext(7);
  auto model = scheme.TrainForContext(ctx);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->unlabeled_labels.size(), 8u);
  EXPECT_GE(model->diagnostics.outer_iterations, 1);
  for (double y : model->unlabeled_labels) {
    EXPECT_TRUE(y == 1.0 || y == -1.0);
  }
}

TEST_F(SchemesTest, LrfCsvmDeterministicAcrossCalls) {
  LrfCsvmOptions csvm_options;
  csvm_options.n_prime = 10;
  LrfCsvmScheme scheme(*scheme_options_, csvm_options);
  const FeedbackContext ctx = MakeContext(19);
  auto a = scheme.Rank(ctx);
  auto b = scheme.Rank(ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(SchemesTest, LrfCsvmAllSelectionStrategiesProduceValidRankings) {
  // Exercises every selection path end-to-end, including Fig. 1's literal
  // max/min-decision rule which trains the two step-1 SVMs.
  for (SelectionStrategy strategy :
       {SelectionStrategy::kMostSimilar, SelectionStrategy::kMaxMin,
        SelectionStrategy::kBoundaryClosest, SelectionStrategy::kRandom}) {
    LrfCsvmOptions csvm_options;
    csvm_options.n_prime = 8;
    csvm_options.selection = strategy;
    LrfCsvmScheme scheme(*scheme_options_, csvm_options);
    const FeedbackContext ctx = MakeContext(11);
    auto ranked = scheme.Rank(ctx);
    ASSERT_TRUE(ranked.ok())
        << SelectionStrategyToString(strategy) << ": " << ranked.status();
    ExpectValidRanking(ranked.value(), 11);
  }
}

TEST_F(SchemesTest, LrfCsvmSelectionStrategiesDiffer) {
  const FeedbackContext ctx = MakeContext(22);
  LrfCsvmOptions most_similar;
  most_similar.selection = SelectionStrategy::kMostSimilar;
  LrfCsvmOptions max_min;
  max_min.selection = SelectionStrategy::kMaxMin;
  auto a = LrfCsvmScheme(*scheme_options_, most_similar).TrainForContext(ctx);
  auto b = LrfCsvmScheme(*scheme_options_, max_min).TrainForContext(ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different selections almost surely yield different support-vector sets.
  EXPECT_NE(a->visual.num_support_vectors() + a->log.num_support_vectors(),
            b->visual.num_support_vectors() + b->log.num_support_vectors());
}

TEST_F(SchemesTest, LrfCsvmZeroNPrimeStillWorks) {
  LrfCsvmOptions csvm_options;
  csvm_options.n_prime = 0;  // degenerates to LRF-2SVMs-like training
  LrfCsvmScheme scheme(*scheme_options_, csvm_options);
  const FeedbackContext ctx = MakeContext(31);
  auto ranked = scheme.Rank(ctx);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ExpectValidRanking(ranked.value(), 31);
}

TEST_F(SchemesTest, FactoryCreatesAllPaperSchemes) {
  for (const char* name : {"Euclidean", "RF-SVM", "LRF-2SVMs", "LRF-CSVM"}) {
    auto scheme = MakeScheme(name, *scheme_options_);
    ASSERT_TRUE(scheme.ok()) << name;
    EXPECT_EQ((*scheme)->name(), name);
  }
  const auto all = MakePaperSchemes(*scheme_options_);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "Euclidean");
  EXPECT_EQ(all[3]->name(), "LRF-CSVM");
}

TEST_F(SchemesTest, FactoryRejectsUnknownName) {
  auto scheme = MakeScheme("PageRank", *scheme_options_);
  ASSERT_FALSE(scheme.ok());
  EXPECT_EQ(scheme.status().code(), StatusCode::kNotFound);
}

TEST_F(SchemesTest, DefaultSchemeOptionsDeriveKernelsFromData) {
  const SchemeOptions options = MakeDefaultSchemeOptions(*db_, log_features_);
  EXPECT_EQ(options.visual_kernel.type, svm::KernelType::kRbf);
  EXPECT_GT(options.visual_kernel.gamma, 0.0);
  // The log side defaults to the linear session-weighting kernel of the
  // paper's Section 4 formulation, with a data-derived gamma kept on hand
  // for callers that switch to RBF.
  EXPECT_EQ(options.log_kernel.type, svm::KernelType::kLinear);
  EXPECT_GT(options.log_kernel.gamma, 0.0);
  EXPECT_NE(options.visual_kernel.gamma, options.log_kernel.gamma);
  EXPECT_DOUBLE_EQ(options.c_log, 1.0);
}

}  // namespace
}  // namespace cbir::core
