#include "api/codec.h"

#include <cstdint>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::api {
namespace {

// ---------------------------------------------------------- round-tripping --

/// Every request message round-trips bit-exactly through one frame.
template <typename M>
void ExpectRequestRoundTrip(const M& message) {
  const Request request(message);
  const std::vector<uint8_t> frame = EncodeRequest(request);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<M>(decoded.value()));
  EXPECT_TRUE(std::get<M>(decoded.value()) == message);
}

template <typename M>
void ExpectResponseRoundTrip(const M& message) {
  const Response response(message);
  const std::vector<uint8_t> frame = EncodeResponse(response);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<M>(decoded.value()));
  EXPECT_TRUE(std::get<M>(decoded.value()) == message);
}

TEST(CodecRoundTripTest, StartSessionRequestById) {
  StartSessionRequest m;
  m.query = QuerySpec::ById(12345);
  ExpectRequestRoundTrip(m);
  m.query = QuerySpec::ById(-1);  // invalid semantically, still encodable
  ExpectRequestRoundTrip(m);
}

TEST(CodecRoundTripTest, StartSessionRequestByFeature) {
  StartSessionRequest m;
  m.query = QuerySpec::ByFeature({0.0, -1.5, 3.25, 1e300, -0.0,
                                  std::numeric_limits<double>::infinity()});
  ExpectRequestRoundTrip(m);
  // Empty feature vector: representable on the wire (the service rejects it
  // with a typed error, not the codec).
  m.query = QuerySpec::ByFeature({});
  ExpectRequestRoundTrip(m);
}

TEST(CodecRoundTripTest, QueryRequest) {
  QueryRequest m;
  m.session_id = 0;
  m.k = 0;
  ExpectRequestRoundTrip(m);
  m.session_id = std::numeric_limits<uint64_t>::max();
  m.k = std::numeric_limits<int32_t>::min();
  ExpectRequestRoundTrip(m);
}

TEST(CodecRoundTripTest, FeedbackRequest) {
  FeedbackRequest m;
  m.session_id = 77;
  m.k = 20;
  ExpectRequestRoundTrip(m);  // empty round
  for (int i = 0; i < 200; ++i) {
    m.round.push_back(logdb::LogEntry{i * 3, int8_t(i % 2 == 0 ? 1 : -1)});
  }
  ExpectRequestRoundTrip(m);
}

TEST(CodecRoundTripTest, EndSessionAndStatsRequests) {
  EndSessionRequest end;
  end.session_id = 42;
  ExpectRequestRoundTrip(end);
  ExpectRequestRoundTrip(StatsRequest{});
}

TEST(CodecRoundTripTest, StartSessionResponse) {
  StartSessionResponse m;
  m.session_id = 99;
  ExpectResponseRoundTrip(m);
  m.status.code = StatusCodeToWireCode(StatusCode::kInvalidArgument);
  m.status.message = "query id out of range";
  m.session_id = 0;
  ExpectResponseRoundTrip(m);
}

TEST(CodecRoundTripTest, RankingResponses) {
  QueryResponse q;
  ExpectResponseRoundTrip(q);  // empty ranking, OK status
  for (int i = 0; i < 1000; ++i) q.ranking.push_back(1000 - i);
  ExpectResponseRoundTrip(q);

  FeedbackResponse f;
  f.ranking = {5, 4, 3, 2, 1, 0, -1};
  f.status.message = std::string(4096, 'x');  // maximal-ish message
  f.status.code = StatusCodeToWireCode(StatusCode::kNotFound);
  ExpectResponseRoundTrip(f);
}

TEST(CodecRoundTripTest, EndSessionStatsAndErrorResponses) {
  EndSessionResponse end;
  end.status.code = StatusCodeToWireCode(StatusCode::kNotFound);
  end.status.message = "unknown session";
  ExpectResponseRoundTrip(end);

  StatsResponse stats;
  stats.requests = 123456789;
  stats.queries = 1;
  stats.feedbacks = 2;
  stats.sessions_started = 3;
  stats.sessions_ended = 4;
  stats.active_sessions = 5;
  stats.log_sessions_appended = 6;
  stats.cache_hit_rate = 0.875;
  stats.qps = 1234.5;
  stats.latency_p50_us = 10.0;
  stats.latency_p95_us = 100.0;
  stats.latency_p99_us = 1000.0;
  ExpectResponseRoundTrip(stats);

  ErrorResponse error;
  error.status.code = StatusCodeToWireCode(StatusCode::kNotImplemented);
  error.status.message = "unsupported protocol version 9";
  ExpectResponseRoundTrip(error);
}

// ------------------------------------------------------------- wire status --

TEST(WireStatusTest, RoundTripsEveryStatusCode) {
  for (StatusCode code : kAllStatusCodes) {
    const Status status = code == StatusCode::kOk
                              ? Status::OK()
                              : Status(code, "some message");
    const WireStatus wire = ToWireStatus(status);
    const Status back = FromWireStatus(wire);
    EXPECT_EQ(back.code(), code) << StatusCodeToString(code);
    if (code != StatusCode::kOk) EXPECT_EQ(back.message(), "some message");
  }
}

TEST(WireStatusTest, UnknownWireCodeNeverDecodesAsOk) {
  WireStatus wire;
  wire.code = 0xDEADBEEF;
  wire.message = "from a newer peer";
  const Status back = FromWireStatus(wire);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.code(), StatusCode::kInternal);
}

// ------------------------------------------------------- malformed frames --

std::vector<uint8_t> ValidFrame() {
  FeedbackRequest m;
  m.session_id = 7;
  m.k = 10;
  m.round = {logdb::LogEntry{1, 1}, logdb::LogEntry{2, -1}};
  return EncodeRequest(Request(m));
}

TEST(CodecRobustnessTest, EveryTruncationFailsTyped) {
  const std::vector<uint8_t> frame = ValidFrame();
  for (size_t len = 0; len < frame.size(); ++len) {
    Result<Request> decoded = DecodeRequest(frame.data(), len);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CodecRobustnessTest, EverySingleBitFlipIsHandled) {
  const std::vector<uint8_t> frame = ValidFrame();
  // Flipping any single bit must produce either a typed decode error or a
  // (different) successfully decoded message — never UB or a crash. The CI
  // asan job runs this corpus under AddressSanitizer.
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
      if (!decoded.ok()) {
        const StatusCode code = decoded.status().code();
        EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kOutOfRange ||
                    code == StatusCode::kNotImplemented)
            << "byte " << byte << " bit " << bit << ": "
            << decoded.status();
      }
    }
  }
}

TEST(CodecRobustnessTest, BadMagicRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[0] = uint8_t(frame[0] ^ 0xFF);
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos);
}

TEST(CodecRobustnessTest, WrongVersionRejectedAsNotImplemented) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[4] = uint8_t(kProtocolVersion + 1);  // version lives at offset 4
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotImplemented);
}

TEST(CodecRobustnessTest, OversizedBodyRejectedBeforeAllocation) {
  std::vector<uint8_t> frame = ValidFrame();
  // Declare a body far beyond kMaxFrameBody; only the 12 header bytes
  // exist, so an implementation that trusted the length would allocate or
  // read wildly.
  const uint32_t huge = kMaxFrameBody + 1;
  for (int i = 0; i < 4; ++i) frame[8 + i] = uint8_t(huge >> (8 * i));
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
}

TEST(CodecRobustnessTest, UnknownMessageTypeRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[6] = 0x7F;  // type byte
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecRobustnessTest, ResponseTypeInRequestStreamRejected) {
  const std::vector<uint8_t> frame =
      EncodeResponse(Response(EndSessionResponse{}));
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  const std::vector<uint8_t> request_frame = ValidFrame();
  Result<Response> response =
      DecodeResponse(request_frame.data(), request_frame.size());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecRobustnessTest, TrailingBytesRejected) {
  std::vector<uint8_t> frame = ValidFrame();
  frame.push_back(0xAB);
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecRobustnessTest, HostileContainerLengthRejectedBeforeAllocation) {
  // A StartSessionRequest whose feature-count prefix claims 2^32-1 doubles
  // in a tiny body must fail the bounds check, not allocate 32 GiB.
  StartSessionRequest m;
  m.query = QuerySpec::ByFeature({1.0});
  std::vector<uint8_t> frame = EncodeRequest(Request(m));
  // Body layout: u8 kind, u32 count, doubles. Count sits at header+1.
  const size_t count_offset = kFrameHeaderBytes + 1;
  for (int i = 0; i < 4; ++i) frame[count_offset + i] = 0xFF;
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecRobustnessTest, UnknownQuerySpecKindRejected) {
  StartSessionRequest m;
  m.query = QuerySpec::ById(3);
  std::vector<uint8_t> frame = EncodeRequest(Request(m));
  frame[kFrameHeaderBytes] = 9;  // kind byte
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecRobustnessTest, GarbageBytesNeverCrash) {
  // Deterministic pseudo-random garbage, many lengths: decoding must always
  // return, never crash (ASan-gated in CI).
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t len : {0ul, 1ul, 11ul, 12ul, 13ul, 64ul, 1024ul}) {
    for (int rep = 0; rep < 64; ++rep) {
      std::vector<uint8_t> garbage(len);
      for (auto& b : garbage) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = uint8_t(x);
      }
      Result<Request> req = DecodeRequest(garbage.data(), garbage.size());
      Result<Response> resp = DecodeResponse(garbage.data(), garbage.size());
      // Random 12+ byte buffers essentially never form the magic; either
      // way both calls must have returned in a defined state.
      (void)req;
      (void)resp;
    }
  }
}

TEST(CodecFramingTest, HeaderFieldsAndTypeOf) {
  // An envelope-free request encodes as a v1 frame: old servers keep
  // understanding new clients that don't use v2 features.
  const std::vector<uint8_t> frame = ValidFrame();
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersionV1);
  EXPECT_EQ(header->flags, 0);
  EXPECT_EQ(header->type, MessageType::kFeedbackRequest);
  EXPECT_EQ(header->body_size, frame.size() - kFrameHeaderBytes);

  EXPECT_EQ(TypeOf(Request(StatsRequest{})), MessageType::kStatsRequest);
  EXPECT_EQ(TypeOf(Response(ErrorResponse{})), MessageType::kErrorResponse);
}

// ------------------------------------------------------ protocol v2 frames --

TEST(CodecV2Test, EnvelopeRoundTripsThroughV2Frame) {
  FeedbackRequest m;
  m.session_id = 7;
  m.round = {logdb::LogEntry{1, 1}};
  for (const RequestEnvelope sent :
       {RequestEnvelope::WithDeadline(1500),
        [] {
          RequestEnvelope e;
          e.has_seq = true;
          e.seq = 42;
          return e;
        }(),
        [] {
          RequestEnvelope e = RequestEnvelope::WithDeadline(0);  // cancel
          e.has_seq = true;
          e.seq = 0xFFFFFFFF;
          return e;
        }(),
        RequestEnvelope::WithTraceId(0x0123456789ABCDEFull),
        RequestEnvelope::WithTraceId(std::numeric_limits<uint64_t>::max()),
        [] {
          // All three fields at once: deadline, seq, trace id, in flag-bit
          // order on the wire.
          RequestEnvelope e = RequestEnvelope::WithDeadline(30000);
          e.has_seq = true;
          e.seq = 7;
          e.has_trace_id = true;
          e.trace_id = 0xCAFEBABEDEADBEEFull;
          return e;
        }()}) {
    const std::vector<uint8_t> frame = EncodeRequest(Request(m), sent);
    Result<FrameHeader> header =
        DecodeFrameHeader(frame.data(), frame.size());
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->version, kProtocolVersion);
    RequestEnvelope got;
    Result<Request> decoded = DecodeRequest(frame.data(), frame.size(), &got);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(got == sent);
    ASSERT_TRUE(std::holds_alternative<FeedbackRequest>(decoded.value()));
    EXPECT_TRUE(std::get<FeedbackRequest>(decoded.value()) == m);
  }
}

TEST(CodecV2Test, EmptyEnvelopeIsByteIdenticalToV1) {
  QueryRequest m;
  m.session_id = 9;
  m.k = 5;
  const std::vector<uint8_t> v1 = EncodeRequest(Request(m));
  const std::vector<uint8_t> v2 = EncodeRequest(Request(m), RequestEnvelope{});
  EXPECT_EQ(v1, v2);
}

TEST(CodecV2Test, V1DecoderSurfacesEmptyEnvelope) {
  // A v1 frame decoded through the envelope-aware path reports no deadline
  // and no seq — old clients against new servers.
  QueryRequest m;
  m.session_id = 3;
  const std::vector<uint8_t> frame = EncodeRequest(Request(m));
  RequestEnvelope envelope = RequestEnvelope::WithDeadline(99);  // stale
  Result<Request> decoded =
      DecodeRequest(frame.data(), frame.size(), &envelope);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(envelope.empty());
}

TEST(CodecV2Test, UnknownFlagBitsRejected) {
  FeedbackRequest m;
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(m), RequestEnvelope::WithDeadline(10));
  // Bits 0-4 are assigned (deadline/seq/trace/profile/checksum) and bit 5
  // (degraded) is response-only; 6-7 must stay rejected so they remain
  // available to future protocol revisions.
  for (uint8_t bit = 5; bit < 8; ++bit) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[7] = uint8_t(corrupt[7] | (1u << bit));  // flags live at offset 7
    Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
    ASSERT_FALSE(decoded.ok()) << "flag bit " << int(bit) << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  // Bit 4 claims a CRC32 trailer the frame doesn't carry: rejected too, but
  // as data loss — the decoder can't tell a missing trailer from corruption.
  std::vector<uint8_t> claims_crc = frame;
  claims_crc[7] = uint8_t(claims_crc[7] | 0x10);
  Result<Request> decoded = DecodeRequest(claims_crc.data(), claims_crc.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CodecV2Test, TruncatedEnvelopeFailsTyped) {
  FeedbackRequest m;
  m.round = {logdb::LogEntry{4, -1}};
  RequestEnvelope envelope = RequestEnvelope::WithDeadline(250);
  envelope.has_seq = true;
  envelope.seq = 8;
  const std::vector<uint8_t> frame = EncodeRequest(Request(m), envelope);
  for (size_t len = 0; len < frame.size(); ++len) {
    Result<Request> decoded = DecodeRequest(frame.data(), len);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(CodecV2Test, ResponsesStayV1) {
  // Responses never carry envelopes, so a v2-speaking server remains
  // byte-compatible with v1 clients on the reply path.
  QueryResponse m;
  m.ranking = {1, 2, 3};
  const std::vector<uint8_t> frame = EncodeResponse(Response(m));
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersionV1);
}

TEST(CodecV2Test, EverySingleBitFlipOfV2FrameIsHandled) {
  FeedbackRequest m;
  m.session_id = 7;
  m.round = {logdb::LogEntry{1, 1}, logdb::LogEntry{2, -1}};
  RequestEnvelope envelope = RequestEnvelope::WithDeadline(2000);
  envelope.has_seq = true;
  envelope.seq = 77;
  envelope.has_trace_id = true;
  envelope.trace_id = 0x1122334455667788ull;
  const std::vector<uint8_t> frame = EncodeRequest(Request(m), envelope);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
      if (!decoded.ok()) {
        const StatusCode code = decoded.status().code();
        // kDataLoss: a flip of flags bit 4 makes the frame claim a CRC32
        // trailer it doesn't carry, which fails the integrity check typed.
        EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kOutOfRange ||
                    code == StatusCode::kNotImplemented ||
                    code == StatusCode::kDataLoss)
            << "byte " << byte << " bit " << bit << ": " << decoded.status();
      }
    }
  }
}

TEST(CodecV2Test, TraceIdOnlyEnvelopeAddsExactlyNineBytes) {
  // flag byte is already in the header; the trace id costs 8 envelope bytes,
  // and the frame stays v1-shaped everywhere else.
  QueryRequest m;
  m.session_id = 11;
  const std::vector<uint8_t> v1 = EncodeRequest(Request(m));
  const std::vector<uint8_t> v2 =
      EncodeRequest(Request(m), RequestEnvelope::WithTraceId(5));
  EXPECT_EQ(v2.size(), v1.size() + 8);
  Result<FrameHeader> header = DecodeFrameHeader(v2.data(), v2.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->flags, kFrameFlagTraceId);
}

// ----------------------------------------------------- profile (EXPLAIN) --

ResponseProfile MakeProfile() {
  ResponseProfile p;
  p.trace_id = 0xabcdef0123456789ull;
  p.total_us = 4211;
  p.spans = {{"decode", 0, 12, 0},
             {"solve", 118, 3970, 0},
             {"smo_inner", 200, 3500, 1}};
  p.counters = {{"smo_iterations", 142},
                {"kernel_cache_hits", 950},
                {"index_delta", -3}};  // two's complement survives the wire
  return p;
}

TEST(CodecProfileTest, ProfileFlagOnRequestCarriesNoEnvelopeBytes) {
  QueryRequest m;
  m.session_id = 4;
  const std::vector<uint8_t> v1 = EncodeRequest(Request(m));
  const std::vector<uint8_t> flagged =
      EncodeRequest(Request(m), RequestEnvelope::WithProfile());
  // Same length: the flag bit is the whole encoding.
  EXPECT_EQ(flagged.size(), v1.size());
  Result<FrameHeader> header =
      DecodeFrameHeader(flagged.data(), flagged.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->flags, kFrameFlagProfile);
  RequestEnvelope envelope;
  Result<Request> decoded =
      DecodeRequest(flagged.data(), flagged.size(), &envelope);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(envelope.has_profile);
  EXPECT_FALSE(envelope.has_deadline);
}

TEST(CodecProfileTest, ProfiledResponseRoundTrips) {
  QueryResponse m;
  m.ranking = {5, 3, 8};
  const ResponseProfile sent = MakeProfile();
  const std::vector<uint8_t> frame = EncodeResponse(Response(m), &sent);
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->flags, kFrameFlagProfile);
  ResponseProfile got;
  Result<Response> decoded =
      DecodeResponse(frame.data(), frame.size(), &got);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<QueryResponse>(decoded.value()));
  EXPECT_TRUE(std::get<QueryResponse>(decoded.value()) == m);
  EXPECT_TRUE(got == sent);
}

TEST(CodecProfileTest, ProfiledResponseDecodesWithoutOutParam) {
  // A caller that never asked for the profile still decodes the response;
  // the block is parsed, validated, and dropped.
  QueryResponse m;
  m.ranking = {1};
  const ResponseProfile profile = MakeProfile();
  const std::vector<uint8_t> frame = EncodeResponse(Response(m), &profile);
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(std::get<QueryResponse>(decoded.value()) == m);
}

TEST(CodecProfileTest, NullProfileEncodesByteIdenticalV1) {
  // The whole compatibility story in one assertion: not asking for a
  // profile yields exactly the bytes the previous protocol revision sent.
  QueryResponse m;
  m.ranking = {9, 2, 4};
  EXPECT_EQ(EncodeResponse(Response(m), nullptr), EncodeResponse(Response(m)));
}

TEST(CodecProfileTest, EnvelopeFlagsOnResponseRejected) {
  QueryResponse m;
  const ResponseProfile profile = MakeProfile();
  std::vector<uint8_t> frame = EncodeResponse(Response(m), &profile);
  for (uint8_t flag : {kFrameFlagDeadline, kFrameFlagSeq, kFrameFlagTraceId}) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[7] = uint8_t(corrupt[7] | flag);  // flags live at offset 7
    Result<Response> decoded = DecodeResponse(corrupt.data(), corrupt.size());
    ASSERT_FALSE(decoded.ok()) << "flag " << int(flag) << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CodecProfileTest, HostileSpanCountRejectedBeforeAllocation) {
  QueryResponse m;
  const ResponseProfile profile = MakeProfile();
  std::vector<uint8_t> frame = EncodeResponse(Response(m), &profile);
  // span_count is the u32 after the header (12) + trace_id (8) + total (8).
  const size_t count_at = kFrameHeaderBytes + 16;
  for (size_t i = 0; i < 4; ++i) frame[count_at + i] = 0xFF;
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecProfileTest, EverySingleBitFlipOfProfiledFrameIsHandled) {
  // The profiled-response corpus twin of EverySingleBitFlipOfV2Frame: no
  // flip may crash or hang the decoder, only fail typed (or decode as a
  // different valid frame — integrity is opt-in via flag 0x10, and this
  // frame doesn't carry it).
  FeedbackResponse m;
  m.ranking = {3, 1, 4, 1, 5};
  const ResponseProfile profile = MakeProfile();
  const std::vector<uint8_t> frame = EncodeResponse(Response(m), &profile);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      ResponseProfile got;
      Result<Response> decoded =
          DecodeResponse(corrupt.data(), corrupt.size(), &got);
      if (!decoded.ok()) {
        const StatusCode code = decoded.status().code();
        // kDataLoss: a flip of flags bit 4 claims a CRC32 trailer the frame
        // doesn't carry, which fails the integrity check typed.
        EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kOutOfRange ||
                    code == StatusCode::kNotImplemented ||
                    code == StatusCode::kDataLoss)
            << "byte " << byte << " bit " << bit << ": " << decoded.status();
      }
    }
  }
}

// --------------------------------------------------------- metrics messages --

TEST(CodecRoundTripTest, MetricsRequest) {
  ExpectRequestRoundTrip(MetricsRequest{});
}

TEST(CodecRoundTripTest, MetricsResponseEmpty) {
  ExpectResponseRoundTrip(MetricsResponse{});
}

TEST(CodecRoundTripTest, MetricsResponsePopulated) {
  MetricsResponse m;
  MetricCounterSample c;
  c.name = "cbir_net_requests_total";
  c.value = std::numeric_limits<uint64_t>::max();
  m.counters.push_back(c);
  c.name = "cbir_request_stage_us";
  c.label_key = "stage";
  c.label_value = "solve";
  c.value = 0;
  m.counters.push_back(c);

  MetricGaugeSample g;
  g.name = "cbir_serve_active_sessions";
  g.value = -42;  // gauges are signed
  m.gauges.push_back(g);

  MetricHistogramSample h;
  h.name = "cbir_request_stage_us";
  h.label_key = "stage";
  h.label_value = "queue_wait";
  h.count = 123456;
  h.saturated = 7;
  h.mean_us = 41.5;
  h.p50_us = 10.0;
  h.p95_us = 510.25;
  h.p99_us = 990.0;
  h.max_us = 1e9;
  m.histograms.push_back(h);
  ExpectResponseRoundTrip(m);

  m.status.code = StatusCodeToWireCode(StatusCode::kUnavailable);
  m.status.message = "shed";
  ExpectResponseRoundTrip(m);
}

TEST(CodecRobustnessTest, MetricsResponseHostileCountRejected) {
  // A sample-count prefix claiming 2^32-1 histograms in a tiny body must
  // fail the bounds check before any allocation.
  MetricsResponse m;
  MetricHistogramSample h;
  h.name = "x";
  m.histograms.push_back(h);
  std::vector<uint8_t> frame = EncodeResponse(Response(m));
  // Body layout: WireStatus (u32 code, u32 len, bytes), then u32 counter
  // count (0), u32 gauge count (0), u32 histogram count.
  const size_t histogram_count_offset = kFrameHeaderBytes + 8 + 8;
  ASSERT_LT(histogram_count_offset + 4, frame.size());
  for (int i = 0; i < 4; ++i) frame[histogram_count_offset + i] = 0xFF;
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cbir::api
